//! # spdyier-origin
//!
//! The origin web servers behind the proxy. §5.3 of the paper measures the
//! proxy→origin leg at ~14 ms average (max 46 ms) to first byte and ~4 ms
//! download — fast enough that it is *not* the bottleneck. This crate
//! models exactly that: an object registry (populated from the synthesized
//! pages) and a calibrated first-byte latency distribution. The wire time
//! comes from the wired path in `spdyier-net`.

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

use serde::Serialize;
use spdyier_bytes::Payload;
use spdyier_http::{Request, Response};
use spdyier_sim::{DetRng, SimDuration};
use spdyier_workload::{ObjectKind, WebPage};
use std::collections::HashMap;

/// Latency model for origin request handling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OriginConfig {
    /// Mean time from request arrival to first response byte, ms
    /// (first-party and CDN domains; the paper's Fig. 8 measurement).
    pub first_byte_mean_ms: f64,
    /// Log-normal sigma for the first-byte latency.
    pub first_byte_sigma: f64,
    /// Hard cap on first-byte latency, ms (paper observed max 46 ms).
    pub first_byte_max_ms: f64,
    /// Mean first-byte latency for third-party domains (ad exchanges,
    /// trackers, widgets), ms — these are well known to be far slower
    /// than the site's own CDN.
    pub third_party_mean_ms: f64,
    /// Sigma for third-party latency.
    pub third_party_sigma: f64,
    /// Cap for third-party latency, ms.
    pub third_party_max_ms: f64,
}

impl Default for OriginConfig {
    fn default() -> Self {
        OriginConfig {
            first_byte_mean_ms: 14.0,
            first_byte_sigma: 0.5,
            first_byte_max_ms: 46.0,
            third_party_mean_ms: 120.0,
            third_party_sigma: 0.8,
            third_party_max_ms: 600.0,
        }
    }
}

/// Is this a third-party (ad/tracker/widget) domain? The workload
/// generator names them with a `thirdparty` prefix.
fn is_third_party(domain: &str) -> bool {
    domain.starts_with("thirdparty")
}

/// Stats an origin accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OriginStats {
    /// Requests served with a registered object.
    pub hits: u64,
    /// Requests for unknown paths (served 404).
    pub misses: u64,
    /// Body bytes served.
    pub bytes_served: u64,
}

/// The set of origin servers for an experiment (one logical server per
/// domain; a single struct suffices because the registry is keyed by
/// domain).
#[derive(Debug)]
pub struct OriginServers {
    cfg: OriginConfig,
    objects: HashMap<(String, String), (u64, ObjectKind)>,
    stats: OriginStats,
}

impl OriginServers {
    /// Empty origin set.
    pub fn new(cfg: OriginConfig) -> OriginServers {
        OriginServers {
            cfg,
            objects: HashMap::new(),
            stats: OriginStats::default(),
        }
    }

    /// Register every object of `page` so its URLs resolve.
    pub fn register_page(&mut self, page: &WebPage) {
        for o in &page.objects {
            self.objects
                .insert((o.domain.clone(), o.path.clone()), (o.size, o.kind));
        }
    }

    /// Number of registered objects.
    pub fn registered(&self) -> usize {
        self.objects.len()
    }

    /// Serving counters.
    pub fn stats(&self) -> OriginStats {
        self.stats
    }

    /// Handle one request: returns the first-byte latency to apply and the
    /// response to send after it.
    pub fn handle(&mut self, req: &Request, rng: &mut DetRng) -> (SimDuration, Response) {
        let (mean, sigma, cap) = if is_third_party(&req.host) {
            (
                self.cfg.third_party_mean_ms,
                self.cfg.third_party_sigma,
                self.cfg.third_party_max_ms,
            )
        } else {
            (
                self.cfg.first_byte_mean_ms,
                self.cfg.first_byte_sigma,
                self.cfg.first_byte_max_ms,
            )
        };
        let latency_ms = rng.lognormal_mean(mean, sigma).min(cap);
        let latency = SimDuration::from_secs_f64(latency_ms / 1e3);
        match self.objects.get(&(req.host.clone(), req.path.clone())) {
            Some(&(size, kind)) => {
                self.stats.hits += 1;
                self.stats.bytes_served += size;
                let body = Payload::body(size);
                let resp = Response::ok(body).with_header("Content-Type", content_type(kind));
                (latency, resp)
            }
            None => {
                self.stats.misses += 1;
                let resp = Response {
                    status: 404,
                    headers: vec![("Content-Type".into(), "text/plain".into())],
                    body: Payload::from("not found"),
                };
                (latency, resp)
            }
        }
    }
}

fn content_type(kind: ObjectKind) -> &'static str {
    match kind {
        ObjectKind::Html => "text/html",
        ObjectKind::Script => "application/javascript",
        ObjectKind::Stylesheet => "text/css",
        ObjectKind::Image => "image/png",
        ObjectKind::Other => "application/json",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_workload::{synthesize, SiteSpec};

    fn servers_with_site(index: u32) -> (OriginServers, WebPage) {
        let spec = SiteSpec::by_index(index).unwrap();
        let page = synthesize(spec, &mut DetRng::new(1));
        let mut o = OriginServers::new(OriginConfig::default());
        o.register_page(&page);
        (o, page)
    }

    #[test]
    fn serves_registered_objects() {
        let (mut o, page) = servers_with_site(5);
        let obj = page
            .objects
            .iter()
            .find(|ob| !ob.domain.starts_with("thirdparty"))
            .expect("first-party object exists");
        let req = Request::get(obj.domain.clone(), obj.path.clone());
        let (latency, resp) = o.handle(&req, &mut DetRng::new(2));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), obj.size);
        assert!(latency <= SimDuration::from_millis(46), "first-party cap");
        assert_eq!(o.stats().hits, 1);
    }

    #[test]
    fn third_party_domains_are_slower() {
        let mut o = OriginServers::new(OriginConfig::default());
        let mut rng = DetRng::new(5);
        let fast = Request::get("cdn2.site1.example", "/x");
        let slow = Request::get("thirdparty1-s1.example", "/x");
        let n = 2_000;
        let mean = |o: &mut OriginServers, req: &Request, rng: &mut DetRng| -> f64 {
            (0..n)
                .map(|_| o.handle(req, rng).0.as_secs_f64() * 1e3)
                .sum::<f64>()
                / n as f64
        };
        let fast_ms = mean(&mut o, &fast, &mut rng);
        let slow_ms = mean(&mut o, &slow, &mut rng);
        assert!(
            slow_ms > 3.0 * fast_ms,
            "third party {slow_ms} vs cdn {fast_ms}"
        );
        assert!(slow_ms <= 600.0);
    }

    #[test]
    fn unknown_path_is_404() {
        let (mut o, _) = servers_with_site(5);
        let req = Request::get("nowhere.example", "/missing");
        let (_, resp) = o.handle(&req, &mut DetRng::new(2));
        assert_eq!(resp.status, 404);
        assert_eq!(o.stats().misses, 1);
    }

    #[test]
    fn latency_distribution_matches_fig8() {
        let (mut o, page) = servers_with_site(1);
        let obj = &page.objects[1];
        let req = Request::get(obj.domain.clone(), obj.path.clone());
        let mut rng = DetRng::new(3);
        let samples: Vec<f64> = (0..5_000)
            .map(|_| o.handle(&req, &mut rng).0.as_secs_f64() * 1e3)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!((mean - 14.0).abs() < 2.5, "mean {mean} ≈ 14 ms");
        assert!(max <= 46.0, "max {max} capped at 46 ms");
    }

    #[test]
    fn content_types_by_kind() {
        assert_eq!(content_type(ObjectKind::Html), "text/html");
        assert_eq!(content_type(ObjectKind::Image), "image/png");
    }

    #[test]
    fn registry_covers_whole_page() {
        let (o, page) = servers_with_site(15);
        // Distinct (domain, path) pairs (paths are unique per page).
        assert_eq!(o.registered(), page.object_count());
    }
}
