//! Visit lifecycle: the schedule walker, per-visit page-load state, the
//! browser's parse/execute timer, and the inter-visit beacon cadence.
//!
//! A [`Visits`] owns everything the *browser user* side of the testbed
//! tracks — which site is loading, which objects the in-progress
//! [`PageLoad`] still owes, and the background traffic (§5.7 beacons)
//! that fills think time once a page finishes. The protocol sides report
//! object progress through the tag helpers so stale generations and
//! beacon responses never perturb page metrics.

use crate::config::{ExperimentConfig, PageSource};
use crate::results::{RunResult, VisitResult};
use crate::world::{Event, World};
use spdyier_browser::PageLoad;
use spdyier_http::Request;
use spdyier_origin::OriginServers;
use spdyier_sim::{EventId, SimTime};
use spdyier_trace::{TraceEvent, TraceLevel};
use spdyier_workload::{synthesize, ObjectId, SiteSpec, WebPage};
use std::fmt::Write as _;
use std::sync::Arc;

/// Sentinel tag for beacon (non-page) requests.
pub(crate) const BEACON_TAG: u64 = u64::MAX;

/// True when the (possibly 32-bit-masked) tag names a page object rather
/// than the beacon sentinel.
pub(crate) fn is_page_tag(tag: u64) -> bool {
    (tag & 0xFFFF_FFFF) != (BEACON_TAG & 0xFFFF_FFFF)
}

/// Browser-side visit state for one run.
pub(crate) struct Visits {
    /// Monotone generation; bumped per visit so stale completions from an
    /// abandoned load can be recognized and ignored.
    pub visit_gen: u64,
    /// Index of the in-progress visit in the schedule.
    pub current_visit: Option<usize>,
    /// The in-progress page load.
    pub load: Option<PageLoad>,
    /// Carcass of the previous visit's load, kept so its per-object
    /// phase/timing buffers are reused instead of re-allocated — a sweep
    /// cell runs many visits back to back.
    spare_load: Option<PageLoad>,
    /// The page being loaded (shared with [`Visits::load`], not cloned).
    pub current_page: Option<Arc<WebPage>>,
    /// Per-host rendered browser header sets; the handful of domains a
    /// run touches makes a linear scan cheaper than rebuilding the
    /// cookie and header strings on every request.
    header_cache: Vec<(String, Vec<(String, String)>)>,
    /// Armed browser parse/execute timer.
    pub browser_timer: Option<EventId>,
    /// When the next scheduled visit begins (beacons must not outlive the
    /// gap).
    pub next_visit_start: SimTime,
    /// Root domain of the last finished page (beacon destination).
    pub beacon_domain: Option<String>,
    /// Beacons already fired in the current inter-visit gap.
    pub beacons_fired: u32,
}

impl Visits {
    /// Fresh pre-first-visit state.
    pub fn new() -> Visits {
        Visits {
            visit_gen: 0,
            current_visit: None,
            load: None,
            spare_load: None,
            current_page: None,
            header_cache: Vec::new(),
            browser_timer: None,
            next_visit_start: SimTime::MAX,
            beacon_domain: None,
            beacons_fired: 0,
        }
    }

    // ------------------------------------------------------------------
    // Object-progress reporting (called by the protocol sides)
    // ------------------------------------------------------------------

    /// Record a request issue for a live page object.
    pub fn note_requested(&mut self, world: &mut World, obj: ObjectId) {
        if let Some(load) = self.load.as_mut() {
            load.note_requested(obj, world.now);
            if let Some(visit) = self.current_visit {
                world.tracer.emit(
                    world.now,
                    TraceEvent::ObjectRequested {
                        visit,
                        object: obj.0,
                    },
                );
            }
        }
    }

    /// Record first response byte for a tagged object, unless the tag is a
    /// beacon or from a stale generation.
    pub fn note_first_byte_tagged(&mut self, world: &mut World, generation: u64, tag: u64) {
        if generation == self.visit_gen && is_page_tag(tag) {
            if let Some(load) = self.load.as_mut() {
                load.note_first_byte(ObjectId(tag as u32), world.now);
                if let Some(visit) = self.current_visit {
                    world.tracer.emit(
                        world.now,
                        TraceEvent::ObjectFirstByte {
                            visit,
                            object: tag as u32,
                        },
                    );
                }
            }
        }
    }

    /// Record completion for a tagged object, unless the tag is a beacon
    /// or from a stale generation.
    pub fn note_complete_tagged(&mut self, world: &mut World, generation: u64, tag: u64) {
        if generation == self.visit_gen && is_page_tag(tag) {
            if let Some(load) = self.load.as_mut() {
                load.note_complete(ObjectId(tag as u32), world.now);
                if let Some(visit) = self.current_visit {
                    world.tracer.emit(
                        world.now,
                        TraceEvent::ObjectComplete {
                            visit,
                            object: tag as u32,
                        },
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Requests
    // ------------------------------------------------------------------

    /// Build the on-the-wire request for a tagged object (or beacon).
    /// `None` for stale generations — the caller drops the request.
    pub fn request_for(&mut self, generation: u64, tag: u64) -> Option<Request> {
        let (host, path) = if tag == BEACON_TAG {
            (self.beacon_domain.clone()?, "/beacon.gif".to_string())
        } else {
            if generation != self.visit_gen {
                return None;
            }
            let page = self.current_page.as_ref()?;
            let obj = page.objects.get(tag as usize)?;
            (obj.domain.clone(), obj.path.clone())
        };
        let headers = self.cached_headers(&host).to_vec();
        let mut req = Request::get(host, path);
        req.headers = headers;
        Some(req)
    }

    /// The standard browser header set for `host`, rendered once per host
    /// and served from a per-run cache thereafter.
    pub fn cached_headers(&mut self, host: &str) -> &[(String, String)] {
        if let Some(i) = self.header_cache.iter().position(|(h, _)| h == host) {
            return &self.header_cache[i].1;
        }
        self.header_cache
            .push((host.to_string(), browser_headers(host)));
        &self.header_cache.last().expect("just pushed").1
    }

    // ------------------------------------------------------------------
    // Browser timer
    // ------------------------------------------------------------------

    /// Re-arm the browser parse/execute timer from the load's next
    /// deadline.
    pub fn reschedule_browser_timer(&mut self, world: &mut World) {
        if let Some(old) = self.browser_timer.take() {
            world.queue.cancel(old);
        }
        if let Some(load) = self.load.as_ref() {
            if let Some(at) = load.next_timer() {
                let id = world.queue.schedule(at.max(world.now), Event::BrowserTimer);
                self.browser_timer = Some(id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Visit lifecycle
    // ------------------------------------------------------------------

    /// Begin visit `visit`: abandon any incomplete load, synthesize (or
    /// look up) the page, register it with the origins, and arm the
    /// abandon deadline. The caller assigns ready objects and services
    /// pipes afterwards.
    pub fn start_visit(
        &mut self,
        world: &mut World,
        cfg: &ExperimentConfig,
        origin: &mut OriginServers,
        result: &mut RunResult,
        visit: usize,
    ) {
        if self.load.is_some() {
            self.finish_visit(world, cfg, result, false);
        }
        self.visit_gen += 1;
        self.current_visit = Some(visit);
        let site = cfg.schedule.order[visit];
        let next = cfg
            .schedule
            .visits()
            .nth(visit + 1)
            .map(|(t, _)| t)
            .unwrap_or(cfg.schedule.horizon());
        self.next_visit_start = next;
        let page = match &cfg.pages {
            PageSource::Table1 => {
                let spec = SiteSpec::by_index(site).expect("schedule indices are valid");
                let mut rng = world
                    .rng_pages
                    .fork_indexed("page", (u64::from(site) << 16) | self.visit_gen);
                synthesize(spec, &mut rng)
            }
            PageSource::Custom(pages) => pages
                .get((site as usize).saturating_sub(1))
                .expect("schedule index within custom pages")
                .clone(),
        };
        origin.register_page(&page);
        world.tracer.emit(
            world.now,
            TraceEvent::VisitStart {
                visit,
                site: site as usize,
            },
        );
        let page = Arc::new(page);
        self.current_page = Some(Arc::clone(&page));
        self.load = Some(match self.spare_load.take() {
            Some(mut spare) => {
                spare.reset(page, world.now);
                spare
            }
            None => PageLoad::new(page, world.now),
        });
        world.queue.schedule(
            world.now + cfg.visit_timeout,
            Event::VisitDeadline {
                visit,
                generation: self.visit_gen,
            },
        );
    }

    /// True once the in-progress load has finished every object.
    pub fn load_complete(&self) -> bool {
        self.load.as_ref().is_some_and(|l| l.is_complete())
    }

    /// Close out the in-progress visit (completed or abandoned), record
    /// its [`VisitResult`], and arm the first inter-visit beacon.
    pub fn finish_visit(
        &mut self,
        world: &mut World,
        cfg: &ExperimentConfig,
        result: &mut RunResult,
        completed: bool,
    ) {
        let Some(load) = self.load.take() else {
            return;
        };
        let Some(visit) = self.current_visit.take() else {
            self.spare_load = Some(load);
            return;
        };
        if let Some(old) = self.browser_timer.take() {
            world.queue.cancel(old);
        }
        let site = cfg.schedule.order[visit];
        let start = load.start_time();
        let onload = load.onload_time();
        let plt_ms = match onload {
            Some(t) => t.saturating_since(start).as_secs_f64() * 1e3,
            None => world.now.saturating_since(start).as_secs_f64() * 1e3,
        };
        if world.tracer.active(TraceLevel::Lifecycle) {
            let end = onload.unwrap_or(world.now);
            let plt_us = end.saturating_since(start).as_micros();
            world.tracer.emit(
                world.now,
                TraceEvent::VisitEnd {
                    visit,
                    completed: completed && onload.is_some(),
                    plt_us,
                },
            );
            world.tracer.observe("visit.plt_ms", plt_us / 1_000);
        }
        let page = load.page();
        result.visits.push(VisitResult {
            site,
            start,
            onload,
            plt_ms,
            completed: completed && onload.is_some(),
            object_timings: load.timings().to_vec(),
            object_count: page.object_count(),
            total_bytes: page.total_bytes(),
        });
        self.beacon_domain = Some(page.root().domain.clone());
        self.spare_load = Some(load);
        self.beacons_fired = 0;
        if let Some(beacon) = cfg.beacon {
            if beacon.max_per_visit > 0 {
                world
                    .queue
                    .schedule(world.now + beacon.interval, Event::Beacon);
            }
        }
    }

    /// After firing a beacon, when the next one is due (if any): the
    /// regular cadence up to `max_per_visit`, then the optional late
    /// straggler (§5.7's deep mid-interval burst).
    pub fn next_beacon_at(&self, cfg: &ExperimentConfig, now: SimTime) -> Option<SimTime> {
        let beacon = cfg.beacon?;
        let next = if self.beacons_fired < beacon.max_per_visit {
            Some(now + beacon.interval)
        } else if self.beacons_fired == beacon.max_per_visit {
            beacon.late_gap.map(|g| now + g)
        } else {
            None
        };
        next.filter(|&t| t < self.next_visit_start)
    }
}

/// The standard header set a 2013 Chrome sends with every request. HTTP
/// pays these bytes on the uplink per request; SPDY's stateful header
/// compression collapses the repetition — one of its documented
/// advantages.
pub(crate) fn browser_headers(host: &str) -> Vec<(String, String)> {
    let mut cookie = String::with_capacity(192);
    cookie.push_str("sid=");
    let h = host
        .as_bytes()
        .iter()
        .fold(0u64, |a, &b| a.wrapping_mul(131).wrapping_add(b as u64));
    for i in 0..10u64 {
        // write! appends in place; format! would allocate a temporary
        // per segment on what used to be a per-request path.
        let _ = write!(
            cookie,
            "{:016x}",
            h.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15))
        );
    }
    vec![
        (
            "user-agent".to_string(),
            "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.11 (KHTML, like Gecko) Chrome/23.0.1271.97 Safari/537.11".to_string(),
        ),
        (
            "accept".to_string(),
            "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8".to_string(),
        ),
        ("accept-encoding".to_string(), "gzip,deflate,sdch".to_string()),
        ("accept-language".to_string(), "en-US,en;q=0.8".to_string()),
        ("cookie".to_string(), cookie),
    ]
}
