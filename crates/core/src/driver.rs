//! The testbed driver: a discrete-event simulation wiring the browser, the
//! access network (RRC-gated cellular or WiFi), the protocol proxies, the
//! wired cloud path, and the origin servers — all over the sans-IO TCP of
//! `spdyier-tcp`.
//!
//! Topology (paper Fig. 2):
//!
//! ```text
//! device (browser) ══ access path (3G/LTE/WiFi) ══ proxy ══ wired ══ origins
//! ```
//!
//! Every leg is a real [`TcpConnection`] pair; packets pay serialisation,
//! queueing, propagation, jitter, and — on cellular — RRC promotion delays.

use crate::config::{AccessPath, ExperimentConfig, PageSource, ProtocolMode};
use crate::results::{ConnTraceResult, RunResult, VisitResult};
use bytes::Bytes;
use spdyier_browser::PageLoad;
use spdyier_http::{
    Acquire, ConnectionPool, HttpClientConn, HttpServerConn, PoolConfig, PoolConnId, Request,
};
use spdyier_net::{presets as net_presets, Direction, DuplexPath, LinkVerdict};
use spdyier_origin::{OriginConfig, OriginServers};
use spdyier_proxy::{
    ClientConnId, FetchId, HttpProxyCore, HttpProxyOutput, SpdyProxyCore, SpdyProxyOutput,
};
use spdyier_sim::{DetRng, EventId, EventQueue, SimDuration, SimTime};
use spdyier_spdy::{Role, SpdyConfig, SpdyEvent, SpdySession};
use spdyier_tcp::{Segment, TcpConfig, TcpConnection, TcpMetricsCache};
use spdyier_workload::{synthesize, ObjectId, SiteSpec, WebPage};
use std::collections::{HashMap, VecDeque};

/// Sentinel tag for beacon (non-page) requests on HTTP connections.
const BEACON_TAG: u64 = u64::MAX;

#[derive(Debug)]
enum Event {
    Deliver {
        pipe: usize,
        to_b: bool,
        seg: Segment,
    },
    Timer {
        pipe: usize,
        b_side: bool,
    },
    BrowserTimer,
    Visit(usize),
    VisitDeadline {
        visit: usize,
        generation: u64,
    },
    OriginReply {
        pipe: usize,
        bytes: Bytes,
    },
    SslReady {
        pipe: usize,
    },
    PingTick,
    Beacon,
    IdleSweep,
    EndRun,
}

/// What a client↔proxy or proxy↔origin pipe is used for.
enum PipeRole {
    /// One HTTP persistent connection, device↔proxy.
    HttpClient {
        pool_id: PoolConnId,
        http: HttpClientConn,
        /// `(generation, object-or-beacon)` requests in flight, FIFO
        /// (length 1 without pipelining).
        outstanding: VecDeque<(u64, u64)>,
        /// Requests awaiting connection establishment / a pipeline slot.
        pending: VecDeque<(u64, u64)>,
        got_first_byte: bool,
        /// Fetch ids owed by the proxy on this connection, FIFO.
        fetch_queue: VecDeque<FetchId>,
        /// Last instant a request was issued or a response completed.
        last_use: SimTime,
        retired: bool,
    },
    /// One SPDY session, device↔proxy. Session state lives in
    /// [`Testbed::spdy_clients`] / [`Testbed::spdy_proxies`] at `idx`.
    SpdyClient { idx: usize },
    /// One HTTP persistent connection, proxy↔origin.
    Origin {
        domain: String,
        http: HttpClientConn,
        server: HttpServerConn,
        current: Option<FetchId>,
        pending: VecDeque<(FetchId, Request)>,
        got_first_byte: bool,
    },
    /// Placeholder while a role is temporarily detached for processing.
    Detached,
}

struct Pipe {
    a: TcpConnection,
    b: TcpConnection,
    /// True: device↔proxy over the access path; false: proxy↔origin over
    /// the wired path.
    over_access: bool,
    role: PipeRole,
    a_timer: Option<EventId>,
    b_timer: Option<EventId>,
    /// Staged application bytes awaiting TCP send-buffer space.
    out_a: VecDeque<Bytes>,
    out_b: VecDeque<Bytes>,
    opened: SimTime,
    label: String,
    closed: bool,
}

struct SpdyClientState {
    session: SpdySession,
    pipe: usize,
    usable: bool,
    /// SSL-setup completion event scheduled (so we only schedule once).
    ssl_scheduled: bool,
    /// stream → (generation, object-or-beacon, first_byte_seen)
    streams: HashMap<u32, (u64, u64, bool)>,
}

/// The assembled testbed for one run.
pub struct Testbed {
    cfg: ExperimentConfig,
    now: SimTime,
    queue: EventQueue<Event>,
    rng_net: DetRng,
    rng_pages: DetRng,
    rng_origin: DetRng,
    access: AccessPath,
    wired: DuplexPath,
    pipes: Vec<Pipe>,
    dirty: VecDeque<usize>,
    pool: ConnectionPool,
    http_proxy: HttpProxyCore,
    spdy_clients: Vec<SpdyClientState>,
    spdy_proxies: Vec<SpdyProxyCore>,
    /// fetch → owning SPDY session index (HTTP fetches resolve via
    /// the HTTP proxy core itself).
    spdy_fetch_owner: HashMap<FetchId, usize>,
    /// fetch → `(generation, object-or-beacon)` for late-binding delivery.
    spdy_fetch_tag: HashMap<FetchId, (u64, u64)>,
    /// `(session, stream)` of a late-bound response → `(owner, fetch)`.
    late_stream_fetch: HashMap<(usize, u32), (usize, FetchId)>,
    origin: OriginServers,
    metrics_cache: TcpMetricsCache,
    // Current visit.
    visit_gen: u64,
    current_visit: Option<usize>,
    load: Option<PageLoad>,
    current_page: Option<WebPage>,
    browser_timer: Option<EventId>,
    next_visit_start: SimTime,
    beacon_domain: Option<String>,
    /// Beacons already fired for the current inter-visit gap.
    beacons_fired: u32,
    spdy_rr: usize,
    /// Re-entrancy guard: assign_ready_objects can be reached from within
    /// itself via flush_pending_requests; inner calls must not act on a
    /// stale ready snapshot.
    assigning: bool,
    last_inflight: f64,
    result: RunResult,
    ended: bool,
}

/// Owner of an origin fetch.
#[derive(Debug, Clone, Copy)]
enum FetchOwner {
    Http,
    Spdy(#[allow(dead_code)] usize),
}

impl Testbed {
    /// Build a testbed for `cfg`.
    #[allow(clippy::field_reassign_with_default)]
    pub fn new(cfg: ExperimentConfig) -> Testbed {
        let root = DetRng::new(cfg.seed);
        let mut access = cfg.network.build();
        if let Some(promotion) = cfg.rrc_promotion_override {
            if let Some(radio) = access.radio_mut() {
                radio.set_promotion(promotion);
            }
        }
        if let Some(loss) = cfg.access_loss {
            access.set_loss(loss);
        }
        let mut result = RunResult::default();
        result.protocol = cfg.protocol.label().to_string();
        result.network = cfg.network.label().to_string();
        result.seed = cfg.seed;
        Testbed {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng_net: root.fork("net"),
            rng_pages: root.fork("pages"),
            rng_origin: root.fork("origin"),
            access,
            wired: net_presets::cloud_wired(2),
            pipes: Vec::new(),
            dirty: VecDeque::new(),
            pool: ConnectionPool::new(PoolConfig::default()),
            http_proxy: HttpProxyCore::new(),
            spdy_clients: Vec::new(),
            spdy_proxies: Vec::new(),
            spdy_fetch_owner: HashMap::new(),
            spdy_fetch_tag: HashMap::new(),
            late_stream_fetch: HashMap::new(),
            origin: OriginServers::new(OriginConfig::default()),
            metrics_cache: TcpMetricsCache::new(),
            visit_gen: 0,
            current_visit: None,
            load: None,
            current_page: None,
            browser_timer: None,
            next_visit_start: SimTime::MAX,
            beacon_domain: None,
            beacons_fired: 0,
            spdy_rr: 0,
            assigning: false,
            last_inflight: -1.0,
            result,
            ended: false,
            cfg,
        }
    }

    /// Execute the run to completion.
    pub fn run(mut self) -> RunResult {
        self.start();
        let mut guard: u64 = 0;
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
            if self.ended {
                break;
            }
            guard += 1;
            if guard > 200_000_000 {
                panic!("event budget exhausted — livelock?");
            }
        }
        self.finalize()
    }

    fn start(&mut self) {
        let visits: Vec<(SimTime, u32)> = self.cfg.schedule.visits().collect();
        for (i, (t, _)) in visits.iter().enumerate() {
            self.queue.schedule(*t, Event::Visit(i));
        }
        let end = self.cfg.schedule.horizon() + self.cfg.visit_timeout;
        self.queue.schedule(end, Event::EndRun);
        if let Some(interval) = self.cfg.keepalive_ping {
            self.queue
                .schedule(SimTime::ZERO + interval, Event::PingTick);
        }
        if self.cfg.http_idle_close.is_some() && matches!(self.cfg.protocol, ProtocolMode::Http) {
            self.queue.schedule(SimTime::from_secs(5), Event::IdleSweep);
        }
        if let ProtocolMode::Spdy { connections, .. } = self.cfg.protocol {
            for _ in 0..connections {
                self.open_spdy_session();
            }
        }
    }

    // ==================================================================
    // Pipe plumbing
    // ==================================================================

    fn wired_tcp_config(&self) -> TcpConfig {
        TcpConfig {
            mss: 1460,
            recv_buffer: 1024 * 1024,
            send_buffer: 256 * 1024,
            trace: false,
            ..self.cfg.tcp
        }
    }

    fn new_pipe(&mut self, over_access: bool, role: PipeRole, label: String) -> usize {
        let tcp_cfg = if over_access {
            TcpConfig {
                trace: self.cfg.record_traces,
                ..self.cfg.tcp
            }
        } else {
            self.wired_tcp_config()
        };
        let mut a = TcpConnection::client(tcp_cfg);
        let mut b = TcpConnection::server(tcp_cfg);
        if self.cfg.cache_metrics {
            let (a_key, b_key) = self.cache_keys(over_access, &role);
            if let Some(m) = self.metrics_cache.lookup(&a_key) {
                a.apply_cached_metrics(m);
            }
            if let Some(m) = self.metrics_cache.lookup(&b_key) {
                b.apply_cached_metrics(m);
            }
        }
        a.connect(self.now);
        let idx = self.pipes.len();
        self.pipes.push(Pipe {
            a,
            b,
            over_access,
            role,
            a_timer: None,
            b_timer: None,
            out_a: VecDeque::new(),
            out_b: VecDeque::new(),
            opened: self.now,
            label,
            closed: false,
        });
        if over_access {
            self.result.connections_opened += 1;
        }
        if matches!(self.pipes[idx].role, PipeRole::HttpClient { .. }) {
            self.http_proxy
                .on_client_connected(ClientConnId(idx as u64));
        }
        self.mark_dirty(idx);
        idx
    }

    fn cache_keys(&self, over_access: bool, role: &PipeRole) -> (String, String) {
        if over_access {
            ("proxy".to_string(), "device".to_string())
        } else if let PipeRole::Origin { domain, .. } = role {
            (format!("origin:{domain}"), "proxy".to_string())
        } else {
            ("wired".to_string(), "wired".to_string())
        }
    }

    fn mark_dirty(&mut self, idx: usize) {
        if !self.dirty.contains(&idx) {
            self.dirty.push_back(idx);
        }
    }

    /// Service all dirty pipes to quiescence.
    fn service_all(&mut self) {
        let mut guard = 0;
        while let Some(idx) = self.dirty.pop_front() {
            guard += 1;
            assert!(guard < 1_000_000, "pipe servicing livelock");
            if self.pipes[idx].closed {
                continue;
            }
            self.service_reads(idx);
            self.flush_staged(idx);
            self.drain_tx(idx);
            self.resched_timers(idx);
            self.maybe_mark_closed(idx);
        }
        self.sample_inflight();
        self.check_visit_complete();
    }

    fn service_reads(&mut self, idx: usize) {
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000, "read loop livelock on pipe {idx}");
            if let Some(data) = self.pipes[idx].a.read() {
                self.handle_a_read(idx, data);
                continue;
            }
            if let Some(data) = self.pipes[idx].b.read() {
                self.handle_b_read(idx, data);
                continue;
            }
            break;
        }
        // Establishment-driven work: flush pending requests.
        self.flush_pending_requests(idx);
        // SPDY SSL-ready detection.
        self.detect_ssl_ready(idx);
        // Peer-close handling for retired HTTP pipes.
        self.handle_close_handshake(idx);
    }

    fn take_role(&mut self, idx: usize) -> PipeRole {
        std::mem::replace(&mut self.pipes[idx].role, PipeRole::Detached)
    }

    fn put_role(&mut self, idx: usize, role: PipeRole) {
        self.pipes[idx].role = role;
    }

    // ------------------------------------------------------------------
    // a-side reads (device for access pipes; proxy for origin pipes)
    // ------------------------------------------------------------------

    fn handle_a_read(&mut self, idx: usize, data: Bytes) {
        let mut role = self.take_role(idx);
        match &mut role {
            PipeRole::HttpClient {
                http,
                outstanding,
                got_first_byte,
                fetch_queue,
                pool_id,
                last_use,
                ..
            } => {
                if let Some(&(generation, tag)) = outstanding.front() {
                    if !*got_first_byte && !data.is_empty() {
                        *got_first_byte = true;
                        if generation == self.visit_gen && tag != BEACON_TAG {
                            if let Some(load) = self.load.as_mut() {
                                load.note_first_byte(ObjectId(tag as u32), self.now);
                            }
                        }
                    }
                }
                let done = http.on_bytes(&data).unwrap_or_default();
                let pool_id = *pool_id;
                for (tag, _resp) in done {
                    outstanding.pop_front();
                    *got_first_byte = false;
                    *last_use = self.now;
                    let generation = tag >> 32;
                    let obj = tag & 0xFFFF_FFFF;
                    if let Some(fetch) = fetch_queue.pop_front() {
                        self.http_proxy.on_client_received(fetch, self.now);
                    }
                    if outstanding.is_empty() {
                        self.pool.release(pool_id);
                    }
                    if generation == self.visit_gen && obj != (BEACON_TAG & 0xFFFF_FFFF) {
                        if let Some(load) = self.load.as_mut() {
                            load.note_complete(ObjectId(obj as u32), self.now);
                        }
                    }
                }
            }
            PipeRole::SpdyClient { idx: sidx } => {
                let sidx = *sidx;
                self.put_role(idx, role);
                self.handle_spdy_client_bytes(sidx, data);
                return;
            }
            PipeRole::Origin {
                http,
                current,
                got_first_byte,
                ..
            } => {
                if let Some(fetch) = *current {
                    if !*got_first_byte && !data.is_empty() {
                        *got_first_byte = true;
                        self.on_fetch_first_byte(fetch);
                    }
                }
                let done = http.on_bytes(&data).unwrap_or_default();
                for (tag, resp) in done {
                    *current = None;
                    *got_first_byte = false;
                    self.on_fetch_complete(FetchId(tag), resp);
                }
            }
            PipeRole::Detached => {}
        }
        self.put_role(idx, role);
        // Completion may unblock new requests / next pending fetch.
        self.issue_next_origin_fetch(idx);
        self.assign_ready_objects();
        self.reschedule_browser_timer();
    }

    fn handle_spdy_client_bytes(&mut self, sidx: usize, data: Bytes) {
        let events = match self.spdy_clients[sidx].session.on_bytes(&data) {
            Ok(ev) => ev,
            Err(e) => {
                debug_assert!(false, "client session {sidx} frame error: {e}");
                return;
            }
        };
        let pipe = self.spdy_clients[sidx].pipe;
        for ev in events {
            match ev {
                SpdyEvent::Reply { stream_id, fin, .. } => {
                    if let Some(&(generation, tag, _)) =
                        self.spdy_clients[sidx].streams.get(&stream_id)
                    {
                        if generation == self.visit_gen && tag != BEACON_TAG {
                            if let Some(load) = self.load.as_mut() {
                                load.note_first_byte(ObjectId(tag as u32), self.now);
                            }
                        }
                        if let Some(e) = self.spdy_clients[sidx].streams.get_mut(&stream_id) {
                            e.2 = true;
                        }
                        if fin {
                            self.spdy_stream_done(sidx, stream_id);
                        }
                    }
                }
                SpdyEvent::Data {
                    stream_id,
                    payload,
                    fin,
                } => {
                    // Credit every stream (including server-pushed ones).
                    self.spdy_clients[sidx]
                        .session
                        .consume(stream_id, payload.len() as u32);
                    if let Some(&(generation, tag, first_seen)) =
                        self.spdy_clients[sidx].streams.get(&stream_id)
                    {
                        if !first_seen {
                            if generation == self.visit_gen && tag != BEACON_TAG {
                                if let Some(load) = self.load.as_mut() {
                                    load.note_first_byte(ObjectId(tag as u32), self.now);
                                }
                            }
                            if let Some(e) = self.spdy_clients[sidx].streams.get_mut(&stream_id) {
                                e.2 = true;
                            }
                        }
                        if fin {
                            self.spdy_stream_done(sidx, stream_id);
                        }
                    }
                }
                SpdyEvent::StreamOpened {
                    stream_id, headers, ..
                } => {
                    // A late-bound response arrives on a server-initiated
                    // stream tagged with the original request identity.
                    let get = |k: &str| {
                        headers
                            .iter()
                            .find(|(n, _)| n == k)
                            .and_then(|(_, v)| v.parse::<u64>().ok())
                    };
                    if let (Some(generation), Some(tag)) = (get("x-late-gen"), get("x-late-tag")) {
                        if tag != BEACON_TAG {
                            if generation == self.visit_gen {
                                if let Some(load) = self.load.as_mut() {
                                    load.note_first_byte(ObjectId(tag as u32), self.now);
                                }
                            }
                            self.spdy_clients[sidx]
                                .streams
                                .insert(stream_id, (generation, tag, true));
                        }
                    }
                }
                SpdyEvent::Ping(_) | SpdyEvent::Reset { .. } | SpdyEvent::Goaway => {}
            }
        }
        // consume() may have queued WINDOW_UPDATEs on the client session.
        self.pump_spdy_client_wire(sidx);
        self.mark_dirty(pipe);
        self.assign_ready_objects();
        self.reschedule_browser_timer();
    }

    fn spdy_stream_done(&mut self, sidx: usize, stream_id: u32) {
        let Some((generation, tag, _)) = self.spdy_clients[sidx].streams.remove(&stream_id) else {
            return;
        };
        if let Some((owner, fetch)) = self.late_stream_fetch.remove(&(sidx, stream_id)) {
            self.spdy_proxies[owner].on_client_received(fetch, self.now);
        } else if let Some(fetch) = self.spdy_proxies[sidx].fetch_for_stream(stream_id) {
            self.spdy_proxies[sidx].on_client_received(fetch, self.now);
        }
        if generation == self.visit_gen && tag != BEACON_TAG {
            if let Some(load) = self.load.as_mut() {
                load.note_complete(ObjectId(tag as u32), self.now);
            }
        }
    }

    // ------------------------------------------------------------------
    // b-side reads (proxy for access pipes; origin server for wired pipes)
    // ------------------------------------------------------------------

    fn handle_b_read(&mut self, idx: usize, data: Bytes) {
        let mut role = self.take_role(idx);
        match &mut role {
            PipeRole::HttpClient { .. } => {
                self.http_proxy
                    .on_client_bytes(ClientConnId(idx as u64), &data, self.now);
                self.put_role(idx, role);
                self.pump_http_proxy_outputs();
                return;
            }
            PipeRole::SpdyClient { idx: sidx } => {
                let sidx = *sidx;
                self.put_role(idx, role);
                self.spdy_proxies[sidx].on_client_bytes(&data, self.now);
                self.pump_spdy_proxy(sidx);
                return;
            }
            PipeRole::Origin { server, .. } => {
                let requests = server.on_bytes(&data).unwrap_or_default();
                self.put_role(idx, role);
                for req in requests {
                    let (latency, resp) = self.origin.handle(&req, &mut self.rng_origin);
                    self.queue.schedule(
                        self.now + latency,
                        Event::OriginReply {
                            pipe: idx,
                            bytes: resp.encode(),
                        },
                    );
                }
                return;
            }
            PipeRole::Detached => {}
        }
        self.put_role(idx, role);
    }

    // ------------------------------------------------------------------
    // Proxy output pumping
    // ------------------------------------------------------------------

    fn pump_http_proxy_outputs(&mut self) {
        while let Some(out) = self.http_proxy.poll_output() {
            match out {
                HttpProxyOutput::Fetch { fetch, request } => {
                    self.dispatch_fetch(FetchOwner::Http, fetch, request);
                }
                HttpProxyOutput::ToClient { conn, bytes, fetch } => {
                    let idx = conn.0 as usize;
                    if idx < self.pipes.len() && !self.pipes[idx].closed {
                        if let PipeRole::HttpClient { fetch_queue, .. } = &mut self.pipes[idx].role
                        {
                            fetch_queue.push_back(fetch);
                        }
                        self.pipes[idx].out_b.push_back(bytes);
                        self.mark_dirty(idx);
                    }
                }
            }
        }
    }

    fn pump_spdy_proxy(&mut self, sidx: usize) {
        while let Some(out) = self.spdy_proxies[sidx].poll_output() {
            match out {
                SpdyProxyOutput::Fetch { fetch, request } => {
                    self.spdy_fetch_owner.insert(fetch, sidx);
                    if let Some(stream) = self.spdy_proxies[sidx].stream_of(fetch) {
                        if let Some(&(generation, tag, _)) =
                            self.spdy_clients[sidx].streams.get(&stream)
                        {
                            self.spdy_fetch_tag.insert(fetch, (generation, tag));
                        }
                    }
                    self.dispatch_fetch(FetchOwner::Spdy(sidx), fetch, request);
                }
            }
        }
        self.pump_spdy_proxy_wire(sidx);
    }

    /// Move SPDY proxy wire bytes into the pipe's staging queue while the
    /// staging queue is shallow — keeping priority decisions late.
    fn pump_spdy_proxy_wire(&mut self, sidx: usize) {
        let pipe = self.spdy_clients[sidx].pipe;
        if self.pipes[pipe].closed {
            return;
        }
        let mut staged: usize = self.pipes[pipe].out_b.iter().map(|b| b.len()).sum();
        let space = self.pipes[pipe].b.send_space() as usize;
        while staged < space.max(8 * 1024) {
            match self.spdy_proxies[sidx].poll_wire() {
                Some(wire) => {
                    staged += wire.len();
                    self.pipes[pipe].out_b.push_back(wire);
                }
                None => break,
            }
        }
        self.mark_dirty(pipe);
    }

    fn pump_spdy_client_wire(&mut self, sidx: usize) {
        let pipe = self.spdy_clients[sidx].pipe;
        if self.pipes[pipe].closed || !self.spdy_clients[sidx].usable {
            return;
        }
        while let Some(wire) = self.spdy_clients[sidx].session.poll_wire() {
            self.pipes[pipe].out_a.push_back(wire);
        }
        self.mark_dirty(pipe);
    }

    // ------------------------------------------------------------------
    // Origin fetch dispatch
    // ------------------------------------------------------------------

    fn dispatch_fetch(&mut self, owner: FetchOwner, fetch: FetchId, request: Request) {
        let _ = owner; // ownership resolved at completion via maps
        let domain = request.host.clone();
        // Prefer an idle established origin pipe to this domain.
        let mut idle: Option<usize> = None;
        let mut count = 0usize;
        let mut least_loaded: Option<(usize, usize)> = None;
        for (i, p) in self.pipes.iter().enumerate() {
            if p.closed {
                continue;
            }
            if let PipeRole::Origin {
                domain: d,
                current,
                pending,
                ..
            } = &p.role
            {
                if *d == domain {
                    count += 1;
                    let backlog = pending.len() + usize::from(current.is_some());
                    if backlog == 0 && idle.is_none() {
                        idle = Some(i);
                    }
                    if least_loaded.is_none_or(|(_, b)| backlog < b) {
                        least_loaded = Some((i, backlog));
                    }
                }
            }
        }
        let target = if let Some(i) = idle {
            i
        } else if count < 6 {
            self.new_pipe(
                false,
                PipeRole::Origin {
                    domain: domain.clone(),
                    http: HttpClientConn::new(),
                    server: HttpServerConn::new(),
                    current: None,
                    pending: VecDeque::new(),
                    got_first_byte: false,
                },
                format!("origin-{domain}"),
            )
        } else {
            least_loaded
                .expect("count >= 6 implies at least one pipe")
                .0
        };
        if let PipeRole::Origin { pending, .. } = &mut self.pipes[target].role {
            pending.push_back((fetch, request));
        }
        self.issue_next_origin_fetch(target);
        self.mark_dirty(target);
    }

    /// If the origin pipe is established and idle, issue its next pending
    /// fetch request.
    fn issue_next_origin_fetch(&mut self, idx: usize) {
        let established = self.pipes[idx].a.is_established();
        if !established {
            return;
        }
        let mut to_write: Option<Bytes> = None;
        if let PipeRole::Origin {
            http,
            current,
            pending,
            got_first_byte,
            ..
        } = &mut self.pipes[idx].role
        {
            if current.is_none() {
                if let Some((fetch, request)) = pending.pop_front() {
                    *current = Some(fetch);
                    *got_first_byte = false;
                    to_write = Some(http.send_request(fetch.0, &request));
                }
            }
        }
        if let Some(bytes) = to_write {
            self.pipes[idx].out_a.push_back(bytes);
            self.mark_dirty(idx);
        }
    }

    fn on_fetch_first_byte(&mut self, fetch: FetchId) {
        if let Some(&sidx) = self.spdy_fetch_owner.get(&fetch) {
            self.spdy_proxies[sidx].on_fetch_first_byte(fetch, self.now);
        } else {
            self.http_proxy.on_fetch_first_byte(fetch, self.now);
        }
    }

    fn on_fetch_complete(&mut self, fetch: FetchId, resp: spdyier_http::Response) {
        let Some(&sidx) = self.spdy_fetch_owner.get(&fetch) else {
            self.http_proxy.on_fetch_complete(fetch, resp, self.now);
            self.pump_http_proxy_outputs();
            return;
        };
        let late = matches!(
            self.cfg.protocol,
            ProtocolMode::Spdy {
                late_binding: true,
                ..
            }
        );
        if !late {
            self.spdy_proxies[sidx].on_fetch_complete(fetch, resp, self.now);
            self.pump_spdy_proxy_wire(sidx);
            return;
        }
        // §6.1 late binding: deliver on whichever session's connection can
        // transmit soonest (least send backlog), on a tagged
        // server-initiated stream.
        self.spdy_proxies[sidx].stamp_complete(fetch, self.now);
        let best = (0..self.spdy_clients.len())
            .filter(|&s| self.spdy_clients[s].usable)
            .min_by_key(|&s| {
                let pipe = self.spdy_clients[s].pipe;
                let staged: u64 = self.pipes[pipe].out_b.iter().map(|b| b.len() as u64).sum();
                self.pipes[pipe].b.send_queue_len()
                    + self.pipes[pipe].b.bytes_in_flight()
                    + staged
                    + self.spdy_proxies[s].session().pending_bytes()
            })
            .unwrap_or(sidx);
        let (generation, tag) = self
            .spdy_fetch_tag
            .get(&fetch)
            .copied()
            .unwrap_or((0, BEACON_TAG));
        let headers = vec![
            (":status".to_string(), resp.status.to_string()),
            ("x-late-gen".to_string(), generation.to_string()),
            ("x-late-tag".to_string(), tag.to_string()),
        ];
        let stream = self.spdy_proxies[best].push_with_headers(headers, resp.body, 2);
        self.late_stream_fetch.insert((best, stream), (sidx, fetch));
        self.pump_spdy_proxy_wire(best);
    }

    // ------------------------------------------------------------------
    // Staged writes, transmission, timers
    // ------------------------------------------------------------------

    fn flush_staged(&mut self, idx: usize) {
        // a side
        loop {
            let space = self.pipes[idx].a.send_space();
            if space == 0 {
                break;
            }
            let Some(mut front) = self.pipes[idx].out_a.pop_front() else {
                break;
            };
            if front.len() as u64 <= space {
                self.pipes[idx].a.write(front);
            } else {
                let part = front.split_to(space as usize);
                self.pipes[idx].a.write(part);
                self.pipes[idx].out_a.push_front(front);
            }
        }
        // b side
        loop {
            let space = self.pipes[idx].b.send_space();
            if space == 0 {
                break;
            }
            let Some(mut front) = self.pipes[idx].out_b.pop_front() else {
                // Refill from the SPDY proxy scheduler if applicable.
                if let PipeRole::SpdyClient { idx: sidx } = self.pipes[idx].role {
                    if let Some(wire) = self.spdy_proxies[sidx].poll_wire() {
                        self.pipes[idx].out_b.push_back(wire);
                        continue;
                    }
                }
                break;
            };
            if front.len() as u64 <= space {
                self.pipes[idx].b.write(front);
            } else {
                let part = front.split_to(space as usize);
                self.pipes[idx].b.write(part);
                self.pipes[idx].out_b.push_front(front);
            }
        }
    }

    fn drain_tx(&mut self, idx: usize) {
        for b_side in [false, true] {
            loop {
                let seg = {
                    let conn = if b_side {
                        &mut self.pipes[idx].b
                    } else {
                        &mut self.pipes[idx].a
                    };
                    conn.poll_transmit(self.now)
                };
                let Some(seg) = seg else { break };
                let over_access = self.pipes[idx].over_access;
                // Record retransmissions on the access path (the paper's
                // tcpdump vantage point). Pure-FIN retransmissions from
                // idle-socket teardown are tracked in per-connection stats
                // but excluded from the headline series: connection
                // teardown is not on any measured path.
                if over_access && seg.retransmit && (!seg.payload.is_empty() || seg.flags.syn) {
                    self.result.retransmissions.mark(self.now);
                }
                let dir = match (over_access, b_side) {
                    // access: a = device (sends Up), b = proxy (sends Down)
                    (true, false) => Direction::Up,
                    (true, true) => Direction::Down,
                    // wired: a = proxy, b = origin; direction naming is
                    // arbitrary on the symmetric wired path.
                    (false, false) => Direction::Up,
                    (false, true) => Direction::Down,
                };
                let verdict = if over_access {
                    self.access
                        .send(dir, self.now, seg.wire_size(), &mut self.rng_net)
                } else {
                    self.wired
                        .send(dir, self.now, seg.wire_size(), &mut self.rng_net)
                };
                match verdict {
                    LinkVerdict::Deliver(at) => {
                        self.queue.schedule(
                            at,
                            Event::Deliver {
                                pipe: idx,
                                to_b: !b_side,
                                seg,
                            },
                        );
                    }
                    LinkVerdict::Drop => {
                        // The packet evaporates; TCP recovery handles it.
                    }
                }
            }
        }
    }

    fn resched_timers(&mut self, idx: usize) {
        for b_side in [false, true] {
            let next = if b_side {
                self.pipes[idx].b.next_timer()
            } else {
                self.pipes[idx].a.next_timer()
            };
            let slot = if b_side {
                &mut self.pipes[idx].b_timer
            } else {
                &mut self.pipes[idx].a_timer
            };
            if let Some(old) = slot.take() {
                self.queue.cancel(old);
            }
            if let Some(at) = next {
                let id = self
                    .queue
                    .schedule(at.max(self.now), Event::Timer { pipe: idx, b_side });
                *slot = Some(id);
            }
        }
    }

    fn flush_pending_requests(&mut self, idx: usize) {
        if !self.pipes[idx].a.is_established() {
            return;
        }
        let mut issued_any = false;
        loop {
            let mut issue: Option<(u64, u64)> = None;
            if let PipeRole::HttpClient { http, pending, .. } = &mut self.pipes[idx].role {
                if http.can_send() {
                    if let Some(next) = pending.pop_front() {
                        issue = Some(next);
                    }
                }
            }
            let Some((generation, tag)) = issue else {
                break;
            };
            let request = self.request_for(generation, tag);
            if let Some(request) = request {
                let tagged = (generation << 32) | (tag & 0xFFFF_FFFF);
                let mut wire = None;
                if let PipeRole::HttpClient {
                    http,
                    outstanding,
                    got_first_byte,
                    last_use,
                    ..
                } = &mut self.pipes[idx].role
                {
                    if outstanding.is_empty() {
                        *got_first_byte = false;
                    }
                    outstanding.push_back((generation, tag));
                    *last_use = self.now;
                    wire = Some(http.send_request(tagged, &request));
                }
                if let Some(bytes) = wire {
                    self.pipes[idx].out_a.push_back(bytes);
                }
                if generation == self.visit_gen && tag != BEACON_TAG {
                    if let Some(load) = self.load.as_mut() {
                        load.note_requested(ObjectId(tag as u32), self.now);
                    }
                }
                issued_any = true;
            } else {
                // Stale request from an abandoned visit: skip it; release
                // the pool slot if nothing is in flight.
                let mut release: Option<PoolConnId> = None;
                if let PipeRole::HttpClient {
                    outstanding,
                    pool_id,
                    ..
                } = &self.pipes[idx].role
                {
                    if outstanding.is_empty() {
                        release = Some(*pool_id);
                    }
                }
                if let Some(pid) = release {
                    self.pool.release(pid);
                }
            }
        }
        if issued_any {
            self.mark_dirty(idx);
            // A completed handshake may unblock throttled opens.
            self.assign_ready_objects();
        }
        self.issue_next_origin_fetch(idx);
    }

    /// The standard header set a 2013 Chrome sends with every request.
    /// HTTP pays these bytes on the uplink per request; SPDY's stateful
    /// header compression collapses the repetition — one of its documented
    /// advantages.
    fn browser_headers(&self, host: &str) -> Vec<(String, String)> {
        let mut cookie = String::with_capacity(192);
        cookie.push_str("sid=");
        let h = host
            .as_bytes()
            .iter()
            .fold(0u64, |a, &b| a.wrapping_mul(131).wrapping_add(b as u64));
        for i in 0..10u64 {
            cookie.push_str(&format!(
                "{:016x}",
                h.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15))
            ));
        }
        vec![
            (
                "user-agent".to_string(),
                "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.11 (KHTML, like Gecko) Chrome/23.0.1271.97 Safari/537.11".to_string(),
            ),
            (
                "accept".to_string(),
                "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8".to_string(),
            ),
            ("accept-encoding".to_string(), "gzip,deflate,sdch".to_string()),
            ("accept-language".to_string(), "en-US,en;q=0.8".to_string()),
            ("cookie".to_string(), cookie),
        ]
    }

    fn request_for(&self, generation: u64, tag: u64) -> Option<Request> {
        let (host, path) = if tag == BEACON_TAG {
            (self.beacon_domain.clone()?, "/beacon.gif".to_string())
        } else {
            if generation != self.visit_gen {
                return None;
            }
            let page = self.current_page.as_ref()?;
            let obj = page.objects.get(tag as usize)?;
            (obj.domain.clone(), obj.path.clone())
        };
        let mut req = Request::get(host.clone(), path);
        req.headers = self.browser_headers(&host);
        Some(req)
    }

    fn detect_ssl_ready(&mut self, idx: usize) {
        if let PipeRole::SpdyClient { idx: sidx } = self.pipes[idx].role {
            if !self.spdy_clients[sidx].usable
                && self.pipes[idx].a.is_established()
                && !self.queue_has_ssl_ready(idx)
            {
                let delay = self
                    .access
                    .base_rtt()
                    .saturating_mul(u64::from(self.cfg.ssl_setup_rtts));
                self.queue
                    .schedule(self.now + delay, Event::SslReady { pipe: idx });
                // Mark so we only schedule once: use `usable` tri-state via
                // a sentinel — simplest is a dedicated flag:
                self.spdy_clients[sidx].ssl_scheduled = true;
            }
        }
    }

    fn queue_has_ssl_ready(&self, idx: usize) -> bool {
        if let PipeRole::SpdyClient { idx: sidx } = self.pipes[idx].role {
            self.spdy_clients[sidx].ssl_scheduled
        } else {
            false
        }
    }

    fn handle_close_handshake(&mut self, idx: usize) {
        let retired = matches!(
            self.pipes[idx].role,
            PipeRole::HttpClient { retired: true, .. }
        );
        if retired && self.pipes[idx].b.peer_closed() {
            self.pipes[idx].b.close(self.now);
            self.http_proxy.on_client_closed(ClientConnId(idx as u64));
        }
    }

    fn maybe_mark_closed(&mut self, idx: usize) {
        use spdyier_tcp::TcpState;
        let a_done = matches!(
            self.pipes[idx].a.state(),
            TcpState::Closed | TcpState::TimeWait
        );
        let b_done = matches!(
            self.pipes[idx].b.state(),
            TcpState::Closed | TcpState::TimeWait
        );
        if a_done && b_done && !self.pipes[idx].closed {
            self.harvest_pipe(idx);
        }
    }

    fn harvest_pipe(&mut self, idx: usize) {
        if self.pipes[idx].closed {
            return;
        }
        self.pipes[idx].closed = true;
        if let Some(t) = self.pipes[idx].a_timer.take() {
            self.queue.cancel(t);
        }
        if let Some(t) = self.pipes[idx].b_timer.take() {
            self.queue.cancel(t);
        }
        if self.cfg.cache_metrics {
            let over = self.pipes[idx].over_access;
            let role_keys = {
                let role = &self.pipes[idx].role;
                self.cache_keys(over, role)
            };
            if let Some(m) = self.pipes[idx].a.snapshot_metrics() {
                self.metrics_cache.store(&role_keys.0, m);
            }
            if let Some(m) = self.pipes[idx].b.snapshot_metrics() {
                self.metrics_cache.store(&role_keys.1, m);
            }
        }
    }

    // ==================================================================
    // Browser-side request assignment
    // ==================================================================

    fn assign_ready_objects(&mut self) {
        if self.assigning {
            return;
        }
        let Some(load) = self.load.as_ref() else {
            return;
        };
        if load.is_complete() {
            return;
        }
        let ready: Vec<ObjectId> = load.ready_objects().collect();
        if ready.is_empty() {
            return;
        }
        self.assigning = true;
        match self.cfg.protocol {
            ProtocolMode::Http => self.assign_ready_http(ready),
            ProtocolMode::Spdy { .. } => self.assign_ready_spdy(ready),
        }
        self.assigning = false;
    }

    fn assign_ready_http(&mut self, ready: Vec<ObjectId>) {
        // Chrome throttles concurrent connection attempts; without this a
        // discovery wave would fire 30+ simultaneous handshakes and
        // synchronized slow-starts into the access queue.
        let mut connecting = self
            .pipes
            .iter()
            .filter(|p| {
                !p.closed
                    && p.over_access
                    && matches!(p.role, PipeRole::HttpClient { .. })
                    && !p.a.is_established()
            })
            .count();
        for obj in ready {
            let domain = {
                let Some(page) = self.current_page.as_ref() else {
                    return;
                };
                page.object(obj).domain.clone()
            };
            // With pipelining enabled, stack further requests onto a
            // connection to this domain that still has pipeline slots.
            if self.cfg.http_pipelining > 1 {
                let depth = self.cfg.http_pipelining;
                let slot = self.pipes.iter().position(|p| {
                    !p.closed
                        && matches!(&p.role,
                            PipeRole::HttpClient { outstanding, pending, retired: false, .. }
                                if outstanding.len() + pending.len() < depth
                                    && (!outstanding.is_empty() || !pending.is_empty()))
                        && self.pool.domain_of(match &p.role {
                            PipeRole::HttpClient { pool_id, .. } => *pool_id,
                            _ => unreachable!(),
                        }) == Some(domain.as_str())
                });
                if let Some(pipe) = slot {
                    if let Some(load) = self.load.as_mut() {
                        load.take_ready(obj);
                    }
                    if let PipeRole::HttpClient { pending, .. } = &mut self.pipes[pipe].role {
                        pending.push_back((self.visit_gen, u64::from(obj.0)));
                    }
                    self.flush_pending_requests(pipe);
                    self.mark_dirty(pipe);
                    continue;
                }
            }
            loop {
                match self.pool.acquire(&domain) {
                    Acquire::Reuse(pid) => {
                        let Some(pipe) = self.pipe_for_pool(pid) else {
                            self.pool.remove(pid);
                            continue;
                        };
                        if let Some(load) = self.load.as_mut() {
                            load.take_ready(obj);
                        }
                        if let PipeRole::HttpClient { pending, .. } = &mut self.pipes[pipe].role {
                            pending.push_back((self.visit_gen, u64::from(obj.0)));
                        }
                        self.flush_pending_requests(pipe);
                        self.mark_dirty(pipe);
                        break;
                    }
                    Acquire::Open(pid) => {
                        if connecting >= 8 {
                            // Throttled: release the slot and retry when a
                            // handshake completes.
                            self.pool.remove(pid);
                            break;
                        }
                        connecting += 1;
                        if let Some(load) = self.load.as_mut() {
                            load.take_ready(obj);
                        }
                        let generation = self.visit_gen;
                        let pipe = self.new_pipe(
                            true,
                            PipeRole::HttpClient {
                                pool_id: pid,
                                http: HttpClientConn::with_pipelining(self.cfg.http_pipelining),
                                outstanding: VecDeque::new(),
                                pending: VecDeque::from([(generation, u64::from(obj.0))]),
                                got_first_byte: false,
                                fetch_queue: VecDeque::new(),
                                last_use: self.now,
                                retired: false,
                            },
                            format!("http-{}", pid.0),
                        );
                        self.mark_dirty(pipe);
                        break;
                    }
                    Acquire::Blocked => {
                        if self.pool.at_global_cap() {
                            if let Some(evicted) = self.pool.evict_idle() {
                                if let Some(pipe) = self.pipe_for_pool(evicted) {
                                    self.retire_http_pipe(pipe);
                                }
                                continue;
                            }
                        }
                        break;
                    }
                }
            }
        }
    }

    fn pipe_for_pool(&self, pid: PoolConnId) -> Option<usize> {
        self.pipes.iter().position(|p| {
            !p.closed
                && matches!(&p.role, PipeRole::HttpClient { pool_id, retired, .. }
                    if *pool_id == pid && !retired)
        })
    }

    fn retire_http_pipe(&mut self, idx: usize) {
        if let PipeRole::HttpClient {
            retired, pool_id, ..
        } = &mut self.pipes[idx].role
        {
            if !*retired {
                *retired = true;
                let pid = *pool_id;
                self.pool.remove(pid);
            }
        }
        self.pipes[idx].a.close(self.now);
        self.mark_dirty(idx);
    }

    fn assign_ready_spdy(&mut self, ready: Vec<ObjectId>) {
        if self.spdy_clients.is_empty() {
            return;
        }
        for obj in ready {
            // Round-robin over usable sessions.
            let n = self.spdy_clients.len();
            let mut chosen = None;
            for k in 0..n {
                let s = (self.spdy_rr + k) % n;
                if self.spdy_clients[s].usable {
                    chosen = Some(s);
                    break;
                }
            }
            let Some(sidx) = chosen else {
                return; // no session ready yet (SSL still setting up)
            };
            self.spdy_rr = (sidx + 1) % n;
            let (domain, path, priority) = {
                let Some(page) = self.current_page.as_ref() else {
                    return;
                };
                let o = page.object(obj);
                (o.domain.clone(), o.path.clone(), o.kind.spdy_priority())
            };
            let mut headers = vec![
                (":method".to_string(), "GET".to_string()),
                (":host".to_string(), domain.clone()),
                (":path".to_string(), path),
                (":scheme".to_string(), "https".to_string()),
            ];
            headers.extend(self.browser_headers(&domain));
            let stream = self.spdy_clients[sidx]
                .session
                .open_stream(headers, priority, true);
            self.spdy_clients[sidx]
                .streams
                .insert(stream, (self.visit_gen, u64::from(obj.0), false));
            if let Some(load) = self.load.as_mut() {
                load.note_requested(obj, self.now);
            }
            self.pump_spdy_client_wire(sidx);
        }
    }

    fn open_spdy_session(&mut self) {
        let sidx = self.spdy_clients.len();
        let pipe = self.new_pipe(
            true,
            PipeRole::SpdyClient { idx: sidx },
            format!("spdy-{sidx}"),
        );
        self.spdy_clients.push(SpdyClientState {
            session: SpdySession::new(Role::Client, SpdyConfig::default()),
            pipe,
            usable: false,
            streams: HashMap::new(),
            ssl_scheduled: false,
        });
        // Distinct fetch-id spaces per session (shared owner map).
        self.spdy_proxies.push(SpdyProxyCore::with_fetch_offset(
            SpdyConfig::default(),
            sidx as u64 * 1_000_000,
        ));
        self.mark_dirty(pipe);
        self.service_all();
    }

    // ==================================================================
    // Browser/visit lifecycle
    // ==================================================================

    fn reschedule_browser_timer(&mut self) {
        if let Some(old) = self.browser_timer.take() {
            self.queue.cancel(old);
        }
        if let Some(load) = self.load.as_ref() {
            if let Some(at) = load.next_timer() {
                let id = self.queue.schedule(at.max(self.now), Event::BrowserTimer);
                self.browser_timer = Some(id);
            }
        }
    }

    fn check_visit_complete(&mut self) {
        let complete = self.load.as_ref().is_some_and(|l| l.is_complete());
        if complete {
            self.finish_visit(true);
        }
    }

    fn finish_visit(&mut self, completed: bool) {
        let Some(load) = self.load.take() else {
            return;
        };
        let Some(visit) = self.current_visit.take() else {
            return;
        };
        if let Some(old) = self.browser_timer.take() {
            self.queue.cancel(old);
        }
        let site = self.cfg.schedule.order[visit];
        let start = load.start_time();
        let onload = load.onload_time();
        let plt_ms = match onload {
            Some(t) => t.saturating_since(start).as_secs_f64() * 1e3,
            None => self.now.saturating_since(start).as_secs_f64() * 1e3,
        };
        let page = load.page();
        self.result.visits.push(VisitResult {
            site,
            start,
            onload,
            plt_ms,
            completed: completed && onload.is_some(),
            object_timings: load.timings().to_vec(),
            object_count: page.object_count(),
            total_bytes: page.total_bytes(),
        });
        self.beacon_domain = Some(page.root().domain.clone());
        self.beacons_fired = 0;
        if let Some(beacon) = self.cfg.beacon {
            if beacon.max_per_visit > 0 {
                self.queue
                    .schedule(self.now + beacon.interval, Event::Beacon);
            }
        }
    }

    fn start_visit(&mut self, visit: usize) {
        // Abandon any incomplete previous visit.
        if self.load.is_some() {
            self.finish_visit(false);
        }
        self.visit_gen += 1;
        self.current_visit = Some(visit);
        let site = self.cfg.schedule.order[visit];
        let next = self
            .cfg
            .schedule
            .visits()
            .nth(visit + 1)
            .map(|(t, _)| t)
            .unwrap_or(self.cfg.schedule.horizon());
        self.next_visit_start = next;
        let page = match &self.cfg.pages {
            PageSource::Table1 => {
                let spec = SiteSpec::by_index(site).expect("schedule indices are valid");
                let mut rng = self
                    .rng_pages
                    .fork_indexed("page", (u64::from(site) << 16) | self.visit_gen);
                synthesize(spec, &mut rng)
            }
            PageSource::Custom(pages) => pages
                .get((site as usize).saturating_sub(1))
                .expect("schedule index within custom pages")
                .clone(),
        };
        self.origin.register_page(&page);
        self.current_page = Some(page.clone());
        self.load = Some(PageLoad::new(page, self.now));
        self.queue.schedule(
            self.now + self.cfg.visit_timeout,
            Event::VisitDeadline {
                visit,
                generation: self.visit_gen,
            },
        );
        self.assign_ready_objects();
        self.reschedule_browser_timer();
        self.service_all();
    }

    fn issue_beacon(&mut self) {
        let Some(domain) = self.beacon_domain.clone() else {
            return;
        };
        match self.cfg.protocol {
            ProtocolMode::Http => match self.pool.acquire(&domain) {
                Acquire::Reuse(pid) => {
                    if let Some(pipe) = self.pipe_for_pool(pid) {
                        if let PipeRole::HttpClient { pending, .. } = &mut self.pipes[pipe].role {
                            pending.push_back((self.visit_gen, BEACON_TAG));
                        }
                        self.flush_pending_requests(pipe);
                        self.mark_dirty(pipe);
                    } else {
                        self.pool.remove(pid);
                    }
                }
                Acquire::Open(pid) => {
                    let generation = self.visit_gen;
                    self.new_pipe(
                        true,
                        PipeRole::HttpClient {
                            pool_id: pid,
                            http: HttpClientConn::with_pipelining(self.cfg.http_pipelining),
                            outstanding: VecDeque::new(),
                            pending: VecDeque::from([(generation, BEACON_TAG)]),
                            got_first_byte: false,
                            fetch_queue: VecDeque::new(),
                            last_use: self.now,
                            retired: false,
                        },
                        format!("http-{}", pid.0),
                    );
                }
                Acquire::Blocked => {}
            },
            ProtocolMode::Spdy { .. } => {
                if let Some(sidx) =
                    (0..self.spdy_clients.len()).find(|&s| self.spdy_clients[s].usable)
                {
                    let mut headers = vec![
                        (":method".to_string(), "GET".to_string()),
                        (":host".to_string(), domain.clone()),
                        (":path".to_string(), "/beacon.gif".to_string()),
                    ];
                    headers.extend(self.browser_headers(&domain));
                    let stream = self.spdy_clients[sidx]
                        .session
                        .open_stream(headers, 4, true);
                    self.spdy_clients[sidx]
                        .streams
                        .insert(stream, (self.visit_gen, BEACON_TAG, false));
                    self.pump_spdy_client_wire(sidx);
                }
            }
        }
    }

    /// Server-initiated periodic data (§5.7): the proxy sends unsolicited
    /// bytes (a completed long-poll, a refreshed ad) into what may be an
    /// idle radio — the transfer pattern whose spurious timeouts collapse
    /// the sender's window with no request to pre-pay the promotion.
    fn push_beacon(&mut self) {
        let Some(size) = self.cfg.beacon.map(|b| b.size) else {
            return;
        };
        match self.cfg.protocol {
            ProtocolMode::Spdy { .. } => {
                if let Some(sidx) =
                    (0..self.spdy_clients.len()).find(|&s| self.spdy_clients[s].usable)
                {
                    self.spdy_proxies[sidx]
                        .push_data("/push/refresh", Bytes::from(vec![0u8; size as usize]));
                    self.pump_spdy_proxy_wire(sidx);
                }
            }
            ProtocolMode::Http => {
                // A pending long-poll completes on one idle persistent
                // connection; the client discards the unsolicited body.
                let target = self.pipes.iter().position(|p| {
                    !p.closed
                        && p.b.is_established()
                        && matches!(
                            &p.role,
                            PipeRole::HttpClient { outstanding, pending, retired: false, .. }
                                if outstanding.is_empty() && pending.is_empty()
                        )
                });
                if let Some(idx) = target {
                    let resp = spdyier_http::Response::ok(Bytes::from(vec![0u8; size as usize]))
                        .with_header("X-Pushed", "1");
                    self.pipes[idx].out_b.push_back(resp.encode());
                    self.mark_dirty(idx);
                }
            }
        }
    }

    // ==================================================================
    // Sampling
    // ==================================================================

    fn sample_inflight(&mut self) {
        let total: u64 = self
            .pipes
            .iter()
            .filter(|p| p.over_access && !p.closed)
            .map(|p| p.b.bytes_in_flight())
            .sum();
        let total = total as f64;
        if (total - self.last_inflight).abs() > f64::EPSILON {
            self.last_inflight = total;
            self.result.inflight_bytes.push(self.now, total);
        }
    }

    // ==================================================================
    // Event dispatch
    // ==================================================================

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Deliver { pipe, to_b, seg } => {
                if self.pipes[pipe].closed {
                    return;
                }
                if self.pipes[pipe].over_access && !to_b {
                    // Downlink payload delivered to the device (Fig. 9).
                    if !seg.is_empty() {
                        self.result
                            .client_downlink_bytes
                            .push(self.now, seg.len() as f64);
                    }
                }
                if to_b {
                    self.pipes[pipe].b.on_segment(self.now, seg);
                } else {
                    self.pipes[pipe].a.on_segment(self.now, seg);
                }
                self.mark_dirty(pipe);
                self.service_all();
            }
            Event::Timer { pipe, b_side } => {
                if self.pipes[pipe].closed {
                    return;
                }
                if b_side {
                    self.pipes[pipe].b_timer = None;
                    self.pipes[pipe].b.on_timer(self.now);
                } else {
                    self.pipes[pipe].a_timer = None;
                    self.pipes[pipe].a.on_timer(self.now);
                }
                self.mark_dirty(pipe);
                self.service_all();
            }
            Event::BrowserTimer => {
                self.browser_timer = None;
                if let Some(load) = self.load.as_mut() {
                    load.on_timer(self.now);
                }
                self.assign_ready_objects();
                self.reschedule_browser_timer();
                self.service_all();
            }
            Event::Visit(v) => {
                self.start_visit(v);
            }
            Event::VisitDeadline { visit, generation } => {
                if self.current_visit == Some(visit) && self.visit_gen == generation {
                    self.finish_visit(false);
                }
            }
            Event::OriginReply { pipe, bytes } => {
                if !self.pipes[pipe].closed {
                    self.pipes[pipe].out_b.push_back(bytes);
                    self.mark_dirty(pipe);
                    self.service_all();
                }
            }
            Event::SslReady { pipe } => {
                if let PipeRole::SpdyClient { idx: sidx } = self.pipes[pipe].role {
                    self.spdy_clients[sidx].usable = true;
                    self.pump_spdy_client_wire(sidx);
                    self.assign_ready_objects();
                    self.service_all();
                }
            }
            Event::PingTick => {
                // A device-side ping large enough to hold DCH (Fig. 14).
                let _ = self
                    .access
                    .send(Direction::Up, self.now, 1380, &mut self.rng_net);
                let _ = self
                    .access
                    .send(Direction::Down, self.now, 1380, &mut self.rng_net);
                if let Some(interval) = self.cfg.keepalive_ping {
                    self.queue.schedule(self.now + interval, Event::PingTick);
                }
            }
            Event::Beacon => {
                // Only between visits, and only while the run continues.
                if self.load.is_none() && self.now < self.next_visit_start {
                    self.issue_beacon();
                    self.push_beacon();
                    self.beacons_fired += 1;
                    if let Some(beacon) = self.cfg.beacon {
                        let next = if self.beacons_fired < beacon.max_per_visit {
                            Some(self.now + beacon.interval)
                        } else if self.beacons_fired == beacon.max_per_visit {
                            beacon.late_gap.map(|g| self.now + g)
                        } else {
                            None
                        };
                        if let Some(next) = next {
                            if next < self.next_visit_start {
                                self.queue.schedule(next, Event::Beacon);
                            }
                        }
                    }
                    self.service_all();
                }
            }
            Event::IdleSweep => {
                if let Some(max_idle) = self.cfg.http_idle_close {
                    let cutoff = self.now.saturating_since(SimTime::ZERO);
                    let _ = cutoff;
                    let stale: Vec<usize> = self
                        .pipes
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| {
                            !p.closed
                                && matches!(
                                    &p.role,
                                    PipeRole::HttpClient {
                                        outstanding,
                                        pending,
                                        retired: false,
                                        last_use,
                                        ..
                                    } if outstanding.is_empty()
                                        && pending.is_empty()
                                        && self.now.saturating_since(*last_use) >= max_idle
                                )
                        })
                        .map(|(i, _)| i)
                        .collect();
                    for i in stale {
                        self.retire_http_pipe(i);
                    }
                    self.queue
                        .schedule(self.now + SimDuration::from_secs(5), Event::IdleSweep);
                    self.service_all();
                }
            }
            Event::EndRun => {
                if self.load.is_some() {
                    self.finish_visit(false);
                }
                self.ended = true;
            }
        }
    }

    fn finalize(mut self) -> RunResult {
        // Harvest every pipe's stats/traces.
        for idx in 0..self.pipes.len() {
            self.harvest_pipe(idx);
        }
        for pipe in &mut self.pipes {
            if !pipe.over_access {
                continue;
            }
            let stats_a = pipe.a.stats();
            let stats_b = pipe.b.stats();
            self.result.total_timeouts += stats_a.timeouts + stats_b.timeouts;
            self.result.total_idle_restarts += stats_a.idle_restarts + stats_b.idle_restarts;
            // The proxy side is the bulk sender; keep its trace.
            let trace = if self.cfg.record_traces {
                pipe.b.take_trace()
            } else {
                None
            };
            self.result.conn_traces.push(ConnTraceResult {
                label: pipe.label.clone(),
                opened: pipe.opened,
                stats: stats_b,
                trace,
            });
        }
        self.result.total_retransmissions = self.result.retransmissions.count() as u64;
        self.result.promotions = self.access.promotions();
        self.result.downlink_drops = self.access.down_drops();
        self.result.energy_mj = self.access.energy_mj(self.now);
        let mut records = Vec::new();
        for r in self.http_proxy.records() {
            records.push(r.clone());
        }
        for p in &self.spdy_proxies {
            for r in p.records() {
                records.push(r.clone());
            }
        }
        self.result.proxy_records = records;
        self.result
    }
}

/// Run one experiment configuration to completion.
pub fn run_experiment(cfg: ExperimentConfig) -> RunResult {
    Testbed::new(cfg).run()
}
