//! The testbed driver: a thin dispatcher wiring the layered harness
//! together — the [`World`](crate::world::World) (clock, event queue,
//! links, TCP pipes), the active protocol [`Side`] behind the
//! [`AppSession`] contract, the [`Visits`] lifecycle, and the origin
//! servers.
//!
//! Topology (paper Fig. 2):
//!
//! ```text
//! device (browser) ══ access path (3G/LTE/WiFi) ══ proxy ══ wired ══ origins
//! ```
//!
//! The driver owns only event dispatch and the cross-layer call order;
//! everything protocol-specific lives in [`crate::session`], everything
//! transport-specific in [`crate::world`], and everything
//! page/visit-specific in [`crate::visits`].

use crate::config::{ExperimentConfig, ProtocolMode};
use crate::results::{ConnTraceResult, RunResult};
use crate::session::{AppSession, PipeRole, SessionAction, SessionCtx, Side};
use crate::visits::Visits;
use crate::world::{Event, World};
use spdyier_bytes::Payload;
use spdyier_net::Direction;
use spdyier_origin::{OriginConfig, OriginServers};
use spdyier_proxy::{ClientConnId, FetchId};
use spdyier_sim::{SimDuration, SimTime};
use spdyier_trace::{FlightLog, TraceEvent, TraceLevel};
use spdyier_workload::ObjectId;

/// A run failed in a structured, reportable way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configured [`ExperimentConfig::event_budget`] was exhausted
    /// before the run reached its horizon — almost always a livelock.
    EventBudgetExhausted {
        /// Events dispatched before giving up.
        events: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let RunError::EventBudgetExhausted { events } = self;
        write!(f, "event budget exhausted after {events} events")
    }
}

impl std::error::Error for RunError {}

/// Split-borrow `$self` into the active [`Side`] (bound to `$side`) plus
/// a [`SessionCtx`] over the remaining harness layers (bound to `$ctx`),
/// then evaluate `$body` with both in scope.
macro_rules! with_side {
    ($self:expr, $side:ident, $ctx:ident, $body:expr) => {{
        let Testbed {
            world,
            visits,
            result,
            cfg,
            side: $side,
            ..
        } = $self;
        #[allow(unused_mut)]
        let mut $ctx = SessionCtx {
            world,
            visits,
            result,
            cfg,
        };
        $body
    }};
}

/// The assembled testbed for one run.
pub struct Testbed {
    cfg: ExperimentConfig,
    world: World,
    visits: Visits,
    side: Side,
    origin: OriginServers,
    /// Re-entrancy guard: object assignment must not act on a stale ready
    /// snapshot if reached from within itself.
    assigning: bool,
    /// Reusable scratch for the ready-object snapshot the assignment
    /// sweep takes (the sweep re-runs on every unblocking event).
    ready_buf: Vec<ObjectId>,
    last_inflight: f64,
    result: RunResult,
    ended: bool,
}

impl Testbed {
    /// Build a testbed for `cfg`.
    pub fn new(cfg: ExperimentConfig) -> Testbed {
        let world = World::new(&cfg);
        let side = Side::for_cfg(&cfg);
        let result = RunResult::new(cfg.protocol.label(), cfg.network.label(), cfg.seed);
        Testbed {
            world,
            visits: Visits::new(),
            side,
            origin: OriginServers::new(OriginConfig::default()),
            assigning: false,
            ready_buf: Vec::new(),
            last_inflight: -1.0,
            result,
            ended: false,
            cfg,
        }
    }

    /// Execute the run to completion, panicking if the event budget is
    /// exhausted (see [`Testbed::try_run`] for the structured form).
    pub fn run(self) -> RunResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Execute the run to completion, or report a structured error if the
    /// configured event budget runs out first.
    pub fn try_run(self) -> Result<RunResult, RunError> {
        self.try_run_traced().map(|(result, _)| result)
    }

    /// Execute the run to completion, returning both the results and the
    /// flight recorder's log. With tracing off the log is empty.
    pub fn try_run_traced(mut self) -> Result<(RunResult, FlightLog), RunError> {
        self.start();
        let mut events: u64 = 0;
        while let Some((t, ev)) = self.world.queue.pop() {
            debug_assert!(t >= self.world.now, "time went backwards");
            self.world.now = t;
            self.dispatch(ev);
            if self.ended {
                break;
            }
            events += 1;
            if events > self.cfg.event_budget {
                return Err(RunError::EventBudgetExhausted { events });
            }
        }
        Ok(self.finalize())
    }

    fn start(&mut self) {
        let _span = spdyier_prof::scope("driver.start");
        for (i, (t, _)) in self.cfg.schedule.visits().enumerate() {
            self.world.queue.schedule(t, Event::Visit(i));
        }
        let end = self.cfg.schedule.horizon() + self.cfg.visit_timeout;
        self.world.queue.schedule(end, Event::EndRun);
        if let Some(interval) = self.cfg.keepalive_ping {
            self.world
                .queue
                .schedule(SimTime::ZERO + interval, Event::PingTick);
        }
        if self.cfg.http_idle_close.is_some() && matches!(self.cfg.protocol, ProtocolMode::Http) {
            self.world
                .queue
                .schedule(SimTime::from_secs(5), Event::IdleSweep);
        }
        if let ProtocolMode::Spdy { connections, .. } = self.cfg.protocol {
            for _ in 0..connections {
                with_side!(self, side, ctx, {
                    if let Side::Spdy(spdy) = side {
                        spdy.open_session(&mut ctx);
                    }
                });
                self.service_all();
            }
        }
    }

    // ----- Pipe servicing -----

    /// Service all dirty pipes to quiescence.
    fn service_all(&mut self) {
        let _span = spdyier_prof::scope("world.service");
        let mut guard = 0;
        while let Some(idx) = self.world.dirty.pop_front() {
            guard += 1;
            assert!(guard < 1_000_000, "pipe servicing livelock");
            if self.world.pipes[idx].closed {
                continue;
            }
            self.service_reads(idx);
            {
                let Testbed { world, side, .. } = self;
                world.flush_staged(idx, &mut |role| side.refill(role));
            }
            self.world.drain_tx(idx, &mut self.result);
            self.world.resched_timers(idx);
            self.world.maybe_mark_closed(idx);
        }
        self.sample_inflight();
        self.check_visit_complete();
    }

    fn service_reads(&mut self, idx: usize) {
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000, "read loop livelock on pipe {idx}");
            if let Some(data) = self.world.pipes[idx].a.read() {
                self.handle_a_read(idx, data);
                continue;
            }
            if let Some(data) = self.world.pipes[idx].b.read() {
                self.handle_b_read(idx, data);
                continue;
            }
            break;
        }
        // Establishment-driven work: flush requests pending on this pipe,
        // then (for origin pipes) issue the first queued fetch.
        if self.world.pipes[idx].a.is_established() {
            let issued = with_side!(self, side, ctx, side.flush_pending(&mut ctx, idx));
            if issued {
                // A completed handshake may unblock throttled opens.
                self.assign_ready_objects();
            }
            self.world.issue_next_origin_fetch(idx);
        }
        // SPDY SSL-ready detection / retired-HTTP-pipe close handshakes.
        with_side!(self, side, ctx, side.post_read(&mut ctx, idx));
    }

    // ----- a-side reads (device for access pipes; proxy for origin pipes) -----

    fn handle_a_read(&mut self, idx: usize, data: Payload) {
        match self.world.take_role(idx) {
            PipeRole::SpdyClient { idx: sidx } => {
                self.world.put_role(idx, PipeRole::SpdyClient { idx: sidx });
                with_side!(self, side, ctx, {
                    if let Side::Spdy(spdy) = side {
                        spdy.handle_client_bytes(&mut ctx, sidx, data);
                    }
                });
            }
            mut role @ PipeRole::HttpClient { .. } => {
                with_side!(self, side, ctx, {
                    if let Side::Http(http) = side {
                        http.on_device_bytes(&mut ctx, idx, &mut role, data);
                    }
                });
                self.world.put_role(idx, role);
            }
            mut role @ PipeRole::Origin { .. } => {
                // Completions route through the side while the role is
                // detached — the origin pipe is invisible to fetch
                // dispatch for the duration, exactly as before the split.
                self.read_origin_bytes(&mut role, data);
                self.world.put_role(idx, role);
            }
            PipeRole::Detached => {
                self.world.put_role(idx, PipeRole::Detached);
            }
        }
        // Completion may unblock new requests / the next pending fetch.
        self.world.issue_next_origin_fetch(idx);
        self.assign_ready_objects();
        self.visits.reschedule_browser_timer(&mut self.world);
    }

    fn read_origin_bytes(&mut self, role: &mut PipeRole, data: Payload) {
        let PipeRole::Origin {
            http,
            current,
            got_first_byte,
            ..
        } = role
        else {
            return;
        };
        if let Some(fetch) = *current {
            if !*got_first_byte && !data.is_empty() {
                *got_first_byte = true;
                with_side!(self, side, ctx, side.on_fetch_first_byte(&mut ctx, fetch));
            }
        }
        let done = http.on_bytes(data).unwrap_or_default();
        for (tag, resp) in done {
            *current = None;
            *got_first_byte = false;
            with_side!(
                self,
                side,
                ctx,
                side.on_fetch_complete(&mut ctx, FetchId(tag), resp)
            );
            self.pump_session();
        }
    }

    // ----- b-side reads (proxy for access pipes; origin server for wired pipes) -----

    fn handle_b_read(&mut self, idx: usize, data: Payload) {
        match self.world.take_role(idx) {
            role @ PipeRole::HttpClient { .. } => {
                self.world.put_role(idx, role);
                if let Side::Http(http) = &mut self.side {
                    http.proxy
                        .on_client_bytes(ClientConnId(idx as u64), data, self.world.now);
                }
                self.pump_session();
            }
            PipeRole::SpdyClient { idx: sidx } => {
                self.world.put_role(idx, PipeRole::SpdyClient { idx: sidx });
                if let Side::Spdy(spdy) = &mut self.side {
                    spdy.on_client_bytes(sidx, data, self.world.now);
                }
                self.pump_session();
            }
            mut role @ PipeRole::Origin { .. } => {
                let mut requests = Vec::new();
                if let PipeRole::Origin { server, .. } = &mut role {
                    requests = server.on_bytes(data).unwrap_or_default();
                }
                self.world.put_role(idx, role);
                for req in requests {
                    let (latency, resp) = self.origin.handle(&req, &mut self.world.rng_origin);
                    if self.world.tracer.active(TraceLevel::Lifecycle) {
                        self.world.tracer.emit(
                            self.world.now,
                            TraceEvent::OriginThink {
                                conn: idx,
                                until: self.world.now + latency,
                            },
                        );
                        self.world
                            .tracer
                            .observe("origin.think_us", latency.as_micros());
                    }
                    self.world.queue.schedule(
                        self.world.now + latency,
                        Event::OriginReply {
                            pipe: idx,
                            bytes: resp.encode(),
                        },
                    );
                }
            }
            PipeRole::Detached => {
                self.world.put_role(idx, PipeRole::Detached);
            }
        }
    }

    // ----- Session action pumping -----

    /// Drain the side's pending actions and execute them in order, until
    /// quiescent.
    fn pump_session(&mut self) {
        let _span = spdyier_prof::scope("session.pump");
        loop {
            let actions = with_side!(self, side, ctx, side.poll_actions(&mut ctx));
            if actions.is_empty() {
                return;
            }
            for action in actions {
                match action {
                    SessionAction::OriginFetch { fetch, request } => {
                        self.world.dispatch_fetch(&mut self.result, fetch, request);
                    }
                    SessionAction::ClientBytes { pipe, bytes, fetch } => {
                        if pipe < self.world.pipes.len() && !self.world.pipes[pipe].closed {
                            if let PipeRole::HttpClient { fetch_queue, .. } =
                                &mut self.world.pipes[pipe].role
                            {
                                fetch_queue.push_back(fetch);
                            }
                            self.world.pipes[pipe].out_b.push_back(bytes);
                            self.world.mark_dirty(pipe);
                        }
                    }
                    SessionAction::PumpProxyWire { session } => {
                        if let Side::Spdy(spdy) = &mut self.side {
                            spdy.pump_proxy_wire(&mut self.world, session);
                        }
                    }
                }
            }
        }
    }

    // ----- Browser-side request assignment -----

    fn assign_ready_objects(&mut self) {
        if self.assigning {
            return;
        }
        let Some(load) = self.visits.load.as_ref() else {
            return;
        };
        if load.is_complete() {
            return;
        }
        let mut ready = std::mem::take(&mut self.ready_buf);
        ready.clear();
        ready.extend(load.ready_objects());
        if ready.is_empty() {
            self.ready_buf = ready;
            return;
        }
        self.assigning = true;
        {
            let _span = spdyier_prof::scope("session.assign");
            with_side!(self, side, ctx, side.assign_ready(&mut ctx, &ready));
        }
        self.assigning = false;
        self.ready_buf = ready;
    }

    // ----- Visit lifecycle and sampling -----

    fn check_visit_complete(&mut self) {
        if self.visits.load_complete() {
            self.visits
                .finish_visit(&mut self.world, &self.cfg, &mut self.result, true);
        }
    }

    fn sample_inflight(&mut self) {
        let total = self.world.inflight_total() as f64;
        if (total - self.last_inflight).abs() > f64::EPSILON {
            self.last_inflight = total;
            self.result.inflight_bytes.push(self.world.now, total);
        }
    }

    // ----- Event dispatch -----

    /// The self-profiler span name for an event kind. Names are
    /// `subsystem.detail`; the prefix before the first `.` is the row
    /// the profile report rolls the span into.
    fn event_scope(ev: &Event) -> &'static str {
        match ev {
            Event::Deliver { .. } => "driver.deliver",
            Event::Timer { .. } => "driver.tcp_timer",
            Event::BrowserTimer => "browser.timer",
            Event::Visit(_) => "visit.start",
            Event::VisitDeadline { .. } => "visit.deadline",
            Event::OriginReply { .. } => "origin.reply",
            Event::SslReady { .. } => "driver.ssl_ready",
            Event::PingTick => "driver.ping",
            Event::Beacon => "driver.beacon",
            Event::IdleSweep => "driver.idle_sweep",
            Event::EndRun => "driver.end_run",
        }
    }

    fn dispatch(&mut self, ev: Event) {
        let _span = spdyier_prof::scope(Self::event_scope(&ev));
        match ev {
            Event::Deliver { pipe, to_b, seg } => {
                if self.world.pipes[pipe].closed {
                    return;
                }
                let now = self.world.now;
                if self.world.pipes[pipe].over_access && !to_b && !seg.is_empty() {
                    // Downlink payload delivered to the device (Fig. 9).
                    self.result
                        .client_downlink_bytes
                        .push(now, seg.len() as f64);
                }
                let p = &mut self.world.pipes[pipe];
                p.last_activity = now;
                let conn = if to_b { &mut p.b } else { &mut p.a };
                conn.on_segment(now, seg);
                self.world.mark_dirty(pipe);
                self.service_all();
            }
            Event::Timer { pipe, b_side } => {
                if self.world.pipes[pipe].closed {
                    return;
                }
                let now = self.world.now;
                let transport = self.world.tracer.active(TraceLevel::Transport);
                let silent_since = self.world.pipes[pipe].last_activity;
                let p = &mut self.world.pipes[pipe];
                let (conn, timer) = if b_side {
                    (&mut p.b, &mut p.b_timer)
                } else {
                    (&mut p.a, &mut p.a_timer)
                };
                *timer = None;
                let timeouts_before = if transport { conn.stats().timeouts } else { 0 };
                conn.on_timer(now);
                let timeouts_after = if transport { conn.stats().timeouts } else { 0 };
                for _ in timeouts_before..timeouts_after {
                    self.world.tracer.emit(
                        now,
                        TraceEvent::TcpRto {
                            conn: pipe,
                            b_side,
                            silent_since,
                        },
                    );
                    self.world.tracer.count("tcp.rto_fires", 1);
                    self.world.tracer.observe(
                        "tcp.rto_silence_us",
                        now.saturating_since(silent_since).as_micros(),
                    );
                }
                self.world.mark_dirty(pipe);
                self.service_all();
            }
            Event::BrowserTimer => {
                self.visits.browser_timer = None;
                if let Some(load) = self.visits.load.as_mut() {
                    load.on_timer(self.world.now);
                }
                self.assign_ready_objects();
                self.visits.reschedule_browser_timer(&mut self.world);
                self.service_all();
            }
            Event::Visit(v) => {
                {
                    let Testbed {
                        world,
                        visits,
                        result,
                        cfg,
                        origin,
                        ..
                    } = self;
                    visits.start_visit(world, cfg, origin, result, v);
                }
                self.assign_ready_objects();
                self.visits.reschedule_browser_timer(&mut self.world);
                self.service_all();
            }
            Event::VisitDeadline { visit, generation } => {
                if self.visits.current_visit == Some(visit) && self.visits.visit_gen == generation {
                    self.visits
                        .finish_visit(&mut self.world, &self.cfg, &mut self.result, false);
                }
            }
            Event::OriginReply { pipe, bytes } => {
                if !self.world.pipes[pipe].closed {
                    self.world.pipes[pipe].out_b.push_back(bytes);
                    self.world.mark_dirty(pipe);
                    self.service_all();
                }
            }
            Event::SslReady { pipe } => {
                if let PipeRole::SpdyClient { idx: sidx } = self.world.pipes[pipe].role {
                    self.world
                        .tracer
                        .emit(self.world.now, TraceEvent::SslReady { conn: pipe });
                    if let Side::Spdy(spdy) = &mut self.side {
                        spdy.on_ssl_ready(&mut self.world, sidx);
                    }
                    self.assign_ready_objects();
                    self.service_all();
                }
            }
            Event::PingTick => {
                // A device-side ping large enough to hold DCH (Fig. 14).
                for dir in [Direction::Up, Direction::Down] {
                    let _ =
                        self.world
                            .access
                            .send(dir, self.world.now, 1380, &mut self.world.rng_net);
                }
                if self.world.tracer.active(TraceLevel::Transport) {
                    self.world.sync_promotions();
                }
                if let Some(interval) = self.cfg.keepalive_ping {
                    self.world
                        .queue
                        .schedule(self.world.now + interval, Event::PingTick);
                }
            }
            Event::Beacon => {
                // Only between visits, and only while the run continues.
                if self.visits.load.is_none() && self.world.now < self.visits.next_visit_start {
                    let issued = with_side!(self, side, ctx, side.issue_beacon(&mut ctx));
                    if issued {
                        self.assign_ready_objects();
                    }
                    with_side!(self, side, ctx, side.push_beacon(&mut ctx));
                    self.visits.beacons_fired += 1;
                    if let Some(next) = self.visits.next_beacon_at(&self.cfg, self.world.now) {
                        self.world.queue.schedule(next, Event::Beacon);
                    }
                    self.service_all();
                }
            }
            Event::IdleSweep => {
                if let Some(max_idle) = self.cfg.http_idle_close {
                    // next_timeout gates the sweep: scan only when some
                    // pipe's idle deadline has actually passed.
                    let due = with_side!(self, side, ctx, {
                        let now = ctx.world.now;
                        side.next_timeout(&ctx).is_some_and(|t| t <= now)
                    });
                    if due {
                        if let Side::Http(http) = &mut self.side {
                            http.idle_sweep(&mut self.world, max_idle);
                        }
                    }
                    self.world
                        .queue
                        .schedule(self.world.now + SimDuration::from_secs(5), Event::IdleSweep);
                    self.service_all();
                }
            }
            Event::EndRun => {
                if self.visits.load.is_some() {
                    self.visits
                        .finish_visit(&mut self.world, &self.cfg, &mut self.result, false);
                }
                self.ended = true;
            }
        }
    }

    fn finalize(mut self) -> (RunResult, FlightLog) {
        let _span = spdyier_prof::scope("driver.finalize");
        // Make sure every promotion taken this run reaches the recorder,
        // even ones after the last access-pipe drain.
        if self.world.tracer.active(TraceLevel::Transport) {
            self.world.sync_promotions();
        }
        // Harvest every pipe's stats/traces.
        for idx in 0..self.world.pipes.len() {
            self.world.harvest_pipe(idx);
        }
        for pipe in &mut self.world.pipes {
            if !pipe.over_access {
                continue;
            }
            let stats_a = pipe.a.stats();
            let stats_b = pipe.b.stats();
            self.result.total_timeouts += stats_a.timeouts + stats_b.timeouts;
            self.result.total_idle_restarts += stats_a.idle_restarts + stats_b.idle_restarts;
            // The proxy side is the bulk sender; keep its trace.
            let trace = if self.cfg.record_traces {
                pipe.b.take_trace()
            } else {
                None
            };
            self.result.conn_traces.push(ConnTraceResult {
                label: pipe.label.clone(),
                opened: pipe.opened,
                stats: stats_b,
                trace,
            });
        }
        self.result.total_retransmissions = self.result.retransmissions.count() as u64;
        self.result.promotions = self.world.access.promotions();
        self.result.downlink_drops = self.world.access.down_drops();
        self.result.energy_mj = self.world.access.energy_mj(self.world.now);
        self.result.proxy_records = self.side.proxy_records();
        // Publish run-level aggregates into the metrics registry (no-ops
        // when tracing is off).
        self.world
            .tracer
            .count("tcp.timeouts_total", self.result.total_timeouts);
        self.world
            .tracer
            .count("run.visits", self.result.visits.len() as u64);
        let log = std::mem::take(&mut self.world.tracer).finish();
        (self.result, log)
    }
}

/// Run one experiment configuration to completion.
pub fn run_experiment(cfg: ExperimentConfig) -> RunResult {
    Testbed::new(cfg).run()
}

/// Run one experiment configuration, reporting a structured error if the
/// event budget is exhausted.
pub fn try_run_experiment(cfg: ExperimentConfig) -> Result<RunResult, RunError> {
    Testbed::new(cfg).try_run()
}

/// Run one experiment configuration and return the flight recorder's log
/// alongside the results (empty when `cfg.trace_level` is `Off`).
pub fn run_experiment_traced(cfg: ExperimentConfig) -> (RunResult, FlightLog) {
    Testbed::new(cfg)
        .try_run_traced()
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run_experiment_traced`].
pub fn try_run_experiment_traced(
    cfg: ExperimentConfig,
) -> Result<(RunResult, FlightLog), RunError> {
    Testbed::new(cfg).try_run_traced()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The parallel executor in `spdyier-experiments` moves whole
    /// testbeds across threads; the harness must stay `Send` end to end.
    #[test]
    fn testbed_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Testbed>();
        assert_send::<RunResult>();
        assert_send::<RunError>();
    }
}
