//! Stall attribution: decompose each visit's page-load time into the
//! intervals the flight recorder saw — radio promotion waits, RTO
//! silences, link queueing, serialization, and origin think time.
//!
//! The attributor is a pure consumer of a [`FlightLog`]: it replays the
//! event stream, turns the relevant events into typed time intervals,
//! clips them to each visit's `[VisitStart, VisitStart + plt_us]`
//! window, and sweeps the window's elementary segments once. Every
//! microsecond of the window lands in exactly one category (overlaps
//! resolve by a fixed priority), so the categories sum to the PLT
//! *exactly* — conservation is by construction, not by rounding luck.
//!
//! Category priority when intervals overlap (highest wins):
//! RTO stall > promotion > serialization > queueing > server think.
//! RTO silences rank first because they are the pathology the paper
//! chases (§5.5, §5.7): a spurious timeout that fires *while* the
//! radio is promoting is exactly the cross-layer interaction worth
//! surfacing, so the attributor must not let the promotion swallow
//! it — the promotion's remainder is still counted. A promotion
//! stalls everything behind it, so it subsumes overlapping
//! transmissions; serialization is "the link is genuinely busy with
//! this byte", so it beats the softer queueing share. Note the
//! queueing share of a segment's journey (`[sent, deliver - ser]`)
//! includes propagation delay — the recorder cannot split the two
//! without a per-hop model, and for stall hunting "waiting on the
//! path" is the useful aggregate anyway.

use crate::export::DataFile;
use serde::Serialize;
use spdyier_sim::SimTime;
use spdyier_trace::{FlightLog, TraceEvent};
use std::fmt::Write as _;

/// One visit's PLT decomposed into attributed stall categories.
///
/// Invariant: the six `*_us` fields sum to `end - start` exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StallBreakdown {
    /// Visit index in the schedule.
    pub visit: usize,
    /// Site index loaded by the visit.
    pub site: usize,
    /// Visit start (the `VisitStart` record's timestamp).
    pub start: SimTime,
    /// Visit end (`start + plt_us` from the `VisitEnd` record).
    pub end: SimTime,
    /// Time under an RRC promotion (IDLE/FACH -> DCH and similar).
    pub promotion_us: u64,
    /// Time the access link spent clocking bytes out (transmission).
    pub serialization_us: u64,
    /// Time segments waited in queues / propagated, link not promoting.
    pub queueing_us: u64,
    /// Silent time ended by a TCP retransmission timeout.
    pub rto_stall_us: u64,
    /// Time an origin server spent "thinking" before replying.
    pub server_think_us: u64,
    /// Remainder: browser parse/execute, handshakes, overlap slack.
    pub other_us: u64,
}

impl StallBreakdown {
    /// The visit's page-load time in microseconds.
    pub fn plt_us(&self) -> u64 {
        self.end.saturating_since(self.start).as_micros()
    }

    /// Sum of every attributed category (equals [`Self::plt_us`]).
    pub fn attributed_us(&self) -> u64 {
        self.promotion_us
            + self.serialization_us
            + self.queueing_us
            + self.rto_stall_us
            + self.server_think_us
            + self.other_us
    }
}

/// Category indices in priority order (lower index wins on overlap).
const RTO: usize = 0;
const PROMOTION: usize = 1;
const SERIALIZATION: usize = 2;
const QUEUEING: usize = 3;
const THINK: usize = 4;
const CATEGORIES: usize = 5;

/// Decompose every finished visit in `log` into a [`StallBreakdown`].
///
/// Needs at least `Transport`-level events for promotions and RTO
/// stalls; serialization and queueing shares additionally need the
/// `Full`-level `SegmentSent` records (they are zero otherwise).
pub fn attribute_stalls(log: &FlightLog) -> Vec<StallBreakdown> {
    // Pass 1: typed intervals, in microseconds, across the whole run.
    let mut intervals: Vec<(u64, u64, usize)> = Vec::new();
    // Visit windows: (visit, site, start_us, end_us).
    let mut starts: Vec<(usize, usize, u64)> = Vec::new();
    let mut windows: Vec<(usize, usize, u64, u64)> = Vec::new();
    for rec in &log.events {
        let t = rec.t.as_micros();
        match &rec.event {
            TraceEvent::VisitStart { visit, site } => starts.push((*visit, *site, t)),
            TraceEvent::VisitEnd { visit, plt_us, .. } => {
                if let Some(&(v, site, start)) = starts.iter().rev().find(|(v, ..)| v == visit) {
                    windows.push((v, site, start, start + plt_us));
                }
            }
            TraceEvent::RrcPromotion { start, done, .. } => {
                intervals.push((start.as_micros(), done.as_micros(), PROMOTION));
            }
            TraceEvent::SegmentSent {
                deliver, ser_us, ..
            } => {
                let deliver = deliver.as_micros();
                let ser_start = deliver.saturating_sub(*ser_us);
                intervals.push((ser_start, deliver, SERIALIZATION));
                if t < ser_start {
                    intervals.push((t, ser_start, QUEUEING));
                }
            }
            TraceEvent::TcpRto { silent_since, .. } => {
                intervals.push((silent_since.as_micros(), t, RTO));
            }
            TraceEvent::OriginThink { until, .. } => {
                intervals.push((t, until.as_micros(), THINK));
            }
            _ => {}
        }
    }

    // Pass 2: per visit, clip + boundary-sweep.
    let mut out = Vec::with_capacity(windows.len());
    for (visit, site, vs, ve) in windows {
        let clipped: Vec<(u64, u64, usize)> = intervals
            .iter()
            .filter_map(|&(a, b, c)| {
                let (a, b) = (a.max(vs), b.min(ve));
                (a < b).then_some((a, b, c))
            })
            .collect();
        let mut points: Vec<u64> = vec![vs, ve];
        for &(a, b, _) in &clipped {
            points.push(a);
            points.push(b);
        }
        points.sort_unstable();
        points.dedup();
        let mut sums = [0u64; CATEGORIES];
        let mut other = 0u64;
        for w in points.windows(2) {
            let (a, b) = (w[0], w[1]);
            let cat = clipped
                .iter()
                .filter(|&&(s, e, _)| s <= a && e >= b)
                .map(|&(_, _, c)| c)
                .min();
            match cat {
                Some(c) => sums[c] += b - a,
                None => other += b - a,
            }
        }
        out.push(StallBreakdown {
            visit,
            site,
            start: SimTime::from_micros(vs),
            end: SimTime::from_micros(ve),
            promotion_us: sums[PROMOTION],
            serialization_us: sums[SERIALIZATION],
            queueing_us: sums[QUEUEING],
            rto_stall_us: sums[RTO],
            server_think_us: sums[THINK],
            other_us: other,
        });
    }
    out
}

/// Render breakdowns as a plotter-friendly column file
/// (`stalls_<label>.dat`), milliseconds per category.
pub fn stall_file(label: &str, breakdowns: &[StallBreakdown]) -> DataFile {
    let mut s = String::from(
        "# visit site plt_ms promotion_ms serialization_ms queueing_ms rto_ms think_ms other_ms\n",
    );
    let ms = |us: u64| us as f64 / 1e3;
    for b in breakdowns {
        let _ = writeln!(
            s,
            "{} {} {:.3} {:.3} {:.3} {:.3} {:.3} {:.3} {:.3}",
            b.visit + 1,
            b.site,
            ms(b.plt_us()),
            ms(b.promotion_us),
            ms(b.serialization_us),
            ms(b.queueing_us),
            ms(b.rto_stall_us),
            ms(b.server_think_us),
            ms(b.other_us),
        );
    }
    DataFile {
        name: format!("stalls_{}.dat", label.to_lowercase()),
        contents: s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_trace::{TraceLevel, Tracer};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn log_with(events: Vec<(u64, TraceEvent)>) -> FlightLog {
        let mut tr = Tracer::for_level(TraceLevel::Full);
        for (at, ev) in events {
            tr.emit(t(at), ev);
        }
        tr.finish()
    }

    #[test]
    fn categories_conserve_plt_exactly() {
        let log = log_with(vec![
            (0, TraceEvent::VisitStart { visit: 0, site: 1 }),
            (
                100,
                TraceEvent::RrcPromotion {
                    kind: "IdleToDch".into(),
                    start: t(100),
                    done: t(2_100),
                },
            ),
            // Overlaps the promotion tail: promotion wins the overlap.
            (
                2_000,
                TraceEvent::SegmentSent {
                    conn: 0,
                    down: true,
                    bytes: 1400,
                    deliver: t(2_600),
                    ser_us: 200,
                    retransmit: false,
                },
            ),
            (
                3_000,
                TraceEvent::TcpRto {
                    conn: 0,
                    b_side: true,
                    silent_since: t(2_600),
                },
            ),
            (
                3_500,
                TraceEvent::OriginThink {
                    conn: 1,
                    until: t(4_000),
                },
            ),
            (
                5_000,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: true,
                    plt_us: 5_000,
                },
            ),
        ]);
        let stalls = attribute_stalls(&log);
        assert_eq!(stalls.len(), 1);
        let b = &stalls[0];
        assert_eq!(b.plt_us(), 5_000);
        assert_eq!(b.attributed_us(), b.plt_us(), "conservation is exact");
        assert_eq!(b.promotion_us, 2_000);
        // Segment journey [2000,2600]: [2000,2100] lost to promotion,
        // queueing share [2100,2400], serialization share [2400,2600].
        assert_eq!(b.queueing_us, 300);
        assert_eq!(b.serialization_us, 200);
        // RTO silence [2600,3000].
        assert_eq!(b.rto_stall_us, 400);
        assert_eq!(b.server_think_us, 500);
        assert_eq!(b.other_us, 5_000 - 2_000 - 300 - 200 - 400 - 500);
    }

    #[test]
    fn rto_silence_is_not_swallowed_by_an_overlapping_promotion() {
        let log = log_with(vec![
            (0, TraceEvent::VisitStart { visit: 0, site: 1 }),
            (
                0,
                TraceEvent::RrcPromotion {
                    kind: "IdleToDch".into(),
                    start: t(0),
                    done: t(2_000),
                },
            ),
            // Spurious RTO mid-promotion — the paper's §5.5 interaction.
            (
                1_000,
                TraceEvent::TcpRto {
                    conn: 0,
                    b_side: false,
                    silent_since: t(0),
                },
            ),
            (
                3_000,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: true,
                    plt_us: 3_000,
                },
            ),
        ]);
        let b = &attribute_stalls(&log)[0];
        assert_eq!(b.rto_stall_us, 1_000, "the RTO silence wins the overlap");
        assert_eq!(b.promotion_us, 1_000, "the promotion keeps its remainder");
        assert_eq!(b.attributed_us(), 3_000);
    }

    #[test]
    fn intervals_clip_to_the_visit_window() {
        let log = log_with(vec![
            (
                0,
                TraceEvent::RrcPromotion {
                    kind: "IdleToDch".into(),
                    start: t(0),
                    done: t(1_500),
                },
            ),
            (1_000, TraceEvent::VisitStart { visit: 0, site: 2 }),
            (
                2_000,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: true,
                    plt_us: 1_000,
                },
            ),
        ]);
        let stalls = attribute_stalls(&log);
        assert_eq!(stalls[0].promotion_us, 500, "only the in-window tail");
        assert_eq!(stalls[0].attributed_us(), 1_000);
    }

    #[test]
    fn stall_file_has_header_and_one_row_per_visit() {
        let log = log_with(vec![
            (0, TraceEvent::VisitStart { visit: 0, site: 1 }),
            (
                1_000,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: true,
                    plt_us: 1_000,
                },
            ),
        ]);
        let f = stall_file("spdy", &attribute_stalls(&log));
        assert_eq!(f.name, "stalls_spdy.dat");
        assert!(f.contents.starts_with("# visit site plt_ms"));
        assert_eq!(f.contents.lines().count(), 2);
    }
}
