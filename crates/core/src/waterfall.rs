//! HAR-style waterfall export.
//!
//! Turns a run's per-object boundary instants ([`ObjectTiming`]) into
//! the nested `log -> entries -> timings` shape HAR viewers expect:
//! one entry per fetched object, its start offset, and the classic
//! blocked / send / wait / receive split (HAR's `-1.0` convention for
//! unknown phases). Field names are snake_case — the artifact is
//! HAR-*style*, built for the repo's own tooling and for eyeballing,
//! not for strict HAR 1.2 validators.

use crate::results::RunResult;
use serde::Serialize;
use spdyier_browser::ObjectTiming;
use spdyier_sim::SimDuration;

/// Top-level waterfall artifact (`{"log": {...}}`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Waterfall {
    /// The HAR-style log body.
    pub log: WaterfallLog,
}

/// The log body: creator stamp plus one entry per object fetch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WaterfallLog {
    /// HAR schema version the shape mimics.
    pub version: String,
    /// Producing tool.
    pub creator: String,
    /// Protocol label of the run (`HTTP` / `SPDY`).
    pub protocol: String,
    /// One entry per page object, visit-major then discovery order.
    pub entries: Vec<WaterfallEntry>,
}

/// One object's row in the waterfall.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WaterfallEntry {
    /// Visit index in the schedule.
    pub visit: usize,
    /// Site index the visit loaded.
    pub site: u32,
    /// Object index within the page.
    pub object: usize,
    /// Start offset from run start, ms (discovery instant).
    pub started_ms: f64,
    /// Total lifetime, ms (`-1.0` when the fetch never completed).
    pub time_ms: f64,
    /// The phase split.
    pub timings: WaterfallTimings,
}

/// HAR-style phase split for one object, ms; `-1.0` means unknown.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WaterfallTimings {
    /// Discovery -> request issued (pool wait, handshake, throttle).
    pub blocked_ms: f64,
    /// Request issued -> fully written to the transport.
    pub send_ms: f64,
    /// Request written -> first response byte.
    pub wait_ms: f64,
    /// First byte -> last byte.
    pub receive_ms: f64,
}

fn ms(d: Option<SimDuration>) -> f64 {
    d.map_or(-1.0, |d| d.as_secs_f64() * 1e3)
}

fn entry(visit: usize, site: u32, object: usize, t: &ObjectTiming) -> WaterfallEntry {
    WaterfallEntry {
        visit,
        site,
        object,
        started_ms: t
            .discovered
            .or(t.requested)
            .map_or(-1.0, |at| at.as_secs_f64() * 1e3),
        time_ms: ms(t.total_time()),
        timings: WaterfallTimings {
            blocked_ms: ms(t.init_time()),
            send_ms: ms(t.send_time()),
            wait_ms: ms(t.wait_time()),
            receive_ms: ms(t.recv_time()),
        },
    }
}

/// Build the waterfall for every visit in `result`.
pub fn waterfall(result: &RunResult) -> Waterfall {
    let mut entries = Vec::new();
    for (visit, v) in result.visits.iter().enumerate() {
        for (object, t) in v.object_timings.iter().enumerate() {
            entries.push(entry(visit, v.site, object, t));
        }
    }
    Waterfall {
        log: WaterfallLog {
            version: "1.2".to_string(),
            creator: "spdyier flight recorder".to_string(),
            protocol: result.protocol.clone(),
            entries,
        },
    }
}

/// The waterfall as pretty-printed JSON.
pub fn waterfall_json(result: &RunResult) -> String {
    serde_json::to_string_pretty(&waterfall(result)).expect("waterfall always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, NetworkKind, ProtocolMode};
    use crate::driver::run_experiment;
    use spdyier_sim::SimDuration;
    use spdyier_workload::VisitSchedule;

    fn small_run() -> RunResult {
        run_experiment(
            ExperimentConfig::paper_3g(ProtocolMode::spdy(), 3)
                .with_network(NetworkKind::Wifi)
                .with_schedule(VisitSchedule::sequential(
                    vec![9],
                    SimDuration::from_secs(60),
                )),
        )
    }

    #[test]
    fn waterfall_covers_every_fetched_object() {
        let r = small_run();
        let w = waterfall(&r);
        let expected: usize = r.visits.iter().map(|v| v.object_timings.len()).sum();
        assert_eq!(w.log.entries.len(), expected);
        assert!(!w.log.entries.is_empty());
        let done = w.log.entries.iter().filter(|e| e.time_ms >= 0.0).count();
        assert!(done > 0, "completed objects have a total time");
    }

    #[test]
    fn json_has_har_shape() {
        let r = small_run();
        let j = waterfall_json(&r);
        assert!(j.contains("\"log\""));
        assert!(j.contains("\"entries\""));
        assert!(j.contains("\"timings\""));
        assert!(j.contains("\"receive_ms\""));
    }
}
