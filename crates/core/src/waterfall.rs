//! HAR-style waterfall export.
//!
//! Turns a run's per-object boundary instants ([`ObjectTiming`]) into
//! the nested `log -> entries -> timings` shape HAR viewers expect:
//! one entry per fetched object, its start offset, and the classic
//! blocked / send / wait / receive split (HAR's `-1.0` convention for
//! unknown phases). Field names are snake_case — the artifact is
//! HAR-*style*, built for the repo's own tooling and for eyeballing,
//! not for strict HAR 1.2 validators.
//!
//! Entry order is deterministic: ascending start instant, with
//! same-instant ties broken by `(visit, conn, stream, object)`. The
//! conn/stream columns come from the flight log's binding events when a
//! trace was recorded ([`waterfall_traced`]); without one they stay
//! absent and the tie-break degrades to `(visit, object)` — still a
//! total order, so two exports of the same run are byte-identical.

use crate::results::RunResult;
use serde::Serialize;
use spdyier_browser::ObjectTiming;
use spdyier_causal::EventModel;
use spdyier_sim::SimDuration;
use spdyier_trace::FlightLog;

/// Top-level waterfall artifact (`{"log": {...}}`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Waterfall {
    /// The HAR-style log body.
    pub log: WaterfallLog,
}

/// The log body: creator stamp plus one entry per object fetch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WaterfallLog {
    /// HAR schema version the shape mimics.
    pub version: String,
    /// Producing tool.
    pub creator: String,
    /// Protocol label of the run (`HTTP` / `SPDY`).
    pub protocol: String,
    /// One entry per page object, visit-major then discovery order.
    pub entries: Vec<WaterfallEntry>,
}

/// One object's row in the waterfall.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WaterfallEntry {
    /// Visit index in the schedule.
    pub visit: usize,
    /// Site index the visit loaded.
    pub site: u32,
    /// Object index within the page.
    pub object: usize,
    /// Client↔proxy connection that served the fetch, from the flight
    /// log's binding events (absent without a trace).
    pub conn: Option<usize>,
    /// SPDY stream id on that connection (absent for HTTP fetches or
    /// without a trace).
    pub stream: Option<u32>,
    /// Start offset from run start, ms (discovery instant).
    pub started_ms: f64,
    /// Total lifetime, ms (`-1.0` when the fetch never completed).
    pub time_ms: f64,
    /// The phase split.
    pub timings: WaterfallTimings,
}

/// HAR-style phase split for one object, ms; `-1.0` means unknown.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WaterfallTimings {
    /// Discovery -> request issued (pool wait, handshake, throttle).
    pub blocked_ms: f64,
    /// Request issued -> fully written to the transport.
    pub send_ms: f64,
    /// Request written -> first response byte.
    pub wait_ms: f64,
    /// First byte -> last byte.
    pub receive_ms: f64,
}

fn ms(d: Option<SimDuration>) -> f64 {
    d.map_or(-1.0, |d| d.as_secs_f64() * 1e3)
}

fn entry(visit: usize, site: u32, object: usize, t: &ObjectTiming) -> WaterfallEntry {
    WaterfallEntry {
        visit,
        site,
        object,
        conn: None,
        stream: None,
        started_ms: t
            .discovered
            .or(t.requested)
            .map_or(-1.0, |at| at.as_secs_f64() * 1e3),
        time_ms: ms(t.total_time()),
        timings: WaterfallTimings {
            blocked_ms: ms(t.init_time()),
            send_ms: ms(t.send_time()),
            wait_ms: ms(t.wait_time()),
            receive_ms: ms(t.recv_time()),
        },
    }
}

/// The total entry order: start instant in µs (so ties are exact, not
/// float-rounded), then `(visit, conn, stream, object)`. Unstarted
/// entries sort last; unbound conn/stream sort after bound ones at the
/// same instant.
type EntryKey = (u64, usize, usize, u64, usize);

fn entry_key(e: &WaterfallEntry, t: &ObjectTiming) -> EntryKey {
    let start_us = t
        .discovered
        .or(t.requested)
        .map_or(u64::MAX, |at| at.as_micros());
    (
        start_us,
        e.visit,
        e.conn.unwrap_or(usize::MAX),
        e.stream.map_or(u64::MAX, u64::from),
        e.object,
    )
}

/// Build the waterfall for every visit in `result`, annotating each
/// entry with the serving connection (and SPDY stream) when a flight
/// log is available.
pub fn waterfall_traced(result: &RunResult, log: Option<&FlightLog>) -> Waterfall {
    let model = log.map(|l| EventModel::from_records(&l.events));
    let mut keyed: Vec<(EntryKey, WaterfallEntry)> = Vec::new();
    for (visit, v) in result.visits.iter().enumerate() {
        for (object, t) in v.object_timings.iter().enumerate() {
            let mut e = entry(visit, v.site, object, t);
            if let Some(b) = model.as_ref().and_then(|m| m.binding(visit, object as u32)) {
                e.conn = Some(b.conn);
                e.stream = b.stream;
            }
            keyed.push((entry_key(&e, t), e));
        }
    }
    // (visit, object) makes every key unique, so the order is total.
    keyed.sort_by_key(|e| e.0);
    Waterfall {
        log: WaterfallLog {
            version: "1.2".to_string(),
            creator: "spdyier flight recorder".to_string(),
            protocol: result.protocol.clone(),
            entries: keyed.into_iter().map(|(_, e)| e).collect(),
        },
    }
}

/// Build the waterfall for every visit in `result` (no trace: the
/// conn/stream columns stay absent).
pub fn waterfall(result: &RunResult) -> Waterfall {
    waterfall_traced(result, None)
}

/// The traced waterfall as pretty-printed JSON.
pub fn waterfall_traced_json(result: &RunResult, log: Option<&FlightLog>) -> String {
    serde_json::to_string_pretty(&waterfall_traced(result, log))
        .expect("waterfall always serializes")
}

/// The waterfall as pretty-printed JSON.
pub fn waterfall_json(result: &RunResult) -> String {
    waterfall_traced_json(result, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, NetworkKind, ProtocolMode};
    use crate::driver::run_experiment;
    use spdyier_sim::SimDuration;
    use spdyier_workload::VisitSchedule;

    fn small_run() -> RunResult {
        run_experiment(
            ExperimentConfig::paper_3g(ProtocolMode::spdy(), 3)
                .with_network(NetworkKind::Wifi)
                .with_schedule(VisitSchedule::sequential(
                    vec![9],
                    SimDuration::from_secs(60),
                )),
        )
    }

    #[test]
    fn waterfall_covers_every_fetched_object() {
        let r = small_run();
        let w = waterfall(&r);
        let expected: usize = r.visits.iter().map(|v| v.object_timings.len()).sum();
        assert_eq!(w.log.entries.len(), expected);
        assert!(!w.log.entries.is_empty());
        let done = w.log.entries.iter().filter(|e| e.time_ms >= 0.0).count();
        assert!(done > 0, "completed objects have a total time");
    }

    #[test]
    fn traced_entries_order_deterministically_with_conn_stream_tie_break() {
        use crate::driver::run_experiment_traced;
        use spdyier_trace::TraceLevel;
        let (r, log) = run_experiment_traced(
            ExperimentConfig::paper_3g(ProtocolMode::spdy(), 3)
                .with_network(NetworkKind::Wifi)
                .with_trace_level(TraceLevel::Full)
                .with_schedule(VisitSchedule::sequential(
                    vec![9],
                    SimDuration::from_secs(60),
                )),
        );
        let w = waterfall_traced(&r, Some(&log));
        assert_eq!(
            w.log.entries.len(),
            r.visits
                .iter()
                .map(|v| v.object_timings.len())
                .sum::<usize>()
        );
        // SPDY multiplexes one connection: fetched entries carry its id
        // and a stream.
        assert!(w
            .log
            .entries
            .iter()
            .any(|e| e.conn.is_some() && e.stream.is_some()));
        // The golden property: the emitted order IS the documented total
        // order — ascending (start, visit, conn, stream, object) — so
        // same-instant entries cannot flap between exports.
        let keys: Vec<_> = w
            .log
            .entries
            .iter()
            .map(|e| {
                (
                    // started_ms is µs-derived, so the float is exact.
                    (e.started_ms.max(0.0) * 1e3).round() as u64,
                    e.visit,
                    e.conn.unwrap_or(usize::MAX),
                    e.stream.map_or(u64::MAX, u64::from),
                    e.object,
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "entries leave the exporter pre-sorted");
        // And the tie-break actually engages: HTML parse bursts discover
        // several objects at the same instant.
        let starts: Vec<u64> = keys.iter().map(|k| k.0).collect();
        let tied = starts.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            tied > 0,
            "expected same-instant discoveries in a parse burst"
        );
        // Two exports of the same run are byte-identical.
        assert_eq!(
            waterfall_traced_json(&r, Some(&log)),
            waterfall_traced_json(&r, Some(&log))
        );
    }

    #[test]
    fn json_has_har_shape() {
        let r = small_run();
        let j = waterfall_json(&r);
        assert!(j.contains("\"log\""));
        assert!(j.contains("\"entries\""));
        assert!(j.contains("\"timings\""));
        assert!(j.contains("\"receive_ms\""));
    }
}
