//! Experiment configuration.
//!
//! Every knob the paper turns is a field here: access network (3G / LTE /
//! WiFi / 3G-pinned-in-DCH), protocol (HTTP pool vs one-or-many SPDY
//! sessions, with or without late binding), the TCP sysctls, the metrics
//! cache, the Fig. 14 keepalive ping, and the periodic site traffic that
//! §5.7 identifies as a timeout trigger.

use spdyier_cellular::{presets as cell_presets, CellularPath, Radio};
use spdyier_net::{presets as net_presets, Direction, DuplexPath, LinkVerdict, LossModel};
use spdyier_sim::{DetRng, SimDuration, SimTime};
use spdyier_tcp::TcpConfig;
use spdyier_trace::TraceLevel;
use spdyier_workload::VisitSchedule;

/// The access network between device and proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// Production 3G UMTS with the IDLE/FACH/DCH RRC machine.
    Umts3G,
    /// The same bearer with the radio pinned active (Fig. 14's ideal).
    Umts3GPinned,
    /// LTE with its faster RRC machine (§5.6.2).
    Lte,
    /// The §4.0.1 residential 802.11g/broadband control environment.
    Wifi,
}

/// Canonical CLI/manifest spelling of every access network, in the order
/// they are listed in usage strings and parse errors.
pub const NETWORK_NAMES: [(&str, NetworkKind); 4] = [
    ("3g", NetworkKind::Umts3G),
    ("3g-pinned", NetworkKind::Umts3GPinned),
    ("lte", NetworkKind::Lte),
    ("wifi", NetworkKind::Wifi),
];

/// The one place `"3g" | "lte" | "wifi" | "3g-pinned"` strings become a
/// [`NetworkKind`]: CLI subcommands and scenario manifests both parse
/// through this alias's `FromStr`.
pub type NetworkSpec = NetworkKind;

impl std::str::FromStr for NetworkKind {
    type Err = String;

    fn from_str(s: &str) -> Result<NetworkKind, String> {
        NETWORK_NAMES
            .iter()
            .find(|(name, _)| *name == s)
            .map(|&(_, kind)| kind)
            .ok_or_else(|| {
                let names: Vec<&str> = NETWORK_NAMES.iter().map(|&(n, _)| n).collect();
                format!(
                    "unknown network {s:?} (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

impl NetworkKind {
    /// The canonical CLI/manifest name ([`FromStr`] parses it back).
    pub fn cli_name(self) -> &'static str {
        NETWORK_NAMES
            .iter()
            .find(|&&(_, kind)| kind == self)
            .map(|&(name, _)| name)
            .expect("every NetworkKind is in NETWORK_NAMES")
    }

    /// Instantiate the access path.
    pub fn build(self) -> AccessPath {
        match self {
            NetworkKind::Umts3G => AccessPath::Cellular(cell_presets::umts_3g()),
            NetworkKind::Umts3GPinned => AccessPath::Cellular(cell_presets::umts_3g_pinned()),
            NetworkKind::Lte => AccessPath::Cellular(cell_presets::lte()),
            NetworkKind::Wifi => AccessPath::Plain(net_presets::broadband_wifi()),
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::Umts3G => "3G",
            NetworkKind::Umts3GPinned => "3G-pinned",
            NetworkKind::Lte => "LTE",
            NetworkKind::Wifi => "WiFi",
        }
    }
}

/// A built access path (cellular with an RRC radio, or a plain duplex
/// path).
#[derive(Debug)]
pub enum AccessPath {
    /// RRC-gated cellular bearer.
    Cellular(CellularPath),
    /// Plain wired/WiFi path.
    Plain(DuplexPath),
}

impl AccessPath {
    /// Offer a packet in `dir` at `now`.
    pub fn send(
        &mut self,
        dir: Direction,
        now: SimTime,
        bytes: u64,
        rng: &mut DetRng,
    ) -> LinkVerdict {
        match self {
            AccessPath::Cellular(p) => p.send(dir, now, bytes, rng),
            AccessPath::Plain(p) => p.send(dir, now, bytes, rng),
        }
    }

    /// Base round-trip time.
    pub fn base_rtt(&self) -> SimDuration {
        match self {
            AccessPath::Cellular(p) => p.base_rtt(),
            AccessPath::Plain(p) => p.base_rtt(),
        }
    }

    /// The radio, if this is a cellular path.
    pub fn radio_mut(&mut self) -> Option<&mut Radio> {
        match self {
            AccessPath::Cellular(p) => Some(p.radio_mut()),
            AccessPath::Plain(_) => None,
        }
    }

    /// Promotions taken so far (empty on plain paths).
    pub fn promotions(&self) -> Vec<spdyier_cellular::PromotionEvent> {
        match self {
            AccessPath::Cellular(p) => p.radio().promotions().to_vec(),
            AccessPath::Plain(_) => Vec::new(),
        }
    }

    /// Downlink drop counters `(queue_drops, loss_drops)`.
    pub fn down_drops(&self) -> (u64, u64) {
        let stats = match self {
            AccessPath::Cellular(p) => p.link(Direction::Down).stats(),
            AccessPath::Plain(p) => p.link(Direction::Down).stats(),
        };
        (stats.queue_drops, stats.loss_drops)
    }

    /// Drop counters `(queue_drops, loss_drops)` for either direction.
    pub fn drops(&self, dir: Direction) -> (u64, u64) {
        let stats = match self {
            AccessPath::Cellular(p) => p.link(dir).stats(),
            AccessPath::Plain(p) => p.link(dir).stats(),
        };
        (stats.queue_drops, stats.loss_drops)
    }

    /// Serialization (transmission) time of `bytes` in `dir`.
    pub fn serialization_time(&self, dir: Direction, bytes: u64) -> SimDuration {
        match self {
            AccessPath::Cellular(p) => p.link(dir).serialization_time(bytes),
            AccessPath::Plain(p) => p.link(dir).serialization_time(bytes),
        }
    }

    /// Radio energy consumed so far, mJ.
    pub fn energy_mj(&mut self, now: SimTime) -> f64 {
        match self {
            AccessPath::Cellular(p) => p.radio_mut().energy_mj(now),
            AccessPath::Plain(_) => 0.0,
        }
    }

    /// Inject a loss model on both directions (fault injection).
    pub fn set_loss(&mut self, loss: LossModel) {
        for dir in [Direction::Down, Direction::Up] {
            match self {
                AccessPath::Cellular(p) => {
                    let cfg = p.link(dir).config().with_loss(loss);
                    p.link_mut(dir).set_config(cfg);
                }
                AccessPath::Plain(p) => {
                    let cfg = p.link(dir).config().with_loss(loss);
                    p.link_mut(dir).set_config(cfg);
                }
            }
        }
    }
}

/// Protocol under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMode {
    /// HTTP/1.1 through the Squid-like proxy, Chrome pool limits.
    Http,
    /// SPDY/3 through the SPDY proxy.
    Spdy {
        /// Number of parallel SPDY sessions (1 in the paper's baseline;
        /// 20 in the §6.1 experiment).
        connections: usize,
        /// §6.1's late binding: responses return on whichever session can
        /// transmit, not the one that carried the request.
        late_binding: bool,
    },
}

impl ProtocolMode {
    /// The paper's baseline SPDY configuration.
    pub fn spdy() -> ProtocolMode {
        ProtocolMode::Spdy {
            connections: 1,
            late_binding: false,
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolMode::Http => "HTTP",
            ProtocolMode::Spdy {
                connections: 1,
                late_binding: false,
            } => "SPDY",
            ProtocolMode::Spdy {
                late_binding: true, ..
            } => "SPDY-latebind",
            ProtocolMode::Spdy { .. } => "SPDY-multi",
        }
    }
}

/// Periodic background site traffic (ads, analytics, refreshes — §5.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconConfig {
    /// Interval between beacons after a page finishes loading.
    pub interval: SimDuration,
    /// Beacon response size, bytes.
    pub size: u64,
    /// Beacons fired per visit before the page goes quiet (analytics and
    /// ad refreshes burst after load, then stop).
    pub max_per_visit: u32,
    /// One further beacon this long after the last regular one — a slow
    /// ad-exchange refresh or long-poll completing after the radio has
    /// fully idled (the deep mid-interval retransmission bursts of the
    /// paper's Fig. 11).
    pub late_gap: Option<SimDuration>,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        BeaconConfig {
            // Periodic site traffic (ads, analytics, refreshes — §5.7)
            // keeps arriving through the think time; each arrival finds a
            // demoted radio and pays a promotion — the paper's
            // mid-interval retransmission bursts (Fig. 11).
            interval: SimDuration::from_secs(20),
            size: 2_048,
            max_per_visit: u32::MAX,
            late_gap: None,
        }
    }
}

/// Where visited pages come from.
#[derive(Debug, Clone)]
pub enum PageSource {
    /// Synthesize from the Table 1 site specs (schedule indices are
    /// 1-based Table 1 rows); each visit uses a fresh seed fork.
    Table1,
    /// A fixed list of custom pages; schedule indices are 1-based indices
    /// into this list (the §5.2 synthetic test pages).
    Custom(Vec<spdyier_workload::WebPage>),
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Root seed; everything stochastic forks from it.
    pub seed: u64,
    /// Access network.
    pub network: NetworkKind,
    /// Protocol under test.
    pub protocol: ProtocolMode,
    /// TCP configuration for the device↔proxy leg.
    pub tcp: TcpConfig,
    /// Cache ssthresh/RTT per destination across connections (Linux
    /// default; §6.2.4 tests disabling it).
    pub cache_metrics: bool,
    /// Background ping keeping the radio in DCH (Fig. 14).
    pub keepalive_ping: Option<SimDuration>,
    /// Periodic site traffic after load (None disables).
    pub beacon: Option<BeaconConfig>,
    /// Page visit schedule.
    pub schedule: VisitSchedule,
    /// Where pages come from.
    pub pages: PageSource,
    /// Abandon a visit (censored PLT) at this deadline.
    pub visit_timeout: SimDuration,
    /// Record full TCP traces (cwnd/ssthresh/inflight).
    pub record_traces: bool,
    /// Flight-recorder level for the cross-layer event stream
    /// ([`TraceLevel::Off`] costs nothing; see `spdyier-trace`).
    pub trace_level: TraceLevel,
    /// Extra round trips charged when a SPDY (SSL) session is established.
    pub ssl_setup_rtts: u32,
    /// Close HTTP client connections idle for this long (Chrome's
    /// idle-socket reaping; keeps HTTP connections short-lived across
    /// sites as the paper observes). With the 3G demotion timers this
    /// means FINs ride CELL_FACH rather than paying a promotion.
    pub http_idle_close: Option<SimDuration>,
    /// Outstanding requests per HTTP connection. 1 reproduces the paper
    /// (Squid's pipelining was too rudimentary to enable); larger values
    /// test the Fig. 1(c) pipelining the paper could not measure.
    pub http_pipelining: usize,
    /// Override the radio's idle→active promotion delay (sensitivity
    /// sweeps; `None` keeps the preset's value).
    pub rrc_promotion_override: Option<SimDuration>,
    /// Inject random loss on the access path (fault injection; residual
    /// loss the radio link layer failed to hide).
    pub access_loss: Option<LossModel>,
    /// Dispatch at most this many events before declaring the run
    /// livelocked. Exhaustion is reported as a structured
    /// [`RunError`](crate::driver::RunError) from
    /// [`try_run_experiment`](crate::try_run_experiment) (and a panic from
    /// the infallible [`run_experiment`](crate::run_experiment)).
    pub event_budget: u64,
}

impl ExperimentConfig {
    /// The paper's baseline 3G configuration for the given protocol.
    pub fn paper_3g(protocol: ProtocolMode, seed: u64) -> ExperimentConfig {
        let rng = DetRng::new(seed);
        ExperimentConfig {
            seed,
            network: NetworkKind::Umts3G,
            protocol,
            tcp: TcpConfig::default(),
            cache_metrics: true,
            keepalive_ping: None,
            beacon: Some(BeaconConfig::default()),
            schedule: VisitSchedule::paper_default(&mut rng.fork("schedule")),
            pages: PageSource::Table1,
            visit_timeout: SimDuration::from_secs(60),
            record_traces: false,
            trace_level: TraceLevel::Off,
            ssl_setup_rtts: 2,
            http_idle_close: Some(SimDuration::from_secs(10)),
            http_pipelining: 1,
            rrc_promotion_override: None,
            access_loss: None,
            event_budget: 200_000_000,
        }
    }

    /// Builder: cap the number of dispatched events.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Builder: swap the network.
    pub fn with_network(mut self, network: NetworkKind) -> Self {
        self.network = network;
        self
    }

    /// Builder: enable tracing.
    pub fn with_traces(mut self) -> Self {
        self.record_traces = true;
        self
    }

    /// Builder: set the flight-recorder level.
    pub fn with_trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Builder: restrict the schedule.
    pub fn with_schedule(mut self, schedule: VisitSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder: visit custom pages instead of Table 1 sites.
    pub fn with_custom_pages(mut self, pages: Vec<spdyier_workload::WebPage>) -> Self {
        self.pages = PageSource::Custom(pages);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_names_round_trip_and_errors_list_choices() {
        for (name, kind) in NETWORK_NAMES {
            assert_eq!(name.parse::<NetworkKind>().unwrap(), kind);
            assert_eq!(kind.cli_name(), name);
        }
        let err = "4g".parse::<NetworkKind>().unwrap_err();
        assert!(err.contains("unknown network \"4g\""), "{err}");
        for name in ["3g", "3g-pinned", "lte", "wifi"] {
            assert!(err.contains(name), "error lists {name}: {err}");
        }
    }

    #[test]
    fn network_builders_produce_expected_paths() {
        assert!(matches!(
            NetworkKind::Umts3G.build(),
            AccessPath::Cellular(_)
        ));
        assert!(matches!(NetworkKind::Wifi.build(), AccessPath::Plain(_)));
        assert_eq!(NetworkKind::Lte.label(), "LTE");
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(ProtocolMode::Http.label(), "HTTP");
        assert_eq!(ProtocolMode::spdy().label(), "SPDY");
        assert_eq!(
            ProtocolMode::Spdy {
                connections: 20,
                late_binding: false
            }
            .label(),
            "SPDY-multi"
        );
        assert_eq!(
            ProtocolMode::Spdy {
                connections: 20,
                late_binding: true
            }
            .label(),
            "SPDY-latebind"
        );
    }

    #[test]
    fn paper_3g_defaults_match_methodology() {
        let cfg = ExperimentConfig::paper_3g(ProtocolMode::Http, 7);
        assert_eq!(cfg.schedule.order.len(), 20);
        assert_eq!(cfg.visit_timeout, SimDuration::from_secs(60));
        assert!(cfg.cache_metrics);
        assert!(cfg.keepalive_ping.is_none());
        assert!(cfg.beacon.is_some());
        assert_eq!(cfg.http_idle_close, Some(SimDuration::from_secs(10)));
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = ExperimentConfig::paper_3g(ProtocolMode::Http, 7);
        let b = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 7);
        assert_eq!(
            a.schedule.order, b.schedule.order,
            "HTTP and SPDY runs visit sites in the same order"
        );
    }
}
