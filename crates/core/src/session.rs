//! The protocol layer: a transport-agnostic [`AppSession`] contract and
//! its two implementations — [`HttpSide`] (HTTP/1.1 connection pool plus
//! HTTP proxy core) and [`SpdySide`] (SPDY/3 sessions with §6.1 late
//! binding and multi-connection support).
//!
//! Both sides are sans-IO: they never touch sockets or the event queue
//! directly for wire work. They parse bytes handed to them, record
//! progress through the [`Visits`] tag helpers, stage output bytes into
//! the [`World`]'s pipes, and surface origin work as [`SessionAction`]s
//! for the driver to execute.

use crate::config::{ExperimentConfig, ProtocolMode};
use crate::results::RunResult;
use crate::visits::{Visits, BEACON_TAG};
use crate::world::{Event, World};
use spdyier_bytes::Payload;
use spdyier_http::{
    Acquire, ConnectionPool, HttpClientConn, HttpServerConn, PoolConfig, PoolConnId, Request,
    Response,
};
use spdyier_proxy::{
    ClientConnId, FetchId, HttpProxyCore, HttpProxyOutput, ProxyObjectRecord, SpdyProxyCore,
    SpdyProxyOutput,
};
use spdyier_sim::{SimDuration, SimTime};
use spdyier_spdy::{Role, SpdyConfig, SpdyEvent, SpdySession};
use spdyier_trace::{TraceEvent, TraceLevel};
use spdyier_workload::ObjectId;
use std::collections::{HashMap, VecDeque};

/// What a client↔proxy or proxy↔origin pipe is used for.
pub(crate) enum PipeRole {
    /// One HTTP persistent connection, device↔proxy.
    HttpClient {
        /// Slot in the browser's connection pool.
        pool_id: PoolConnId,
        /// The device-side HTTP/1.1 state machine.
        http: HttpClientConn,
        /// `(generation, object-or-beacon)` requests in flight, FIFO
        /// (length 1 without pipelining).
        outstanding: VecDeque<(u64, u64)>,
        /// Requests awaiting connection establishment / a pipeline slot.
        pending: VecDeque<(u64, u64)>,
        /// First response byte of the current exchange seen.
        got_first_byte: bool,
        /// Fetch ids owed by the proxy on this connection, FIFO.
        fetch_queue: VecDeque<FetchId>,
        /// Last instant a request was issued or a response completed.
        last_use: SimTime,
        /// Evicted from the pool; closing.
        retired: bool,
    },
    /// One SPDY session, device↔proxy. Session state lives in
    /// [`SpdySide::clients`] / [`SpdySide::proxies`] at `idx`.
    SpdyClient {
        /// Session index.
        idx: usize,
    },
    /// One HTTP persistent connection, proxy↔origin.
    Origin {
        /// Origin domain this pipe serves.
        domain: String,
        /// Proxy-side HTTP/1.1 client state machine.
        http: HttpClientConn,
        /// Origin-side HTTP/1.1 server state machine.
        server: HttpServerConn,
        /// Fetch currently on the wire.
        current: Option<FetchId>,
        /// Fetches queued behind it.
        pending: VecDeque<(FetchId, Request)>,
        /// First response byte of the current fetch seen.
        got_first_byte: bool,
    },
    /// Placeholder while a role is temporarily detached for processing.
    Detached,
}

impl PipeRole {
    /// Metrics-cache keys for the (a, b) sides of a pipe with this role
    /// (§6.2.4 cross-connection ssthresh/RTT sharing).
    pub fn cache_keys(&self, over_access: bool) -> (String, String) {
        if over_access {
            ("proxy".to_string(), "device".to_string())
        } else if let PipeRole::Origin { domain, .. } = self {
            (format!("origin:{domain}"), "proxy".to_string())
        } else {
            ("wired".to_string(), "wired".to_string())
        }
    }
}

/// Device-side state of one SPDY session.
pub(crate) struct SpdyClientState {
    /// The client SPDY/3 framing state machine.
    pub session: SpdySession,
    /// Pipe carrying this session.
    pub pipe: usize,
    /// SSL setup finished; streams may open.
    pub usable: bool,
    /// SSL-setup completion event scheduled (so we only schedule once).
    pub ssl_scheduled: bool,
    /// stream → (generation, object-or-beacon, first_byte_seen)
    pub streams: HashMap<u32, (u64, u64, bool)>,
}

/// Everything outside the protocol side that a session callback may need:
/// the world (pipes/clock/queue), the visit tracker, the run's results,
/// and the configuration.
pub(crate) struct SessionCtx<'a> {
    /// Clock, queue, links, pipes.
    pub world: &'a mut World,
    /// Visit/page-load state and tag helpers.
    pub visits: &'a mut Visits,
    /// Accumulating run results.
    pub result: &'a mut RunResult,
    /// The experiment configuration.
    pub cfg: &'a ExperimentConfig,
}

/// Work a session surfaces for the driver to execute, in order.
pub(crate) enum SessionAction {
    /// Fetch an object from its origin (routed over the wired leg).
    OriginFetch {
        /// Proxy-assigned fetch id.
        fetch: FetchId,
        /// The origin-bound request.
        request: Request,
    },
    /// Stage response bytes toward the device on an HTTP client pipe.
    ClientBytes {
        /// Destination pipe index.
        pipe: usize,
        /// Encoded response bytes.
        bytes: Payload,
        /// Fetch the bytes answer (for proxy bookkeeping on delivery).
        fetch: FetchId,
    },
    /// Pump a SPDY proxy's scheduler output onto its pipe.
    PumpProxyWire {
        /// Session index.
        session: usize,
    },
}

/// A protocol side of the testbed, sans-IO. The driver feeds it parsed
/// byte streams and fetch completions; it responds by mutating pipe
/// staging queues and returning [`SessionAction`]s from
/// [`AppSession::poll_actions`].
pub(crate) trait AppSession {
    /// The first response byte for `fetch` arrived from an origin.
    fn on_fetch_first_byte(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId);
    /// An origin fetch completed with `resp`.
    fn on_fetch_complete(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId, resp: Response);
    /// Drain pending work (origin fetches, client-bound bytes, wire
    /// pumps) for the driver to execute in order.
    fn poll_actions(&mut self, ctx: &mut SessionCtx<'_>) -> Vec<SessionAction>;
    /// The earliest instant this side needs a maintenance wake-up
    /// (idle-connection close), if any.
    fn next_timeout(&self, ctx: &SessionCtx<'_>) -> Option<SimTime>;
}

// ======================================================================
// HTTP/1.1 side
// ======================================================================

/// The HTTP/1.1 protocol side: the browser's connection pool plus the
/// proxy's HTTP core.
pub(crate) struct HttpSide {
    /// Browser connection pool (per-domain and global caps).
    pub pool: ConnectionPool,
    /// Proxy-side HTTP core (request parsing, fetch bookkeeping).
    pub proxy: HttpProxyCore,
}

impl HttpSide {
    /// Fresh side with default pool limits.
    pub fn new() -> HttpSide {
        HttpSide {
            pool: ConnectionPool::new(PoolConfig::default()),
            proxy: HttpProxyCore::new(),
        }
    }

    /// Open a device↔proxy pipe and register it with the proxy core.
    fn open_client_pipe(
        &mut self,
        ctx: &mut SessionCtx<'_>,
        role: PipeRole,
        label: String,
    ) -> usize {
        let idx = ctx.world.new_pipe(ctx.result, true, role, label);
        self.proxy.on_client_connected(ClientConnId(idx as u64));
        idx
    }

    /// Device-side bytes arrived on HTTP client pipe `idx` (its role is
    /// detached into `role` by the driver).
    pub fn on_device_bytes(
        &mut self,
        ctx: &mut SessionCtx<'_>,
        idx: usize,
        role: &mut PipeRole,
        data: Payload,
    ) {
        let PipeRole::HttpClient {
            http,
            outstanding,
            got_first_byte,
            fetch_queue,
            pool_id,
            last_use,
            ..
        } = role
        else {
            return;
        };
        if let Some(&(generation, tag)) = outstanding.front() {
            if !*got_first_byte && !data.is_empty() {
                *got_first_byte = true;
                ctx.visits
                    .note_first_byte_tagged(ctx.world, generation, tag);
            }
        }
        let done = http.on_bytes(data).unwrap_or_default();
        let pool_id = *pool_id;
        for (tag, _resp) in done {
            outstanding.pop_front();
            *got_first_byte = false;
            *last_use = ctx.world.now;
            let generation = tag >> 32;
            let obj = tag & 0xFFFF_FFFF;
            if let Some(fetch) = fetch_queue.pop_front() {
                self.proxy.on_client_received(fetch, ctx.world.now);
            }
            if outstanding.is_empty() {
                self.pool.release(pool_id);
            }
            ctx.world.tracer.emit(
                ctx.world.now,
                TraceEvent::HttpResponseDone {
                    conn: idx,
                    gen: generation,
                    tag: obj,
                },
            );
            ctx.visits.note_complete_tagged(ctx.world, generation, obj);
        }
    }

    /// Issue a pipe's pending requests while the HTTP state machine can
    /// accept them. Returns whether any request was issued (a completed
    /// handshake may unblock throttled opens — the driver re-assigns).
    pub fn flush_pending(&mut self, ctx: &mut SessionCtx<'_>, idx: usize) -> bool {
        if !ctx.world.pipes[idx].a.is_established() {
            return false;
        }
        let mut issued_any = false;
        loop {
            let mut issue: Option<(u64, u64)> = None;
            if let PipeRole::HttpClient { http, pending, .. } = &mut ctx.world.pipes[idx].role {
                if http.can_send() {
                    if let Some(next) = pending.pop_front() {
                        issue = Some(next);
                    }
                }
            }
            let Some((generation, tag)) = issue else {
                break;
            };
            let request = ctx.visits.request_for(generation, tag);
            if let Some(request) = request {
                let tagged = (generation << 32) | (tag & 0xFFFF_FFFF);
                let mut wire = None;
                if let PipeRole::HttpClient {
                    http,
                    outstanding,
                    got_first_byte,
                    last_use,
                    ..
                } = &mut ctx.world.pipes[idx].role
                {
                    if outstanding.is_empty() {
                        *got_first_byte = false;
                    }
                    outstanding.push_back((generation, tag));
                    *last_use = ctx.world.now;
                    wire = Some(http.send_request(tagged, &request));
                }
                if let Some(bytes) = wire {
                    ctx.world.pipes[idx].out_a.push_back(bytes);
                }
                ctx.world.tracer.emit(
                    ctx.world.now,
                    TraceEvent::HttpRequestSent {
                        conn: idx,
                        gen: generation,
                        tag: tag & 0xFFFF_FFFF,
                    },
                );
                ctx.world.tracer.count("http.requests", 1);
                if generation == ctx.visits.visit_gen && tag != BEACON_TAG {
                    ctx.visits.note_requested(ctx.world, ObjectId(tag as u32));
                }
                issued_any = true;
            } else {
                // Stale request from an abandoned visit: skip it; release
                // the pool slot if nothing is in flight.
                let mut release: Option<PoolConnId> = None;
                if let PipeRole::HttpClient {
                    outstanding,
                    pool_id,
                    ..
                } = &ctx.world.pipes[idx].role
                {
                    if outstanding.is_empty() {
                        release = Some(*pool_id);
                    }
                }
                if let Some(pid) = release {
                    self.pool.release(pid);
                }
            }
        }
        if issued_any {
            ctx.world.mark_dirty(idx);
        }
        issued_any
    }

    /// Assign ready page objects to pooled connections (Chrome-style
    /// per-domain reuse, an 8-handshake concurrency throttle, optional
    /// pipelining).
    pub fn assign_ready(&mut self, ctx: &mut SessionCtx<'_>, ready: &[ObjectId]) {
        // Chrome throttles concurrent connection attempts; without this a
        // discovery wave would fire 30+ simultaneous handshakes and
        // synchronized slow-starts into the access queue.
        let mut connecting = ctx
            .world
            .live
            .iter()
            .map(|&i| &ctx.world.pipes[i])
            .filter(|p| {
                p.over_access
                    && matches!(p.role, PipeRole::HttpClient { .. })
                    && !p.a.is_established()
            })
            .count();
        // Shared handle so each object borrows its domain instead of
        // cloning it — this sweep re-runs on every unblocking event and
        // most passes assign nothing.
        let Some(page) = ctx.visits.current_page.clone() else {
            return;
        };
        for &obj in ready {
            let domain = page.object(obj).domain.as_str();
            // With pipelining enabled, stack further requests onto a
            // connection to this domain that still has pipeline slots.
            if ctx.cfg.http_pipelining > 1 {
                let depth = ctx.cfg.http_pipelining;
                let slot = ctx.world.live.iter().copied().find(|&i| {
                    let p = &ctx.world.pipes[i];
                    matches!(&p.role,
                            PipeRole::HttpClient { outstanding, pending, retired: false, .. }
                                if outstanding.len() + pending.len() < depth
                                    && (!outstanding.is_empty() || !pending.is_empty()))
                        && self.pool.domain_of(match &p.role {
                            PipeRole::HttpClient { pool_id, .. } => *pool_id,
                            _ => unreachable!(),
                        }) == Some(domain)
                });
                if let Some(pipe) = slot {
                    if let Some(load) = ctx.visits.load.as_mut() {
                        load.take_ready(obj);
                    }
                    if let PipeRole::HttpClient { pending, .. } = &mut ctx.world.pipes[pipe].role {
                        pending.push_back((ctx.visits.visit_gen, u64::from(obj.0)));
                    }
                    self.flush_pending(ctx, pipe);
                    ctx.world.mark_dirty(pipe);
                    continue;
                }
            }
            loop {
                match self.pool.acquire(domain) {
                    Acquire::Reuse(pid) => {
                        let Some(pipe) = self.pipe_for_pool(ctx.world, pid) else {
                            self.pool.remove(pid);
                            continue;
                        };
                        if let Some(load) = ctx.visits.load.as_mut() {
                            load.take_ready(obj);
                        }
                        if let PipeRole::HttpClient { pending, .. } =
                            &mut ctx.world.pipes[pipe].role
                        {
                            pending.push_back((ctx.visits.visit_gen, u64::from(obj.0)));
                        }
                        self.flush_pending(ctx, pipe);
                        ctx.world.mark_dirty(pipe);
                        break;
                    }
                    Acquire::Open(pid) => {
                        if connecting >= 8 {
                            // Throttled: release the slot and retry when a
                            // handshake completes.
                            self.pool.remove(pid);
                            break;
                        }
                        connecting += 1;
                        if let Some(load) = ctx.visits.load.as_mut() {
                            load.take_ready(obj);
                        }
                        let generation = ctx.visits.visit_gen;
                        let now = ctx.world.now;
                        let pipe = self.open_client_pipe(
                            ctx,
                            PipeRole::HttpClient {
                                pool_id: pid,
                                http: HttpClientConn::with_pipelining(ctx.cfg.http_pipelining),
                                outstanding: VecDeque::new(),
                                pending: VecDeque::from([(generation, u64::from(obj.0))]),
                                got_first_byte: false,
                                fetch_queue: VecDeque::new(),
                                last_use: now,
                                retired: false,
                            },
                            format!("http-{}", pid.0),
                        );
                        ctx.world.mark_dirty(pipe);
                        break;
                    }
                    Acquire::Blocked => {
                        if self.pool.at_global_cap() {
                            if let Some(evicted) = self.pool.evict_idle() {
                                if let Some(pipe) = self.pipe_for_pool(ctx.world, evicted) {
                                    self.retire_http_pipe(ctx.world, pipe);
                                }
                                continue;
                            }
                        }
                        break;
                    }
                }
            }
        }
    }

    fn pipe_for_pool(&self, world: &World, pid: PoolConnId) -> Option<usize> {
        world.live.iter().copied().find(|&i| {
            matches!(&world.pipes[i].role, PipeRole::HttpClient { pool_id, retired, .. }
                    if *pool_id == pid && !retired)
        })
    }

    /// Evict a pipe from the pool and start closing its device side.
    pub fn retire_http_pipe(&mut self, world: &mut World, idx: usize) {
        if let PipeRole::HttpClient {
            retired, pool_id, ..
        } = &mut world.pipes[idx].role
        {
            if !*retired {
                *retired = true;
                let pid = *pool_id;
                self.pool.remove(pid);
            }
        }
        world.pipes[idx].a.close(world.now);
        world.mark_dirty(idx);
    }

    /// Fire a §5.7 beacon request on a pooled (or fresh) connection.
    /// Returns whether a request was issued immediately.
    pub fn issue_beacon(&mut self, ctx: &mut SessionCtx<'_>) -> bool {
        let Some(domain) = ctx.visits.beacon_domain.clone() else {
            return false;
        };
        match self.pool.acquire(&domain) {
            Acquire::Reuse(pid) => {
                if let Some(pipe) = self.pipe_for_pool(ctx.world, pid) {
                    if let PipeRole::HttpClient { pending, .. } = &mut ctx.world.pipes[pipe].role {
                        pending.push_back((ctx.visits.visit_gen, BEACON_TAG));
                    }
                    let issued = self.flush_pending(ctx, pipe);
                    ctx.world.mark_dirty(pipe);
                    issued
                } else {
                    self.pool.remove(pid);
                    false
                }
            }
            Acquire::Open(pid) => {
                let generation = ctx.visits.visit_gen;
                let now = ctx.world.now;
                self.open_client_pipe(
                    ctx,
                    PipeRole::HttpClient {
                        pool_id: pid,
                        http: HttpClientConn::with_pipelining(ctx.cfg.http_pipelining),
                        outstanding: VecDeque::new(),
                        pending: VecDeque::from([(generation, BEACON_TAG)]),
                        got_first_byte: false,
                        fetch_queue: VecDeque::new(),
                        last_use: now,
                        retired: false,
                    },
                    format!("http-{}", pid.0),
                );
                false
            }
            Acquire::Blocked => false,
        }
    }

    /// Server-initiated periodic data (§5.7): a pending long-poll
    /// completes on one idle persistent connection; the client discards
    /// the unsolicited body.
    pub fn push_beacon(&mut self, ctx: &mut SessionCtx<'_>) {
        let Some(size) = ctx.cfg.beacon.map(|b| b.size) else {
            return;
        };
        let target = ctx.world.live.iter().copied().find(|&i| {
            let p = &ctx.world.pipes[i];
            p.b.is_established()
                && matches!(
                    &p.role,
                    PipeRole::HttpClient { outstanding, pending, retired: false, .. }
                        if outstanding.is_empty() && pending.is_empty()
                )
        });
        if let Some(idx) = target {
            let resp = Response::ok(Payload::body(size)).with_header("X-Pushed", "1");
            ctx.world.pipes[idx].out_b.push_back(resp.encode());
            ctx.world.mark_dirty(idx);
        }
    }

    /// Complete the FIN handshake on a retired pipe once the device side
    /// has closed, and tell the proxy core the client is gone.
    pub fn handle_close_handshake(&mut self, world: &mut World, idx: usize) {
        let retired = matches!(
            world.pipes[idx].role,
            PipeRole::HttpClient { retired: true, .. }
        );
        if retired && world.pipes[idx].b.peer_closed() {
            world.pipes[idx].b.close(world.now);
            self.proxy.on_client_closed(ClientConnId(idx as u64));
        }
    }

    /// Retire every idle unretired pipe whose idle time reached
    /// `max_idle`.
    pub fn idle_sweep(&mut self, world: &mut World, max_idle: SimDuration) {
        let stale: Vec<usize> = world
            .live
            .iter()
            .copied()
            .filter(|&i| {
                matches!(
                    &world.pipes[i].role,
                    PipeRole::HttpClient {
                        outstanding,
                        pending,
                        retired: false,
                        last_use,
                        ..
                    } if outstanding.is_empty()
                        && pending.is_empty()
                        && world.now.saturating_since(*last_use) >= max_idle
                )
            })
            .collect();
        for i in stale {
            self.retire_http_pipe(world, i);
        }
    }
}

impl AppSession for HttpSide {
    fn on_fetch_first_byte(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId) {
        self.proxy.on_fetch_first_byte(fetch, ctx.world.now);
    }

    fn on_fetch_complete(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId, resp: Response) {
        self.proxy.on_fetch_complete(fetch, resp, ctx.world.now);
    }

    fn poll_actions(&mut self, _ctx: &mut SessionCtx<'_>) -> Vec<SessionAction> {
        let mut actions = Vec::new();
        while let Some(out) = self.proxy.poll_output() {
            match out {
                HttpProxyOutput::Fetch { fetch, request } => {
                    actions.push(SessionAction::OriginFetch { fetch, request });
                }
                HttpProxyOutput::ToClient { conn, bytes, fetch } => {
                    actions.push(SessionAction::ClientBytes {
                        pipe: conn.0 as usize,
                        bytes,
                        fetch,
                    });
                }
            }
        }
        actions
    }

    fn next_timeout(&self, ctx: &SessionCtx<'_>) -> Option<SimTime> {
        let max_idle = ctx.cfg.http_idle_close?;
        ctx.world
            .pipes
            .iter()
            .filter_map(|p| {
                if p.closed {
                    return None;
                }
                match &p.role {
                    PipeRole::HttpClient {
                        outstanding,
                        pending,
                        retired: false,
                        last_use,
                        ..
                    } if outstanding.is_empty() && pending.is_empty() => Some(*last_use + max_idle),
                    _ => None,
                }
            })
            .min()
    }
}

// ======================================================================
// SPDY/3 side
// ======================================================================

/// The SPDY/3 protocol side: client sessions, per-session proxy cores,
/// and the §6.1 late-binding response routing.
pub(crate) struct SpdySide {
    /// Device-side session state, one per configured connection.
    pub clients: Vec<SpdyClientState>,
    /// Proxy-side SPDY cores, one per session.
    pub proxies: Vec<SpdyProxyCore>,
    /// fetch → owning session index.
    pub fetch_owner: HashMap<FetchId, usize>,
    /// fetch → `(generation, object-or-beacon)` for late-binding delivery.
    pub fetch_tag: HashMap<FetchId, (u64, u64)>,
    /// `(session, stream)` of a late-bound response → `(owner, fetch)`.
    pub late_stream_fetch: HashMap<(usize, u32), (usize, FetchId)>,
    /// Round-robin cursor over usable sessions.
    pub rr: usize,
    /// Sessions whose proxy scheduler needs a wire pump, in touch order.
    pending_pump: Vec<usize>,
}

impl SpdySide {
    /// Fresh side with no sessions yet.
    pub fn new() -> SpdySide {
        SpdySide {
            clients: Vec::new(),
            proxies: Vec::new(),
            fetch_owner: HashMap::new(),
            fetch_tag: HashMap::new(),
            late_stream_fetch: HashMap::new(),
            rr: 0,
            pending_pump: Vec::new(),
        }
    }

    /// Open one SPDY session (pipe + client state + proxy core). The
    /// driver services pipes afterwards.
    pub fn open_session(&mut self, ctx: &mut SessionCtx<'_>) {
        let sidx = self.clients.len();
        let pipe = ctx.world.new_pipe(
            ctx.result,
            true,
            PipeRole::SpdyClient { idx: sidx },
            format!("spdy-{sidx}"),
        );
        self.clients.push(SpdyClientState {
            session: SpdySession::new(Role::Client, SpdyConfig::default()),
            pipe,
            usable: false,
            streams: HashMap::new(),
            ssl_scheduled: false,
        });
        // Distinct fetch-id spaces per session (shared owner map).
        self.proxies.push(SpdyProxyCore::with_fetch_offset(
            SpdyConfig::default(),
            sidx as u64 * 1_000_000,
        ));
        ctx.world.mark_dirty(pipe);
    }

    /// Device-side bytes arrived on a session's pipe: parse frames,
    /// record object progress, credit flow-control windows.
    pub fn handle_client_bytes(&mut self, ctx: &mut SessionCtx<'_>, sidx: usize, data: Payload) {
        let events = match self.clients[sidx].session.on_bytes(data) {
            Ok(ev) => ev,
            Err(e) => {
                debug_assert!(false, "client session {sidx} frame error: {e}");
                return;
            }
        };
        let pipe = self.clients[sidx].pipe;
        for ev in events {
            if ctx.world.tracer.active(TraceLevel::Full) {
                let (kind, stream, fin) = match &ev {
                    SpdyEvent::Reply { stream_id, fin, .. } => ("Reply", *stream_id, *fin),
                    SpdyEvent::Data { stream_id, fin, .. } => ("Data", *stream_id, *fin),
                    SpdyEvent::StreamOpened { stream_id, .. } => {
                        ("StreamOpened", *stream_id, false)
                    }
                    SpdyEvent::Ping(_) => ("Ping", 0, false),
                    SpdyEvent::Reset { .. } => ("Reset", 0, false),
                    SpdyEvent::Goaway => ("Goaway", 0, false),
                };
                ctx.world.tracer.emit(
                    ctx.world.now,
                    TraceEvent::SpdyFrameRecv {
                        conn: pipe,
                        stream,
                        kind: kind.to_string(),
                        fin,
                    },
                );
            }
            match ev {
                SpdyEvent::Reply { stream_id, fin, .. } => {
                    if let Some(&(generation, tag, _)) = self.clients[sidx].streams.get(&stream_id)
                    {
                        ctx.visits
                            .note_first_byte_tagged(ctx.world, generation, tag);
                        if let Some(e) = self.clients[sidx].streams.get_mut(&stream_id) {
                            e.2 = true;
                        }
                        if fin {
                            self.stream_done(ctx, sidx, stream_id);
                        }
                    }
                }
                SpdyEvent::Data {
                    stream_id,
                    payload,
                    fin,
                } => {
                    // Credit every stream (including server-pushed ones).
                    self.clients[sidx]
                        .session
                        .consume(stream_id, payload.len() as u32);
                    if let Some(&(generation, tag, first_seen)) =
                        self.clients[sidx].streams.get(&stream_id)
                    {
                        if !first_seen {
                            ctx.visits
                                .note_first_byte_tagged(ctx.world, generation, tag);
                            if let Some(e) = self.clients[sidx].streams.get_mut(&stream_id) {
                                e.2 = true;
                            }
                        }
                        if fin {
                            self.stream_done(ctx, sidx, stream_id);
                        }
                    }
                }
                SpdyEvent::StreamOpened {
                    stream_id, headers, ..
                } => {
                    // A late-bound response arrives on a server-initiated
                    // stream tagged with the original request identity.
                    let get = |k: &str| {
                        headers
                            .iter()
                            .find(|(n, _)| n == k)
                            .and_then(|(_, v)| v.parse::<u64>().ok())
                    };
                    if let (Some(generation), Some(tag)) = (get("x-late-gen"), get("x-late-tag")) {
                        if tag != BEACON_TAG {
                            ctx.visits
                                .note_first_byte_tagged(ctx.world, generation, tag);
                            self.clients[sidx]
                                .streams
                                .insert(stream_id, (generation, tag, true));
                        }
                    }
                }
                SpdyEvent::Ping(_) | SpdyEvent::Reset { .. } | SpdyEvent::Goaway => {}
            }
        }
        // consume() may have queued WINDOW_UPDATEs on the client session.
        self.pump_client_wire(ctx.world, sidx);
        ctx.world.mark_dirty(pipe);
    }

    fn stream_done(&mut self, ctx: &mut SessionCtx<'_>, sidx: usize, stream_id: u32) {
        let Some((generation, tag, _)) = self.clients[sidx].streams.remove(&stream_id) else {
            return;
        };
        if let Some((owner, fetch)) = self.late_stream_fetch.remove(&(sidx, stream_id)) {
            self.proxies[owner].on_client_received(fetch, ctx.world.now);
        } else if let Some(fetch) = self.proxies[sidx].fetch_for_stream(stream_id) {
            self.proxies[sidx].on_client_received(fetch, ctx.world.now);
        }
        ctx.visits.note_complete_tagged(ctx.world, generation, tag);
    }

    /// Proxy-side bytes arrived from the device on session `sidx`.
    pub fn on_client_bytes(&mut self, sidx: usize, data: Payload, now: SimTime) {
        self.proxies[sidx].on_client_bytes(data, now);
        self.pending_pump.push(sidx);
    }

    /// Move SPDY proxy wire bytes into the pipe's staging queue while the
    /// staging queue is shallow — keeping priority decisions late.
    pub fn pump_proxy_wire(&mut self, world: &mut World, sidx: usize) {
        let pipe = self.clients[sidx].pipe;
        if world.pipes[pipe].closed {
            return;
        }
        let mut staged: u64 = world.pipes[pipe].out_b.iter().map(|b| b.len()).sum();
        let space = world.pipes[pipe].b.send_space();
        while staged < space.max(8 * 1024) {
            match self.proxies[sidx].poll_wire() {
                Some(wire) => {
                    staged += wire.len();
                    world.pipes[pipe].out_b.push_back(wire);
                }
                None => break,
            }
        }
        world.mark_dirty(pipe);
    }

    /// Move client-session frames into the pipe's device-side staging
    /// queue (once SSL setup has finished).
    pub fn pump_client_wire(&mut self, world: &mut World, sidx: usize) {
        let pipe = self.clients[sidx].pipe;
        if world.pipes[pipe].closed || !self.clients[sidx].usable {
            return;
        }
        while let Some(wire) = self.clients[sidx].session.poll_wire() {
            world.pipes[pipe].out_a.push_back(wire);
        }
        world.mark_dirty(pipe);
    }

    /// Once a session's pipe is established, schedule its SSL-setup
    /// completion (a configured number of RTTs away), exactly once.
    pub fn detect_ssl_ready(&mut self, ctx: &mut SessionCtx<'_>, idx: usize) {
        if let PipeRole::SpdyClient { idx: sidx } = ctx.world.pipes[idx].role {
            if !self.clients[sidx].usable
                && ctx.world.pipes[idx].a.is_established()
                && !self.clients[sidx].ssl_scheduled
            {
                let delay = ctx
                    .world
                    .access
                    .base_rtt()
                    .saturating_mul(u64::from(ctx.cfg.ssl_setup_rtts));
                let at = ctx.world.now + delay;
                ctx.world.queue.schedule(at, Event::SslReady { pipe: idx });
                self.clients[sidx].ssl_scheduled = true;
            }
        }
    }

    /// SSL setup finished: the session becomes usable and any queued
    /// frames go out.
    pub fn on_ssl_ready(&mut self, world: &mut World, sidx: usize) {
        self.clients[sidx].usable = true;
        self.pump_client_wire(world, sidx);
    }

    /// Assign ready page objects round-robin over usable sessions.
    pub fn assign_ready(&mut self, ctx: &mut SessionCtx<'_>, ready: &[ObjectId]) {
        if self.clients.is_empty() {
            return;
        }
        for &obj in ready {
            // Round-robin over usable sessions.
            let n = self.clients.len();
            let mut chosen = None;
            for k in 0..n {
                let s = (self.rr + k) % n;
                if self.clients[s].usable {
                    chosen = Some(s);
                    break;
                }
            }
            let Some(sidx) = chosen else {
                return; // no session ready yet (SSL still setting up)
            };
            self.rr = (sidx + 1) % n;
            let (domain, path, priority) = {
                let Some(page) = ctx.visits.current_page.as_ref() else {
                    return;
                };
                let o = page.object(obj);
                (o.domain.clone(), o.path.clone(), o.kind.spdy_priority())
            };
            let mut headers = vec![
                (":method".to_string(), "GET".to_string()),
                (":host".to_string(), domain.clone()),
                (":path".to_string(), path),
                (":scheme".to_string(), "https".to_string()),
            ];
            headers.extend(ctx.visits.cached_headers(&domain).iter().cloned());
            let stream = {
                self.clients[sidx]
                    .session
                    .open_stream(headers, priority, true)
            };
            self.clients[sidx]
                .streams
                .insert(stream, (ctx.visits.visit_gen, u64::from(obj.0), false));
            ctx.world.tracer.emit(
                ctx.world.now,
                TraceEvent::SpdyStreamOpen {
                    conn: self.clients[sidx].pipe,
                    stream,
                    gen: ctx.visits.visit_gen,
                    tag: u64::from(obj.0),
                },
            );
            ctx.world.tracer.count("spdy.streams_opened", 1);
            ctx.visits.note_requested(ctx.world, obj);
            self.pump_client_wire(ctx.world, sidx);
        }
    }

    /// Fire a §5.7 beacon request on the first usable session.
    pub fn issue_beacon(&mut self, ctx: &mut SessionCtx<'_>) -> bool {
        let Some(domain) = ctx.visits.beacon_domain.clone() else {
            return false;
        };
        if let Some(sidx) = (0..self.clients.len()).find(|&s| self.clients[s].usable) {
            let mut headers = vec![
                (":method".to_string(), "GET".to_string()),
                (":host".to_string(), domain.clone()),
                (":path".to_string(), "/beacon.gif".to_string()),
            ];
            headers.extend(ctx.visits.cached_headers(&domain).iter().cloned());
            let stream = self.clients[sidx].session.open_stream(headers, 4, true);
            self.clients[sidx]
                .streams
                .insert(stream, (ctx.visits.visit_gen, BEACON_TAG, false));
            self.pump_client_wire(ctx.world, sidx);
        }
        false
    }

    /// Server-initiated periodic data (§5.7): the proxy pushes unsolicited
    /// bytes (a completed long-poll, a refreshed ad) into what may be an
    /// idle radio — the transfer pattern whose spurious timeouts collapse
    /// the sender's window with no request to pre-pay the promotion.
    pub fn push_beacon(&mut self, ctx: &mut SessionCtx<'_>) {
        let Some(size) = ctx.cfg.beacon.map(|b| b.size) else {
            return;
        };
        if let Some(sidx) = (0..self.clients.len()).find(|&s| self.clients[s].usable) {
            self.proxies[sidx].push_data("/push/refresh", Payload::body(size));
            self.pump_proxy_wire(ctx.world, sidx);
        }
    }
}

impl AppSession for SpdySide {
    fn on_fetch_first_byte(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId) {
        if let Some(&sidx) = self.fetch_owner.get(&fetch) {
            self.proxies[sidx].on_fetch_first_byte(fetch, ctx.world.now);
        }
    }

    fn on_fetch_complete(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId, resp: Response) {
        let Some(&sidx) = self.fetch_owner.get(&fetch) else {
            return;
        };
        let late = matches!(
            ctx.cfg.protocol,
            ProtocolMode::Spdy {
                late_binding: true,
                ..
            }
        );
        if !late {
            self.proxies[sidx].on_fetch_complete(fetch, resp, ctx.world.now);
            self.pending_pump.push(sidx);
            return;
        }
        // §6.1 late binding: deliver on whichever session's connection can
        // transmit soonest (least send backlog), on a tagged
        // server-initiated stream.
        self.proxies[sidx].stamp_complete(fetch, ctx.world.now);
        let best = {
            let world = &*ctx.world;
            (0..self.clients.len())
                .filter(|&s| self.clients[s].usable)
                .min_by_key(|&s| {
                    let pipe = self.clients[s].pipe;
                    let staged: u64 = world.pipes[pipe].out_b.iter().map(|b| b.len()).sum();
                    world.pipes[pipe].b.send_queue_len()
                        + world.pipes[pipe].b.bytes_in_flight()
                        + staged
                        + self.proxies[s].session().pending_bytes()
                })
                .unwrap_or(sidx)
        };
        ctx.world.tracer.emit(
            ctx.world.now,
            TraceEvent::ProxyLateBind {
                fetch: fetch.0,
                owner_session: sidx,
                chosen_session: best,
            },
        );
        let (generation, tag) = self
            .fetch_tag
            .get(&fetch)
            .copied()
            .unwrap_or((0, BEACON_TAG));
        let headers = vec![
            (":status".to_string(), resp.status.to_string()),
            ("x-late-gen".to_string(), generation.to_string()),
            ("x-late-tag".to_string(), tag.to_string()),
        ];
        let stream = self.proxies[best].push_with_headers(headers, resp.body, 2);
        self.late_stream_fetch.insert((best, stream), (sidx, fetch));
        self.pending_pump.push(best);
    }

    fn poll_actions(&mut self, _ctx: &mut SessionCtx<'_>) -> Vec<SessionAction> {
        let mut actions = Vec::new();
        for sidx in 0..self.proxies.len() {
            while let Some(out) = self.proxies[sidx].poll_output() {
                match out {
                    SpdyProxyOutput::Fetch { fetch, request } => {
                        self.fetch_owner.insert(fetch, sidx);
                        if let Some(stream) = self.proxies[sidx].stream_of(fetch) {
                            if let Some(&(generation, tag, _)) =
                                self.clients[sidx].streams.get(&stream)
                            {
                                self.fetch_tag.insert(fetch, (generation, tag));
                            }
                        }
                        actions.push(SessionAction::OriginFetch { fetch, request });
                    }
                }
            }
        }
        for sidx in std::mem::take(&mut self.pending_pump) {
            actions.push(SessionAction::PumpProxyWire { session: sidx });
        }
        actions
    }

    fn next_timeout(&self, _ctx: &SessionCtx<'_>) -> Option<SimTime> {
        None
    }
}

// ======================================================================
// Protocol dispatch
// ======================================================================

/// The active protocol side for one run.
pub(crate) enum Side {
    /// HTTP/1.1 with a browser connection pool.
    Http(HttpSide),
    /// SPDY/3 sessions (optionally late-binding, multi-connection).
    Spdy(SpdySide),
}

impl Side {
    /// Build the side matching the configured protocol.
    pub fn for_cfg(cfg: &ExperimentConfig) -> Side {
        match cfg.protocol {
            ProtocolMode::Http => Side::Http(HttpSide::new()),
            ProtocolMode::Spdy { .. } => Side::Spdy(SpdySide::new()),
        }
    }

    /// Refill callback for [`World::flush_staged`]: the SPDY proxy keeps
    /// frames unscheduled until send-buffer space exists.
    pub fn refill(&mut self, role: &PipeRole) -> Option<Payload> {
        if let (Side::Spdy(spdy), PipeRole::SpdyClient { idx }) = (self, role) {
            spdy.proxies[*idx].poll_wire()
        } else {
            None
        }
    }

    /// Issue pending requests unblocked by connection establishment.
    pub fn flush_pending(&mut self, ctx: &mut SessionCtx<'_>, idx: usize) -> bool {
        match self {
            Side::Http(h) => h.flush_pending(ctx, idx),
            Side::Spdy(_) => false,
        }
    }

    /// Side-specific post-read hook: FIN handshakes on retired HTTP
    /// pipes; SSL-ready detection on SPDY pipes.
    pub fn post_read(&mut self, ctx: &mut SessionCtx<'_>, idx: usize) {
        match self {
            Side::Http(h) => h.handle_close_handshake(ctx.world, idx),
            Side::Spdy(s) => s.detect_ssl_ready(ctx, idx),
        }
    }

    /// Assign ready page objects to connections/streams.
    pub fn assign_ready(&mut self, ctx: &mut SessionCtx<'_>, ready: &[ObjectId]) {
        match self {
            Side::Http(h) => h.assign_ready(ctx, ready),
            Side::Spdy(s) => s.assign_ready(ctx, ready),
        }
    }

    /// Fire a beacon request; returns whether one was issued immediately.
    pub fn issue_beacon(&mut self, ctx: &mut SessionCtx<'_>) -> bool {
        match self {
            Side::Http(h) => h.issue_beacon(ctx),
            Side::Spdy(s) => s.issue_beacon(ctx),
        }
    }

    /// Push server-initiated beacon data toward the device.
    pub fn push_beacon(&mut self, ctx: &mut SessionCtx<'_>) {
        match self {
            Side::Http(h) => h.push_beacon(ctx),
            Side::Spdy(s) => s.push_beacon(ctx),
        }
    }

    /// All per-object proxy records accumulated this run.
    pub fn proxy_records(&self) -> Vec<ProxyObjectRecord> {
        match self {
            Side::Http(h) => h.proxy.records().into_iter().cloned().collect(),
            Side::Spdy(s) => {
                let mut records = Vec::new();
                for p in &s.proxies {
                    for r in p.records() {
                        records.push(r.clone());
                    }
                }
                records
            }
        }
    }
}

impl AppSession for Side {
    fn on_fetch_first_byte(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId) {
        match self {
            Side::Http(h) => h.on_fetch_first_byte(ctx, fetch),
            Side::Spdy(s) => s.on_fetch_first_byte(ctx, fetch),
        }
    }

    fn on_fetch_complete(&mut self, ctx: &mut SessionCtx<'_>, fetch: FetchId, resp: Response) {
        match self {
            Side::Http(h) => h.on_fetch_complete(ctx, fetch, resp),
            Side::Spdy(s) => s.on_fetch_complete(ctx, fetch, resp),
        }
    }

    fn poll_actions(&mut self, ctx: &mut SessionCtx<'_>) -> Vec<SessionAction> {
        match self {
            Side::Http(h) => h.poll_actions(ctx),
            Side::Spdy(s) => s.poll_actions(ctx),
        }
    }

    fn next_timeout(&self, ctx: &SessionCtx<'_>) -> Option<SimTime> {
        match self {
            Side::Http(h) => h.next_timeout(ctx),
            Side::Spdy(s) => s.next_timeout(ctx),
        }
    }
}
