//! Cross-layer analysis: attributing TCP retransmissions to radio-state
//! transitions — the analytical core of the paper's §5.5–§5.7.

use crate::results::RunResult;
use serde::Serialize;
use spdyier_sim::SimDuration;

/// Per-run cross-layer attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CrossLayerReport {
    /// Total TCP retransmissions observed on the access path.
    pub retransmissions: u64,
    /// RTO-driven retransmissions (vs fast retransmits).
    pub timeouts: u64,
    /// Actual packet drops on the downlink (queue + loss).
    pub downlink_drops: u64,
    /// Retransmissions not explained by an actual drop — the spurious
    /// estimate (the paper found essentially *all* were spurious on 3G).
    pub spurious_estimate: u64,
    /// Retransmissions falling inside (or just after) an RRC promotion.
    pub promotion_correlated: u64,
    /// RRC promotions during the run.
    pub promotions: u64,
    /// RFC 2861 idle restarts taken by senders.
    pub idle_restarts: u64,
    /// Fraction of retransmissions that are promotion-correlated.
    pub promotion_fraction: f64,
}

/// Analyze one run.
#[allow(clippy::field_reassign_with_default)]
pub fn analyze(result: &RunResult) -> CrossLayerReport {
    let rtx = result.total_retransmissions;
    let (queue_drops, loss_drops) = result.downlink_drops;
    let drops = queue_drops + loss_drops;
    let spurious = rtx.saturating_sub(drops);
    let correlated = result.promotion_correlated_rtx(SimDuration::from_secs(1)) as u64;
    CrossLayerReport {
        retransmissions: rtx,
        timeouts: result.total_timeouts,
        downlink_drops: drops,
        spurious_estimate: spurious,
        promotion_correlated: correlated,
        promotions: result.promotions.len() as u64,
        idle_restarts: result.total_idle_restarts,
        promotion_fraction: if rtx == 0 {
            0.0
        } else {
            correlated as f64 / rtx as f64
        },
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use spdyier_cellular::{PromotionEvent, PromotionKind};
    use spdyier_sim::SimTime;

    #[test]
    fn spurious_estimate_subtracts_real_drops() {
        let mut r = RunResult::default();
        r.total_retransmissions = 50;
        r.downlink_drops = (3, 2);
        let report = analyze(&r);
        assert_eq!(report.spurious_estimate, 45);
        assert_eq!(report.downlink_drops, 5);
    }

    #[test]
    fn promotion_fraction_counts_windowed_rtx() {
        let mut r = RunResult::default();
        r.total_retransmissions = 4;
        r.promotions.push(PromotionEvent {
            start: SimTime::from_secs(5),
            done: SimTime::from_secs(7),
            kind: PromotionKind::IdleToDch,
        });
        r.retransmissions.mark(SimTime::from_secs(6));
        r.retransmissions.mark(SimTime::from_millis(7_200));
        r.retransmissions.mark(SimTime::from_secs(20));
        r.retransmissions.mark(SimTime::from_secs(21));
        let report = analyze(&r);
        assert_eq!(report.promotion_correlated, 2);
        assert!((report.promotion_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_rtx_zero_fraction() {
        let report = analyze(&RunResult::default());
        assert_eq!(report.promotion_fraction, 0.0);
        assert_eq!(report.spurious_estimate, 0);
    }
}
