//! Run results: everything the paper's figures are computed from.

use serde::Serialize;
use spdyier_browser::ObjectTiming;
use spdyier_cellular::PromotionEvent;
use spdyier_proxy::ProxyObjectRecord;
use spdyier_sim::{EventMarks, SimDuration, SimTime, TimeSeries};
use spdyier_tcp::{TcpStats, TcpTrace};

/// Outcome of one page visit.
#[derive(Debug, Serialize)]
pub struct VisitResult {
    /// 1-based Table 1 site index.
    pub site: u32,
    /// Visit start instant.
    pub start: SimTime,
    /// onLoad instant, if the page finished before the deadline.
    pub onload: Option<SimTime>,
    /// Page load time, ms (censored at the visit timeout when unfinished).
    pub plt_ms: f64,
    /// Whether the load finished before the deadline.
    pub completed: bool,
    /// Per-object timing records (index = object id).
    pub object_timings: Vec<ObjectTiming>,
    /// Objects on the page.
    pub object_count: usize,
    /// Total body bytes on the page.
    pub total_bytes: u64,
}

/// Per-connection trace bundle.
#[derive(Debug, Serialize)]
pub struct ConnTraceResult {
    /// Label (`"spdy-0"`, `"http-17"`).
    pub label: String,
    /// When the connection was opened.
    pub opened: SimTime,
    /// TCP counters at close/end.
    pub stats: TcpStats,
    /// Full trace if tracing was on.
    pub trace: Option<TcpTrace>,
}

/// Everything measured during one run (one pass over the schedule).
#[derive(Debug, Default, Serialize)]
pub struct RunResult {
    /// Protocol label.
    pub protocol: String,
    /// Network label.
    pub network: String,
    /// Root seed.
    pub seed: u64,
    /// Per-visit outcomes in schedule order.
    pub visits: Vec<VisitResult>,
    /// Downlink payload bytes delivered to the device, one sample per
    /// segment arrival (bin for Fig. 9).
    pub client_downlink_bytes: TimeSeries,
    /// Total unacknowledged bytes across device↔proxy connections,
    /// sampled on change (Fig. 10).
    pub inflight_bytes: TimeSeries,
    /// Retransmission instants across all proxy-side senders (Figs. 11–13).
    pub retransmissions: EventMarks,
    /// Traces of the device↔proxy connections (proxy side — the bulk
    /// sender).
    pub conn_traces: Vec<ConnTraceResult>,
    /// RRC promotions taken by the device radio.
    pub promotions: Vec<PromotionEvent>,
    /// Proxy-side object records (Fig. 8).
    pub proxy_records: Vec<ProxyObjectRecord>,
    /// Downlink drops `(queue, loss)` on the access path.
    pub downlink_drops: (u64, u64),
    /// Radio energy over the run, mJ.
    pub energy_mj: f64,
    /// Client↔proxy connections opened over the run.
    pub connections_opened: u64,
    /// Aggregate TCP retransmission count (all client-path senders).
    pub total_retransmissions: u64,
    /// Aggregate RTO firings.
    pub total_timeouts: u64,
    /// Aggregate idle restarts.
    pub total_idle_restarts: u64,
}

impl RunResult {
    /// An empty result stamped with the run's identity triple.
    pub fn new(protocol: &str, network: &str, seed: u64) -> RunResult {
        RunResult {
            protocol: protocol.to_string(),
            network: network.to_string(),
            seed,
            ..RunResult::default()
        }
    }

    /// Page load times in ms, completed visits only.
    pub fn plts_ms(&self) -> Vec<f64> {
        self.visits
            .iter()
            .filter(|v| v.completed)
            .map(|v| v.plt_ms)
            .collect()
    }

    /// Page load times in ms for a specific site across this run.
    pub fn plts_for_site(&self, site: u32) -> Vec<f64> {
        self.visits
            .iter()
            .filter(|v| v.site == site && v.completed)
            .map(|v| v.plt_ms)
            .collect()
    }

    /// Mean over per-visit mean throughput (bytes/s) while loading.
    pub fn mean_load_throughput(&self) -> f64 {
        let mut rates = Vec::new();
        for v in &self.visits {
            if let Some(onload) = v.onload {
                let dur = onload.saturating_since(v.start).as_secs_f64();
                if dur > 0.0 {
                    rates.push(v.total_bytes as f64 / dur);
                }
            }
        }
        if rates.is_empty() {
            0.0
        } else {
            rates.iter().sum::<f64>() / rates.len() as f64
        }
    }

    /// Visits completed / total.
    pub fn completion_rate(&self) -> f64 {
        if self.visits.is_empty() {
            return 0.0;
        }
        self.visits.iter().filter(|v| v.completed).count() as f64 / self.visits.len() as f64
    }

    /// Retransmissions whose instant falls inside (or within `slack` after)
    /// a recorded RRC promotion — the spurious-by-promotion signature.
    pub fn promotion_correlated_rtx(&self, slack: SimDuration) -> usize {
        self.retransmissions
            .times()
            .filter(|&t| {
                self.promotions
                    .iter()
                    .any(|p| t >= p.start && t <= p.done + slack)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_cellular::PromotionKind;

    fn visit(site: u32, plt_ms: f64, completed: bool) -> VisitResult {
        VisitResult {
            site,
            start: SimTime::ZERO,
            onload: completed.then(|| SimTime::from_millis(plt_ms as u64)),
            plt_ms,
            completed,
            object_timings: vec![],
            object_count: 10,
            total_bytes: 100_000,
        }
    }

    #[test]
    fn plts_filter_incomplete() {
        let mut r = RunResult::default();
        r.visits.push(visit(1, 5_000.0, true));
        r.visits.push(visit(2, 60_000.0, false));
        r.visits.push(visit(1, 7_000.0, true));
        assert_eq!(r.plts_ms(), vec![5_000.0, 7_000.0]);
        assert_eq!(r.plts_for_site(1), vec![5_000.0, 7_000.0]);
        assert!((r.completion_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_uses_load_window() {
        let mut r = RunResult::default();
        let mut v = visit(1, 2_000.0, true);
        v.onload = Some(SimTime::from_secs(2));
        v.total_bytes = 1_000_000;
        r.visits.push(v);
        assert!((r.mean_load_throughput() - 500_000.0).abs() < 1.0);
    }

    #[test]
    fn promotion_correlation_counts_rtx_in_windows() {
        let mut r = RunResult::default();
        r.promotions.push(PromotionEvent {
            start: SimTime::from_secs(10),
            done: SimTime::from_secs(12),
            kind: PromotionKind::IdleToDch,
        });
        r.retransmissions.mark(SimTime::from_secs(11)); // inside
        r.retransmissions.mark(SimTime::from_millis(12_500)); // within slack
        r.retransmissions.mark(SimTime::from_secs(30)); // outside
        assert_eq!(r.promotion_correlated_rtx(SimDuration::from_secs(1)), 2);
    }
}
