//! # spdyier-core
//!
//! The assembled testbed for *"Towards a SPDY'ier Mobile Web?"*: a
//! deterministic discrete-event driver that loads real synthesized pages
//! through real HTTP/1.1 or SPDY/3 protocol stacks, over real sans-IO TCP
//! connections, across an RRC-gated cellular (or WiFi) access path and a
//! wired cloud path to modelled origins — reproducing the paper's
//! measurement topology (its Fig. 2) end to end.
//!
//! ```no_run
//! use spdyier_core::{run_experiment, ExperimentConfig, ProtocolMode};
//!
//! let cfg = ExperimentConfig::paper_3g(ProtocolMode::Http, /*seed*/ 1);
//! let result = run_experiment(cfg);
//! println!("median-ish PLT sample: {:?} ms", result.plts_ms().first());
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod analyzer;
pub mod attribution;
pub mod config;
pub mod contract;
pub mod driver;
pub mod export;
pub mod results;
mod session;
mod visits;
pub mod waterfall;
mod world;

pub use attribution::{attribute_stalls, stall_file, StallBreakdown};
pub use config::{
    AccessPath, BeaconConfig, ExperimentConfig, NetworkKind, NetworkSpec, ProtocolMode,
    NETWORK_NAMES,
};
pub use contract::{
    junit_xml, paired_meta_file, stall_manifest_file, AssertionVerdict, ScenarioExit,
    VerdictStatus, PAIRED_DUMP_SCHEMA_VERSION, RESULT_SCHEMA_VERSION, STALL_TABLE_SCHEMA_VERSION,
};
pub use driver::{
    run_experiment, run_experiment_traced, try_run_experiment, try_run_experiment_traced, RunError,
    Testbed,
};
pub use export::{export_run, metrics_file, write_to_dir, DataFile, METRICS_SCHEMA_VERSION};
pub use results::{ConnTraceResult, RunResult, VisitResult};
pub use spdyier_trace::{FlightLog, TraceLevel};
pub use waterfall::{
    waterfall, waterfall_json, waterfall_traced, waterfall_traced_json, Waterfall,
};
