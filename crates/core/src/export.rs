//! Trace export: turn a [`RunResult`] into plotter-friendly column files
//! (gnuplot/pgfplots/pandas all read them) — the testbed's analogue of the
//! paper's tcpdump + `tcp_probe` post-processing scripts.

use crate::results::RunResult;
use serde::Serialize;
use spdyier_sim::{SimDuration, SimTime};
use spdyier_trace::MetricsRegistry;
use std::fmt::Write as _;

/// One exported data file: a name and whitespace-separated columns with a
/// `#`-prefixed header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFile {
    /// Suggested file name (`cwnd_spdy-0.dat`).
    pub name: String,
    /// File contents.
    pub contents: String,
}

/// Schema version stamped into `metrics_*.json` (bump on breaking
/// key-set changes; the golden-schema tests pin it).
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Render a metrics registry as the schema-versioned `metrics_*.json`
/// artifact (`label` is the lowercase protocol, e.g. `"spdy"`).
pub fn metrics_file(label: &str, metrics: &MetricsRegistry) -> DataFile {
    let body = serde::Value::Object(vec![
        (
            "schema_version".to_string(),
            METRICS_SCHEMA_VERSION.to_value(),
        ),
        ("metrics".to_string(), metrics.to_value()),
    ]);
    DataFile {
        name: format!("metrics_{label}.json"),
        contents: serde_json::to_string_pretty(&body).expect("metrics serialize"),
    }
}

/// Export everything plottable from a run.
pub fn export_run(result: &RunResult) -> Vec<DataFile> {
    let mut files = vec![
        plt_file(result),
        downlink_file(result),
        inflight_file(result),
        retransmissions_file(result),
        promotions_file(result),
        proxy_records_file(result),
    ];
    for ct in &result.conn_traces {
        if let Some(trace) = &ct.trace {
            if !trace.cwnd_segments.is_empty() {
                files.push(cwnd_file(&ct.label, trace));
            }
        }
    }
    files
}

fn plt_file(result: &RunResult) -> DataFile {
    let mut s = String::from("# visit site start_s plt_ms completed objects bytes\n");
    for (i, v) in result.visits.iter().enumerate() {
        let _ = writeln!(
            s,
            "{} {} {:.3} {:.1} {} {} {}",
            i + 1,
            v.site,
            v.start.as_secs_f64(),
            v.plt_ms,
            u8::from(v.completed),
            v.object_count,
            v.total_bytes
        );
    }
    DataFile {
        name: format!("plt_{}.dat", result.protocol.to_lowercase()),
        contents: s,
    }
}

fn downlink_file(result: &RunResult) -> DataFile {
    let mut s = String::from("# second bytes\n");
    let bins = result
        .client_downlink_bytes
        .bin_sum(SimDuration::from_secs(1), SimTime::from_secs(21 * 60));
    for (i, b) in bins.iter().enumerate() {
        let _ = writeln!(s, "{i} {b:.0}");
    }
    DataFile {
        name: format!("downlink_{}.dat", result.protocol.to_lowercase()),
        contents: s,
    }
}

fn inflight_file(result: &RunResult) -> DataFile {
    let mut s = String::from("# t_s inflight_bytes\n");
    for (t, v) in result.inflight_bytes.iter() {
        let _ = writeln!(s, "{:.6} {v:.0}", t.as_secs_f64());
    }
    DataFile {
        name: format!("inflight_{}.dat", result.protocol.to_lowercase()),
        contents: s,
    }
}

fn retransmissions_file(result: &RunResult) -> DataFile {
    let mut s = String::from("# t_s\n");
    for t in result.retransmissions.times() {
        let _ = writeln!(s, "{:.6}", t.as_secs_f64());
    }
    DataFile {
        name: format!("rtx_{}.dat", result.protocol.to_lowercase()),
        contents: s,
    }
}

fn promotions_file(result: &RunResult) -> DataFile {
    let mut s = String::from("# start_s done_s kind\n");
    for p in &result.promotions {
        let _ = writeln!(
            s,
            "{:.6} {:.6} {:?}",
            p.start.as_secs_f64(),
            p.done.as_secs_f64(),
            p.kind
        );
    }
    DataFile {
        name: format!("promotions_{}.dat", result.protocol.to_lowercase()),
        contents: s,
    }
}

fn proxy_records_file(result: &RunResult) -> DataFile {
    let mut s =
        String::from("# fetch arrived_s origin_wait_ms origin_dl_ms client_transfer_ms domain\n");
    for r in &result.proxy_records {
        let ms = |d: Option<SimDuration>| d.map_or(-1.0, |d| d.as_secs_f64() * 1e3);
        let _ = writeln!(
            s,
            "{} {:.6} {:.1} {:.1} {:.1} {}",
            r.fetch.0,
            r.request_arrived.as_secs_f64(),
            ms(r.origin_wait()),
            ms(r.origin_download()),
            ms(r.client_transfer()),
            r.domain
        );
    }
    DataFile {
        name: format!("proxy_{}.dat", result.protocol.to_lowercase()),
        contents: s,
    }
}

fn cwnd_file(label: &str, trace: &spdyier_tcp::TcpTrace) -> DataFile {
    let mut s = String::from("# t_s cwnd_seg ssthresh_seg inflight_bytes\n");
    let ss: Vec<(SimTime, Option<f64>)> = trace.ssthresh_segments.iter().collect();
    let inflight: Vec<(SimTime, f64)> = trace.inflight_bytes.iter().collect();
    for (i, (t, cwnd)) in trace.cwnd_segments.iter().enumerate() {
        let ssthresh = ss.get(i).and_then(|&(_, v)| v).unwrap_or(f64::NAN);
        let infl = inflight.get(i).map_or(f64::NAN, |&(_, v)| v);
        let _ = writeln!(
            s,
            "{:.6} {cwnd:.2} {ssthresh:.2} {infl:.0}",
            t.as_secs_f64()
        );
    }
    let mut rtx = String::new();
    for t in trace.retransmits.times() {
        let _ = writeln!(rtx, "# rtx {:.6}", t.as_secs_f64());
    }
    s.push_str(&rtx);
    DataFile {
        name: format!("cwnd_{label}.dat"),
        contents: s,
    }
}

/// Write the files to `dir`, returning the paths written.
pub fn write_to_dir(
    files: &[DataFile],
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for f in files {
        let path = dir.join(&f.name);
        std::fs::write(&path, &f.contents)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, NetworkKind, ProtocolMode};
    use crate::driver::run_experiment;
    use spdyier_workload::VisitSchedule;

    fn small_run(traces: bool) -> RunResult {
        let mut cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 3)
            .with_network(NetworkKind::Wifi)
            .with_schedule(VisitSchedule::sequential(
                vec![9],
                SimDuration::from_secs(60),
            ));
        cfg.record_traces = traces;
        run_experiment(cfg)
    }

    #[test]
    fn export_produces_all_base_files() {
        let r = small_run(false);
        let files = export_run(&r);
        let names: Vec<&str> = files.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"plt_spdy.dat"));
        assert!(names.contains(&"downlink_spdy.dat"));
        assert!(names.contains(&"inflight_spdy.dat"));
        assert!(names.contains(&"rtx_spdy.dat"));
        assert!(names.contains(&"promotions_spdy.dat"));
        assert!(names.contains(&"proxy_spdy.dat"));
    }

    #[test]
    fn traces_add_cwnd_files() {
        let r = small_run(true);
        let files = export_run(&r);
        assert!(
            files.iter().any(|f| f.name.starts_with("cwnd_spdy-")),
            "per-connection cwnd file present"
        );
    }

    #[test]
    fn files_have_headers_and_rows() {
        let r = small_run(false);
        for f in export_run(&r) {
            assert!(f.contents.starts_with('#'), "{} has a header", f.name);
        }
        let plt = export_run(&r)
            .into_iter()
            .find(|f| f.name.starts_with("plt_"))
            .unwrap();
        assert_eq!(plt.contents.lines().count(), 2, "header + one visit");
    }

    /// Golden pin for the export surface: exact file names, every `#`
    /// header line, and the column count of each header. Downstream
    /// plotting scripts parse these files by position — a renamed file
    /// or a reordered column is a silent breakage this test makes loud.
    #[test]
    fn export_surface_is_pinned() {
        let r = small_run(true);
        let files = export_run(&r);
        let mut surface: Vec<(String, String, usize)> = files
            .iter()
            .map(|f| {
                let header = f.contents.lines().next().unwrap_or_default().to_string();
                let cols = header.trim_start_matches('#').split_whitespace().count();
                (f.name.clone(), header, cols)
            })
            .collect();
        // Per-connection cwnd files share one schema; pin the set once.
        surface.retain(|(name, ..)| !name.starts_with("cwnd_spdy-") || name == "cwnd_spdy-0.dat");
        let expected = [
            (
                "plt_spdy.dat",
                "# visit site start_s plt_ms completed objects bytes",
                7,
            ),
            ("downlink_spdy.dat", "# second bytes", 2),
            ("inflight_spdy.dat", "# t_s inflight_bytes", 2),
            ("rtx_spdy.dat", "# t_s", 1),
            ("promotions_spdy.dat", "# start_s done_s kind", 3),
            (
                "proxy_spdy.dat",
                "# fetch arrived_s origin_wait_ms origin_dl_ms client_transfer_ms domain",
                6,
            ),
            (
                "cwnd_spdy-0.dat",
                "# t_s cwnd_seg ssthresh_seg inflight_bytes",
                4,
            ),
        ];
        assert_eq!(
            surface.len(),
            expected.len(),
            "file set changed: {surface:?}"
        );
        for (name, header, cols) in expected {
            let got = surface
                .iter()
                .find(|(n, ..)| n == name)
                .unwrap_or_else(|| panic!("missing exported file {name}"));
            assert_eq!(got.1, header, "{name} header changed");
            assert_eq!(got.2, cols, "{name} column count changed");
        }
    }

    #[test]
    fn write_to_dir_roundtrip() {
        let r = small_run(false);
        let files = export_run(&r);
        let dir = std::env::temp_dir().join("spdyier_export_test");
        let paths = write_to_dir(&files, &dir).expect("writable");
        assert_eq!(paths.len(), files.len());
        for p in &paths {
            assert!(p.exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
