//! The versioned results contract: everything a scenario run promises to
//! machine consumers (CI pipelines, sweep fleets, third-party tooling).
//!
//! One schema-versioned `result.json` document per scenario run carries
//! the run metadata, per-cell metrics, assertion verdicts, and artifact
//! paths; a JUnit XML rendering of the same verdicts plugs into CI test
//! reporters; and a standardized exit code tells shells and CI jobs what
//! happened without parsing anything:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | every assertion passed |
//! | 1 | at least one assertion failed |
//! | 2 | a limit was exceeded (event budget, total-event cap) |
//! | 3 | configuration error (malformed manifest, bad CLI value) |
//!
//! Machine-readable side outputs that predate the contract (the
//! paired-sweep JSONL dump, the `stalls_*.dat` table) keep their exact
//! bytes for golden compatibility and gain schema-versioned *sidecar*
//! manifests instead, built here.

use crate::export::DataFile;
use serde::{Serialize, Value};

/// Schema version of the `result.json` document (bump on breaking
/// key-set changes; the golden-schema tests pin the key sets).
pub const RESULT_SCHEMA_VERSION: u32 = 1;

/// Schema version of the paired-sweep JSONL dump sidecar.
pub const PAIRED_DUMP_SCHEMA_VERSION: u32 = 1;

/// Schema version of the `stalls_*.dat` sidecar manifest.
pub const STALL_TABLE_SCHEMA_VERSION: u32 = 1;

/// Standardized scenario exit codes (LabWired-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScenarioExit {
    /// Every assertion passed (or there were none).
    Pass,
    /// At least one assertion failed.
    AssertionFailed,
    /// A declared limit was exceeded before the run finished.
    LimitExceeded,
    /// The manifest or CLI configuration was invalid.
    ConfigError,
}

impl ScenarioExit {
    /// The process exit code.
    pub fn code(self) -> i32 {
        match self {
            ScenarioExit::Pass => 0,
            ScenarioExit::AssertionFailed => 1,
            ScenarioExit::LimitExceeded => 2,
            ScenarioExit::ConfigError => 3,
        }
    }
}

/// Verdict of one manifest assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictStatus {
    /// The comparison held.
    Pass,
    /// The comparison did not hold.
    Fail,
    /// Not evaluated (e.g. its `on <network>` clause names another
    /// network than the manifest's).
    Skipped,
}

impl Serialize for VerdictStatus {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                VerdictStatus::Pass => "pass",
                VerdictStatus::Fail => "fail",
                VerdictStatus::Skipped => "skipped",
            }
            .to_string(),
        )
    }
}

/// One evaluated assertion, as recorded in `result.json` and JUnit XML.
#[derive(Debug, Clone, Serialize)]
pub struct AssertionVerdict {
    /// The assertion expression as written in the manifest.
    pub expr: String,
    /// Pass / fail / skipped.
    pub status: VerdictStatus,
    /// Evaluated left-hand side (absent when skipped).
    pub lhs: Option<f64>,
    /// Evaluated right-hand side (absent when skipped).
    pub rhs: Option<f64>,
    /// Human-readable one-liner (`"12845.2 > 9511.0"`, skip reason, …).
    pub detail: String,
}

/// Minimal XML text escaping for attribute and text positions.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Render assertion verdicts as JUnit XML (one `<testsuite>` per
/// scenario, one `<testcase>` per assertion). Deterministic: no
/// timestamps or hostnames, so the artifact is byte-stable per build.
pub fn junit_xml(scenario: &str, verdicts: &[AssertionVerdict]) -> String {
    use std::fmt::Write as _;
    let failures = verdicts
        .iter()
        .filter(|v| v.status == VerdictStatus::Fail)
        .count();
    let skipped = verdicts
        .iter()
        .filter(|v| v.status == VerdictStatus::Skipped)
        .count();
    let mut s = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(
        s,
        "<testsuites name=\"spdyier-scenario\" tests=\"{}\" failures=\"{failures}\" skipped=\"{skipped}\">",
        verdicts.len()
    );
    let _ = writeln!(
        s,
        "  <testsuite name=\"{}\" tests=\"{}\" failures=\"{failures}\" skipped=\"{skipped}\">",
        xml_escape(scenario),
        verdicts.len()
    );
    for v in verdicts {
        let _ = write!(
            s,
            "    <testcase classname=\"scenario.{}\" name=\"{}\"",
            xml_escape(scenario),
            xml_escape(&v.expr)
        );
        match v.status {
            VerdictStatus::Pass => s.push_str("/>\n"),
            VerdictStatus::Fail => {
                let _ = writeln!(
                    s,
                    ">\n      <failure message=\"{}\"/>\n    </testcase>",
                    xml_escape(&v.detail)
                );
            }
            VerdictStatus::Skipped => {
                let _ = writeln!(
                    s,
                    ">\n      <skipped message=\"{}\"/>\n    </testcase>",
                    xml_escape(&v.detail)
                );
            }
        }
    }
    s.push_str("  </testsuite>\n</testsuites>\n");
    s
}

/// Sidecar manifest for a `stalls_<label>.dat` table: schema version,
/// column names (lifted from the table's own `#` header), and row count.
/// The `.dat` bytes themselves stay exactly as they always were.
pub fn stall_manifest_file(stalls: &DataFile) -> DataFile {
    let header = stalls.contents.lines().next().unwrap_or_default();
    let columns: Vec<&str> = header.trim_start_matches('#').split_whitespace().collect();
    let rows = stalls.contents.lines().count().saturating_sub(1);
    let body = serde_json::json!({
        "schema_version": STALL_TABLE_SCHEMA_VERSION,
        "kind": "stall_table",
        "file": stalls.name,
        "columns": columns,
        "rows": rows,
    });
    DataFile {
        name: format!("{}.manifest.json", stalls.name.trim_end_matches(".dat")),
        contents: serde_json::to_string_pretty(&body).expect("stall manifest serialize"),
    }
}

/// Sidecar header for a paired-sweep JSONL dump (`<dump>.meta.json`):
/// schema version, the sweep's identity, the line interleaving, and the
/// exact top-level key set of each `RunResult` line. The dump itself
/// stays headerless so historical `cmp`-based goldens keep passing.
pub fn paired_meta_file(
    dump_name: &str,
    network: &str,
    seeds: u64,
    line_keys: &[String],
) -> DataFile {
    let body = serde_json::json!({
        "schema_version": PAIRED_DUMP_SCHEMA_VERSION,
        "kind": "paired_sweep",
        "file": dump_name,
        "network": network,
        "seeds": seeds,
        "lines_per_seed": 2u32,
        "line_order": ["http", "spdy"],
        "run_result_keys": line_keys,
    });
    DataFile {
        name: format!("{dump_name}.meta.json"),
        contents: serde_json::to_string_pretty(&body).expect("paired meta serialize"),
    }
}

/// The top-level keys of one serialized [`RunResult`](crate::RunResult)
/// JSON line, extracted for the paired-dump sidecar.
pub fn json_line_keys(line: &str) -> Vec<String> {
    match serde_json::from_str(line) {
        Ok(Value::Object(entries)) => entries.into_iter().map(|(k, _)| k).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts() -> Vec<AssertionVerdict> {
        vec![
            AssertionVerdict {
                expr: "spdy.rto_stall_ms > http.rto_stall_ms on 3g".into(),
                status: VerdictStatus::Pass,
                lhs: Some(100.0),
                rhs: Some(50.0),
                detail: "100.0 > 50.0".into(),
            },
            AssertionVerdict {
                expr: "plt_p50_ms < 9000".into(),
                status: VerdictStatus::Fail,
                lhs: Some(9500.0),
                rhs: Some(9000.0),
                detail: "9500.0 < 9000.0 is false".into(),
            },
            AssertionVerdict {
                expr: "plt_p50_ms < 1 on lte".into(),
                status: VerdictStatus::Skipped,
                lhs: None,
                rhs: None,
                detail: "network clause 'lte' does not match '3g'".into(),
            },
        ]
    }

    #[test]
    fn exit_codes_are_standardized() {
        assert_eq!(ScenarioExit::Pass.code(), 0);
        assert_eq!(ScenarioExit::AssertionFailed.code(), 1);
        assert_eq!(ScenarioExit::LimitExceeded.code(), 2);
        assert_eq!(ScenarioExit::ConfigError.code(), 3);
    }

    #[test]
    fn junit_counts_and_escapes() {
        let xml = junit_xml("matrix<3g>", &verdicts());
        assert!(xml.starts_with("<?xml version=\"1.0\""));
        assert!(xml.contains("tests=\"3\" failures=\"1\" skipped=\"1\""));
        assert!(xml.contains("name=\"matrix&lt;3g&gt;\""));
        assert!(xml.contains("spdy.rto_stall_ms &gt; http.rto_stall_ms"));
        assert!(xml.contains("<failure message=\"9500.0 &lt; 9000.0 is false\"/>"));
        assert!(xml.contains("<skipped message="));
    }

    #[test]
    fn verdict_serialization_is_lowercase() {
        let v = serde_json::to_string(&verdicts()[0]).unwrap();
        assert!(v.contains("\"status\":\"pass\""), "{v}");
        let v = serde_json::to_string(&verdicts()[2]).unwrap();
        assert!(v.contains("\"status\":\"skipped\""), "{v}");
        assert!(v.contains("\"lhs\":null"), "{v}");
    }

    #[test]
    fn stall_sidecar_pins_columns_and_rows() {
        let stalls = DataFile {
            name: "stalls_spdy.dat".into(),
            contents: "# visit site plt_ms\n1 9 100.0\n2 4 200.0\n".into(),
        };
        let side = stall_manifest_file(&stalls);
        assert_eq!(side.name, "stalls_spdy.manifest.json");
        let v = serde_json::from_str(&side.contents).unwrap();
        assert_eq!(v["schema_version"].as_u64(), Some(1));
        assert_eq!(v["rows"].as_u64(), Some(2));
        assert_eq!(v["columns"][0].as_str(), Some("visit"));
        assert_eq!(v["columns"][2].as_str(), Some("plt_ms"));
    }

    #[test]
    fn paired_meta_names_and_keys() {
        let keys = json_line_keys(r#"{"protocol":"HTTP","network":"3G","seed":0}"#);
        assert_eq!(keys, ["protocol", "network", "seed"]);
        let side = paired_meta_file("paired_3g.jsonl", "3g", 3, &keys);
        assert_eq!(side.name, "paired_3g.jsonl.meta.json");
        let v = serde_json::from_str(&side.contents).unwrap();
        assert_eq!(v["kind"].as_str(), Some("paired_sweep"));
        assert_eq!(v["seeds"].as_u64(), Some(3));
        assert_eq!(v["run_result_keys"][0].as_str(), Some("protocol"));
    }
}
