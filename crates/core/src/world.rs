//! The simulated world: clock, event queue, RNG hierarchy, the access and
//! wired network paths, and the TCP pipe plumbing every higher layer rides
//! on.
//!
//! A [`World`] knows nothing about protocols or pages. It owns the
//! [`Pipe`]s (sans-IO TCP pairs), moves staged application bytes into
//! send buffers, drains segments onto the links, schedules delivery and
//! timer events, and harvests per-connection metrics. What a pipe is *for*
//! is recorded in its [`PipeRole`], which the session layer defines and
//! interprets.

use crate::config::{AccessPath, ExperimentConfig};
use crate::results::RunResult;
use crate::session::PipeRole;
use spdyier_bytes::Payload;
use spdyier_http::{HttpClientConn, HttpServerConn, Request};
use spdyier_net::{presets as net_presets, Direction, DuplexPath, LinkVerdict};
use spdyier_proxy::FetchId;
use spdyier_sim::{DetRng, EventId, EventQueue, SimTime};
use spdyier_tcp::{Segment, TcpConfig, TcpConnection, TcpMetricsCache};
use spdyier_trace::{TraceEvent, TraceLevel, Tracer};
use std::collections::VecDeque;

/// Origin pipes per domain before fetches queue on the least-loaded one.
const MAX_ORIGIN_PIPES_PER_DOMAIN: usize = 6;

/// A discrete event in the run.
#[derive(Debug)]
pub(crate) enum Event {
    /// A segment arrives at one end of a pipe.
    Deliver {
        /// Pipe index.
        pipe: usize,
        /// Deliver to the b side (else the a side).
        to_b: bool,
        /// The segment.
        seg: Segment,
    },
    /// A TCP timer fires on one side of a pipe.
    Timer {
        /// Pipe index.
        pipe: usize,
        /// The b side's timer (else the a side's).
        b_side: bool,
    },
    /// The browser's parse/execute timer fires.
    BrowserTimer,
    /// A scheduled page visit starts.
    Visit(usize),
    /// A visit hits its abandon deadline.
    VisitDeadline {
        /// Visit index.
        visit: usize,
        /// Generation the deadline was armed for (stale ones are ignored).
        generation: u64,
    },
    /// An origin server's response becomes ready.
    OriginReply {
        /// The proxy↔origin pipe.
        pipe: usize,
        /// Encoded response bytes.
        bytes: Payload,
    },
    /// A SPDY session's SSL setup completes.
    SslReady {
        /// The device↔proxy pipe.
        pipe: usize,
    },
    /// The Fig. 14 keepalive ping fires.
    PingTick,
    /// The next inter-visit beacon fires.
    Beacon,
    /// The periodic idle-connection sweep fires.
    IdleSweep,
    /// The run's horizon is reached.
    EndRun,
}

/// One sans-IO TCP pair and its staging queues.
pub(crate) struct Pipe {
    /// Client-side connection (device for access pipes; proxy for origin
    /// pipes).
    pub a: TcpConnection,
    /// Server-side connection (proxy for access pipes; origin for origin
    /// pipes).
    pub b: TcpConnection,
    /// True: device↔proxy over the access path; false: proxy↔origin over
    /// the wired path.
    pub over_access: bool,
    /// What the pipe is used for (protocol attachment).
    pub role: PipeRole,
    /// Scheduled a-side TCP timer, if armed.
    pub a_timer: Option<EventId>,
    /// Scheduled b-side TCP timer, if armed.
    pub b_timer: Option<EventId>,
    /// Staged application bytes awaiting TCP send-buffer space, a side.
    pub out_a: VecDeque<Payload>,
    /// Staged application bytes awaiting TCP send-buffer space, b side.
    pub out_b: VecDeque<Payload>,
    /// When the pipe was opened.
    pub opened: SimTime,
    /// Report label (`"http-3"`, `"spdy-0"`, `"origin-cdn.example"`).
    pub label: String,
    /// Both sides fully closed and metrics harvested.
    pub closed: bool,
    /// Last instant a segment left or arrived on this pipe (the start of
    /// the silence an RTO stall is attributed to).
    pub last_activity: SimTime,
    /// Last `(cwnd, ssthresh, inflight)` sample emitted to the flight
    /// recorder (so `TcpCwnd` events fire only on change).
    pub last_cwnd_sample: Option<(u64, u64, u64)>,
}

/// Clock, queue, RNGs, links, and pipes for one run.
pub(crate) struct World {
    /// Current simulation instant.
    pub now: SimTime,
    /// The event queue driving the run.
    pub queue: EventQueue<Event>,
    /// Network-level randomness (loss, jitter).
    pub rng_net: DetRng,
    /// Page-synthesis randomness.
    pub rng_pages: DetRng,
    /// Origin service-time randomness.
    pub rng_origin: DetRng,
    /// Device↔proxy access path (3G/LTE/WiFi).
    pub access: AccessPath,
    /// Proxy↔origin wired path.
    pub wired: DuplexPath,
    /// All pipes ever opened this run (index-stable).
    pub pipes: Vec<Pipe>,
    /// Indices of not-yet-closed pipes, ascending. Maintained by
    /// [`World::new_pipe`]/[`World::harvest_pipe`] so per-event sweeps
    /// (handshake throttle counts, pool scans) skip the ever-growing
    /// tail of closed pipes.
    pub live: Vec<usize>,
    /// Pipes with pending service work, in discovery order.
    pub dirty: VecDeque<usize>,
    /// Cross-connection ssthresh/RTT cache (§6.2.4).
    pub metrics_cache: TcpMetricsCache,
    /// The flight recorder every layer emits into.
    pub tracer: Tracer,
    /// Device↔proxy TCP configuration.
    tcp: TcpConfig,
    /// Whether to seed/harvest the metrics cache.
    cache_metrics: bool,
    /// Whether access pipes record full cwnd traces.
    record_traces: bool,
    /// Radio promotions already forwarded to the flight recorder.
    promos_emitted: usize,
}

impl World {
    /// Build the world for `cfg`: RNG hierarchy forked from the root seed,
    /// the access path with its overrides applied, and the wired path.
    pub fn new(cfg: &ExperimentConfig) -> World {
        let root = DetRng::new(cfg.seed);
        let mut access = cfg.network.build();
        if let Some(promotion) = cfg.rrc_promotion_override {
            if let Some(radio) = access.radio_mut() {
                radio.set_promotion(promotion);
            }
        }
        if let Some(loss) = cfg.access_loss {
            access.set_loss(loss);
        }
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng_net: root.fork("net"),
            rng_pages: root.fork("pages"),
            rng_origin: root.fork("origin"),
            access,
            wired: net_presets::cloud_wired(2),
            pipes: Vec::new(),
            live: Vec::new(),
            dirty: VecDeque::new(),
            metrics_cache: TcpMetricsCache::new(),
            tracer: Tracer::for_level(cfg.trace_level),
            tcp: cfg.tcp,
            cache_metrics: cfg.cache_metrics,
            record_traces: cfg.record_traces,
            promos_emitted: 0,
        }
    }

    fn wired_tcp_config(&self) -> TcpConfig {
        TcpConfig {
            mss: 1460,
            recv_buffer: 1024 * 1024,
            send_buffer: 256 * 1024,
            trace: false,
            ..self.tcp
        }
    }

    /// Open a new pipe and start its client-side handshake. Counts
    /// access-path pipes in `result.connections_opened`.
    pub fn new_pipe(
        &mut self,
        result: &mut RunResult,
        over_access: bool,
        role: PipeRole,
        label: String,
    ) -> usize {
        let tcp_cfg = if over_access {
            TcpConfig {
                trace: self.record_traces,
                ..self.tcp
            }
        } else {
            self.wired_tcp_config()
        };
        let mut a = TcpConnection::client(tcp_cfg);
        let mut b = TcpConnection::server(tcp_cfg);
        if self.cache_metrics {
            let (a_key, b_key) = role.cache_keys(over_access);
            if let Some(m) = self.metrics_cache.lookup(&a_key) {
                a.apply_cached_metrics(m);
            }
            if let Some(m) = self.metrics_cache.lookup(&b_key) {
                b.apply_cached_metrics(m);
            }
        }
        a.connect(self.now);
        let idx = self.pipes.len();
        if self.tracer.active(TraceLevel::Lifecycle) {
            self.tracer.emit(
                self.now,
                TraceEvent::ConnOpened {
                    conn: idx,
                    over_access,
                    label: label.clone(),
                },
            );
            self.tracer.count("conn.opened", 1);
        }
        self.pipes.push(Pipe {
            a,
            b,
            over_access,
            role,
            a_timer: None,
            b_timer: None,
            out_a: VecDeque::new(),
            out_b: VecDeque::new(),
            opened: self.now,
            label,
            closed: false,
            last_activity: self.now,
            last_cwnd_sample: None,
        });
        if over_access {
            result.connections_opened += 1;
        }
        self.live.push(idx);
        self.mark_dirty(idx);
        idx
    }

    /// Queue a pipe for servicing if it is not already queued.
    pub fn mark_dirty(&mut self, idx: usize) {
        if !self.dirty.contains(&idx) {
            self.dirty.push_back(idx);
        }
    }

    /// Detach a pipe's role for processing (leaves [`PipeRole::Detached`]).
    pub fn take_role(&mut self, idx: usize) -> PipeRole {
        std::mem::replace(&mut self.pipes[idx].role, PipeRole::Detached)
    }

    /// Reattach a pipe's role after processing.
    pub fn put_role(&mut self, idx: usize, role: PipeRole) {
        self.pipes[idx].role = role;
    }

    /// Move staged application bytes into TCP send buffers on both sides.
    /// When the b-side staging queue runs dry with buffer space left,
    /// `refill` is consulted (the SPDY proxy keeps frames unscheduled until
    /// the last moment so priority decisions stay late).
    pub fn flush_staged(
        &mut self,
        idx: usize,
        refill: &mut dyn FnMut(&PipeRole) -> Option<Payload>,
    ) {
        // a side
        loop {
            let space = self.pipes[idx].a.send_space();
            if space == 0 {
                break;
            }
            let Some(mut front) = self.pipes[idx].out_a.pop_front() else {
                break;
            };
            if front.len() <= space {
                self.pipes[idx].a.write(front);
            } else {
                let part = front.split_to(space);
                self.pipes[idx].a.write(part);
                self.pipes[idx].out_a.push_front(front);
            }
        }
        // b side
        loop {
            let space = self.pipes[idx].b.send_space();
            if space == 0 {
                break;
            }
            let Some(mut front) = self.pipes[idx].out_b.pop_front() else {
                if let Some(wire) = refill(&self.pipes[idx].role) {
                    self.pipes[idx].out_b.push_back(wire);
                    continue;
                }
                break;
            };
            if front.len() <= space {
                self.pipes[idx].b.write(front);
            } else {
                let part = front.split_to(space);
                self.pipes[idx].b.write(part);
                self.pipes[idx].out_b.push_front(front);
            }
        }
    }

    /// Drain transmittable segments from both sides onto the links,
    /// scheduling deliveries (or dropping, per link verdict).
    pub fn drain_tx(&mut self, idx: usize, result: &mut RunResult) {
        let transport = self.tracer.active(TraceLevel::Transport);
        for b_side in [false, true] {
            let idle_restarts_before = if transport {
                let conn = if b_side {
                    &self.pipes[idx].b
                } else {
                    &self.pipes[idx].a
                };
                conn.stats().idle_restarts
            } else {
                0
            };
            loop {
                let seg = {
                    let conn = if b_side {
                        &mut self.pipes[idx].b
                    } else {
                        &mut self.pipes[idx].a
                    };
                    conn.poll_transmit(self.now)
                };
                let Some(seg) = seg else { break };
                self.pipes[idx].last_activity = self.now;
                let over_access = self.pipes[idx].over_access;
                // Record retransmissions on the access path (the paper's
                // tcpdump vantage point). Pure-FIN retransmissions from
                // idle-socket teardown are tracked in per-connection stats
                // but excluded from the headline series: connection
                // teardown is not on any measured path.
                if over_access && seg.retransmit && (!seg.payload.is_empty() || seg.flags.syn) {
                    result.retransmissions.mark(self.now);
                    if transport {
                        self.tracer.emit(
                            self.now,
                            TraceEvent::TcpRetransmit {
                                conn: idx,
                                down: b_side,
                            },
                        );
                        self.tracer.count("tcp.retransmissions", 1);
                    }
                }
                let dir = match (over_access, b_side) {
                    // access: a = device (sends Up), b = proxy (sends Down)
                    (true, false) => Direction::Up,
                    (true, true) => Direction::Down,
                    // wired: a = proxy, b = origin; direction naming is
                    // arbitrary on the symmetric wired path.
                    (false, false) => Direction::Up,
                    (false, true) => Direction::Down,
                };
                let drops_before = if transport && over_access {
                    self.access.drops(dir)
                } else {
                    (0, 0)
                };
                let verdict = if over_access {
                    self.access
                        .send(dir, self.now, seg.wire_size(), &mut self.rng_net)
                } else {
                    self.wired
                        .send(dir, self.now, seg.wire_size(), &mut self.rng_net)
                };
                if transport && over_access {
                    self.tracer.count("link.access.segments", 1);
                }
                match verdict {
                    LinkVerdict::Deliver(at) => {
                        if over_access && self.tracer.active(TraceLevel::Full) {
                            let ser = self.access.serialization_time(dir, seg.wire_size());
                            self.tracer.emit(
                                self.now,
                                TraceEvent::SegmentSent {
                                    conn: idx,
                                    down: b_side,
                                    bytes: seg.wire_size(),
                                    deliver: at,
                                    ser_us: ser.as_micros(),
                                    retransmit: seg.retransmit,
                                },
                            );
                        }
                        self.queue.schedule(
                            at,
                            Event::Deliver {
                                pipe: idx,
                                to_b: !b_side,
                                seg,
                            },
                        );
                    }
                    LinkVerdict::Drop => {
                        // The packet evaporates; TCP recovery handles it.
                        if transport && over_access {
                            let after = self.access.drops(dir);
                            self.tracer.emit(
                                self.now,
                                TraceEvent::LinkDrop {
                                    conn: idx,
                                    down: b_side,
                                    queue_overflow: after.0 > drops_before.0,
                                },
                            );
                            self.tracer.count("link.access.drops", 1);
                        }
                    }
                }
            }
            if transport {
                let conn = if b_side {
                    &self.pipes[idx].b
                } else {
                    &self.pipes[idx].a
                };
                let restarts = conn.stats().idle_restarts;
                for _ in idle_restarts_before..restarts {
                    self.tracer
                        .emit(self.now, TraceEvent::TcpIdleRestart { conn: idx, b_side });
                    self.tracer.count("tcp.idle_restarts", 1);
                }
            }
        }
        if transport {
            self.sync_promotions();
        }
        if self.pipes[idx].over_access && self.tracer.active(TraceLevel::Full) {
            self.sample_cwnd(idx);
        }
    }

    /// Forward radio promotions taken since the last sync to the flight
    /// recorder (each as one `[start, done]` interval, stamped at its
    /// start).
    pub fn sync_promotions(&mut self) {
        let promotions = self.access.promotions();
        for p in promotions.iter().skip(self.promos_emitted) {
            self.tracer.emit(
                p.start,
                TraceEvent::RrcPromotion {
                    kind: format!("{:?}", p.kind),
                    start: p.start,
                    done: p.done,
                },
            );
            self.tracer.count("rrc.promotions", 1);
            self.tracer.observe(
                "rrc.promotion_us",
                p.done.saturating_since(p.start).as_micros(),
            );
        }
        self.promos_emitted = promotions.len();
    }

    /// Emit a `TcpCwnd` sample for the proxy (bulk-sender) side of an
    /// access pipe when the window tuple changed.
    fn sample_cwnd(&mut self, idx: usize) {
        let b = &self.pipes[idx].b;
        let sample = (b.cwnd(), b.ssthresh(), b.bytes_in_flight());
        if self.pipes[idx].last_cwnd_sample == Some(sample) {
            return;
        }
        self.pipes[idx].last_cwnd_sample = Some(sample);
        let (cwnd, ssthresh, inflight) = sample;
        self.tracer.emit(
            self.now,
            TraceEvent::TcpCwnd {
                conn: idx,
                cwnd,
                ssthresh: (ssthresh != u64::MAX).then_some(ssthresh),
                inflight,
            },
        );
    }

    /// Re-arm both sides' TCP timers from their current deadlines.
    pub fn resched_timers(&mut self, idx: usize) {
        for b_side in [false, true] {
            let next = if b_side {
                self.pipes[idx].b.next_timer()
            } else {
                self.pipes[idx].a.next_timer()
            };
            let slot = if b_side {
                &mut self.pipes[idx].b_timer
            } else {
                &mut self.pipes[idx].a_timer
            };
            if let Some(old) = slot.take() {
                self.queue.cancel(old);
            }
            if let Some(at) = next {
                let id = self
                    .queue
                    .schedule(at.max(self.now), Event::Timer { pipe: idx, b_side });
                *slot = Some(id);
            }
        }
    }

    /// Mark a pipe closed (and harvest it) once both sides are done.
    pub fn maybe_mark_closed(&mut self, idx: usize) {
        use spdyier_tcp::TcpState;
        let a_done = matches!(
            self.pipes[idx].a.state(),
            TcpState::Closed | TcpState::TimeWait
        );
        let b_done = matches!(
            self.pipes[idx].b.state(),
            TcpState::Closed | TcpState::TimeWait
        );
        if a_done && b_done && !self.pipes[idx].closed {
            self.harvest_pipe(idx);
        }
    }

    /// Cancel a pipe's timers and bank its TCP metrics in the cache.
    pub fn harvest_pipe(&mut self, idx: usize) {
        if self.pipes[idx].closed {
            return;
        }
        self.pipes[idx].closed = true;
        // Ordered remove keeps `live` ascending so position-based scans
        // over it find the same first match as a scan over `pipes`.
        if let Ok(i) = self.live.binary_search(&idx) {
            self.live.remove(i);
        }
        self.tracer
            .emit(self.now, TraceEvent::ConnClosed { conn: idx });
        if let Some(t) = self.pipes[idx].a_timer.take() {
            self.queue.cancel(t);
        }
        if let Some(t) = self.pipes[idx].b_timer.take() {
            self.queue.cancel(t);
        }
        if self.cache_metrics {
            let over = self.pipes[idx].over_access;
            let role_keys = self.pipes[idx].role.cache_keys(over);
            if let Some(m) = self.pipes[idx].a.snapshot_metrics() {
                self.metrics_cache.store(&role_keys.0, m);
            }
            if let Some(m) = self.pipes[idx].b.snapshot_metrics() {
                self.metrics_cache.store(&role_keys.1, m);
            }
        }
    }

    /// Total unacknowledged proxy→device bytes across open access pipes.
    pub fn inflight_total(&self) -> u64 {
        self.live
            .iter()
            .map(|&i| &self.pipes[i])
            .filter(|p| p.over_access)
            .map(|p| p.b.bytes_in_flight())
            .sum()
    }

    // ------------------------------------------------------------------
    // Proxy↔origin leg
    // ------------------------------------------------------------------

    /// Route an origin fetch to a pipe for its domain: an idle established
    /// pipe if one exists, a fresh pipe while under the per-domain cap,
    /// else the least-loaded existing one.
    pub fn dispatch_fetch(&mut self, result: &mut RunResult, fetch: FetchId, request: Request) {
        let domain = request.host.clone();
        let mut idle: Option<usize> = None;
        let mut count = 0usize;
        let mut least_loaded: Option<(usize, usize)> = None;
        for &i in &self.live {
            let p = &self.pipes[i];
            if let PipeRole::Origin {
                domain: d,
                current,
                pending,
                ..
            } = &p.role
            {
                if *d == domain {
                    count += 1;
                    let backlog = pending.len() + usize::from(current.is_some());
                    if backlog == 0 && idle.is_none() {
                        idle = Some(i);
                    }
                    if least_loaded.is_none_or(|(_, b)| backlog < b) {
                        least_loaded = Some((i, backlog));
                    }
                }
            }
        }
        let mut fresh_pipe = false;
        let target = if let Some(i) = idle {
            i
        } else if count < MAX_ORIGIN_PIPES_PER_DOMAIN {
            fresh_pipe = true;
            self.new_pipe(
                result,
                false,
                PipeRole::Origin {
                    domain: domain.clone(),
                    http: HttpClientConn::new(),
                    server: HttpServerConn::new(),
                    current: None,
                    pending: VecDeque::new(),
                    got_first_byte: false,
                },
                format!("origin-{domain}"),
            )
        } else {
            least_loaded
                .expect("at the cap implies at least one pipe")
                .0
        };
        if self.tracer.active(TraceLevel::Lifecycle) {
            self.tracer.emit(
                self.now,
                TraceEvent::ProxyFetchDispatch {
                    fetch: fetch.0,
                    conn: target,
                    fresh_pipe,
                    domain: domain.clone(),
                },
            );
            self.tracer.count("proxy.fetches", 1);
        }
        if let PipeRole::Origin { pending, .. } = &mut self.pipes[target].role {
            pending.push_back((fetch, request));
        }
        self.issue_next_origin_fetch(target);
        self.mark_dirty(target);
    }

    /// If the origin pipe is established and idle, issue its next pending
    /// fetch request.
    pub fn issue_next_origin_fetch(&mut self, idx: usize) {
        let established = self.pipes[idx].a.is_established();
        if !established {
            return;
        }
        let mut to_write: Option<Payload> = None;
        if let PipeRole::Origin {
            http,
            current,
            pending,
            got_first_byte,
            ..
        } = &mut self.pipes[idx].role
        {
            if current.is_none() {
                if let Some((fetch, request)) = pending.pop_front() {
                    *current = Some(fetch);
                    *got_first_byte = false;
                    to_write = Some(http.send_request(fetch.0, &request));
                }
            }
        }
        if let Some(bytes) = to_write {
            self.pipes[idx].out_a.push_back(bytes);
            self.mark_dirty(idx);
        }
    }
}
