//! Flight-recorder acceptance tests: tracing must be invisible to the
//! simulation (byte-identical results with the recorder off or on),
//! and the stall attributor must conserve PLT and reproduce the
//! paper's SPDY-suffers-more-RTOs story on 3G.

use spdyier_core::{
    attribute_stalls, run_experiment_traced, ExperimentConfig, NetworkKind, ProtocolMode,
    TraceLevel,
};
use spdyier_sim::SimDuration;
use spdyier_workload::VisitSchedule;

fn small_cfg(protocol: ProtocolMode, level: TraceLevel) -> ExperimentConfig {
    ExperimentConfig::paper_3g(protocol, 3)
        .with_network(NetworkKind::Wifi)
        .with_schedule(VisitSchedule::sequential(
            vec![9],
            SimDuration::from_secs(60),
        ))
        .with_trace_level(level)
}

/// Two visits with the §5.7 beacon gap between them — long enough on 3G
/// for the radio to demote and for background transfers to hit RTOs.
fn paired_3g_cfg(protocol: ProtocolMode, level: TraceLevel) -> ExperimentConfig {
    ExperimentConfig::paper_3g(protocol, 3)
        .with_schedule(VisitSchedule::sequential(
            vec![9, 4],
            SimDuration::from_secs(120),
        ))
        .with_trace_level(level)
}

#[test]
fn tracing_is_invisible_to_the_simulation() {
    let (r_off, log_off) = run_experiment_traced(small_cfg(ProtocolMode::spdy(), TraceLevel::Off));
    let (r_full, log_full) =
        run_experiment_traced(small_cfg(ProtocolMode::spdy(), TraceLevel::Full));

    // Off: nothing materialized at all.
    assert_eq!(log_off.emitted, 0);
    assert!(log_off.events.is_empty());
    assert!(log_off.metrics.is_empty());

    // Full: the stream is populated, yet the simulation is untouched —
    // the serialized results are byte-identical.
    assert!(log_full.emitted > 0);
    assert!(!log_full.events.is_empty());
    let off_json = serde_json::to_string(&r_off).unwrap();
    let full_json = serde_json::to_string(&r_full).unwrap();
    assert_eq!(off_json, full_json, "tracing perturbed the run");
}

#[test]
fn trace_levels_are_cumulative() {
    let (_, lifecycle) =
        run_experiment_traced(small_cfg(ProtocolMode::spdy(), TraceLevel::Lifecycle));
    let (_, transport) =
        run_experiment_traced(small_cfg(ProtocolMode::spdy(), TraceLevel::Transport));
    let (_, full) = run_experiment_traced(small_cfg(ProtocolMode::spdy(), TraceLevel::Full));
    assert!(lifecycle.emitted > 0);
    assert!(transport.emitted >= lifecycle.emitted);
    assert!(full.emitted > transport.emitted, "Full adds segment detail");
}

#[test]
fn stall_attribution_conserves_plt_exactly() {
    let (_, log) = run_experiment_traced(paired_3g_cfg(ProtocolMode::spdy(), TraceLevel::Full));
    let stalls = attribute_stalls(&log);
    assert!(!stalls.is_empty(), "traced run produced visits");
    for b in &stalls {
        assert_eq!(
            b.attributed_us(),
            b.plt_us(),
            "visit {}: categories must sum to PLT exactly",
            b.visit
        );
        assert!(
            b.promotion_us + b.serialization_us + b.queueing_us > 0,
            "visit {}: a 3G load spends time on the radio and the link",
            b.visit
        );
    }
}

#[test]
fn spdy_attributes_more_rto_stall_than_http_on_3g() {
    let (_, spdy_log) =
        run_experiment_traced(paired_3g_cfg(ProtocolMode::spdy(), TraceLevel::Full));
    let (_, http_log) = run_experiment_traced(paired_3g_cfg(ProtocolMode::Http, TraceLevel::Full));
    let rto_total = |log: &spdyier_core::FlightLog| -> u64 {
        attribute_stalls(log).iter().map(|b| b.rto_stall_us).sum()
    };
    let spdy_rto = rto_total(&spdy_log);
    let http_rto = rto_total(&http_log);
    assert!(
        spdy_rto > http_rto,
        "paper §5.7: SPDY's single long-lived connection eats more RTO \
         stall than HTTP's pool (spdy {spdy_rto}us vs http {http_rto}us)"
    );
}
