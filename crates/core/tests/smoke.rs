//! End-to-end smoke tests: full page loads through the assembled testbed.

use spdyier_core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode};
use spdyier_sim::SimDuration;
use spdyier_workload::VisitSchedule;

fn short_schedule(sites: Vec<u32>) -> VisitSchedule {
    VisitSchedule::sequential(sites, SimDuration::from_secs(60))
}

fn quick_cfg(protocol: ProtocolMode, network: NetworkKind, sites: Vec<u32>) -> ExperimentConfig {
    ExperimentConfig::paper_3g(protocol, 42)
        .with_network(network)
        .with_schedule(short_schedule(sites))
}

#[test]
fn http_loads_one_small_site_over_wifi() {
    let result = run_experiment(quick_cfg(ProtocolMode::Http, NetworkKind::Wifi, vec![9]));
    assert_eq!(result.visits.len(), 1);
    let v = &result.visits[0];
    assert!(v.completed, "site 9 (5 objects) must load; unfinished run");
    assert!(v.plt_ms > 0.0);
    assert!(
        v.plt_ms < 10_000.0,
        "tiny site over WiFi is fast, got {} ms",
        v.plt_ms
    );
}

#[test]
fn spdy_loads_one_small_site_over_wifi() {
    let result = run_experiment(quick_cfg(ProtocolMode::spdy(), NetworkKind::Wifi, vec![9]));
    assert_eq!(result.visits.len(), 1);
    assert!(result.visits[0].completed, "SPDY load completes");
}

#[test]
fn http_loads_a_medium_site_over_3g() {
    let result = run_experiment(quick_cfg(ProtocolMode::Http, NetworkKind::Umts3G, vec![5]));
    let v = &result.visits[0];
    assert!(v.completed, "site 5 must load over 3G");
    // 3G promotion alone is 2 s.
    assert!(
        v.plt_ms > 2_000.0,
        "3G PLT includes promotion, got {} ms",
        v.plt_ms
    );
}

#[test]
fn spdy_loads_a_medium_site_over_3g() {
    let result = run_experiment(quick_cfg(
        ProtocolMode::spdy(),
        NetworkKind::Umts3G,
        vec![5],
    ));
    let v = &result.visits[0];
    assert!(v.completed, "site 5 must load over 3G via SPDY");
    assert!(v.plt_ms > 2_000.0);
    assert!(
        !result.promotions.is_empty(),
        "the radio promoted at least once"
    );
}

#[test]
fn deterministic_across_runs() {
    let a = run_experiment(quick_cfg(
        ProtocolMode::Http,
        NetworkKind::Wifi,
        vec![9, 12],
    ));
    let b = run_experiment(quick_cfg(
        ProtocolMode::Http,
        NetworkKind::Wifi,
        vec![9, 12],
    ));
    let plts_a: Vec<f64> = a.visits.iter().map(|v| v.plt_ms).collect();
    let plts_b: Vec<f64> = b.visits.iter().map(|v| v.plt_ms).collect();
    assert_eq!(plts_a, plts_b, "same seed ⇒ identical results");
}
