//! Header-block compression.
//!
//! Real SPDY/3 compresses name/value blocks with a zlib stream that stays
//! open for the whole session, primed with a protocol dictionary — so the
//! second request's headers compress against the first's. zlib itself is
//! out of scope for this workspace, so this module implements an
//! equivalent-in-spirit scheme from scratch: LZ77 over a **rolling shared
//! history window** primed with a static dictionary of common header text.
//! Compressor and decompressor evolve their windows in lockstep, giving the
//! same cross-request redundancy elimination the paper credits SPDY with.
//!
//! Token format (all integers LEB128 varints):
//! * `0x00, len, <len raw bytes>` — literal run;
//! * `0x01, dist, len` — copy `len` bytes from `dist` bytes back in the
//!   window (which includes previously processed blocks).

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

/// Static dictionary: common header names/values, as in the SPDY/3 spec's
/// compression dictionary (abbreviated but representative).
pub const STATIC_DICTIONARY: &[u8] = b"optionsgetheadpostputdeletetraceacceptaccept-charsetaccept-encodingaccept-languageaccept-rangesageallowauthorizationcache-controlconnectioncontent-basecontent-encodingcontent-languagecontent-lengthcontent-locationcontent-md5content-rangecontent-typedateetagexpectexpiresfromhostif-matchif-modified-sinceif-none-matchif-rangeif-unmodified-sincelast-modifiedlocationmax-forwardspragmaproxy-authenticateproxy-authorizationrangerefererretry-afterserverteuser-agent100101200201202203204205206300301302303304305306307400401402403404405406407408409410411412413414415416417500501502503504505accept-rangesageetaglocationproxy-authenticatepublicretry-afterservervarywarningwww-authenticateallowcontent-basecontent-encodingcache-controlconnectiondatetrailertransfer-encodingupgradeviawarningcontent-languagecontent-lengthcontent-locationcontent-md5content-rangecontent-typeetagexpireslast-modifiedset-cookieMondayTuesdayWednesdayThursdayFridaySaturdaySundayJanFebMarAprMayJunJulAugSepOctNovDecchunkedtext/htmlimage/pngimage/jpgimage/gifapplication/xmlapplication/xhtmltext/plainpublicmax-agecharset=iso-8859-1utf-8gzipdeflateHTTP/1.1statusversionurl:method:path:host:scheme:statushttphttps200 OKGET";

/// Maximum rolling-history bytes retained beyond the static dictionary.
const MAX_HISTORY: usize = 16 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1024;

fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(b);
            break;
        }
        out.put_u8(b | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// The shared rolling window, identical on both sides.
#[derive(Debug, Clone)]
struct Window {
    /// Static dictionary followed by session history.
    buf: Vec<u8>,
}

impl Window {
    fn new() -> Window {
        Window {
            buf: STATIC_DICTIONARY.to_vec(),
        }
    }

    fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        let overflow = self
            .buf
            .len()
            .saturating_sub(STATIC_DICTIONARY.len() + MAX_HISTORY);
        if overflow > 0 {
            // Drop the oldest history (keep the static dictionary intact).
            self.buf
                .drain(STATIC_DICTIONARY.len()..STATIC_DICTIONARY.len() + overflow);
        }
    }
}

/// Per-key candidate cap: the 4-gram index keeps at most this many
/// positions per key, oldest first (matching the original per-call
/// rebuild, which stopped inserting once a slot was full).
const MAX_CANDIDATES: usize = 32;

/// Positions of every 4-gram fully inside the static dictionary,
/// ascending, capped at [`MAX_CANDIDATES`] per key. The dictionary is a
/// constant, so this is computed once per process and shared.
fn static_index() -> &'static HashMap<[u8; 4], Vec<u32>> {
    static INDEX: OnceLock<HashMap<[u8; 4], Vec<u32>>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let d = STATIC_DICTIONARY;
        let mut index: HashMap<[u8; 4], Vec<u32>> = HashMap::new();
        for i in 0..d.len().saturating_sub(MIN_MATCH - 1) {
            let key = [d[i], d[i + 1], d[i + 2], d[i + 3]];
            let slot = index.entry(key).or_default();
            if slot.len() < MAX_CANDIDATES {
                slot.push(i as u32);
            }
        }
        index
    })
}

/// In-call 4-gram positions (window coordinates of the current call),
/// epoch-tagged so the map's allocations survive across calls without
/// per-call clearing.
#[derive(Debug, Default)]
struct Overlay {
    epoch: u64,
    positions: Vec<u32>,
}

/// The compressing half of a session's header codec.
///
/// The candidate index is persistent and incremental: static-dictionary
/// grams are computed once per process, history grams live in per-key
/// deques of *stream* positions (stable as the window drains), and the
/// three grams spanning the static/history boundary — whose bytes change
/// every time the history head shifts — are recomputed per call. The
/// assembled candidate list for a key is byte-for-byte the list the
/// original per-call index rebuild produced, so compressed output is
/// unchanged; what's gone is the 17 KiB window clone and the full index
/// rebuild on every header block.
#[derive(Debug)]
pub struct Compressor {
    window: Window,
    /// History bytes dropped from the window so far; stream position `s`
    /// of a retained history byte maps to window position `s - drained`.
    drained: u64,
    /// Per-key stream positions of history grams, ascending. Entries
    /// below the current history start are pruned lazily on access and
    /// in a periodic full sweep.
    history: HashMap<[u8; 4], VecDeque<u64>>,
    /// Per-call input-gram positions (see [`Overlay`]).
    overlay: HashMap<[u8; 4], Overlay>,
    /// Current call number, tags overlay entries.
    epoch: u64,
    /// `drained` at the last full prune of `history`.
    pruned_at: u64,
    /// Reusable candidate-assembly buffer.
    scratch: Vec<usize>,
    stats_in: u64,
    stats_out: u64,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

/// Assemble the candidate list for `key` exactly as the original
/// per-call index held it: static-interior positions, then the (up to
/// three) boundary grams, then history positions ascending, then this
/// call's overlay appends — truncated to the first [`MAX_CANDIDATES`].
#[allow(clippy::too_many_arguments)]
fn assemble_candidates(
    scratch: &mut Vec<usize>,
    key: [u8; 4],
    win: &[u8],
    drained: u64,
    hist_start: u64,
    history: &mut HashMap<[u8; 4], VecDeque<u64>>,
    overlay: &HashMap<[u8; 4], Overlay>,
    epoch: u64,
) {
    scratch.clear();
    let s_len = STATIC_DICTIONARY.len();
    if let Some(stat) = static_index().get(&key) {
        scratch.extend(stat.iter().map(|&p| p as usize));
    }
    // Grams straddling the static/history boundary (window positions
    // S-3..S-1); their bytes depend on the current history head.
    let hist_len = win.len() - s_len;
    for i in (s_len - (MIN_MATCH - 1))..s_len {
        if scratch.len() >= MAX_CANDIDATES {
            break;
        }
        if hist_len >= i + MIN_MATCH - s_len && win[i..i + MIN_MATCH] == key[..] {
            scratch.push(i);
        }
    }
    if scratch.len() < MAX_CANDIDATES {
        if let Some(dq) = history.get_mut(&key) {
            while dq.front().is_some_and(|&s| s < hist_start) {
                dq.pop_front();
            }
            for &s in dq.iter() {
                if scratch.len() >= MAX_CANDIDATES {
                    break;
                }
                scratch.push((s - drained) as usize);
            }
        }
    }
    if scratch.len() < MAX_CANDIDATES {
        if let Some(ov) = overlay.get(&key) {
            if ov.epoch == epoch {
                for &a in &ov.positions {
                    if scratch.len() >= MAX_CANDIDATES {
                        break;
                    }
                    scratch.push(a as usize);
                }
            }
        }
    }
}

impl Compressor {
    /// A compressor primed with the static dictionary.
    pub fn new() -> Compressor {
        Compressor {
            window: Window::new(),
            drained: 0,
            history: HashMap::new(),
            overlay: HashMap::new(),
            epoch: 0,
            pruned_at: 0,
            scratch: Vec::new(),
            stats_in: 0,
            stats_out: 0,
        }
    }

    /// `(plaintext_bytes, compressed_bytes)` totals so far.
    pub fn ratio_counters(&self) -> (u64, u64) {
        (self.stats_in, self.stats_out)
    }

    /// Compress one header block, updating the shared window.
    pub fn compress(&mut self, input: &[u8]) -> Bytes {
        let s_len = STATIC_DICTIONARY.len();
        let base = self.window.buf.len();
        let drained = self.drained;
        let hist_start = s_len as u64 + drained; // stream pos of history head
        let stream_len = hist_start + (base - s_len) as u64; // before this input
        self.epoch += 1;
        let epoch = self.epoch;

        // Split borrows so candidate assembly can prune `history` while
        // the window stays readable.
        let Compressor {
            window,
            history,
            overlay,
            scratch,
            ..
        } = &mut *self;
        let win: &[u8] = &window.buf;
        // Search space = window ++ input, addressed without materializing.
        let byte = |p: usize| -> u8 {
            if p < base {
                win[p]
            } else {
                input[p - base]
            }
        };
        let push_overlay = |overlay: &mut HashMap<[u8; 4], Overlay>, key: [u8; 4], a: usize| {
            let ov = overlay.entry(key).or_default();
            if ov.epoch != epoch {
                ov.epoch = epoch;
                ov.positions.clear();
            }
            ov.positions.push(a as u32);
        };

        let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
        let mut literal_start = 0usize; // within input
        let mut pos = 0usize;
        while pos < input.len() {
            let abs = base + pos;
            let mut best: Option<(usize, usize)> = None; // (src, len)
            if pos + MIN_MATCH <= input.len() {
                let key = [input[pos], input[pos + 1], input[pos + 2], input[pos + 3]];
                assemble_candidates(
                    scratch, key, win, drained, hist_start, history, overlay, epoch,
                );
                for &src in scratch.iter().rev() {
                    let mut l = 0usize;
                    while l < MAX_MATCH
                        && pos + l < input.len()
                        && byte(src + l) == input[pos + l]
                        // Matches may run into the current input but the
                        // source must start before `abs`.
                        && src + l < abs
                    {
                        l += 1;
                    }
                    if l >= MIN_MATCH && best.is_none_or(|(_, bl)| l > bl) {
                        best = Some((src, l));
                    }
                }
            }
            match best {
                Some((src, len)) => {
                    // Flush pending literals.
                    if literal_start < pos {
                        let lit = &input[literal_start..pos];
                        out.put_u8(0x00);
                        put_varint(&mut out, lit.len() as u64);
                        out.put_slice(lit);
                    }
                    out.put_u8(0x01);
                    put_varint(&mut out, (abs - src) as u64);
                    put_varint(&mut out, len as u64);
                    // Newly emitted input becomes searchable.
                    for i in pos..(pos + len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
                        let a = base + i;
                        let key = [input[i], input[i + 1], input[i + 2], input[i + 3]];
                        push_overlay(overlay, key, a);
                    }
                    pos += len;
                    literal_start = pos;
                }
                None => {
                    if pos + MIN_MATCH <= input.len() {
                        let key = [input[pos], input[pos + 1], input[pos + 2], input[pos + 3]];
                        push_overlay(overlay, key, abs);
                    }
                    pos += 1;
                }
            }
        }
        if literal_start < input.len() {
            let lit = &input[literal_start..];
            out.put_u8(0x00);
            put_varint(&mut out, lit.len() as u64);
            out.put_slice(lit);
        }

        // Register the grams the next call's window will contain: stream
        // positions from just before this input (grams completing across
        // the block boundary) through `stream_end - 4`.
        let stream_end = stream_len + input.len() as u64;
        if stream_end >= s_len as u64 + MIN_MATCH as u64 {
            let lo = stream_len
                .saturating_sub(MIN_MATCH as u64 - 1)
                .max(s_len as u64);
            let stream_byte = |s: u64| -> u8 {
                if s < stream_len {
                    win[(s - drained) as usize]
                } else {
                    input[(s - stream_len) as usize]
                }
            };
            for s in lo..=(stream_end - MIN_MATCH as u64) {
                let key = [
                    stream_byte(s),
                    stream_byte(s + 1),
                    stream_byte(s + 2),
                    stream_byte(s + 3),
                ];
                history.entry(key).or_default().push_back(s);
            }
        }

        self.window.extend(input);
        self.drained = stream_end - self.window.buf.len() as u64;
        // Amortized memory bound: whenever another full window's worth of
        // history has drained, sweep the stale positions everywhere.
        if self.drained - self.pruned_at >= MAX_HISTORY as u64 {
            let live_from = s_len as u64 + self.drained;
            self.history.retain(|_, dq| {
                while dq.front().is_some_and(|&s| s < live_from) {
                    dq.pop_front();
                }
                !dq.is_empty()
            });
            self.pruned_at = self.drained;
        }

        self.stats_in += input.len() as u64;
        self.stats_out += out.len() as u64;
        out.freeze()
    }
}

/// Error raised on a malformed compressed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressError(pub String);

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decompress error: {}", self.0)
    }
}

impl std::error::Error for DecompressError {}

/// The decompressing half; must see blocks in the order they were
/// compressed (like SPDY's session-long zlib stream).
#[derive(Debug)]
pub struct Decompressor {
    window: Window,
    /// Reusable plaintext buffer; match sources address the conceptual
    /// `window ++ out` space without cloning the window per block.
    out: Vec<u8>,
}

impl Default for Decompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Decompressor {
    /// A decompressor primed with the static dictionary.
    pub fn new() -> Decompressor {
        Decompressor {
            window: Window::new(),
            out: Vec::new(),
        }
    }

    /// Decompress one block, updating the shared window.
    pub fn decompress(&mut self, data: &[u8]) -> Result<Bytes, DecompressError> {
        let base = self.window.buf.len();
        self.out.clear();
        let mut pos = 0usize;
        while pos < data.len() {
            let tag = data[pos];
            pos += 1;
            match tag {
                0x00 => {
                    let len = get_varint(data, &mut pos)
                        .ok_or_else(|| DecompressError("truncated literal len".into()))?
                        as usize;
                    if pos + len > data.len() {
                        return Err(DecompressError("truncated literal body".into()));
                    }
                    self.out.extend_from_slice(&data[pos..pos + len]);
                    pos += len;
                }
                0x01 => {
                    let dist = get_varint(data, &mut pos)
                        .ok_or_else(|| DecompressError("truncated match dist".into()))?
                        as usize;
                    let len = get_varint(data, &mut pos)
                        .ok_or_else(|| DecompressError("truncated match len".into()))?
                        as usize;
                    if dist == 0 || dist > base + self.out.len() || len > MAX_MATCH {
                        return Err(DecompressError(format!("bad match dist={dist} len={len}")));
                    }
                    // Byte-by-byte copy supports overlapping matches.
                    let start = base + self.out.len() - dist;
                    for i in 0..len {
                        let p = start + i;
                        let b = if p < base {
                            self.window.buf[p]
                        } else {
                            self.out[p - base]
                        };
                        self.out.push(b);
                    }
                }
                other => return Err(DecompressError(format!("bad token {other}"))),
            }
        }
        let plain = Bytes::copy_from_slice(&self.out);
        self.window.extend(&plain);
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(blocks: &[&[u8]]) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        for b in blocks {
            let comp = c.compress(b);
            let plain = d.decompress(&comp).expect("valid stream");
            assert_eq!(&plain[..], *b);
        }
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(&[b"hello world, hello world, hello world"]);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(&[b"", b"a", b"ab", b"abc"]);
    }

    #[test]
    fn dictionary_helps_header_text() {
        let mut c = Compressor::new();
        let headers =
            b"accept-encoding: gzipdeflate\r\ncontent-type: text/html\r\nuser-agent: test\r\n";
        let comp = c.compress(headers);
        assert!(
            comp.len() < headers.len(),
            "dictionary text should compress: {} vs {}",
            comp.len(),
            headers.len()
        );
    }

    #[test]
    fn cross_block_history_compresses_repeats() {
        let mut c = Compressor::new();
        let block = b"x-custom-nonsense-header-zzqy: 1234567890abcdefgh\r\nanother-weird-one-qqq: value-value-value\r\n";
        let first = c.compress(block);
        let second = c.compress(block);
        assert!(
            second.len() < first.len() / 2,
            "second identical block must compress against history: {} vs {}",
            second.len(),
            first.len()
        );
        // And the decompressor tracks it.
        let mut d = Decompressor::new();
        assert_eq!(&d.decompress(&first).unwrap()[..], &block[..]);
        assert_eq!(&d.decompress(&second).unwrap()[..], &block[..]);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." triggers overlapping copies.
        let data = vec![b'a'; 500];
        roundtrip(&[&data]);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes with no 4-gram repeats.
        let data: Vec<u8> = (0..1000u32)
            .map(|i| ((i.wrapping_mul(2654435761)) >> 13) as u8)
            .collect();
        roundtrip(&[&data]);
    }

    #[test]
    fn long_session_stays_in_sync_despite_window_cap() {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        for i in 0..200 {
            let block = format!(
                "get /object/{i} http/1.1\r\nhost: site-{}.example\r\ncookie: session=abcdef{i}\r\n",
                i % 7
            );
            let comp = c.compress(block.as_bytes());
            let plain = d.decompress(&comp).expect("in sync");
            assert_eq!(&plain[..], block.as_bytes());
        }
        let (inb, outb) = c.ratio_counters();
        assert!(outb < inb / 2, "sustained compression: {outb}/{inb}");
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let mut d = Decompressor::new();
        assert!(d.decompress(&[0x01, 0x00, 0x05]).is_err(), "zero distance");
        assert!(d.decompress(&[0x00, 0xFF]).is_err(), "truncated literal");
        assert!(d.decompress(&[0x07]).is_err(), "unknown token");
    }

    /// The original clone-and-rebuild compressor, kept verbatim as an
    /// oracle: the incremental index must reproduce its output byte for
    /// byte (golden traces depend on exact wire bytes).
    struct ReferenceCompressor {
        window: Window,
    }

    impl ReferenceCompressor {
        fn new() -> ReferenceCompressor {
            ReferenceCompressor {
                window: Window::new(),
            }
        }

        fn compress(&mut self, input: &[u8]) -> Bytes {
            let mut space = self.window.buf.clone();
            let base = space.len();
            space.extend_from_slice(input);

            let mut index: HashMap<[u8; 4], Vec<usize>> = HashMap::new();
            for i in 0..base.saturating_sub(MIN_MATCH - 1) {
                let key = [space[i], space[i + 1], space[i + 2], space[i + 3]];
                let slot = index.entry(key).or_default();
                if slot.len() < 32 {
                    slot.push(i);
                }
            }

            let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
            let mut literal_start = 0usize;
            let mut pos = 0usize;
            while pos < input.len() {
                let abs = base + pos;
                let mut best: Option<(usize, usize)> = None;
                if pos + MIN_MATCH <= input.len() {
                    let key = [input[pos], input[pos + 1], input[pos + 2], input[pos + 3]];
                    if let Some(cands) = index.get(&key) {
                        for &src in cands.iter().rev() {
                            let mut l = 0usize;
                            while l < MAX_MATCH
                                && pos + l < input.len()
                                && space[src + l] == input[pos + l]
                                && src + l < abs
                            {
                                l += 1;
                            }
                            if l >= MIN_MATCH && best.is_none_or(|(_, bl)| l > bl) {
                                best = Some((src, l));
                            }
                        }
                    }
                }
                match best {
                    Some((src, len)) => {
                        if literal_start < pos {
                            let lit = &input[literal_start..pos];
                            out.put_u8(0x00);
                            put_varint(&mut out, lit.len() as u64);
                            out.put_slice(lit);
                        }
                        out.put_u8(0x01);
                        put_varint(&mut out, (abs - src) as u64);
                        put_varint(&mut out, len as u64);
                        for i in pos..(pos + len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
                            let a = base + i;
                            if a + MIN_MATCH <= space.len() {
                                let key = [space[a], space[a + 1], space[a + 2], space[a + 3]];
                                let slot = index.entry(key).or_default();
                                if slot.len() < 32 {
                                    slot.push(a);
                                }
                            }
                        }
                        pos += len;
                        literal_start = pos;
                    }
                    None => {
                        let a = abs;
                        if a + MIN_MATCH <= space.len() {
                            let key = [space[a], space[a + 1], space[a + 2], space[a + 3]];
                            let slot = index.entry(key).or_default();
                            if slot.len() < 32 {
                                slot.push(a);
                            }
                        }
                        pos += 1;
                    }
                }
            }
            if literal_start < input.len() {
                let lit = &input[literal_start..];
                out.put_u8(0x00);
                put_varint(&mut out, lit.len() as u64);
                out.put_slice(lit);
            }
            self.window.extend(input);
            out.freeze()
        }
    }

    /// Deterministic pseudo-random byte for adversarial block content.
    fn mix(i: u64) -> u8 {
        ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 33) as u8
    }

    #[test]
    fn incremental_compressor_matches_reference_across_window_churn() {
        let mut inc = Compressor::new();
        let mut reference = ReferenceCompressor::new();
        let mut total = 0usize;
        // Far past MAX_HISTORY so the boundary grams and stream-position
        // remapping are exercised through many drains; block shapes mix
        // header-like text, high-repetition runs, tiny blocks, and noise.
        for i in 0u64..400 {
            let block: Vec<u8> = match i % 5 {
                0 => format!(
                    "get /object/{i} http/1.1\r\nhost: site-{}.example\r\ncookie: s=tok{}{}\r\n",
                    i % 7,
                    i,
                    "x".repeat((i % 13) as usize)
                )
                .into_bytes(),
                1 => vec![b'a' + (i % 3) as u8; 40 + (i % 200) as usize],
                2 => (0..(i % 9)).map(mix).collect(),
                3 => {
                    let mut b =
                        b"accept-encoding: gzipdeflate\r\ncontent-type: text/html\r\n".to_vec();
                    b.extend((0..(60 + i % 300)).map(|j| mix(i * 1000 + j)));
                    b
                }
                _ => format!("x-churn-{}: {}\r\n", i % 11, "v".repeat((i % 97) as usize))
                    .into_bytes(),
            };
            total += block.len();
            let a = inc.compress(&block);
            let b = reference.compress(&block);
            assert_eq!(a, b, "block {i} diverged (len {})", block.len());
        }
        assert!(
            total > 2 * MAX_HISTORY,
            "session must overflow the window: {total}"
        );
        // And the real decompressor still tracks the incremental side.
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        for i in 0u64..50 {
            let block = format!("host: h{}.example\r\ncookie: c={}\r\n", i % 3, i);
            let comp = c.compress(block.as_bytes());
            assert_eq!(&d.decompress(&comp).unwrap()[..], block.as_bytes());
        }
    }

    #[test]
    fn desync_produces_wrong_output_demonstrating_statefulness() {
        let mut c = Compressor::new();
        let block = b"some repeated header value 12345 some repeated header value 12345";
        let _skipped = c.compress(block);
        let second = c.compress(block);
        let mut d = Decompressor::new();
        // Decoding the second block without the first either errors or
        // yields different text — proof the codec is genuinely stateful.
        match d.decompress(&second) {
            Err(_) => {}
            Ok(plain) => assert_ne!(&plain[..], &block[..]),
        }
    }
}
