//! Header-block compression.
//!
//! Real SPDY/3 compresses name/value blocks with a zlib stream that stays
//! open for the whole session, primed with a protocol dictionary — so the
//! second request's headers compress against the first's. zlib itself is
//! out of scope for this workspace, so this module implements an
//! equivalent-in-spirit scheme from scratch: LZ77 over a **rolling shared
//! history window** primed with a static dictionary of common header text.
//! Compressor and decompressor evolve their windows in lockstep, giving the
//! same cross-request redundancy elimination the paper credits SPDY with.
//!
//! Token format (all integers LEB128 varints):
//! * `0x00, len, <len raw bytes>` — literal run;
//! * `0x01, dist, len` — copy `len` bytes from `dist` bytes back in the
//!   window (which includes previously processed blocks).

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;

/// Static dictionary: common header names/values, as in the SPDY/3 spec's
/// compression dictionary (abbreviated but representative).
pub const STATIC_DICTIONARY: &[u8] = b"optionsgetheadpostputdeletetraceacceptaccept-charsetaccept-encodingaccept-languageaccept-rangesageallowauthorizationcache-controlconnectioncontent-basecontent-encodingcontent-languagecontent-lengthcontent-locationcontent-md5content-rangecontent-typedateetagexpectexpiresfromhostif-matchif-modified-sinceif-none-matchif-rangeif-unmodified-sincelast-modifiedlocationmax-forwardspragmaproxy-authenticateproxy-authorizationrangerefererretry-afterserverteuser-agent100101200201202203204205206300301302303304305306307400401402403404405406407408409410411412413414415416417500501502503504505accept-rangesageetaglocationproxy-authenticatepublicretry-afterservervarywarningwww-authenticateallowcontent-basecontent-encodingcache-controlconnectiondatetrailertransfer-encodingupgradeviawarningcontent-languagecontent-lengthcontent-locationcontent-md5content-rangecontent-typeetagexpireslast-modifiedset-cookieMondayTuesdayWednesdayThursdayFridaySaturdaySundayJanFebMarAprMayJunJulAugSepOctNovDecchunkedtext/htmlimage/pngimage/jpgimage/gifapplication/xmlapplication/xhtmltext/plainpublicmax-agecharset=iso-8859-1utf-8gzipdeflateHTTP/1.1statusversionurl:method:path:host:scheme:statushttphttps200 OKGET";

/// Maximum rolling-history bytes retained beyond the static dictionary.
const MAX_HISTORY: usize = 16 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1024;

fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(b);
            break;
        }
        out.put_u8(b | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// The shared rolling window, identical on both sides.
#[derive(Debug, Clone)]
struct Window {
    /// Static dictionary followed by session history.
    buf: Vec<u8>,
}

impl Window {
    fn new() -> Window {
        Window {
            buf: STATIC_DICTIONARY.to_vec(),
        }
    }

    fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        let overflow = self
            .buf
            .len()
            .saturating_sub(STATIC_DICTIONARY.len() + MAX_HISTORY);
        if overflow > 0 {
            // Drop the oldest history (keep the static dictionary intact).
            self.buf
                .drain(STATIC_DICTIONARY.len()..STATIC_DICTIONARY.len() + overflow);
        }
    }
}

/// The compressing half of a session's header codec.
#[derive(Debug)]
pub struct Compressor {
    window: Window,
    stats_in: u64,
    stats_out: u64,
}

impl Default for Compressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor {
    /// A compressor primed with the static dictionary.
    pub fn new() -> Compressor {
        Compressor {
            window: Window::new(),
            stats_in: 0,
            stats_out: 0,
        }
    }

    /// `(plaintext_bytes, compressed_bytes)` totals so far.
    pub fn ratio_counters(&self) -> (u64, u64) {
        (self.stats_in, self.stats_out)
    }

    /// Compress one header block, updating the shared window.
    pub fn compress(&mut self, input: &[u8]) -> Bytes {
        // Search space = window + already-emitted part of this input.
        let mut space = self.window.buf.clone();
        let base = space.len();
        space.extend_from_slice(input);

        // Index 4-grams of the searchable region.
        let mut index: HashMap<[u8; 4], Vec<usize>> = HashMap::new();
        for i in 0..base.saturating_sub(MIN_MATCH - 1) {
            let key = [space[i], space[i + 1], space[i + 2], space[i + 3]];
            let slot = index.entry(key).or_default();
            if slot.len() < 32 {
                slot.push(i);
            }
        }

        let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
        let mut literal_start = 0usize; // within input
        let mut pos = 0usize;
        while pos < input.len() {
            let abs = base + pos;
            let mut best: Option<(usize, usize)> = None; // (src, len)
            if pos + MIN_MATCH <= input.len() {
                let key = [input[pos], input[pos + 1], input[pos + 2], input[pos + 3]];
                if let Some(cands) = index.get(&key) {
                    for &src in cands.iter().rev() {
                        let mut l = 0usize;
                        while l < MAX_MATCH
                            && pos + l < input.len()
                            && space[src + l] == input[pos + l]
                            // Matches may run into the current input but the
                            // source must start before `abs`.
                            && src + l < abs
                        {
                            l += 1;
                        }
                        if l >= MIN_MATCH && best.is_none_or(|(_, bl)| l > bl) {
                            best = Some((src, l));
                        }
                    }
                }
            }
            match best {
                Some((src, len)) => {
                    // Flush pending literals.
                    if literal_start < pos {
                        let lit = &input[literal_start..pos];
                        out.put_u8(0x00);
                        put_varint(&mut out, lit.len() as u64);
                        out.put_slice(lit);
                    }
                    out.put_u8(0x01);
                    put_varint(&mut out, (abs - src) as u64);
                    put_varint(&mut out, len as u64);
                    // Newly emitted input becomes searchable.
                    for i in pos..(pos + len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
                        let a = base + i;
                        if a + MIN_MATCH <= space.len() {
                            let key = [space[a], space[a + 1], space[a + 2], space[a + 3]];
                            let slot = index.entry(key).or_default();
                            if slot.len() < 32 {
                                slot.push(a);
                            }
                        }
                    }
                    pos += len;
                    literal_start = pos;
                }
                None => {
                    let a = abs;
                    if a + MIN_MATCH <= space.len() {
                        let key = [space[a], space[a + 1], space[a + 2], space[a + 3]];
                        let slot = index.entry(key).or_default();
                        if slot.len() < 32 {
                            slot.push(a);
                        }
                    }
                    pos += 1;
                }
            }
        }
        if literal_start < input.len() {
            let lit = &input[literal_start..];
            out.put_u8(0x00);
            put_varint(&mut out, lit.len() as u64);
            out.put_slice(lit);
        }
        self.window.extend(input);
        self.stats_in += input.len() as u64;
        self.stats_out += out.len() as u64;
        out.freeze()
    }
}

/// Error raised on a malformed compressed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressError(pub String);

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decompress error: {}", self.0)
    }
}

impl std::error::Error for DecompressError {}

/// The decompressing half; must see blocks in the order they were
/// compressed (like SPDY's session-long zlib stream).
#[derive(Debug)]
pub struct Decompressor {
    window: Window,
}

impl Default for Decompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl Decompressor {
    /// A decompressor primed with the static dictionary.
    pub fn new() -> Decompressor {
        Decompressor {
            window: Window::new(),
        }
    }

    /// Decompress one block, updating the shared window.
    pub fn decompress(&mut self, data: &[u8]) -> Result<Bytes, DecompressError> {
        let mut space = self.window.buf.clone();
        let base = space.len();
        let mut pos = 0usize;
        while pos < data.len() {
            let tag = data[pos];
            pos += 1;
            match tag {
                0x00 => {
                    let len = get_varint(data, &mut pos)
                        .ok_or_else(|| DecompressError("truncated literal len".into()))?
                        as usize;
                    if pos + len > data.len() {
                        return Err(DecompressError("truncated literal body".into()));
                    }
                    space.extend_from_slice(&data[pos..pos + len]);
                    pos += len;
                }
                0x01 => {
                    let dist = get_varint(data, &mut pos)
                        .ok_or_else(|| DecompressError("truncated match dist".into()))?
                        as usize;
                    let len = get_varint(data, &mut pos)
                        .ok_or_else(|| DecompressError("truncated match len".into()))?
                        as usize;
                    if dist == 0 || dist > space.len() || len > MAX_MATCH {
                        return Err(DecompressError(format!("bad match dist={dist} len={len}")));
                    }
                    // Byte-by-byte copy supports overlapping matches.
                    let start = space.len() - dist;
                    for i in 0..len {
                        let b = space[start + i];
                        space.push(b);
                    }
                }
                other => return Err(DecompressError(format!("bad token {other}"))),
            }
        }
        let plain = Bytes::copy_from_slice(&space[base..]);
        self.window.extend(&plain);
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(blocks: &[&[u8]]) {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        for b in blocks {
            let comp = c.compress(b);
            let plain = d.decompress(&comp).expect("valid stream");
            assert_eq!(&plain[..], *b);
        }
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(&[b"hello world, hello world, hello world"]);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(&[b"", b"a", b"ab", b"abc"]);
    }

    #[test]
    fn dictionary_helps_header_text() {
        let mut c = Compressor::new();
        let headers =
            b"accept-encoding: gzipdeflate\r\ncontent-type: text/html\r\nuser-agent: test\r\n";
        let comp = c.compress(headers);
        assert!(
            comp.len() < headers.len(),
            "dictionary text should compress: {} vs {}",
            comp.len(),
            headers.len()
        );
    }

    #[test]
    fn cross_block_history_compresses_repeats() {
        let mut c = Compressor::new();
        let block = b"x-custom-nonsense-header-zzqy: 1234567890abcdefgh\r\nanother-weird-one-qqq: value-value-value\r\n";
        let first = c.compress(block);
        let second = c.compress(block);
        assert!(
            second.len() < first.len() / 2,
            "second identical block must compress against history: {} vs {}",
            second.len(),
            first.len()
        );
        // And the decompressor tracks it.
        let mut d = Decompressor::new();
        assert_eq!(&d.decompress(&first).unwrap()[..], &block[..]);
        assert_eq!(&d.decompress(&second).unwrap()[..], &block[..]);
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." triggers overlapping copies.
        let data = vec![b'a'; 500];
        roundtrip(&[&data]);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes with no 4-gram repeats.
        let data: Vec<u8> = (0..1000u32)
            .map(|i| ((i.wrapping_mul(2654435761)) >> 13) as u8)
            .collect();
        roundtrip(&[&data]);
    }

    #[test]
    fn long_session_stays_in_sync_despite_window_cap() {
        let mut c = Compressor::new();
        let mut d = Decompressor::new();
        for i in 0..200 {
            let block = format!(
                "get /object/{i} http/1.1\r\nhost: site-{}.example\r\ncookie: session=abcdef{i}\r\n",
                i % 7
            );
            let comp = c.compress(block.as_bytes());
            let plain = d.decompress(&comp).expect("in sync");
            assert_eq!(&plain[..], block.as_bytes());
        }
        let (inb, outb) = c.ratio_counters();
        assert!(outb < inb / 2, "sustained compression: {outb}/{inb}");
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let mut d = Decompressor::new();
        assert!(d.decompress(&[0x01, 0x00, 0x05]).is_err(), "zero distance");
        assert!(d.decompress(&[0x00, 0xFF]).is_err(), "truncated literal");
        assert!(d.decompress(&[0x07]).is_err(), "unknown token");
    }

    #[test]
    fn desync_produces_wrong_output_demonstrating_statefulness() {
        let mut c = Compressor::new();
        let block = b"some repeated header value 12345 some repeated header value 12345";
        let _skipped = c.compress(block);
        let second = c.compress(block);
        let mut d = Decompressor::new();
        // Decoding the second block without the first either errors or
        // yields different text — proof the codec is genuinely stateful.
        match d.decompress(&second) {
            Err(_) => {}
            Ok(plain) => assert_ne!(&plain[..], &block[..]),
        }
    }
}
