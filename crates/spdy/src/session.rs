//! The SPDY session: prioritized stream multiplexing over one byte stream.
//!
//! This is the mechanism the paper's Figure 1(d) illustrates — many
//! concurrent request streams share a single TCP connection, higher
//! priority responses pre-empt lower ones in the send queue, and several
//! small responses may coalesce into one packet.
//!
//! Queued stream data is a per-stream [`Payload`] rope: slicing DATA
//! frames off the front is chunk bookkeeping, so synthetic (length-only)
//! bodies multiplex without being copied or materialized.

use crate::compress::{Compressor, Decompressor};
use crate::frame::{Frame, FrameError, FrameParser};
use serde::Serialize;
use spdyier_bytes::Payload;
use std::collections::{HashMap, VecDeque};

/// Session tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SpdyConfig {
    /// Initial per-stream flow-control window, bytes (SPDY/3: 64 KiB).
    pub initial_window: u32,
    /// Maximum payload per DATA frame.
    pub max_data_frame: usize,
    /// Send WINDOW_UPDATE after consuming this many bytes on a stream.
    pub window_update_threshold: u32,
}

impl Default for SpdyConfig {
    fn default() -> Self {
        SpdyConfig {
            initial_window: 64 * 1024,
            max_data_frame: 4096,
            window_update_threshold: 32 * 1024,
        }
    }
}

/// Which end of the session this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Opens odd-numbered streams.
    Client,
    /// Opens even-numbered streams.
    Server,
}

/// Events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpdyEvent {
    /// A peer-initiated stream opened (server sees client requests).
    StreamOpened {
        /// New stream.
        stream_id: u32,
        /// SPDY priority, 0 highest.
        priority: u8,
        /// Peer half-closed immediately.
        fin: bool,
        /// Request headers.
        headers: Vec<(String, String)>,
    },
    /// The reply headers for a stream we opened.
    Reply {
        /// Stream being answered.
        stream_id: u32,
        /// Peer half-closed (no body follows).
        fin: bool,
        /// Response headers.
        headers: Vec<(String, String)>,
    },
    /// Payload on a stream.
    Data {
        /// Stream carrying data.
        stream_id: u32,
        /// Payload rope.
        payload: Payload,
        /// Peer finished this stream.
        fin: bool,
    },
    /// Peer reset a stream.
    Reset {
        /// Stream reset.
        stream_id: u32,
        /// Status code.
        status: u32,
    },
    /// A PING arrived (sessions answer pings automatically).
    Ping(u32),
    /// Peer is going away.
    Goaway,
}

/// Session counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SpdyStats {
    /// Streams opened locally.
    pub streams_opened: u64,
    /// Streams opened by the peer.
    pub streams_accepted: u64,
    /// DATA payload bytes sent.
    pub data_bytes_sent: u64,
    /// DATA payload bytes received.
    pub data_bytes_rcvd: u64,
    /// Frames sent (all kinds).
    pub frames_sent: u64,
    /// Frames received.
    pub frames_rcvd: u64,
    /// Times a stream stalled on flow control.
    pub flow_control_stalls: u64,
}

#[derive(Debug)]
struct StreamState {
    priority: u8,
    send_window: i64,
    /// Bytes received and consumed since the last WINDOW_UPDATE we sent.
    consumed_unacked: u32,
    /// Queued-but-unsent stream data, as one rope.
    send_queue: Payload,
    fin_pending: bool,
    local_closed: bool,
    remote_closed: bool,
}

/// A SPDY/3 session endpoint.
#[derive(Debug)]
pub struct SpdySession {
    cfg: SpdyConfig,
    role: Role,
    next_stream_id: u32,
    streams: HashMap<u32, StreamState>,
    comp: Compressor,
    decomp: Decompressor,
    parser: FrameParser,
    /// Encoded control frames awaiting transmission (FIFO — their header
    /// blocks were compressed in this order).
    control_out: VecDeque<Payload>,
    /// Streams with sendable data, per priority level (0 = highest).
    ready: [VecDeque<u32>; 8],
    stats: SpdyStats,
}

impl SpdySession {
    /// Create an endpoint.
    pub fn new(role: Role, cfg: SpdyConfig) -> SpdySession {
        SpdySession {
            cfg,
            role,
            next_stream_id: match role {
                Role::Client => 1,
                Role::Server => 2,
            },
            streams: HashMap::new(),
            comp: Compressor::new(),
            decomp: Decompressor::new(),
            parser: FrameParser::new(),
            control_out: VecDeque::new(),
            ready: Default::default(),
            stats: SpdyStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> SpdyStats {
        self.stats
    }

    /// Header-compression byte counters `(plaintext, wire)`.
    pub fn compression_counters(&self) -> (u64, u64) {
        self.comp.ratio_counters()
    }

    /// Open a new stream with `headers` at `priority` (0 = highest).
    /// `fin` half-closes immediately (a bodyless request).
    pub fn open_stream(&mut self, headers: Vec<(String, String)>, priority: u8, fin: bool) -> u32 {
        let stream_id = self.next_stream_id;
        self.next_stream_id += 2;
        let priority = priority.min(7);
        self.streams.insert(
            stream_id,
            StreamState {
                priority,
                send_window: i64::from(self.cfg.initial_window),
                consumed_unacked: 0,
                send_queue: Payload::new(),
                fin_pending: false,
                local_closed: fin,
                remote_closed: false,
            },
        );
        self.stats.streams_opened += 1;
        let frame = Frame::SynStream {
            stream_id,
            priority,
            fin,
            headers,
        };
        let wire = frame.encode(&mut self.comp);
        self.control_out.push_back(wire);
        stream_id
    }

    /// Answer a peer-opened stream with reply headers.
    pub fn reply(&mut self, stream_id: u32, headers: Vec<(String, String)>, fin: bool) {
        let frame = Frame::SynReply {
            stream_id,
            fin,
            headers,
        };
        let wire = frame.encode(&mut self.comp);
        self.control_out.push_back(wire);
        if fin {
            if let Some(st) = self.streams.get_mut(&stream_id) {
                st.local_closed = true;
            }
            self.gc_stream(stream_id);
        }
    }

    /// Queue payload on a stream; `fin` closes our half after this data.
    pub fn send_data(&mut self, stream_id: u32, payload: Payload, fin: bool) {
        let Some(st) = self.streams.get_mut(&stream_id) else {
            return;
        };
        debug_assert!(
            !st.local_closed,
            "send on locally-closed stream {stream_id}"
        );
        let priority = st.priority;
        st.send_queue.append(payload);
        if fin {
            st.fin_pending = true;
        }
        if !self.ready[priority as usize].contains(&stream_id) {
            self.ready[priority as usize].push_back(stream_id);
        }
    }

    /// Reset a stream.
    pub fn rst(&mut self, stream_id: u32, status: u32) {
        let wire = Frame::RstStream { stream_id, status }.encode(&mut self.comp);
        self.control_out.push_back(wire);
        self.streams.remove(&stream_id);
    }

    /// Send a PING probe.
    pub fn ping(&mut self, id: u32) {
        let wire = Frame::Ping(id).encode(&mut self.comp);
        self.control_out.push_back(wire);
    }

    /// Announce session teardown.
    pub fn goaway(&mut self) {
        let last = self.next_stream_id.saturating_sub(2);
        let wire = Frame::Goaway {
            last_stream_id: last,
            status: 0,
        }
        .encode(&mut self.comp);
        self.control_out.push_back(wire);
    }

    /// The application consumed `n` received bytes on `stream_id`; may emit
    /// a WINDOW_UPDATE.
    pub fn consume(&mut self, stream_id: u32, n: u32) {
        let threshold = self.cfg.window_update_threshold;
        let Some(st) = self.streams.get_mut(&stream_id) else {
            return;
        };
        st.consumed_unacked += n;
        if st.consumed_unacked >= threshold {
            let delta = st.consumed_unacked;
            st.consumed_unacked = 0;
            let wire = Frame::WindowUpdate { stream_id, delta }.encode(&mut self.comp);
            self.control_out.push_back(wire);
        }
    }

    /// Total bytes queued for transmission (control + data).
    pub fn pending_bytes(&self) -> u64 {
        let control: u64 = self.control_out.iter().map(|b| b.len()).sum();
        let data: u64 = self.streams.values().map(|s| s.send_queue.len()).sum();
        control + data
    }

    /// Does any stream hold queued data (even if flow-blocked)?
    pub fn has_queued_data(&self) -> bool {
        self.streams
            .values()
            .any(|s| !s.send_queue.is_empty() || s.fin_pending)
    }

    /// Produce the next wire bytes to write, if any. Control frames drain
    /// first (FIFO — compression order); then DATA by priority, 0 first,
    /// round-robin within a level, honouring per-stream send windows.
    pub fn poll_wire(&mut self) -> Option<Payload> {
        if let Some(frame) = self.control_out.pop_front() {
            self.stats.frames_sent += 1;
            return Some(frame);
        }
        for pri in 0..8 {
            let mut inspected = 0;
            while inspected < self.ready[pri].len() {
                let stream_id = self.ready[pri][0];
                match self.try_emit_data(stream_id) {
                    EmitOutcome::Frame(wire, exhausted) => {
                        // Round-robin: rotate the stream to the back unless done.
                        self.ready[pri].pop_front();
                        if !exhausted {
                            self.ready[pri].push_back(stream_id);
                        }
                        self.stats.frames_sent += 1;
                        return Some(wire);
                    }
                    EmitOutcome::Blocked => {
                        // Flow-controlled: rotate and try the next stream.
                        self.ready[pri].rotate_left(1);
                        inspected += 1;
                    }
                    EmitOutcome::Nothing => {
                        self.ready[pri].pop_front();
                    }
                }
            }
        }
        None
    }

    fn try_emit_data(&mut self, stream_id: u32) -> EmitOutcome {
        let Some(st) = self.streams.get_mut(&stream_id) else {
            return EmitOutcome::Nothing;
        };
        if st.send_queue.is_empty() {
            if st.fin_pending {
                st.fin_pending = false;
                st.local_closed = true;
                let wire = Frame::Data {
                    stream_id,
                    fin: true,
                    payload: Payload::new(),
                }
                .encode(&mut self.comp);
                self.gc_stream(stream_id);
                return EmitOutcome::Frame(wire, true);
            }
            return EmitOutcome::Nothing;
        }
        if st.send_window <= 0 {
            self.stats.flow_control_stalls += 1;
            return EmitOutcome::Blocked;
        }
        let budget = (st.send_window as u64).min(self.cfg.max_data_frame as u64);
        let take = st.send_queue.len().min(budget);
        let payload = st.send_queue.split_to(take);
        st.send_window -= payload.len() as i64;
        self.stats.data_bytes_sent += payload.len();
        let exhausted = st.send_queue.is_empty() && !st.fin_pending;
        let fin = st.send_queue.is_empty() && st.fin_pending;
        if fin {
            st.fin_pending = false;
            st.local_closed = true;
        }
        let wire = Frame::Data {
            stream_id,
            fin,
            payload,
        }
        .encode(&mut self.comp);
        if fin {
            self.gc_stream(stream_id);
            return EmitOutcome::Frame(wire, true);
        }
        EmitOutcome::Frame(wire, exhausted)
    }

    fn gc_stream(&mut self, stream_id: u32) {
        if let Some(st) = self.streams.get(&stream_id) {
            if st.local_closed && st.remote_closed && st.send_queue.is_empty() && !st.fin_pending {
                self.streams.remove(&stream_id);
            }
        }
    }

    /// Feed data read from the transport; returns application events.
    pub fn on_bytes(&mut self, data: Payload) -> Result<Vec<SpdyEvent>, FrameError> {
        self.parser.push(data);
        let mut events = Vec::new();
        while let Some(frame) = self.parser.next_frame(&mut self.decomp)? {
            self.stats.frames_rcvd += 1;
            match frame {
                Frame::SynStream {
                    stream_id,
                    priority,
                    fin,
                    headers,
                } => {
                    self.streams.insert(
                        stream_id,
                        StreamState {
                            priority,
                            send_window: i64::from(self.cfg.initial_window),
                            consumed_unacked: 0,
                            send_queue: Payload::new(),
                            fin_pending: false,
                            local_closed: false,
                            remote_closed: fin,
                        },
                    );
                    self.stats.streams_accepted += 1;
                    events.push(SpdyEvent::StreamOpened {
                        stream_id,
                        priority,
                        fin,
                        headers,
                    });
                }
                Frame::SynReply {
                    stream_id,
                    fin,
                    headers,
                } => {
                    if fin {
                        if let Some(st) = self.streams.get_mut(&stream_id) {
                            st.remote_closed = true;
                        }
                        self.gc_stream(stream_id);
                    }
                    events.push(SpdyEvent::Reply {
                        stream_id,
                        fin,
                        headers,
                    });
                }
                Frame::Data {
                    stream_id,
                    fin,
                    payload,
                } => {
                    self.stats.data_bytes_rcvd += payload.len();
                    if let Some(st) = self.streams.get_mut(&stream_id) {
                        if fin {
                            st.remote_closed = true;
                        }
                    }
                    if fin {
                        self.gc_stream(stream_id);
                    }
                    events.push(SpdyEvent::Data {
                        stream_id,
                        payload,
                        fin,
                    });
                }
                Frame::RstStream { stream_id, status } => {
                    self.streams.remove(&stream_id);
                    events.push(SpdyEvent::Reset { stream_id, status });
                }
                Frame::WindowUpdate { stream_id, delta } => {
                    if let Some(st) = self.streams.get_mut(&stream_id) {
                        st.send_window += i64::from(delta);
                        if !st.send_queue.is_empty() || st.fin_pending {
                            let pri = st.priority as usize;
                            if !self.ready[pri].contains(&stream_id) {
                                self.ready[pri].push_back(stream_id);
                            }
                        }
                    }
                }
                Frame::Ping(id) => {
                    // Sessions echo pings from the peer; our own echoes come
                    // back with ids we issued (odd/even split by role).
                    let ours = match self.role {
                        Role::Client => id % 2 == 1,
                        Role::Server => id % 2 == 0,
                    };
                    if !ours {
                        let wire = Frame::Ping(id).encode(&mut self.comp);
                        self.control_out.push_back(wire);
                    }
                    events.push(SpdyEvent::Ping(id));
                }
                Frame::Goaway { .. } => events.push(SpdyEvent::Goaway),
                Frame::Settings(_) => {}
            }
        }
        Ok(events)
    }
}

enum EmitOutcome {
    Frame(Payload, bool),
    Blocked,
    Nothing,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SpdySession, SpdySession) {
        (
            SpdySession::new(Role::Client, SpdyConfig::default()),
            SpdySession::new(Role::Server, SpdyConfig::default()),
        )
    }

    fn pump(from: &mut SpdySession, to: &mut SpdySession) -> Vec<SpdyEvent> {
        let mut events = Vec::new();
        while let Some(wire) = from.poll_wire() {
            events.extend(to.on_bytes(wire).expect("valid frames"));
        }
        events
    }

    fn req_headers(path: &str) -> Vec<(String, String)> {
        vec![
            (":method".into(), "GET".into()),
            (":path".into(), path.into()),
            (":host".into(), "example.com".into()),
        ]
    }

    #[test]
    fn request_reply_data_roundtrip() {
        let (mut c, mut s) = pair();
        let sid = c.open_stream(req_headers("/"), 0, true);
        assert_eq!(sid, 1, "client streams are odd");
        let events = pump(&mut c, &mut s);
        assert!(matches!(
            &events[..],
            [SpdyEvent::StreamOpened {
                stream_id: 1,
                fin: true,
                ..
            }]
        ));
        s.reply(sid, vec![(":status".into(), "200".into())], false);
        s.send_data(sid, Payload::from(vec![9u8; 10_000]), true);
        let events = pump(&mut s, &mut c);
        let mut data = 0u64;
        let mut fin_seen = false;
        for e in &events {
            if let SpdyEvent::Data { payload, fin, .. } = e {
                data += payload.len();
                fin_seen |= fin;
            }
        }
        assert_eq!(data, 10_000);
        assert!(fin_seen);
    }

    #[test]
    fn data_frames_respect_max_size() {
        let (mut c, mut s) = pair();
        let sid = c.open_stream(req_headers("/"), 0, true);
        pump(&mut c, &mut s);
        s.reply(sid, vec![], false);
        s.send_data(sid, Payload::from(vec![1u8; 20_000]), true);
        let mut frames = 0;
        while let Some(wire) = s.poll_wire() {
            assert!(wire.len() <= 8 + 4096 + 64, "frame size bounded");
            frames += 1;
            c.on_bytes(wire).unwrap();
        }
        assert!(frames >= 5, "20 KB at ≤4 KiB per DATA frame");
    }

    #[test]
    fn synthetic_body_multiplexes_without_materializing() {
        let (mut c, mut s) = pair();
        let sid = c.open_stream(req_headers("/"), 0, true);
        pump(&mut c, &mut s);
        s.reply(sid, vec![], false);
        s.send_data(sid, Payload::synthetic(20_000), true);
        while let Some(wire) = s.poll_wire() {
            for e in c.on_bytes(wire).unwrap() {
                if let SpdyEvent::Data { payload, .. } = e {
                    assert!(
                        payload.chunk_count() <= 1,
                        "DATA bodies stay synthetic end to end"
                    );
                }
            }
        }
    }

    #[test]
    fn priority_zero_preempts_lower() {
        let (mut c, mut s) = pair();
        let low = c.open_stream(req_headers("/img"), 3, true);
        let high = c.open_stream(req_headers("/css"), 0, true);
        pump(&mut c, &mut s);
        // Server queues big low-priority data first, then high.
        s.reply(low, vec![], false);
        s.reply(high, vec![], false);
        s.send_data(low, Payload::from(vec![1u8; 8_000]), true);
        s.send_data(high, Payload::from(vec![2u8; 8_000]), true);
        // Skip the control frames (replies).
        let mut first_data_stream = None;
        while let Some(wire) = s.poll_wire() {
            for e in c.on_bytes(wire).unwrap() {
                if let SpdyEvent::Data { stream_id, .. } = e {
                    if first_data_stream.is_none() {
                        first_data_stream = Some(stream_id);
                    }
                }
            }
        }
        assert_eq!(first_data_stream, Some(high), "priority 0 drains before 3");
    }

    #[test]
    fn round_robin_within_priority() {
        let (mut c, mut s) = pair();
        let a = c.open_stream(req_headers("/a"), 2, true);
        let b = c.open_stream(req_headers("/b"), 2, true);
        pump(&mut c, &mut s);
        s.reply(a, vec![], false);
        s.reply(b, vec![], false);
        s.send_data(a, Payload::from(vec![1u8; 12_000]), true);
        s.send_data(b, Payload::from(vec![2u8; 12_000]), true);
        let mut order = Vec::new();
        while let Some(wire) = s.poll_wire() {
            for e in c.on_bytes(wire).unwrap() {
                if let SpdyEvent::Data { stream_id, .. } = e {
                    order.push(stream_id);
                }
            }
        }
        // Interleaved, not all-of-a-then-all-of-b.
        let first_b = order.iter().position(|&x| x == b).unwrap();
        let last_a = order.iter().rposition(|&x| x == a).unwrap();
        assert!(first_b < last_a, "streams interleave: {order:?}");
    }

    #[test]
    fn flow_control_blocks_and_window_update_unblocks() {
        let small = SpdyConfig {
            initial_window: 4096,
            window_update_threshold: 2048,
            ..SpdyConfig::default()
        };
        let mut c = SpdySession::new(Role::Client, small);
        let mut s = SpdySession::new(Role::Server, small);
        let sid = c.open_stream(req_headers("/"), 0, true);
        pump(&mut c, &mut s);
        s.reply(sid, vec![], false);
        s.send_data(sid, Payload::from(vec![3u8; 10_000]), true);
        // Drain: only 4096 bytes may fly before the window empties.
        let mut delivered = 0u64;
        while let Some(wire) = s.poll_wire() {
            for e in c.on_bytes(wire).unwrap() {
                if let SpdyEvent::Data { payload, .. } = e {
                    delivered += payload.len();
                }
            }
        }
        assert_eq!(delivered, 4096, "window exhausted");
        assert!(s.stats().flow_control_stalls > 0);
        // Client consumes, crossing the update threshold.
        c.consume(sid, 4096);
        let more = pump(&mut c, &mut s); // delivers WINDOW_UPDATE
        assert!(more.is_empty());
        let mut delivered2 = 0u64;
        while let Some(wire) = s.poll_wire() {
            for e in c.on_bytes(wire).unwrap() {
                if let SpdyEvent::Data { payload, .. } = e {
                    delivered2 += payload.len();
                }
            }
        }
        assert!(delivered2 > 0, "window update released more data");
    }

    #[test]
    fn ping_is_echoed_by_peer() {
        let (mut c, mut s) = pair();
        c.ping(1);
        let events = pump(&mut c, &mut s);
        assert_eq!(events, vec![SpdyEvent::Ping(1)]);
        // Server echoes it back automatically.
        let events = pump(&mut s, &mut c);
        assert_eq!(events, vec![SpdyEvent::Ping(1)]);
    }

    #[test]
    fn rst_tears_down_stream() {
        let (mut c, mut s) = pair();
        let sid = c.open_stream(req_headers("/"), 0, false);
        pump(&mut c, &mut s);
        c.rst(sid, 5);
        let events = pump(&mut c, &mut s);
        assert!(
            matches!(events[..], [SpdyEvent::Reset { stream_id, status: 5 }] if stream_id == sid)
        );
    }

    #[test]
    fn many_concurrent_streams() {
        // SPDY's "unlimited concurrent streams" versus HTTP's 6.
        let (mut c, mut s) = pair();
        let ids: Vec<u32> = (0..100)
            .map(|i| c.open_stream(req_headers(&format!("/obj/{i}")), 2, true))
            .collect();
        let events = pump(&mut c, &mut s);
        assert_eq!(events.len(), 100);
        for (i, sid) in ids.iter().enumerate() {
            s.reply(*sid, vec![], false);
            s.send_data(*sid, Payload::from(vec![i as u8; 500]), true);
        }
        let events = pump(&mut s, &mut c);
        let done = events
            .iter()
            .filter(|e| matches!(e, SpdyEvent::Data { fin: true, .. }))
            .count();
        assert_eq!(done, 100);
    }

    #[test]
    fn header_compression_counters_improve() {
        let (mut c, mut s) = pair();
        for i in 0..20 {
            c.open_stream(req_headers(&format!("/asset/{i}.png")), 1, true);
        }
        pump(&mut c, &mut s);
        let (plain, wire) = c.compression_counters();
        assert!(
            wire < plain / 2,
            "20 similar requests compress well: {wire}/{plain}"
        );
    }

    #[test]
    fn goaway_event() {
        let (mut c, mut s) = pair();
        c.goaway();
        let events = pump(&mut c, &mut s);
        assert_eq!(events, vec![SpdyEvent::Goaway]);
    }
}
