//! SPDY/3 binary framing.
//!
//! Control frames: `1 | version(15) | type(16) | flags(8) | length(24)`;
//! data frames: `0 | stream-id(31) | flags(8) | length(24)`. Header blocks
//! inside SYN_STREAM / SYN_REPLY are compressed with the session's
//! [`crate::compress`] codec (stateful, like SPDY's session zlib stream).
//!
//! Frames encode to [`Payload`] ropes: control frames and frame headers
//! are real bytes (the control path), while DATA bodies are appended as
//! the rope they already are — synthetic length-only runs in the common
//! simulated case — so segmentation and reassembly never copy them.

use crate::compress::{Compressor, DecompressError, Decompressor};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spdyier_bytes::Payload;

/// SPDY protocol version emitted in control frames.
pub const SPDY_VERSION: u16 = 3;

/// FLAG_FIN: the sender half-closes the stream.
pub const FLAG_FIN: u8 = 0x01;

/// A parsed SPDY frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Open a stream (client request).
    SynStream {
        /// Odd ids from clients, even from servers.
        stream_id: u32,
        /// SPDY/3 priority: 0 is *highest*, 7 lowest.
        priority: u8,
        /// Sender half-closes immediately (pure GET).
        fin: bool,
        /// Header name/value pairs.
        headers: Vec<(String, String)>,
    },
    /// First response frame on a stream.
    SynReply {
        /// Stream being answered.
        stream_id: u32,
        /// Sender half-closes immediately (empty body).
        fin: bool,
        /// Header name/value pairs.
        headers: Vec<(String, String)>,
    },
    /// Stream payload.
    Data {
        /// Stream carrying the payload.
        stream_id: u32,
        /// Final frame of this direction.
        fin: bool,
        /// Payload rope.
        payload: Payload,
    },
    /// Abort a stream.
    RstStream {
        /// Stream being reset.
        stream_id: u32,
        /// Status code (1 = PROTOCOL_ERROR, 3 = REFUSED_STREAM, ...).
        status: u32,
    },
    /// Session settings (id → value pairs).
    Settings(Vec<(u32, u32)>),
    /// Liveness probe.
    Ping(u32),
    /// Session teardown notice.
    Goaway {
        /// Last accepted stream.
        last_stream_id: u32,
        /// Status code.
        status: u32,
    },
    /// Per-stream flow-control credit.
    WindowUpdate {
        /// Stream receiving credit.
        stream_id: u32,
        /// Bytes of credit.
        delta: u32,
    },
}

const T_SYN_STREAM: u16 = 1;
const T_SYN_REPLY: u16 = 2;
const T_RST: u16 = 3;
const T_SETTINGS: u16 = 4;
const T_PING: u16 = 6;
const T_GOAWAY: u16 = 7;
const T_WINDOW_UPDATE: u16 = 9;

fn encode_headers(headers: &[(String, String)], comp: &mut Compressor) -> Bytes {
    let mut plain = BytesMut::new();
    plain.put_u32(headers.len() as u32);
    for (n, v) in headers {
        plain.put_u32(n.len() as u32);
        plain.put_slice(n.as_bytes());
        plain.put_u32(v.len() as u32);
        plain.put_slice(v.as_bytes());
    }
    comp.compress(&plain)
}

fn decode_headers(
    data: &[u8],
    decomp: &mut Decompressor,
) -> Result<Vec<(String, String)>, FrameError> {
    let plain = decomp.decompress(data)?;
    let mut buf = &plain[..];
    if buf.remaining() < 4 {
        return Err(FrameError::Malformed("header count missing".into()));
    }
    let count = buf.get_u32();
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(FrameError::Malformed("truncated header name len".into()));
        }
        let nl = buf.get_u32() as usize;
        if buf.remaining() < nl {
            return Err(FrameError::Malformed("truncated header name".into()));
        }
        let name = String::from_utf8(buf.copy_to_bytes(nl).to_vec())
            .map_err(|_| FrameError::Malformed("non-UTF8 header name".into()))?;
        if buf.remaining() < 4 {
            return Err(FrameError::Malformed("truncated header value len".into()));
        }
        let vl = buf.get_u32() as usize;
        if buf.remaining() < vl {
            return Err(FrameError::Malformed("truncated header value".into()));
        }
        let value = String::from_utf8(buf.copy_to_bytes(vl).to_vec())
            .map_err(|_| FrameError::Malformed("non-UTF8 header value".into()))?;
        out.push((name, value));
    }
    Ok(out)
}

/// Framing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Structurally invalid frame.
    Malformed(String),
    /// Header block failed to decompress.
    Compression(String),
}

impl From<DecompressError> for FrameError {
    fn from(e: DecompressError) -> Self {
        FrameError::Compression(e.0)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(m) => write!(f, "malformed SPDY frame: {m}"),
            FrameError::Compression(m) => write!(f, "SPDY header compression error: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Encode to a wire rope, compressing header blocks with `comp`. For
    /// DATA frames the 8-byte header is real and the body rides along
    /// unchanged; control frames are entirely real bytes.
    pub fn encode(&self, comp: &mut Compressor) -> Payload {
        let mut out = BytesMut::with_capacity(64);
        match self {
            Frame::Data {
                stream_id,
                fin,
                payload,
            } => {
                out.put_u32(stream_id & 0x7FFF_FFFF);
                out.put_u8(if *fin { FLAG_FIN } else { 0 });
                put_u24(&mut out, payload.len() as u32);
                let mut wire = Payload::real(out.freeze());
                wire.append(payload.clone());
                return wire;
            }
            Frame::SynStream {
                stream_id,
                priority,
                fin,
                headers,
            } => {
                let block = encode_headers(headers, comp);
                control_header(
                    &mut out,
                    T_SYN_STREAM,
                    if *fin { FLAG_FIN } else { 0 },
                    10 + block.len() as u32,
                );
                out.put_u32(stream_id & 0x7FFF_FFFF);
                out.put_u32(0); // associated stream
                out.put_u8(priority << 5);
                out.put_u8(0); // credential slot
                out.put_slice(&block);
            }
            Frame::SynReply {
                stream_id,
                fin,
                headers,
            } => {
                let block = encode_headers(headers, comp);
                control_header(
                    &mut out,
                    T_SYN_REPLY,
                    if *fin { FLAG_FIN } else { 0 },
                    4 + block.len() as u32,
                );
                out.put_u32(stream_id & 0x7FFF_FFFF);
                out.put_slice(&block);
            }
            Frame::RstStream { stream_id, status } => {
                control_header(&mut out, T_RST, 0, 8);
                out.put_u32(stream_id & 0x7FFF_FFFF);
                out.put_u32(*status);
            }
            Frame::Settings(entries) => {
                control_header(&mut out, T_SETTINGS, 0, 4 + 8 * entries.len() as u32);
                out.put_u32(entries.len() as u32);
                for (id, value) in entries {
                    out.put_u32(id & 0x00FF_FFFF);
                    out.put_u32(*value);
                }
            }
            Frame::Ping(id) => {
                control_header(&mut out, T_PING, 0, 4);
                out.put_u32(*id);
            }
            Frame::Goaway {
                last_stream_id,
                status,
            } => {
                control_header(&mut out, T_GOAWAY, 0, 8);
                out.put_u32(last_stream_id & 0x7FFF_FFFF);
                out.put_u32(*status);
            }
            Frame::WindowUpdate { stream_id, delta } => {
                control_header(&mut out, T_WINDOW_UPDATE, 0, 8);
                out.put_u32(stream_id & 0x7FFF_FFFF);
                out.put_u32(delta & 0x7FFF_FFFF);
            }
        }
        Payload::real(out.freeze())
    }
}

fn control_header(out: &mut BytesMut, frame_type: u16, flags: u8, length: u32) {
    out.put_u16(0x8000 | SPDY_VERSION);
    out.put_u16(frame_type);
    out.put_u8(flags);
    put_u24(out, length);
}

fn put_u24(out: &mut BytesMut, v: u32) {
    out.put_u8(((v >> 16) & 0xFF) as u8);
    out.put_u8(((v >> 8) & 0xFF) as u8);
    out.put_u8((v & 0xFF) as u8);
}

/// Incremental frame parser: buffers TCP chunks, yields whole frames.
///
/// The buffer is a [`Payload`] rope: frame headers (8 real bytes) are
/// peeked with a bounded copy, control-frame bodies are materialized for
/// parsing, and DATA bodies are split off as ropes without copying.
#[derive(Debug, Default)]
pub struct FrameParser {
    buf: Payload,
}

impl FrameParser {
    /// An empty parser.
    pub fn new() -> FrameParser {
        FrameParser::default()
    }

    /// Feed data read from the transport (chunks are adopted, not copied).
    pub fn push(&mut self, data: Payload) {
        self.buf.append(data);
    }

    /// Bytes buffered and not yet parsed.
    pub fn buffered(&self) -> u64 {
        self.buf.len()
    }

    /// Extract the next complete frame, decompressing header blocks with
    /// `decomp`.
    pub fn next_frame(&mut self, decomp: &mut Decompressor) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let mut head = [0u8; 8];
        self.buf.copy_out(0, &mut head);
        let word0 = u32::from_be_bytes([head[0], head[1], head[2], head[3]]);
        let flags = head[4];
        let length = u32::from_be_bytes([0, head[5], head[6], head[7]]) as u64;
        if self.buf.len() < 8 + length {
            return Ok(None);
        }
        self.buf.advance(8);
        let fin = flags & FLAG_FIN != 0;
        if word0 & 0x8000_0000 == 0 {
            // Data frame: the body is handed off as the rope it arrived as.
            return Ok(Some(Frame::Data {
                stream_id: word0 & 0x7FFF_FFFF,
                fin,
                payload: self.buf.split_to(length),
            }));
        }
        // Control frame: small and real — materialize the body to parse it.
        let body = self.buf.split_to(length).to_vec();
        let body = &body[..];
        let frame_type = (word0 & 0xFFFF) as u16;
        let need = |n: usize| -> Result<(), FrameError> {
            if body.len() < n {
                Err(FrameError::Malformed(format!(
                    "type {frame_type} needs {n} bytes, has {}",
                    body.len()
                )))
            } else {
                Ok(())
            }
        };
        let frame = match frame_type {
            T_SYN_STREAM => {
                need(10)?;
                let stream_id =
                    u32::from_be_bytes([body[0], body[1], body[2], body[3]]) & 0x7FFF_FFFF;
                let priority = body[8] >> 5;
                let headers = decode_headers(&body[10..], decomp)?;
                Frame::SynStream {
                    stream_id,
                    priority,
                    fin,
                    headers,
                }
            }
            T_SYN_REPLY => {
                need(4)?;
                let stream_id =
                    u32::from_be_bytes([body[0], body[1], body[2], body[3]]) & 0x7FFF_FFFF;
                let headers = decode_headers(&body[4..], decomp)?;
                Frame::SynReply {
                    stream_id,
                    fin,
                    headers,
                }
            }
            T_RST => {
                need(8)?;
                Frame::RstStream {
                    stream_id: u32::from_be_bytes([body[0], body[1], body[2], body[3]])
                        & 0x7FFF_FFFF,
                    status: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                }
            }
            T_SETTINGS => {
                need(4)?;
                let count = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
                need(4 + count * 8)?;
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let off = 4 + i * 8;
                    entries.push((
                        u32::from_be_bytes([
                            body[off],
                            body[off + 1],
                            body[off + 2],
                            body[off + 3],
                        ]) & 0x00FF_FFFF,
                        u32::from_be_bytes([
                            body[off + 4],
                            body[off + 5],
                            body[off + 6],
                            body[off + 7],
                        ]),
                    ));
                }
                Frame::Settings(entries)
            }
            T_PING => {
                need(4)?;
                Frame::Ping(u32::from_be_bytes([body[0], body[1], body[2], body[3]]))
            }
            T_GOAWAY => {
                need(8)?;
                Frame::Goaway {
                    last_stream_id: u32::from_be_bytes([body[0], body[1], body[2], body[3]])
                        & 0x7FFF_FFFF,
                    status: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                }
            }
            T_WINDOW_UPDATE => {
                need(8)?;
                Frame::WindowUpdate {
                    stream_id: u32::from_be_bytes([body[0], body[1], body[2], body[3]])
                        & 0x7FFF_FFFF,
                    delta: u32::from_be_bytes([body[4], body[5], body[6], body[7]]) & 0x7FFF_FFFF,
                }
            }
            other => {
                return Err(FrameError::Malformed(format!(
                    "unknown control type {other}"
                )))
            }
        };
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) -> Frame {
        let mut comp = Compressor::new();
        let mut decomp = Decompressor::new();
        let wire = frame.encode(&mut comp);
        let mut p = FrameParser::new();
        p.push(wire);
        let got = p
            .next_frame(&mut decomp)
            .expect("parse ok")
            .expect("complete frame");
        assert_eq!(p.buffered(), 0, "no trailing bytes");
        got
    }

    #[test]
    fn syn_stream_roundtrip() {
        let f = Frame::SynStream {
            stream_id: 7,
            priority: 3,
            fin: true,
            headers: vec![
                (":method".into(), "GET".into()),
                (":path".into(), "/img/1.png".into()),
                (":host".into(), "photos.example".into()),
            ],
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn syn_reply_roundtrip() {
        let f = Frame::SynReply {
            stream_id: 9,
            fin: false,
            headers: vec![
                (":status".into(), "200".into()),
                ("content-type".into(), "text/html".into()),
            ],
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn data_roundtrip() {
        let f = Frame::Data {
            stream_id: 5,
            fin: true,
            payload: Payload::from(vec![0xEE; 5000]),
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn synthetic_data_stays_synthetic_through_parse() {
        let f = Frame::Data {
            stream_id: 5,
            fin: false,
            payload: Payload::synthetic(200_000),
        };
        match roundtrip(f) {
            Frame::Data { payload, .. } => {
                assert_eq!(payload.len(), 200_000);
                assert_eq!(payload.chunk_count(), 1, "body was never materialized");
            }
            other => panic!("expected Data, got {other:?}"),
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        for f in [
            Frame::RstStream {
                stream_id: 3,
                status: 1,
            },
            Frame::Settings(vec![(4, 100), (7, 65536)]),
            Frame::Ping(0xDEAD_BEEF),
            Frame::Goaway {
                last_stream_id: 41,
                status: 0,
            },
            Frame::WindowUpdate {
                stream_id: 11,
                delta: 32768,
            },
        ] {
            assert_eq!(roundtrip(f.clone()), f);
        }
    }

    #[test]
    fn parser_handles_fragmentation() {
        let mut comp = Compressor::new();
        let mut decomp = Decompressor::new();
        let f = Frame::Data {
            stream_id: 1,
            fin: false,
            payload: Payload::from(vec![1u8; 100]),
        };
        let mut wire = f.encode(&mut comp);
        let mut p = FrameParser::new();
        while !wire.is_empty() {
            p.push(wire.split_to(7.min(wire.len())));
        }
        assert_eq!(p.next_frame(&mut decomp).unwrap().unwrap(), f);
    }

    #[test]
    fn parser_handles_back_to_back_frames() {
        let mut comp = Compressor::new();
        let mut decomp = Decompressor::new();
        let a = Frame::Ping(1).encode(&mut comp);
        let b = Frame::Ping(2).encode(&mut comp);
        let mut p = FrameParser::new();
        p.push(a);
        p.push(b);
        assert_eq!(p.next_frame(&mut decomp).unwrap(), Some(Frame::Ping(1)));
        assert_eq!(p.next_frame(&mut decomp).unwrap(), Some(Frame::Ping(2)));
        assert_eq!(p.next_frame(&mut decomp).unwrap(), None);
    }

    #[test]
    fn headers_compress_across_requests() {
        // The SPDY claim the paper cites: repeated header sets shrink.
        let mut comp = Compressor::new();
        let headers = vec![
            (":method".to_string(), "GET".to_string()),
            (":host".to_string(), "news.example".to_string()),
            (
                "user-agent".to_string(),
                "Chrome/23.0 (Windows NT 6.1) AppleWebKit".to_string(),
            ),
            (
                "cookie".to_string(),
                "sid=0123456789abcdef0123456789abcdef".to_string(),
            ),
        ];
        let first = Frame::SynStream {
            stream_id: 1,
            priority: 0,
            fin: true,
            headers: headers.clone(),
        }
        .encode(&mut comp);
        let second = Frame::SynStream {
            stream_id: 3,
            priority: 0,
            fin: true,
            headers,
        }
        .encode(&mut comp);
        assert!(
            second.len() * 2 < first.len(),
            "repeat headers must shrink: {} then {}",
            first.len(),
            second.len()
        );
    }

    #[test]
    fn unknown_control_type_is_an_error() {
        let mut out = BytesMut::new();
        control_header(&mut out, 99, 0, 0);
        let mut p = FrameParser::new();
        p.push(Payload::real(out.freeze()));
        let mut d = Decompressor::new();
        assert!(p.next_frame(&mut d).is_err());
    }

    #[test]
    fn priority_range_is_preserved() {
        for pri in 0..8u8 {
            let f = Frame::SynStream {
                stream_id: 1,
                priority: pri,
                fin: false,
                headers: vec![],
            };
            match roundtrip(f) {
                Frame::SynStream { priority, .. } => assert_eq!(priority, pri),
                _ => panic!(),
            }
        }
    }
}
