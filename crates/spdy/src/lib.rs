//! # spdyier-spdy
//!
//! SPDY/3 for the SPDY'ier reproduction testbed: real binary framing
//! ([`frame`]), stateful header compression built from scratch
//! ([`compress`] — LZ77 over a rolling shared-history window primed with a
//! protocol dictionary, standing in for SPDY's session zlib stream), and
//! the prioritized stream multiplexer ([`session`]).
//!
//! ```
//! use spdyier_spdy::{SpdySession, SpdyConfig, Role, SpdyEvent};
//!
//! let mut client = SpdySession::new(Role::Client, SpdyConfig::default());
//! let mut server = SpdySession::new(Role::Server, SpdyConfig::default());
//! let sid = client.open_stream(
//!     vec![(":path".into(), "/".into())], /*priority*/ 0, /*fin*/ true);
//! while let Some(wire) = client.poll_wire() {
//!     let events = server.on_bytes(wire).unwrap();
//!     assert!(matches!(events[0], SpdyEvent::StreamOpened { stream_id, .. } if stream_id == sid));
//! }
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod compress;
pub mod frame;
pub mod session;

pub use compress::{Compressor, DecompressError, Decompressor};
pub use frame::{Frame, FrameError, FrameParser, FLAG_FIN, SPDY_VERSION};
pub use session::{Role, SpdyConfig, SpdyEvent, SpdySession, SpdyStats};
