//! # spdyier-bytes
//!
//! The data-plane byte representation for the testbed: a [`Payload`] rope
//! whose chunks are either *real* bytes ([`Chunk::Real`], backed by the
//! `bytes` crate) or *synthetic* runs of zero bytes described only by
//! their length ([`Chunk::Synthetic`]).
//!
//! The simulation's clocks depend only on byte **counts** — segment wire
//! sizes, link serialization, window arithmetic — never on body
//! contents. Control information (HTTP heads, SPDY frame headers and
//! compressed header blocks) must stay real because it is parsed, but
//! bulk bodies are all zero-filled by the workload generator. A
//! `Payload` keeps exactly that split: headers ride as `Real` chunks,
//! bodies as `Synthetic { len }`, and segmentation/reassembly at every
//! hop is chunk bookkeeping with no memcpy.
//!
//! Semantically a `Payload` **is** a byte string: `Synthetic(n)` is
//! indistinguishable from `n` zero bytes. Every reading API (iteration,
//! [`Payload::to_vec`], [`Payload::copy_out`], equality) honours that,
//! so a materialized run and a synthetic run of a simulation produce
//! byte-identical outputs — which is what the CI byte-identity guard
//! checks (`SPDYIER_MATERIALIZE_BODIES=1` vs default).
//!
//! The rope stores up to two chunks inline. The hot paths — a TCP
//! segment split off a send buffer (`[Real head]` or
//! `[Real head, Synthetic body]`), a reassembled receive run — nearly
//! always fit, so segmentation allocates nothing.

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// One run of bytes in a [`Payload`] rope.
#[derive(Clone)]
pub enum Chunk {
    /// Actual bytes (control data: headers, framing, test content).
    Real(Bytes),
    /// A run of this many zero bytes, represented by length alone.
    Synthetic(u64),
}

impl Chunk {
    /// Length of the run in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Chunk::Real(b) => b.len() as u64,
            Chunk::Synthetic(n) => *n,
        }
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `n` bytes, keeping the rest.
    fn split_to(&mut self, n: u64) -> Chunk {
        debug_assert!(n <= self.len());
        match self {
            Chunk::Real(b) => Chunk::Real(b.split_to(n as usize)),
            Chunk::Synthetic(len) => {
                *len -= n;
                Chunk::Synthetic(n)
            }
        }
    }

    /// Drop the first `n` bytes.
    fn advance(&mut self, n: u64) {
        debug_assert!(n <= self.len());
        match self {
            Chunk::Real(b) => b.advance(n as usize),
            Chunk::Synthetic(len) => *len -= n,
        }
    }

    /// Keep at most the first `n` bytes.
    fn truncate(&mut self, n: u64) {
        match self {
            Chunk::Real(b) => b.truncate(n as usize),
            Chunk::Synthetic(len) => *len = (*len).min(n),
        }
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Chunk::Real(b) => write!(f, "Real({})", b.len()),
            Chunk::Synthetic(n) => write!(f, "Synthetic({n})"),
        }
    }
}

/// Chunk storage with the first two chunks inline (no heap allocation
/// until a rope exceeds two runs).
#[derive(Clone, Debug, Default)]
enum Inner {
    #[default]
    Empty,
    One(Chunk),
    Two(Chunk, Chunk),
    Many(VecDeque<Chunk>),
}

/// A rope of [`Chunk`]s with O(1) length and no-memcpy
/// `split_to`/`advance`/`truncate`.
///
/// Invariants: no empty chunks; adjacent `Synthetic` runs are merged;
/// adjacent `Real` runs that are contiguous views of one allocation are
/// re-joined (`Bytes::try_unsplit`).
#[derive(Clone, Default)]
pub struct Payload {
    len: u64,
    chunks: Inner,
}

impl Payload {
    /// The empty rope.
    pub fn new() -> Payload {
        Payload::default()
    }

    /// A rope of one real chunk.
    pub fn real(bytes: Bytes) -> Payload {
        let mut p = Payload::new();
        p.push_bytes(bytes);
        p
    }

    /// A rope of `len` synthetic (zero) bytes.
    pub fn synthetic(len: u64) -> Payload {
        let mut p = Payload::new();
        p.push_synthetic(len);
        p
    }

    /// A simulated body of `len` zero bytes: synthetic by default, real
    /// zero-filled memory when `SPDYIER_MATERIALIZE_BODIES=1`. The two
    /// modes are byte-for-byte equivalent; the materialized one exists so
    /// the bench harness and CI can verify that equivalence (and measure
    /// what the zero-copy path saves).
    pub fn body(len: u64) -> Payload {
        if materialize_bodies() {
            Payload::real(Bytes::from(vec![0u8; len as usize]))
        } else {
            Payload::synthetic(len)
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the rope is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks (diagnostics/tests).
    pub fn chunk_count(&self) -> usize {
        match &self.chunks {
            Inner::Empty => 0,
            Inner::One(_) => 1,
            Inner::Two(..) => 2,
            Inner::Many(q) => q.len(),
        }
    }

    /// Iterate over the chunks.
    pub fn chunks(&self) -> impl Iterator<Item = &Chunk> {
        let (a, b, q): (Option<&Chunk>, Option<&Chunk>, Option<&VecDeque<Chunk>>) =
            match &self.chunks {
                Inner::Empty => (None, None, None),
                Inner::One(a) => (Some(a), None, None),
                Inner::Two(a, b) => (Some(a), Some(b), None),
                Inner::Many(q) => (None, None, Some(q)),
            };
        a.into_iter()
            .chain(b)
            .chain(q.into_iter().flat_map(|q| q.iter()))
    }

    /// Append one chunk, merging with the tail where possible.
    pub fn push_chunk(&mut self, chunk: Chunk) {
        if chunk.is_empty() {
            return;
        }
        self.len += chunk.len();
        // Try to merge into the current tail chunk.
        let chunk = match (self.back_mut(), chunk) {
            (Some(Chunk::Synthetic(tail)), Chunk::Synthetic(n)) => {
                *tail += n;
                return;
            }
            (Some(Chunk::Real(tail)), Chunk::Real(b)) => match tail.try_unsplit(b) {
                Ok(()) => return,
                Err(b) => Chunk::Real(b),
            },
            (_, c) => c,
        };
        self.chunks = match std::mem::take(&mut self.chunks) {
            Inner::Empty => Inner::One(chunk),
            Inner::One(a) => Inner::Two(a, chunk),
            Inner::Two(a, b) => {
                let mut q = VecDeque::with_capacity(4);
                q.push_back(a);
                q.push_back(b);
                q.push_back(chunk);
                Inner::Many(q)
            }
            Inner::Many(mut q) => {
                q.push_back(chunk);
                Inner::Many(q)
            }
        };
    }

    /// Append real bytes.
    pub fn push_bytes(&mut self, bytes: Bytes) {
        self.push_chunk(Chunk::Real(bytes));
    }

    /// Append `len` synthetic bytes.
    pub fn push_synthetic(&mut self, len: u64) {
        self.push_chunk(Chunk::Synthetic(len));
    }

    /// Append all of `other` (consumed) to the end.
    pub fn append(&mut self, other: Payload) {
        match other.chunks {
            Inner::Empty => {}
            Inner::One(a) => self.push_chunk(a),
            Inner::Two(a, b) => {
                self.push_chunk(a);
                self.push_chunk(b);
            }
            Inner::Many(q) => {
                for c in q {
                    self.push_chunk(c);
                }
            }
        }
    }

    fn back_mut(&mut self) -> Option<&mut Chunk> {
        match &mut self.chunks {
            Inner::Empty => None,
            Inner::One(a) => Some(a),
            Inner::Two(_, b) => Some(b),
            Inner::Many(q) => q.back_mut(),
        }
    }

    fn front_mut(&mut self) -> Option<&mut Chunk> {
        match &mut self.chunks {
            Inner::Empty => None,
            Inner::One(a) | Inner::Two(a, _) => Some(a),
            Inner::Many(q) => q.front_mut(),
        }
    }

    fn pop_front(&mut self) -> Option<Chunk> {
        let (chunk, rest) = match std::mem::take(&mut self.chunks) {
            Inner::Empty => (None, Inner::Empty),
            Inner::One(a) => (Some(a), Inner::Empty),
            Inner::Two(a, b) => (Some(a), Inner::One(b)),
            Inner::Many(mut q) => {
                let a = q.pop_front();
                (a, Inner::Many(q))
            }
        };
        self.chunks = rest;
        if let Some(c) = &chunk {
            self.len -= c.len();
        }
        chunk
    }

    fn pop_back(&mut self) -> Option<Chunk> {
        let (chunk, rest) = match std::mem::take(&mut self.chunks) {
            Inner::Empty => (None, Inner::Empty),
            Inner::One(a) => (Some(a), Inner::Empty),
            Inner::Two(a, b) => (Some(b), Inner::One(a)),
            Inner::Many(mut q) => {
                let b = q.pop_back();
                (b, Inner::Many(q))
            }
        };
        self.chunks = rest;
        if let Some(c) = &chunk {
            self.len -= c.len();
        }
        chunk
    }

    /// Split off and return the first `n` bytes as their own rope,
    /// keeping the rest. O(chunks crossed), no byte copies.
    pub fn split_to(&mut self, n: u64) -> Payload {
        assert!(n <= self.len, "split_to out of bounds");
        let mut head = Payload::new();
        while head.len < n {
            let need = n - head.len;
            let front_len = self
                .front_mut()
                .expect("length invariant guarantees a chunk")
                .len();
            if front_len <= need {
                let c = self.pop_front().expect("front exists");
                head.push_chunk(c);
            } else {
                let part = self.front_mut().expect("front exists").split_to(need);
                self.len -= need;
                head.push_chunk(part);
            }
        }
        head
    }

    /// Drop the first `n` bytes.
    pub fn advance(&mut self, n: u64) {
        assert!(n <= self.len, "advance out of bounds");
        let mut left = n;
        while left > 0 {
            let front_len = self
                .front_mut()
                .expect("length invariant guarantees a chunk")
                .len();
            if front_len <= left {
                self.pop_front();
                left -= front_len;
            } else {
                self.front_mut().expect("front exists").advance(left);
                self.len -= left;
                left = 0;
            }
        }
    }

    /// Keep at most the first `n` bytes.
    pub fn truncate(&mut self, n: u64) {
        while self.len > n {
            let over = self.len - n;
            let back_len = self.back_mut().expect("length invariant").len();
            if back_len <= over {
                self.pop_back();
            } else {
                self.back_mut()
                    .expect("back exists")
                    .truncate(back_len - over);
                self.len -= over;
            }
        }
    }

    /// Take the whole rope, leaving `self` empty.
    pub fn take(&mut self) -> Payload {
        std::mem::take(self)
    }

    /// Iterate the semantic byte string (synthetic runs yield zeros).
    pub fn iter_bytes(&self) -> impl Iterator<Item = u8> + '_ {
        self.chunks().flat_map(|c| {
            let (real, zeros) = match c {
                Chunk::Real(b) => (Some(b.iter().copied()), 0u64),
                Chunk::Synthetic(n) => (None, *n),
            };
            real.into_iter()
                .flatten()
                .chain(std::iter::repeat_n(0u8, zeros as usize))
        })
    }

    /// Copy `dst.len()` bytes starting at `offset` into `dst` (synthetic
    /// regions read as zeros). Panics when the range exceeds the rope.
    pub fn copy_out(&self, offset: u64, dst: &mut [u8]) {
        assert!(
            offset + dst.len() as u64 <= self.len,
            "copy_out out of bounds"
        );
        let mut pos = 0u64; // absolute offset of the current chunk
        let mut written = 0usize;
        for c in self.chunks() {
            let clen = c.len();
            let chunk_end = pos + clen;
            if chunk_end > offset && written < dst.len() {
                let skip = offset.saturating_sub(pos);
                let take = ((clen - skip) as usize).min(dst.len() - written);
                match c {
                    Chunk::Real(b) => dst[written..written + take]
                        .copy_from_slice(&b[skip as usize..skip as usize + take]),
                    Chunk::Synthetic(_) => dst[written..written + take].fill(0),
                }
                written += take;
            }
            pos = chunk_end;
            if written == dst.len() {
                break;
            }
        }
    }

    /// Materialize the whole rope into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len as usize];
        self.copy_out(0, &mut out);
        out
    }

    /// Materialize the whole rope into contiguous `Bytes`.
    pub fn to_bytes(&self) -> Bytes {
        // Fast path: a single real chunk needs no copy.
        if let Inner::One(Chunk::Real(b)) = &self.chunks {
            return b.clone();
        }
        Bytes::from(self.to_vec())
    }
}

impl PartialEq for Payload {
    /// Semantic byte-string equality: `Synthetic(n)` equals `n` zero
    /// bytes regardless of chunking. Synthetic↔synthetic overlap is
    /// compared run-wise in O(chunks), not O(bytes).
    fn eq(&self, other: &Payload) -> bool {
        if self.len != other.len {
            return false;
        }
        let mut a = self.chunks().peekable();
        let mut b = other.chunks().peekable();
        let (mut a_off, mut b_off) = (0u64, 0u64); // progress into current chunks
        loop {
            let (Some(ca), Some(cb)) = (a.peek(), b.peek()) else {
                return a.peek().is_none() && b.peek().is_none();
            };
            let take = (ca.len() - a_off).min(cb.len() - b_off);
            let equal = match (ca, cb) {
                (Chunk::Synthetic(_), Chunk::Synthetic(_)) => true,
                (Chunk::Real(ra), Chunk::Synthetic(_)) => ra
                    [a_off as usize..(a_off + take) as usize]
                    .iter()
                    .all(|&x| x == 0),
                (Chunk::Synthetic(_), Chunk::Real(rb)) => rb
                    [b_off as usize..(b_off + take) as usize]
                    .iter()
                    .all(|&x| x == 0),
                (Chunk::Real(ra), Chunk::Real(rb)) => {
                    ra[a_off as usize..(a_off + take) as usize]
                        == rb[b_off as usize..(b_off + take) as usize]
                }
            };
            if !equal {
                return false;
            }
            a_off += take;
            b_off += take;
            if a_off == ca.len() {
                a.next();
                a_off = 0;
            }
            if b_off == cb.len() {
                b.next();
                b_off = 0;
            }
        }
    }
}

impl Eq for Payload {}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload[{}b:", self.len)?;
        for c in self.chunks() {
            write!(f, " {c:?}")?;
        }
        write!(f, "]")
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        Payload::real(b)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::real(Bytes::from(v))
    }
}

impl From<&'static str> for Payload {
    fn from(s: &'static str) -> Payload {
        Payload::real(Bytes::from(s))
    }
}

static MATERIALIZE: OnceLock<bool> = OnceLock::new();

/// Whether `SPDYIER_MATERIALIZE_BODIES=1` is set: simulated bodies are
/// then built from real zero-filled memory instead of synthetic runs.
/// Read once per process.
pub fn materialize_bodies() -> bool {
    *MATERIALIZE.get_or_init(|| std::env::var("SPDYIER_MATERIALIZE_BODIES").is_ok_and(|v| v == "1"))
}

/// Shared test-support helpers (used by several crates' unit tests).
pub mod testsupport {
    use bytes::Bytes;

    /// A `Bytes` of `len` bytes all set to `fill`.
    pub fn bytes_of(len: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; len])
    }
}

#[cfg(test)]
mod tests {
    use super::testsupport::bytes_of;
    use super::*;

    #[test]
    fn lengths_and_inline_chunks() {
        let mut p = Payload::new();
        assert!(p.is_empty());
        p.push_bytes(bytes_of(3, 7));
        p.push_synthetic(10);
        assert_eq!(p.len(), 13);
        assert_eq!(p.chunk_count(), 2);
        // Adjacent synthetics merge; empty chunks are dropped.
        p.push_synthetic(5);
        p.push_bytes(Bytes::new());
        p.push_synthetic(0);
        assert_eq!(p.len(), 18);
        assert_eq!(p.chunk_count(), 2);
    }

    #[test]
    fn split_advance_truncate() {
        let mut p = Payload::new();
        p.push_bytes(Bytes::from(vec![1, 2, 3, 4]));
        p.push_synthetic(6);
        let head = p.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(p.to_vec(), vec![3, 4, 0, 0, 0, 0, 0, 0]);
        p.advance(3);
        assert_eq!(p.to_vec(), vec![0, 0, 0, 0, 0]);
        p.truncate(2);
        assert_eq!(p.len(), 2);
        p.truncate(100);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn split_across_many_chunks() {
        let mut p = Payload::new();
        p.push_bytes(Bytes::from(vec![1, 1]));
        p.push_synthetic(2);
        p.push_bytes(Bytes::from(vec![2, 2]));
        p.push_synthetic(3);
        assert_eq!(p.chunk_count(), 4);
        let head = p.split_to(5);
        assert_eq!(head.to_vec(), vec![1, 1, 0, 0, 2]);
        assert_eq!(p.to_vec(), vec![2, 0, 0, 0]);
    }

    #[test]
    fn contiguous_real_chunks_unsplit() {
        let mut p = Payload::real(Bytes::from(vec![1, 2, 3, 4, 5]));
        let head = p.split_to(2);
        let mut joined = head;
        joined.append(p);
        // The two views share one allocation and re-join into one chunk.
        assert_eq!(joined.chunk_count(), 1);
        assert_eq!(joined.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn semantic_equality_ignores_chunking() {
        let mut a = Payload::new();
        a.push_bytes(Bytes::from(vec![0, 0, 9]));
        a.push_synthetic(2);
        let mut b = Payload::new();
        b.push_synthetic(2);
        b.push_bytes(Bytes::from(vec![9, 0]));
        b.push_bytes(Bytes::from(vec![0]));
        assert_eq!(a, b);
        let c = Payload::synthetic(5);
        assert_ne!(a, c);
        assert_eq!(Payload::synthetic(4), Payload::real(bytes_of(4, 0)));
        assert_ne!(Payload::synthetic(4), Payload::synthetic(5));
    }

    #[test]
    fn copy_out_spans_chunks() {
        let mut p = Payload::new();
        p.push_bytes(Bytes::from(vec![1, 2]));
        p.push_synthetic(3);
        p.push_bytes(Bytes::from(vec![7]));
        let mut buf = [9u8; 4];
        p.copy_out(1, &mut buf);
        assert_eq!(buf, [2, 0, 0, 0]);
        let mut all = [9u8; 6];
        p.copy_out(0, &mut all);
        assert_eq!(all, [1, 2, 0, 0, 0, 7]);
    }

    #[test]
    fn iter_bytes_matches_to_vec() {
        let mut p = Payload::new();
        p.push_synthetic(2);
        p.push_bytes(Bytes::from(vec![5, 6]));
        let collected: Vec<u8> = p.iter_bytes().collect();
        assert_eq!(collected, p.to_vec());
    }

    #[test]
    fn to_bytes_single_real_is_zero_copy_len() {
        let p = Payload::real(Bytes::from(vec![1, 2, 3]));
        assert_eq!(&p.to_bytes()[..], &[1, 2, 3]);
        let s = Payload::synthetic(4);
        assert_eq!(&s.to_bytes()[..], &[0, 0, 0, 0]);
    }

    #[test]
    fn take_empties_the_rope() {
        let mut p = Payload::synthetic(8);
        let t = p.take();
        assert_eq!(t.len(), 8);
        assert!(p.is_empty());
    }

    #[test]
    fn body_is_synthetic_by_default() {
        // The test environment does not set SPDYIER_MATERIALIZE_BODIES.
        let b = Payload::body(16);
        assert_eq!(b, Payload::synthetic(16));
    }
}
