//! Strict JSONL trace parsing: the inverse of the flight recorder's
//! `trace_*.jsonl` writer.
//!
//! Each line is `{"t":<µs>,"event":{"Variant":{...}}}`. Parsing is
//! strict — an unknown variant, a missing field, or a malformed line is
//! an error naming the line number, never a silently skipped record —
//! because the causal engine must refuse to explain an event stream it
//! does not fully understand.

use serde::Value;
use spdyier_sim::SimTime;
use spdyier_trace::{TraceEvent, TraceRecord};

fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(obj: &Value, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not an unsigned integer"))
}

fn req_usize(obj: &Value, key: &str) -> Result<usize, String> {
    Ok(req_u64(obj, key)? as usize)
}

fn req_u32(obj: &Value, key: &str) -> Result<u32, String> {
    let v = req_u64(obj, key)?;
    u32::try_from(v).map_err(|_| format!("field {key:?} overflows u32"))
}

fn req_bool(obj: &Value, key: &str) -> Result<bool, String> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a boolean"))
}

fn req_str(obj: &Value, key: &str) -> Result<String, String> {
    Ok(field(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?
        .to_string())
}

fn req_time(obj: &Value, key: &str) -> Result<SimTime, String> {
    Ok(SimTime::from_micros(req_u64(obj, key)?))
}

fn opt_u64(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match field(obj, key)? {
        Value::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} is not null or an unsigned integer")),
    }
}

fn parse_event(tag: &str, body: &Value) -> Result<TraceEvent, String> {
    use TraceEvent::*;
    Ok(match tag {
        "VisitStart" => VisitStart {
            visit: req_usize(body, "visit")?,
            site: req_usize(body, "site")?,
        },
        "VisitEnd" => VisitEnd {
            visit: req_usize(body, "visit")?,
            completed: req_bool(body, "completed")?,
            plt_us: req_u64(body, "plt_us")?,
        },
        "ObjectRequested" => ObjectRequested {
            visit: req_usize(body, "visit")?,
            object: req_u32(body, "object")?,
        },
        "ObjectFirstByte" => ObjectFirstByte {
            visit: req_usize(body, "visit")?,
            object: req_u32(body, "object")?,
        },
        "ObjectComplete" => ObjectComplete {
            visit: req_usize(body, "visit")?,
            object: req_u32(body, "object")?,
        },
        "HttpRequestSent" => HttpRequestSent {
            conn: req_usize(body, "conn")?,
            gen: req_u64(body, "gen")?,
            tag: req_u64(body, "tag")?,
        },
        "HttpResponseDone" => HttpResponseDone {
            conn: req_usize(body, "conn")?,
            gen: req_u64(body, "gen")?,
            tag: req_u64(body, "tag")?,
        },
        "SpdyStreamOpen" => SpdyStreamOpen {
            conn: req_usize(body, "conn")?,
            stream: req_u32(body, "stream")?,
            gen: req_u64(body, "gen")?,
            tag: req_u64(body, "tag")?,
        },
        "ConnOpened" => ConnOpened {
            conn: req_usize(body, "conn")?,
            over_access: req_bool(body, "over_access")?,
            label: req_str(body, "label")?,
        },
        "ConnClosed" => ConnClosed {
            conn: req_usize(body, "conn")?,
        },
        "SslReady" => SslReady {
            conn: req_usize(body, "conn")?,
        },
        "ProxyFetchDispatch" => ProxyFetchDispatch {
            fetch: req_u64(body, "fetch")?,
            conn: req_usize(body, "conn")?,
            fresh_pipe: req_bool(body, "fresh_pipe")?,
            domain: req_str(body, "domain")?,
        },
        "ProxyLateBind" => ProxyLateBind {
            fetch: req_u64(body, "fetch")?,
            owner_session: req_usize(body, "owner_session")?,
            chosen_session: req_usize(body, "chosen_session")?,
        },
        "OriginThink" => OriginThink {
            conn: req_usize(body, "conn")?,
            until: req_time(body, "until")?,
        },
        "RrcPromotion" => RrcPromotion {
            kind: req_str(body, "kind")?,
            start: req_time(body, "start")?,
            done: req_time(body, "done")?,
        },
        "LinkDrop" => LinkDrop {
            conn: req_usize(body, "conn")?,
            down: req_bool(body, "down")?,
            queue_overflow: req_bool(body, "queue_overflow")?,
        },
        "TcpRto" => TcpRto {
            conn: req_usize(body, "conn")?,
            b_side: req_bool(body, "b_side")?,
            silent_since: req_time(body, "silent_since")?,
        },
        "TcpIdleRestart" => TcpIdleRestart {
            conn: req_usize(body, "conn")?,
            b_side: req_bool(body, "b_side")?,
        },
        "TcpRetransmit" => TcpRetransmit {
            conn: req_usize(body, "conn")?,
            down: req_bool(body, "down")?,
        },
        "TcpCwnd" => TcpCwnd {
            conn: req_usize(body, "conn")?,
            cwnd: req_u64(body, "cwnd")?,
            ssthresh: opt_u64(body, "ssthresh")?,
            inflight: req_u64(body, "inflight")?,
        },
        "SegmentSent" => SegmentSent {
            conn: req_usize(body, "conn")?,
            down: req_bool(body, "down")?,
            bytes: req_u64(body, "bytes")?,
            deliver: req_time(body, "deliver")?,
            ser_us: req_u64(body, "ser_us")?,
            retransmit: req_bool(body, "retransmit")?,
        },
        "SpdyFrameRecv" => SpdyFrameRecv {
            conn: req_usize(body, "conn")?,
            stream: req_u32(body, "stream")?,
            kind: req_str(body, "kind")?,
            fin: req_bool(body, "fin")?,
        },
        other => return Err(format!("unknown event variant {other:?}")),
    })
}

/// Parse one `{"t":..,"event":{..}}` JSONL line.
pub fn parse_record(line: &str) -> Result<TraceRecord, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let t = req_time(&v, "t")?;
    let event = field(&v, "event")?;
    let Value::Object(entries) = event else {
        return Err("field \"event\" is not an object".into());
    };
    let [(tag, body)] = entries.as_slice() else {
        return Err("field \"event\" must have exactly one variant key".into());
    };
    Ok(TraceRecord {
        t,
        event: parse_event(tag, body)?,
    })
}

/// Parse a whole `trace_*.jsonl` document (blank lines allowed).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_record(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_writers_own_lines() {
        let recs = vec![
            TraceRecord {
                t: SimTime::from_micros(10),
                event: TraceEvent::VisitStart { visit: 0, site: 9 },
            },
            TraceRecord {
                t: SimTime::from_micros(20),
                event: TraceEvent::SpdyStreamOpen {
                    conn: 1,
                    stream: 3,
                    gen: 2,
                    tag: 7,
                },
            },
            TraceRecord {
                t: SimTime::from_micros(30),
                event: TraceEvent::TcpCwnd {
                    conn: 1,
                    cwnd: 14_600,
                    ssthresh: None,
                    inflight: 0,
                },
            },
            TraceRecord {
                t: SimTime::from_micros(40),
                event: TraceEvent::ConnOpened {
                    conn: 2,
                    over_access: true,
                    label: "dev\"x\\y\n".into(),
                },
            },
            TraceRecord {
                t: SimTime::from_micros(50),
                event: TraceEvent::SpdyFrameRecv {
                    conn: 1,
                    stream: 3,
                    kind: "Reply".into(),
                    fin: false,
                },
            },
        ];
        let text: String = recs
            .iter()
            .map(|r| format!("{}\n", r.to_jsonl_line()))
            .collect();
        let parsed = parse_jsonl(&text).expect("round trip parses");
        assert_eq!(parsed, recs);
    }

    #[test]
    fn unknown_variants_and_missing_fields_are_errors() {
        let e = parse_jsonl("{\"t\":1,\"event\":{\"Mystery\":{}}}").unwrap_err();
        assert!(e.contains("unknown event variant"), "{e}");
        let e = parse_jsonl("{\"t\":1,\"event\":{\"ConnClosed\":{}}}").unwrap_err();
        assert!(e.contains("line 1") && e.contains("conn"), "{e}");
        let e = parse_jsonl("not json").unwrap_err();
        assert!(e.contains("malformed JSON"), "{e}");
    }
}
