//! # spdyier-causal
//!
//! The causal explanation layer over the flight recorder: a dependency
//! model of each page load (HTML parse → fetch issue → connection
//! grant → TCP send → link serialization → RRC promotion wait → RTO
//! recovery → response → dependent fetch), exact per-visit
//! **critical-path extraction** whose typed edge durations sum to the
//! PLT by construction, and a **diff engine** that aligns two runs of
//! the same workload and attributes their PLT delta edge by edge.
//!
//! The paper's headline — SPDY's single connection magnifies TCP RTO
//! stalls under 3G RRC transitions — is a critical-path statement: a
//! stall only hurts PLT when it sits on the load's dependency chain.
//! The stall attributor (`spdyier-core`) decomposes wall time into
//! layer buckets; this crate answers the sharper question of *which*
//! stalls gated the load, and, across two cells (HTTP vs SPDY,
//! mitigation on vs off), *which edges the PLT delta came from*.
//!
//! ```
//! use spdyier_causal::{critical_paths_from_records, diff_paths};
//! # let records: Vec<spdyier_trace::TraceRecord> = Vec::new();
//! let paths = critical_paths_from_records(&records);
//! for p in &paths {
//!     assert_eq!(p.sums_us().iter().sum::<u64>(), p.plt_us()); // exact
//! }
//! let d = diff_paths("http", &paths, "spdy", &paths);
//! assert_eq!(d.plt_delta_us(), 0);
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod diff;
pub mod model;
pub mod parse;
pub mod path;

pub use diff::{diff_paths, DiffReport, VisitDiff, DIFF_SCHEMA_VERSION};
pub use model::{ConnBinding, EventModel, Interval, ObjectInstants, VisitWindow};
pub use parse::{parse_jsonl, parse_record};
pub use path::{
    critical_paths, critical_paths_from_records, explain_json, explain_text, rollup_us,
    CriticalPath, EdgeKind, PathEdge, EDGE_KINDS, EXPLAIN_SCHEMA_VERSION,
};
