//! The event model: one linear scan of a trace's records into the typed
//! lookup tables the critical-path extractor walks.
//!
//! Everything is keyed the way the flight recorder already keys it —
//! visit index, object tag, connection (pipe) index — and every time is
//! an integer microsecond, so downstream arithmetic is exact. Ordering
//! is deterministic throughout: objects live in `BTreeMap`s and every
//! interval list preserves the stream's own order.

use spdyier_trace::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;

/// Object tags at or above this value are control traffic (the §5.7
/// beacon sentinel is `u64::MAX`; its HTTP framing masks to
/// `u32::MAX`), never page objects.
const CONTROL_TAG_FLOOR: u64 = u32::MAX as u64;

/// One page visit's `[start, start + plt]` window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisitWindow {
    /// Visit index in the schedule.
    pub visit: usize,
    /// Site index the visit loaded.
    pub site: usize,
    /// Whether the visit reached onload before its deadline.
    pub completed: bool,
    /// Window start, µs (the `VisitStart` instant).
    pub start_us: u64,
    /// Window end, µs (`start + plt_us` from the `VisitEnd` record).
    pub end_us: u64,
}

/// Boundary instants of one object fetch inside a visit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectInstants {
    /// First `ObjectRequested` instant, µs.
    pub requested_us: Option<u64>,
    /// First `ObjectFirstByte` instant, µs.
    pub first_byte_us: Option<u64>,
    /// First `ObjectComplete` instant, µs.
    pub complete_us: Option<u64>,
}

/// The connection an object's request was written to, learned from the
/// `HttpRequestSent` / `SpdyStreamOpen` record inside the visit window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnBinding {
    /// Connection (pipe) index.
    pub conn: usize,
    /// SPDY stream id, when the binding came from a stream open.
    pub stream: Option<u32>,
}

/// A half-open time interval `[a, b)` in µs, tagged with the connection
/// it belongs to (`None` for connection-agnostic intervals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Interval start, µs.
    pub a: u64,
    /// Interval end, µs.
    pub b: u64,
    /// Owning connection, when the source event names one.
    pub conn: Option<usize>,
}

impl Interval {
    fn new(a: u64, b: u64, conn: Option<usize>) -> Option<Interval> {
        (a < b).then_some(Interval { a, b, conn })
    }
}

/// Every table the critical-path extractor needs, built in one pass.
#[derive(Debug, Clone, Default)]
pub struct EventModel {
    /// Visit windows, in stream order.
    pub windows: Vec<VisitWindow>,
    /// Per-visit object boundary instants.
    pub objects: BTreeMap<usize, BTreeMap<u32, ObjectInstants>>,
    /// Per-(visit, object) connection bindings (first one wins).
    pub bindings: BTreeMap<(usize, u32), ConnBinding>,
    /// TCP RTO silences `[silent_since, fire)`.
    pub rto: Vec<Interval>,
    /// RRC promotion waits `[start, done)`.
    pub promotions: Vec<Interval>,
    /// Link serialization shares `[deliver - ser, deliver)`.
    pub serialization: Vec<Interval>,
    /// Queueing + propagation shares `[sent, deliver - ser)`.
    pub queueing: Vec<Interval>,
    /// Origin think intervals `[dispatch, reply)`.
    pub think: Vec<Interval>,
    /// Connection setup `[opened, ssl ready)` per connection.
    pub setup: Vec<Interval>,
}

impl EventModel {
    /// Build the model from a record stream (one linear scan).
    pub fn from_records(records: &[TraceRecord]) -> EventModel {
        let mut m = EventModel::default();
        // The visit whose window is currently open, for binding the
        // visit-less HttpRequestSent / SpdyStreamOpen records.
        let mut open_visit: Option<usize> = None;
        // Connections opened but not yet SSL-ready: conn -> open instant.
        let mut pending_setup: BTreeMap<usize, u64> = BTreeMap::new();
        for rec in records {
            let t = rec.t.as_micros();
            match &rec.event {
                TraceEvent::VisitStart { visit, site } => {
                    open_visit = Some(*visit);
                    m.windows.push(VisitWindow {
                        visit: *visit,
                        site: *site,
                        completed: false,
                        start_us: t,
                        end_us: t,
                    });
                }
                TraceEvent::VisitEnd {
                    visit,
                    completed,
                    plt_us,
                } => {
                    if open_visit == Some(*visit) {
                        open_visit = None;
                    }
                    if let Some(w) = m.windows.iter_mut().rev().find(|w| w.visit == *visit) {
                        w.completed = *completed;
                        w.end_us = w.start_us + plt_us;
                    }
                }
                TraceEvent::ObjectRequested { visit, object } => {
                    let o = m
                        .objects
                        .entry(*visit)
                        .or_default()
                        .entry(*object)
                        .or_default();
                    o.requested_us.get_or_insert(t);
                }
                TraceEvent::ObjectFirstByte { visit, object } => {
                    let o = m
                        .objects
                        .entry(*visit)
                        .or_default()
                        .entry(*object)
                        .or_default();
                    o.first_byte_us.get_or_insert(t);
                }
                TraceEvent::ObjectComplete { visit, object } => {
                    let o = m
                        .objects
                        .entry(*visit)
                        .or_default()
                        .entry(*object)
                        .or_default();
                    o.complete_us.get_or_insert(t);
                }
                TraceEvent::HttpRequestSent { conn, tag, .. } => {
                    if let Some(visit) = open_visit {
                        if *tag < CONTROL_TAG_FLOOR {
                            m.bindings
                                .entry((visit, *tag as u32))
                                .or_insert(ConnBinding {
                                    conn: *conn,
                                    stream: None,
                                });
                        }
                    }
                }
                TraceEvent::SpdyStreamOpen {
                    conn, stream, tag, ..
                } => {
                    if let Some(visit) = open_visit {
                        if *tag < CONTROL_TAG_FLOOR {
                            m.bindings
                                .entry((visit, *tag as u32))
                                .or_insert(ConnBinding {
                                    conn: *conn,
                                    stream: Some(*stream),
                                });
                        }
                    }
                }
                TraceEvent::ConnOpened { conn, .. } => {
                    pending_setup.insert(*conn, t);
                }
                TraceEvent::SslReady { conn } => {
                    if let Some(opened) = pending_setup.remove(conn) {
                        m.setup.extend(Interval::new(opened, t, Some(*conn)));
                    }
                }
                TraceEvent::TcpRto {
                    conn, silent_since, ..
                } => {
                    m.rto
                        .extend(Interval::new(silent_since.as_micros(), t, Some(*conn)));
                }
                TraceEvent::RrcPromotion { start, done, .. } => {
                    m.promotions
                        .extend(Interval::new(start.as_micros(), done.as_micros(), None));
                }
                TraceEvent::SegmentSent {
                    conn,
                    deliver,
                    ser_us,
                    ..
                } => {
                    let deliver = deliver.as_micros();
                    let ser_start = deliver.saturating_sub(*ser_us);
                    m.serialization
                        .extend(Interval::new(ser_start, deliver, Some(*conn)));
                    m.queueing.extend(Interval::new(t, ser_start, Some(*conn)));
                }
                TraceEvent::OriginThink { until, .. } => {
                    m.think.extend(Interval::new(t, until.as_micros(), None));
                }
                _ => {}
            }
        }
        m
    }

    /// The connection binding for one object of one visit.
    pub fn binding(&self, visit: usize, object: u32) -> Option<ConnBinding> {
        self.bindings.get(&(visit, object)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_sim::SimTime;
    use spdyier_trace::{TraceLevel, Tracer};

    fn log(events: Vec<(u64, TraceEvent)>) -> Vec<TraceRecord> {
        let mut tr = Tracer::for_level(TraceLevel::Full);
        for (at, ev) in events {
            tr.emit(SimTime::from_micros(at), ev);
        }
        tr.finish().events
    }

    #[test]
    fn windows_objects_and_bindings_are_extracted() {
        let records = log(vec![
            (0, TraceEvent::VisitStart { visit: 0, site: 9 }),
            (
                10,
                TraceEvent::ObjectRequested {
                    visit: 0,
                    object: 0,
                },
            ),
            (
                12,
                TraceEvent::HttpRequestSent {
                    conn: 3,
                    gen: 1,
                    tag: 0,
                },
            ),
            (
                80,
                TraceEvent::ObjectFirstByte {
                    visit: 0,
                    object: 0,
                },
            ),
            (
                100,
                TraceEvent::ObjectComplete {
                    visit: 0,
                    object: 0,
                },
            ),
            (
                200,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: true,
                    plt_us: 200,
                },
            ),
            // Beacon traffic between visits must not bind.
            (
                250,
                TraceEvent::HttpRequestSent {
                    conn: 4,
                    gen: 1,
                    tag: u64::MAX,
                },
            ),
        ]);
        let m = EventModel::from_records(&records);
        assert_eq!(m.windows.len(), 1);
        assert_eq!(m.windows[0].end_us, 200);
        assert!(m.windows[0].completed);
        let o = m.objects[&0][&0];
        assert_eq!(o.requested_us, Some(10));
        assert_eq!(o.first_byte_us, Some(80));
        assert_eq!(o.complete_us, Some(100));
        assert_eq!(m.binding(0, 0).unwrap().conn, 3);
        assert_eq!(m.bindings.len(), 1, "beacon tag must not bind");
    }

    #[test]
    fn transport_intervals_keep_their_connections() {
        let records = log(vec![
            (
                5,
                TraceEvent::ConnOpened {
                    conn: 2,
                    over_access: true,
                    label: "dev[2]".into(),
                },
            ),
            (55, TraceEvent::SslReady { conn: 2 }),
            (
                100,
                TraceEvent::TcpRto {
                    conn: 2,
                    b_side: false,
                    silent_since: SimTime::from_micros(40),
                },
            ),
            (
                120,
                TraceEvent::SegmentSent {
                    conn: 2,
                    down: true,
                    bytes: 1400,
                    deliver: SimTime::from_micros(200),
                    ser_us: 30,
                    retransmit: false,
                },
            ),
        ]);
        let m = EventModel::from_records(&records);
        assert_eq!(
            m.setup,
            vec![Interval {
                a: 5,
                b: 55,
                conn: Some(2)
            }]
        );
        assert_eq!(
            m.rto,
            vec![Interval {
                a: 40,
                b: 100,
                conn: Some(2)
            }]
        );
        assert_eq!(
            m.serialization,
            vec![Interval {
                a: 170,
                b: 200,
                conn: Some(2)
            }]
        );
        assert_eq!(
            m.queueing,
            vec![Interval {
                a: 120,
                b: 170,
                conn: Some(2)
            }]
        );
    }
}
