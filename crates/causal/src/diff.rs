//! Cross-run PLT diff attribution.
//!
//! Aligns two runs of the same workload by visit identity (index +
//! site), subtracts their per-kind critical-path sums visit by visit,
//! and rolls the deltas up. Because each run's edges conserve its PLT
//! exactly, the per-kind deltas sum to the PLT delta exactly — the diff
//! inherits the conservation guarantee instead of re-proving it.

use crate::path::{CriticalPath, EdgeKind, EDGE_KINDS};
use serde::Value;

/// Schema version of the `diff.json` document.
pub const DIFF_SCHEMA_VERSION: u32 = 1;

/// One aligned visit's edge-by-edge PLT delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitDiff {
    /// Visit index (same in both runs).
    pub visit: usize,
    /// Site index (same in both runs — alignment requires it).
    pub site: usize,
    /// Run A's PLT, µs.
    pub plt_a_us: u64,
    /// Run B's PLT, µs.
    pub plt_b_us: u64,
    /// Run A's per-kind sums, µs, [`EDGE_KINDS`] order.
    pub sums_a_us: [u64; EDGE_KINDS.len()],
    /// Run B's per-kind sums, µs, [`EDGE_KINDS`] order.
    pub sums_b_us: [u64; EDGE_KINDS.len()],
}

impl VisitDiff {
    /// B − A PLT delta, µs (signed).
    pub fn plt_delta_us(&self) -> i64 {
        self.plt_b_us as i64 - self.plt_a_us as i64
    }

    /// B − A per-kind deltas, µs; they sum to [`Self::plt_delta_us`].
    pub fn edge_deltas_us(&self) -> [i64; EDGE_KINDS.len()] {
        let mut d = [0i64; EDGE_KINDS.len()];
        for (i, (a, b)) in self.sums_a_us.iter().zip(&self.sums_b_us).enumerate() {
            d[i] = *b as i64 - *a as i64;
        }
        d
    }
}

/// The full cross-run attribution report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// Label of run A (the baseline).
    pub a_label: String,
    /// Label of run B (the candidate).
    pub b_label: String,
    /// Aligned visits, in visit order.
    pub visits: Vec<VisitDiff>,
    /// Run-A visits with no aligned partner (index, site).
    pub unaligned_a: Vec<(usize, usize)>,
    /// Run-B visits with no aligned partner (index, site).
    pub unaligned_b: Vec<(usize, usize)>,
}

impl DiffReport {
    /// Total B − A PLT delta over the aligned visits, µs.
    pub fn plt_delta_us(&self) -> i64 {
        self.visits.iter().map(VisitDiff::plt_delta_us).sum()
    }

    /// Total per-kind deltas, µs; sum equals [`Self::plt_delta_us`].
    pub fn edge_deltas_us(&self) -> [i64; EDGE_KINDS.len()] {
        let mut totals = [0i64; EDGE_KINDS.len()];
        for v in &self.visits {
            for (t, d) in totals.iter_mut().zip(v.edge_deltas_us()) {
                *t += d;
            }
        }
        totals
    }

    /// The edge kind with the largest absolute total delta (earliest
    /// listed kind wins exact ties, so the answer is deterministic).
    pub fn dominant_edge(&self) -> EdgeKind {
        let deltas = self.edge_deltas_us();
        EDGE_KINDS
            .iter()
            .zip(deltas)
            .max_by_key(|&(k, d)| (d.unsigned_abs(), std::cmp::Reverse(k.index())))
            .map(|(&k, _)| k)
            .unwrap_or(EdgeKind::Parse)
    }
}

/// Align two runs' critical paths by (visit, site) identity and diff
/// them. Visits present in only one run — or whose sites differ, which
/// means the workloads weren't the same — land in the unaligned lists
/// rather than poisoning the totals.
pub fn diff_paths(
    a_label: &str,
    a: &[CriticalPath],
    b_label: &str,
    b: &[CriticalPath],
) -> DiffReport {
    let mut visits = Vec::new();
    let mut unaligned_a = Vec::new();
    let mut unaligned_b: Vec<(usize, usize)> = Vec::new();
    let mut b_used = vec![false; b.len()];
    for pa in a {
        match b
            .iter()
            .position(|pb| pb.visit == pa.visit && pb.site == pa.site)
        {
            Some(i) => {
                b_used[i] = true;
                let pb = &b[i];
                visits.push(VisitDiff {
                    visit: pa.visit,
                    site: pa.site,
                    plt_a_us: pa.plt_us(),
                    plt_b_us: pb.plt_us(),
                    sums_a_us: pa.sums_us(),
                    sums_b_us: pb.sums_us(),
                });
            }
            None => unaligned_a.push((pa.visit, pa.site)),
        }
    }
    for (pb, used) in b.iter().zip(&b_used) {
        if !used {
            unaligned_b.push((pb.visit, pb.site));
        }
    }
    DiffReport {
        a_label: a_label.to_string(),
        b_label: b_label.to_string(),
        visits,
        unaligned_a,
        unaligned_b,
    }
}

fn edge_triples(sums_a: &[u64; EDGE_KINDS.len()], sums_b: &[u64; EDGE_KINDS.len()]) -> Value {
    Value::Object(
        EDGE_KINDS
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (
                    k.name().to_string(),
                    Value::Object(vec![
                        ("a_us".into(), Value::U64(sums_a[i])),
                        ("b_us".into(), Value::U64(sums_b[i])),
                        (
                            "delta_us".into(),
                            Value::I64(sums_b[i] as i64 - sums_a[i] as i64),
                        ),
                    ]),
                )
            })
            .collect(),
    )
}

fn pair_list(pairs: &[(usize, usize)]) -> Value {
    Value::Array(
        pairs
            .iter()
            .map(|&(visit, site)| {
                Value::Object(vec![
                    ("visit".into(), Value::U64(visit as u64)),
                    ("site".into(), Value::U64(site as u64)),
                ])
            })
            .collect(),
    )
}

impl DiffReport {
    /// The schema-versioned `diff.json` document.
    pub fn to_json(&self) -> String {
        let visits: Vec<Value> = self
            .visits
            .iter()
            .map(|v| {
                Value::Object(vec![
                    ("visit".into(), Value::U64(v.visit as u64)),
                    ("site".into(), Value::U64(v.site as u64)),
                    ("plt_a_us".into(), Value::U64(v.plt_a_us)),
                    ("plt_b_us".into(), Value::U64(v.plt_b_us)),
                    ("plt_delta_us".into(), Value::I64(v.plt_delta_us())),
                    ("edges".into(), edge_triples(&v.sums_a_us, &v.sums_b_us)),
                ])
            })
            .collect();
        let mut sums_a = [0u64; EDGE_KINDS.len()];
        let mut sums_b = [0u64; EDGE_KINDS.len()];
        for v in &self.visits {
            for i in 0..EDGE_KINDS.len() {
                sums_a[i] += v.sums_a_us[i];
                sums_b[i] += v.sums_b_us[i];
            }
        }
        let doc = Value::Object(vec![
            (
                "schema_version".into(),
                Value::U64(u64::from(DIFF_SCHEMA_VERSION)),
            ),
            ("kind".into(), Value::Str("critical_path_diff".into())),
            ("a".into(), Value::Str(self.a_label.clone())),
            ("b".into(), Value::Str(self.b_label.clone())),
            (
                "aligned_visits".into(),
                Value::U64(self.visits.len() as u64),
            ),
            ("plt_delta_us".into(), Value::I64(self.plt_delta_us())),
            (
                "dominant_edge".into(),
                Value::Str(self.dominant_edge().name().into()),
            ),
            ("totals".into(), edge_triples(&sums_a, &sums_b)),
            ("visits".into(), Value::Array(visits)),
            ("unaligned_a".into(), pair_list(&self.unaligned_a)),
            ("unaligned_b".into(), pair_list(&self.unaligned_b)),
        ]);
        let mut s = serde_json::to_string_pretty(&ValueDoc(doc)).expect("diff serializes");
        s.push('\n');
        s
    }

    /// Human-readable attribution table (ms, B − A).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let ms = |us: i64| us as f64 / 1e3;
        let mut s = format!(
            "PLT diff {} -> {}: {} aligned visit(s), total delta {:+.1} ms\n",
            self.a_label,
            self.b_label,
            self.visits.len(),
            ms(self.plt_delta_us())
        );
        let _ = writeln!(
            s,
            "dominant critical-path edge: {}",
            self.dominant_edge().name()
        );
        let deltas = self.edge_deltas_us();
        let _ = writeln!(
            s,
            "{:<14} {:>12} {:>12} {:>12}",
            "edge",
            format!("{} ms", self.a_label),
            format!("{} ms", self.b_label),
            "delta ms"
        );
        let mut sums_a = [0u64; EDGE_KINDS.len()];
        let mut sums_b = [0u64; EDGE_KINDS.len()];
        for v in &self.visits {
            for i in 0..EDGE_KINDS.len() {
                sums_a[i] += v.sums_a_us[i];
                sums_b[i] += v.sums_b_us[i];
            }
        }
        for (i, k) in EDGE_KINDS.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:<14} {:>12.1} {:>12.1} {:>+12.1}",
                k.name(),
                sums_a[i] as f64 / 1e3,
                sums_b[i] as f64 / 1e3,
                ms(deltas[i])
            );
        }
        if !self.unaligned_a.is_empty() || !self.unaligned_b.is_empty() {
            let _ = writeln!(
                s,
                "unaligned visits: {} in {}, {} in {}",
                self.unaligned_a.len(),
                self.a_label,
                self.unaligned_b.len(),
                self.b_label
            );
        }
        s
    }
}

/// Newtype so a pre-built `Value` tree can ride the `Serialize` trait.
struct ValueDoc(Value);

impl serde::Serialize for ValueDoc {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathEdge;

    fn path(visit: usize, site: usize, edges: Vec<(u64, u64, EdgeKind)>) -> CriticalPath {
        let start = edges.first().map_or(0, |e| e.0);
        let end = edges.last().map_or(0, |e| e.1);
        CriticalPath {
            visit,
            site,
            completed: true,
            start_us: start,
            end_us: end,
            edges: edges
                .into_iter()
                .map(|(a, b, kind)| PathEdge {
                    start_us: a,
                    end_us: b,
                    kind,
                    object: None,
                    conn: None,
                })
                .collect(),
        }
    }

    #[test]
    fn deltas_conserve_the_plt_delta_exactly() {
        let a = vec![path(
            0,
            9,
            vec![
                (0, 1_000, EdgeKind::Parse),
                (1_000, 3_000, EdgeKind::Receive),
            ],
        )];
        let b = vec![path(
            0,
            9,
            vec![
                (0, 1_000, EdgeKind::Parse),
                (1_000, 5_000, EdgeKind::RtoRecovery),
                (5_000, 5_500, EdgeKind::Receive),
            ],
        )];
        let d = diff_paths("http", &a, "spdy", &b);
        assert_eq!(d.plt_delta_us(), 2_500);
        assert_eq!(d.edge_deltas_us().iter().sum::<i64>(), 2_500);
        assert_eq!(d.dominant_edge(), EdgeKind::RtoRecovery);
        assert!(d.unaligned_a.is_empty() && d.unaligned_b.is_empty());
    }

    #[test]
    fn site_mismatches_go_unaligned_not_subtracted() {
        let a = vec![path(0, 9, vec![(0, 1_000, EdgeKind::Parse)])];
        let b = vec![path(0, 4, vec![(0, 9_000, EdgeKind::Parse)])];
        let d = diff_paths("a", &a, "b", &b);
        assert!(d.visits.is_empty());
        assert_eq!(d.unaligned_a, vec![(0, 9)]);
        assert_eq!(d.unaligned_b, vec![(0, 4)]);
        assert_eq!(d.plt_delta_us(), 0);
    }

    #[test]
    fn diff_json_is_schema_versioned() {
        let a = vec![path(0, 9, vec![(0, 1_000, EdgeKind::Parse)])];
        let b = vec![path(0, 9, vec![(0, 3_000, EdgeKind::Promotion)])];
        let d = diff_paths("http", &a, "spdy", &b);
        let j = d.to_json();
        let v = serde_json::from_str(&j).expect("diff parses");
        assert_eq!(v["schema_version"].as_u64(), Some(1));
        assert_eq!(v["kind"].as_str(), Some("critical_path_diff"));
        assert_eq!(v["plt_delta_us"].as_f64(), Some(2_000.0));
        assert_eq!(v["dominant_edge"].as_str(), Some("promotion"));
        let text = d.to_text();
        assert!(
            text.contains("dominant critical-path edge: promotion"),
            "{text}"
        );
    }
}
