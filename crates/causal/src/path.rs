//! Exact per-visit critical-path extraction.
//!
//! The extractor walks one visit's dependency spine backwards from the
//! last-completing object — each spine step is "this fetch could not
//! have been issued before its predecessor finished" — then carves every
//! spine segment into typed edges with the same boundary-sweep the stall
//! attributor uses. The edges tile the `[VisitStart, VisitStart + plt]`
//! window with no gaps and no overlaps, so their durations sum to the
//! PLT *exactly*: conservation is by construction, mirroring
//! `attribute_stalls`.
//!
//! Segment taxonomy:
//!
//! * **object spans** `[requested, complete)` — the network is working
//!   on the fetch. Overlap priority: RTO recovery (on the fetch's own
//!   connection) > RRC promotion > link serialization > queueing >
//!   origin think; the remainder is response wait before the first byte
//!   and receive after it.
//! * **gaps** `[prev complete, next requested)` — the browser holds the
//!   chain. Priority: RTO recovery (any connection) > promotion >
//!   connection setup (the next fetch's connection) ; the remainder is
//!   parse/execute time.
//! * **tail** `[last complete, plt)` — onload work; pure parse.

use crate::model::{ConnBinding, EventModel, Interval, VisitWindow};
use serde::Value;
use spdyier_trace::TraceRecord;

/// What a critical-path edge's time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Browser parse/execute/dispatch time holding the chain.
    Parse,
    /// Waiting for the next fetch's connection handshake.
    ConnSetup,
    /// Waiting out an RRC promotion.
    Promotion,
    /// Silence ended by a TCP retransmission timeout.
    RtoRecovery,
    /// The access link clocking this fetch's bytes out.
    Serialization,
    /// This fetch's segments queued / propagating on the path.
    Queueing,
    /// The origin thinking before it replies.
    ServerThink,
    /// Request in flight, first response byte not yet back.
    ResponseWait,
    /// First byte received, body still streaming in.
    Receive,
}

/// Every edge kind, in the canonical (metric/report) order.
pub const EDGE_KINDS: [EdgeKind; 9] = [
    EdgeKind::Parse,
    EdgeKind::ConnSetup,
    EdgeKind::Promotion,
    EdgeKind::RtoRecovery,
    EdgeKind::Serialization,
    EdgeKind::Queueing,
    EdgeKind::ServerThink,
    EdgeKind::ResponseWait,
    EdgeKind::Receive,
];

impl EdgeKind {
    /// Stable snake_case name used in JSON artifacts and reports.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Parse => "parse",
            EdgeKind::ConnSetup => "conn_setup",
            EdgeKind::Promotion => "promotion",
            EdgeKind::RtoRecovery => "rto_recovery",
            EdgeKind::Serialization => "serialization",
            EdgeKind::Queueing => "queueing",
            EdgeKind::ServerThink => "server_think",
            EdgeKind::ResponseWait => "response_wait",
            EdgeKind::Receive => "receive",
        }
    }

    /// Index into [`EDGE_KINDS`]-ordered arrays.
    pub fn index(self) -> usize {
        EDGE_KINDS
            .iter()
            .position(|&k| k == self)
            .expect("kind listed")
    }
}

/// One typed edge of a visit's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEdge {
    /// Edge start, µs.
    pub start_us: u64,
    /// Edge end, µs (exclusive).
    pub end_us: u64,
    /// What the time was spent on.
    pub kind: EdgeKind,
    /// The object whose fetch span the edge belongs to (`None` for
    /// gap/tail edges).
    pub object: Option<u32>,
    /// The connection governing the edge, when one does.
    pub conn: Option<usize>,
}

impl PathEdge {
    /// Edge duration, µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// One visit's critical path: edges tiling `[start, end)` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Visit index in the schedule.
    pub visit: usize,
    /// Site index the visit loaded.
    pub site: usize,
    /// Whether the visit reached onload before its deadline.
    pub completed: bool,
    /// Window start, µs.
    pub start_us: u64,
    /// Window end, µs (`start + plt`).
    pub end_us: u64,
    /// The typed edges, chronological, gap-free.
    pub edges: Vec<PathEdge>,
}

impl CriticalPath {
    /// The visit's page-load time, µs.
    pub fn plt_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// Per-kind duration sums, µs, in [`EDGE_KINDS`] order. By the
    /// conservation invariant these sum to [`Self::plt_us`].
    pub fn sums_us(&self) -> [u64; EDGE_KINDS.len()] {
        let mut sums = [0u64; EDGE_KINDS.len()];
        for e in &self.edges {
            sums[e.kind.index()] += e.duration_us();
        }
        sums
    }
}

/// Sum per-kind durations across many paths, µs, [`EDGE_KINDS`] order.
pub fn rollup_us(paths: &[CriticalPath]) -> [u64; EDGE_KINDS.len()] {
    let mut sums = [0u64; EDGE_KINDS.len()];
    for p in paths {
        for (sum, add) in sums.iter_mut().zip(p.sums_us()) {
            *sum += add;
        }
    }
    sums
}

/// Extract the critical path of every visit in a record stream.
pub fn critical_paths_from_records(records: &[TraceRecord]) -> Vec<CriticalPath> {
    let model = EventModel::from_records(records);
    critical_paths(&model)
}

/// Extract the critical path of every visit in an [`EventModel`].
pub fn critical_paths(model: &EventModel) -> Vec<CriticalPath> {
    model.windows.iter().map(|w| visit_path(model, w)).collect()
}

/// One object on the spine: its clipped span and connection binding.
#[derive(Debug, Clone, Copy)]
struct SpineObject {
    object: u32,
    r_us: u64,
    /// First-byte instant clipped into the span (span end when absent).
    fb_us: u64,
    /// Completion clipped to the window end (abandoned fetches run to
    /// the deadline).
    c_us: u64,
    binding: Option<ConnBinding>,
}

fn visit_path(model: &EventModel, w: &VisitWindow) -> CriticalPath {
    let (vs, ve) = (w.start_us, w.end_us);
    // Objects requested inside the window, spans clipped to it.
    let mut objects: Vec<SpineObject> = Vec::new();
    if let Some(per_object) = model.objects.get(&w.visit) {
        for (&object, inst) in per_object {
            let Some(r) = inst.requested_us else { continue };
            if r < vs || r >= ve {
                continue;
            }
            let c = inst.complete_us.unwrap_or(ve).min(ve).max(r);
            let fb = inst.first_byte_us.unwrap_or(c).clamp(r, c);
            objects.push(SpineObject {
                object,
                r_us: r,
                fb_us: fb,
                c_us: c,
                binding: model.binding(w.visit, object),
            });
        }
    }

    let mut edges = Vec::new();
    if objects.is_empty() {
        // Nothing was fetched inside the window: the whole PLT is the
        // browser's (degenerate, but conservation must still hold).
        push_edge(&mut edges, vs, ve, EdgeKind::Parse, None, None);
        return finish_path(w, edges);
    }

    // Anchor: the object whose completion pins the load's end.
    // Deterministic tie-break by (complete, requested, object id).
    let anchor = objects
        .iter()
        .enumerate()
        .max_by_key(|(_, o)| (o.c_us, o.r_us, o.object))
        .map(|(i, _)| i)
        .expect("objects non-empty");

    // Walk the spine backwards: predecessor = the unused object whose
    // completion is latest but not after the current request (the fetch
    // the browser was most plausibly waiting on when it issued this one).
    let mut spine: Vec<usize> = vec![anchor];
    let mut used = vec![false; objects.len()];
    used[anchor] = true;
    let mut cur = anchor;
    loop {
        let r_cur = objects[cur].r_us;
        let pred = objects
            .iter()
            .enumerate()
            .filter(|(i, o)| !used[*i] && o.c_us <= r_cur)
            .max_by_key(|(_, o)| (o.c_us, o.r_us, o.object))
            .map(|(i, _)| i);
        match pred {
            Some(p) => {
                used[p] = true;
                spine.push(p);
                cur = p;
            }
            None => break,
        }
    }
    spine.reverse(); // chronological

    // Emit: initial gap, then span / gap / span ... / tail.
    let first = &objects[spine[0]];
    if vs < first.r_us {
        gap_edges(&mut edges, model, vs, first.r_us, first.binding);
    }
    for (i, &idx) in spine.iter().enumerate() {
        let o = &objects[idx];
        span_edges(&mut edges, model, o);
        if let Some(&next_idx) = spine.get(i + 1) {
            let next = &objects[next_idx];
            if o.c_us < next.r_us {
                gap_edges(&mut edges, model, o.c_us, next.r_us, next.binding);
            }
        }
    }
    let last = &objects[*spine.last().expect("spine non-empty")];
    if last.c_us < ve {
        push_edge(&mut edges, last.c_us, ve, EdgeKind::Parse, None, None);
    }
    finish_path(w, edges)
}

fn finish_path(w: &VisitWindow, edges: Vec<PathEdge>) -> CriticalPath {
    CriticalPath {
        visit: w.visit,
        site: w.site,
        completed: w.completed,
        start_us: w.start_us,
        end_us: w.end_us,
        edges,
    }
}

/// Append an edge, merging into the previous one when contiguous and
/// identically typed.
fn push_edge(
    edges: &mut Vec<PathEdge>,
    start_us: u64,
    end_us: u64,
    kind: EdgeKind,
    object: Option<u32>,
    conn: Option<usize>,
) {
    if start_us >= end_us {
        return;
    }
    if let Some(last) = edges.last_mut() {
        if last.end_us == start_us
            && last.kind == kind
            && last.object == object
            && last.conn == conn
        {
            last.end_us = end_us;
            return;
        }
    }
    edges.push(PathEdge {
        start_us,
        end_us,
        kind,
        object,
        conn,
    });
}

/// Clip `intervals` to `[a, b)`, keeping only those on `conn` (or all,
/// when `conn` is `None`), and tag them with `priority`.
fn clipped(
    out: &mut Vec<(u64, u64, usize)>,
    intervals: &[Interval],
    a: u64,
    b: u64,
    conn: Option<usize>,
    priority: usize,
) {
    for iv in intervals {
        if let Some(want) = conn {
            if iv.conn != Some(want) {
                continue;
            }
        }
        let (s, e) = (iv.a.max(a), iv.b.min(b));
        if s < e {
            out.push((s, e, priority));
        }
    }
}

/// The (object, connection) attribution every edge of one sweep shares.
#[derive(Debug, Clone, Copy)]
struct EdgeCtx {
    object: Option<u32>,
    conn: Option<usize>,
}

/// Boundary-sweep `[a, b)` against prioritized intervals; elementary
/// segments covered by no interval go to `default(segment)`.
fn sweep(
    edges: &mut Vec<PathEdge>,
    a: u64,
    b: u64,
    intervals: &[(u64, u64, usize)],
    kinds: &[EdgeKind],
    ctx: EdgeCtx,
    default: impl Fn(u64, u64) -> EdgeKind,
) {
    let mut points: Vec<u64> = vec![a, b];
    for &(s, e, _) in intervals {
        points.push(s);
        points.push(e);
    }
    points.sort_unstable();
    points.dedup();
    for pair in points.windows(2) {
        let (s, e) = (pair[0], pair[1]);
        let kind = intervals
            .iter()
            .filter(|&&(is, ie, _)| is <= s && ie >= e)
            .map(|&(_, _, p)| p)
            .min()
            .map_or_else(|| default(s, e), |p| kinds[p]);
        push_edge(edges, s, e, kind, ctx.object, ctx.conn);
    }
}

/// Carve an object span `[r, c)` into typed edges.
fn span_edges(edges: &mut Vec<PathEdge>, model: &EventModel, o: &SpineObject) {
    let conn = o.binding.map(|b| b.conn);
    let mut ivs = Vec::new();
    clipped(&mut ivs, &model.rto, o.r_us, o.c_us, conn, 0);
    clipped(&mut ivs, &model.promotions, o.r_us, o.c_us, None, 1);
    clipped(&mut ivs, &model.serialization, o.r_us, o.c_us, conn, 2);
    clipped(&mut ivs, &model.queueing, o.r_us, o.c_us, conn, 3);
    clipped(&mut ivs, &model.think, o.r_us, o.c_us, None, 4);
    let kinds = [
        EdgeKind::RtoRecovery,
        EdgeKind::Promotion,
        EdgeKind::Serialization,
        EdgeKind::Queueing,
        EdgeKind::ServerThink,
    ];
    let fb = o.fb_us;
    let ctx = EdgeCtx {
        object: Some(o.object),
        conn,
    };
    sweep(edges, o.r_us, o.c_us, &ivs, &kinds, ctx, |s, _e| {
        if s < fb {
            EdgeKind::ResponseWait
        } else {
            EdgeKind::Receive
        }
    });
}

/// Carve a browser-held gap `[a, b)` into typed edges; `next` is the
/// binding of the fetch the gap leads to.
fn gap_edges(
    edges: &mut Vec<PathEdge>,
    model: &EventModel,
    a: u64,
    b: u64,
    next: Option<ConnBinding>,
) {
    let conn = next.map(|b| b.conn);
    let mut ivs = Vec::new();
    clipped(&mut ivs, &model.rto, a, b, None, 0);
    clipped(&mut ivs, &model.promotions, a, b, None, 1);
    clipped(&mut ivs, &model.setup, a, b, conn, 2);
    let kinds = [
        EdgeKind::RtoRecovery,
        EdgeKind::Promotion,
        EdgeKind::ConnSetup,
    ];
    let ctx = EdgeCtx { object: None, conn };
    sweep(edges, a, b, &ivs, &kinds, ctx, |_, _| EdgeKind::Parse);
}

/// Schema version of the `explain_*.json` document.
pub const EXPLAIN_SCHEMA_VERSION: u32 = 1;

fn sums_value(sums: &[u64; EDGE_KINDS.len()]) -> Value {
    Value::Object(
        EDGE_KINDS
            .iter()
            .zip(sums)
            .map(|(k, &us)| (k.name().to_string(), Value::U64(us)))
            .collect(),
    )
}

/// Render paths as the schema-versioned `explain` JSON document.
pub fn explain_json(label: &str, paths: &[CriticalPath]) -> String {
    let visits: Vec<Value> = paths
        .iter()
        .map(|p| {
            let edges: Vec<Value> = p
                .edges
                .iter()
                .map(|e| {
                    Value::Object(vec![
                        ("start_us".into(), Value::U64(e.start_us)),
                        ("end_us".into(), Value::U64(e.end_us)),
                        ("kind".into(), Value::Str(e.kind.name().into())),
                        (
                            "object".into(),
                            e.object.map_or(Value::Null, |o| Value::U64(u64::from(o))),
                        ),
                        (
                            "conn".into(),
                            e.conn.map_or(Value::Null, |c| Value::U64(c as u64)),
                        ),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("visit".into(), Value::U64(p.visit as u64)),
                ("site".into(), Value::U64(p.site as u64)),
                ("completed".into(), Value::Bool(p.completed)),
                ("start_us".into(), Value::U64(p.start_us)),
                ("plt_us".into(), Value::U64(p.plt_us())),
                ("edge_sums_us".into(), sums_value(&p.sums_us())),
                ("edges".into(), Value::Array(edges)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        (
            "schema_version".into(),
            Value::U64(u64::from(EXPLAIN_SCHEMA_VERSION)),
        ),
        ("kind".into(), Value::Str("critical_path_explain".into())),
        ("label".into(), Value::Str(label.into())),
        ("visits".into(), Value::Array(visits)),
        ("edge_sums_us".into(), sums_value(&rollup_us(paths))),
    ]);
    let mut s = serde_json::to_string_pretty(&ValueDoc(doc)).expect("explain serializes");
    s.push('\n');
    s
}

/// Human-readable `explain` rendering: one block per visit, the path's
/// per-kind totals in ms, dominant edge first line.
pub fn explain_text(label: &str, paths: &[CriticalPath]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("critical paths for {label}: {} visit(s)\n", paths.len());
    for p in paths {
        let sums = p.sums_us();
        let dominant = EDGE_KINDS
            .iter()
            .zip(sums)
            .max_by_key(|&(k, us)| (us, std::cmp::Reverse(k.index())))
            .map(|(k, _)| k.name())
            .unwrap_or("parse");
        let _ = writeln!(
            s,
            "  visit {:>2} site {:>2}: plt {:>9.1} ms over {} edge(s), dominant {}",
            p.visit,
            p.site,
            p.plt_us() as f64 / 1e3,
            p.edges.len(),
            dominant
        );
        for (k, us) in EDGE_KINDS.iter().zip(sums) {
            if us > 0 {
                let _ = writeln!(s, "    {:<14} {:>9.1} ms", k.name(), us as f64 / 1e3);
            }
        }
    }
    s
}

/// Newtype so a pre-built `Value` tree can ride the `Serialize` trait.
struct ValueDoc(Value);

impl serde::Serialize for ValueDoc {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_sim::SimTime;
    use spdyier_trace::{TraceEvent, TraceLevel, Tracer};

    fn records(events: Vec<(u64, TraceEvent)>) -> Vec<TraceRecord> {
        let mut tr = Tracer::for_level(TraceLevel::Full);
        for (at, ev) in events {
            tr.emit(SimTime::from_micros(at), ev);
        }
        tr.finish().events
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// Two chained objects with a promotion, an RTO, a conn handshake
    /// and segment traffic: the canonical page skeleton.
    fn chain_records() -> Vec<TraceRecord> {
        records(vec![
            (0, TraceEvent::VisitStart { visit: 0, site: 9 }),
            (
                0,
                TraceEvent::RrcPromotion {
                    kind: "IdleToDch".into(),
                    start: t(0),
                    done: t(1_000),
                },
            ),
            (
                100,
                TraceEvent::ConnOpened {
                    conn: 0,
                    over_access: true,
                    label: "dev[0]".into(),
                },
            ),
            (1_400, TraceEvent::SslReady { conn: 0 }),
            (
                1_500,
                TraceEvent::ObjectRequested {
                    visit: 0,
                    object: 0,
                },
            ),
            (
                1_500,
                TraceEvent::HttpRequestSent {
                    conn: 0,
                    gen: 1,
                    tag: 0,
                },
            ),
            (
                1_600,
                TraceEvent::SegmentSent {
                    conn: 0,
                    down: false,
                    bytes: 400,
                    deliver: t(1_900),
                    ser_us: 100,
                    retransmit: false,
                },
            ),
            (
                2_500,
                TraceEvent::ObjectFirstByte {
                    visit: 0,
                    object: 0,
                },
            ),
            (
                3_000,
                TraceEvent::ObjectComplete {
                    visit: 0,
                    object: 0,
                },
            ),
            // 500 µs of parse before the dependent fetch goes out.
            (
                3_500,
                TraceEvent::ObjectRequested {
                    visit: 0,
                    object: 1,
                },
            ),
            (
                3_500,
                TraceEvent::HttpRequestSent {
                    conn: 0,
                    gen: 1,
                    tag: 1,
                },
            ),
            // RTO silence on the governing connection inside the span.
            (
                5_000,
                TraceEvent::TcpRto {
                    conn: 0,
                    b_side: false,
                    silent_since: t(4_000),
                },
            ),
            (
                5_600,
                TraceEvent::ObjectFirstByte {
                    visit: 0,
                    object: 1,
                },
            ),
            (
                6_000,
                TraceEvent::ObjectComplete {
                    visit: 0,
                    object: 1,
                },
            ),
            (
                6_400,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: true,
                    plt_us: 6_400,
                },
            ),
        ])
    }

    #[test]
    fn edges_tile_the_window_and_conserve_plt() {
        let paths = critical_paths_from_records(&chain_records());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.plt_us(), 6_400);
        // Tiling: chronological, gap-free, ends at the window edges.
        assert_eq!(p.edges.first().unwrap().start_us, 0);
        assert_eq!(p.edges.last().unwrap().end_us, 6_400);
        for pair in p.edges.windows(2) {
            assert_eq!(pair[0].end_us, pair[1].start_us, "no gap, no overlap");
        }
        let total: u64 = p.edges.iter().map(PathEdge::duration_us).sum();
        assert_eq!(total, p.plt_us(), "conservation is exact");
    }

    #[test]
    fn the_expected_story_lands_in_the_expected_edges() {
        let p = &critical_paths_from_records(&chain_records())[0];
        let sums = p.sums_us();
        // Initial gap [0,1500): promotion [0,1000) wins over the setup
        // overlap, setup keeps [1000,1400), parse the last 100 µs.
        assert_eq!(sums[EdgeKind::Promotion.index()], 1_000);
        assert_eq!(sums[EdgeKind::ConnSetup.index()], 400);
        // Span 0 [1500,3000): queueing [1600,1800), serialization
        // [1800,1900); wait up to first byte at 2500, then receive.
        assert_eq!(sums[EdgeKind::Queueing.index()], 200);
        assert_eq!(sums[EdgeKind::Serialization.index()], 100);
        // Span 1 carries the RTO silence [4000,5000).
        assert_eq!(sums[EdgeKind::RtoRecovery.index()], 1_000);
        // Gap [3000,3500) parse + initial 100 + tail [6000,6400).
        assert_eq!(sums[EdgeKind::Parse.index()], 100 + 500 + 400);
        assert_eq!(sums.iter().sum::<u64>(), 6_400);
    }

    #[test]
    fn rto_on_a_foreign_connection_stays_off_the_span() {
        let recs = records(vec![
            (0, TraceEvent::VisitStart { visit: 0, site: 1 }),
            (
                10,
                TraceEvent::ObjectRequested {
                    visit: 0,
                    object: 0,
                },
            ),
            (
                10,
                TraceEvent::HttpRequestSent {
                    conn: 0,
                    gen: 1,
                    tag: 0,
                },
            ),
            // An RTO on another pooled connection mid-span: not on this
            // object's path.
            (
                600,
                TraceEvent::TcpRto {
                    conn: 7,
                    b_side: false,
                    silent_since: t(100),
                },
            ),
            (
                900,
                TraceEvent::ObjectComplete {
                    visit: 0,
                    object: 0,
                },
            ),
            (
                1_000,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: true,
                    plt_us: 1_000,
                },
            ),
        ]);
        let p = &critical_paths_from_records(&recs)[0];
        assert_eq!(p.sums_us()[EdgeKind::RtoRecovery.index()], 0);
        assert_eq!(p.plt_us(), p.sums_us().iter().sum::<u64>());
    }

    #[test]
    fn empty_visits_degenerate_to_one_parse_edge() {
        let recs = records(vec![
            (0, TraceEvent::VisitStart { visit: 0, site: 2 }),
            (
                500,
                TraceEvent::VisitEnd {
                    visit: 0,
                    completed: false,
                    plt_us: 500,
                },
            ),
        ]);
        let p = &critical_paths_from_records(&recs)[0];
        assert_eq!(p.edges.len(), 1);
        assert_eq!(p.edges[0].kind, EdgeKind::Parse);
        assert_eq!(p.plt_us(), 500);
    }

    #[test]
    fn explain_json_is_schema_versioned_and_conserving() {
        let paths = critical_paths_from_records(&chain_records());
        let j = explain_json("spdy", &paths);
        let v = serde_json::from_str(&j).expect("explain parses");
        assert_eq!(v["schema_version"].as_u64(), Some(1));
        assert_eq!(v["kind"].as_str(), Some("critical_path_explain"));
        assert_eq!(v["visits"][0]["plt_us"].as_u64(), Some(6_400));
        let text = explain_text("spdy", &paths);
        assert!(text.contains("visit  0"), "{text}");
    }
}
