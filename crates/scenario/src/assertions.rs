//! The assertion DSL: `lhs op rhs [on <network>]`.
//!
//! Each side is either a number literal or a dotted metric reference.
//! A reference is zero or more *filter* segments (protocol compact names
//! like `spdy` / `spdy:20:late`, matrix variant names, or `seed<N>`)
//! followed by a metric name; the filters select which cells' samples
//! are pooled before the metric is computed. `counter.<name>` reaches
//! through to the trace metrics registry. Examples:
//!
//! ```text
//! spdy.rto_stall_ms > http.rto_stall_ms on 3g
//! plt_p50_ms < 9000
//! http.counter.tcp.rto_fired >= 1
//! ```
//!
//! Parsing is strict and happens at manifest decode time, so a typo'd
//! metric name is an exit-code-3 config error, not a silently-skipped
//! check. The `on <network>` clause gates evaluation: when it names a
//! network other than the manifest's, the verdict is `skipped` — letting
//! one assertion list serve a family of per-network manifests.

use spdyier_core::{NetworkSpec, TraceLevel};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison.
    pub fn holds(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The operator as written.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A pooled metric reference: filters + metric name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRef {
    /// Cell filters, all of which must match (empty = every cell).
    pub filters: Vec<String>,
    /// Metric name (one of [`KNOWN_METRICS`] or `counter.<name>`).
    pub metric: String,
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A literal number.
    Number(f64),
    /// A pooled metric.
    Metric(MetricRef),
}

/// A parsed assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct Assertion {
    /// The expression as written in the manifest.
    pub expr: String,
    /// Left-hand side.
    pub lhs: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Operand,
    /// Optional `on <network>` gate.
    pub on: Option<NetworkSpec>,
}

/// Every metric name the evaluator computes from pooled cells, besides
/// the `counter.<name>` passthrough.
pub const KNOWN_METRICS: [&str; 34] = [
    "plt_p50_ms",
    "plt_p90_ms",
    "plt_p95_ms",
    "plt_mean_ms",
    "plt_min_ms",
    "plt_max_ms",
    "completion_rate",
    "visits",
    "completed_visits",
    "promotion_stall_ms",
    "serialization_stall_ms",
    "queueing_stall_ms",
    "rto_stall_ms",
    "rto_stall_per_event_ms",
    "think_stall_ms",
    "other_stall_ms",
    "retransmissions",
    "timeouts",
    "idle_restarts",
    "connections_opened",
    "promotions",
    "energy_mj",
    "total_bytes",
    "critical_parse_ms",
    "critical_conn_setup_ms",
    "critical_promotion_ms",
    "critical_rto_stall_ms",
    "critical_rto_per_event_ms",
    "critical_serialization_ms",
    "critical_queueing_ms",
    "critical_think_ms",
    "critical_wait_ms",
    "critical_receive_ms",
    "trace_dropped",
];

/// The metrics that need per-visit stall attribution (and therefore at
/// least `Transport`-level flight recording).
pub const STALL_METRICS: [&str; 7] = [
    "promotion_stall_ms",
    "serialization_stall_ms",
    "queueing_stall_ms",
    "rto_stall_ms",
    "rto_stall_per_event_ms",
    "think_stall_ms",
    "other_stall_ms",
];

/// The per-critical-path-edge pooled metrics (mean ms per visit over the
/// visits on the pooled cells' critical paths), in the causal engine's
/// canonical edge order. They need `Full`-level flight recording: the
/// serialization / queueing edges come from per-segment records.
pub const CRITICAL_METRICS: [&str; 9] = [
    "critical_parse_ms",
    "critical_conn_setup_ms",
    "critical_promotion_ms",
    "critical_rto_stall_ms",
    "critical_serialization_ms",
    "critical_queueing_ms",
    "critical_think_ms",
    "critical_wait_ms",
    "critical_receive_ms",
];

impl MetricRef {
    fn parse(token: &str) -> Result<MetricRef, String> {
        let segments: Vec<&str> = token.split('.').collect();
        if segments.iter().any(|s| s.is_empty()) {
            return Err(format!("malformed metric reference {token:?}"));
        }
        // `counter.<name>` may itself contain dots (registry names like
        // `tcp.rto_fired`), so everything from the `counter` segment on
        // is the metric; filters are the segments before it.
        if let Some(pos) = segments.iter().position(|&s| s == "counter") {
            if pos + 1 == segments.len() {
                return Err(format!(
                    "metric reference {token:?} is missing a counter name"
                ));
            }
            return Ok(MetricRef {
                filters: segments[..pos].iter().map(|s| s.to_string()).collect(),
                metric: segments[pos..].join("."),
            });
        }
        let (metric, filters) = segments.split_last().expect("split never empty");
        if !KNOWN_METRICS.contains(metric) {
            return Err(format!(
                "unknown metric {metric:?} (expected one of: {}, or counter.<name>)",
                KNOWN_METRICS.join(", ")
            ));
        }
        Ok(MetricRef {
            filters: filters.iter().map(|s| s.to_string()).collect(),
            metric: metric.to_string(),
        })
    }

    /// Whether this reference needs stall attribution.
    pub fn needs_stall_metrics(&self) -> bool {
        STALL_METRICS.contains(&self.metric.as_str())
    }

    /// The minimum flight-recorder level this reference needs to be
    /// computable: critical-path metrics need `Full` (per-segment
    /// records), stall metrics need `Transport`, `trace_dropped` and
    /// `counter.*` need the recorder merely on (`Lifecycle`).
    pub fn required_trace(&self) -> TraceLevel {
        let m = self.metric.as_str();
        if CRITICAL_METRICS.contains(&m) || m == "critical_rto_per_event_ms" {
            TraceLevel::Full
        } else if STALL_METRICS.contains(&m) {
            TraceLevel::Transport
        } else if m == "trace_dropped" || m.starts_with("counter.") {
            TraceLevel::Lifecycle
        } else {
            TraceLevel::Off
        }
    }
}

impl Operand {
    fn parse(token: &str) -> Result<Operand, String> {
        // Number literals win; anything else must be a metric reference.
        if token
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+')
        {
            return token
                .parse::<f64>()
                .map(Operand::Number)
                .map_err(|_| format!("malformed number literal {token:?}"));
        }
        MetricRef::parse(token).map(Operand::Metric)
    }

    /// The metric reference, if this side is one.
    pub fn metric(&self) -> Option<&MetricRef> {
        match self {
            Operand::Metric(m) => Some(m),
            Operand::Number(_) => None,
        }
    }
}

impl Assertion {
    /// Parse `lhs op rhs [on <network>]`.
    pub fn parse(expr: &str) -> Result<Assertion, String> {
        let tokens: Vec<&str> = expr.split_whitespace().collect();
        let (head, on) = match tokens.len() {
            3 => (&tokens[..3], None),
            5 if tokens[3] == "on" => {
                let net: NetworkSpec = tokens[4].parse()?;
                (&tokens[..3], Some(net))
            }
            _ => {
                return Err(format!(
                    "malformed assertion {expr:?} (expected \"<lhs> <op> <rhs> [on <network>]\")"
                ))
            }
        };
        let op = match head[1] {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            other => {
                return Err(format!(
                    "unknown operator {other:?} (expected <, <=, >, or >=)"
                ))
            }
        };
        let lhs = Operand::parse(head[0])?;
        let rhs = Operand::parse(head[2])?;
        if lhs.metric().is_none() && rhs.metric().is_none() {
            return Err(format!(
                "assertion {expr:?} compares two literals — nothing is measured"
            ));
        }
        Ok(Assertion {
            expr: expr.to_string(),
            lhs,
            op,
            rhs,
            on,
        })
    }

    /// Whether either side references a stall-attribution metric.
    pub fn needs_stall_metrics(&self) -> bool {
        [&self.lhs, &self.rhs]
            .into_iter()
            .filter_map(Operand::metric)
            .any(MetricRef::needs_stall_metrics)
    }

    /// The minimum flight-recorder level either side needs.
    pub fn required_trace(&self) -> TraceLevel {
        [&self.lhs, &self.rhs]
            .into_iter()
            .filter_map(Operand::metric)
            .map(MetricRef::required_trace)
            .max()
            .unwrap_or(TraceLevel::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_headline() {
        let a = Assertion::parse("spdy.rto_stall_ms > http.rto_stall_ms on 3g").unwrap();
        assert_eq!(a.op, CmpOp::Gt);
        assert_eq!(a.on, Some(NetworkSpec::Umts3G));
        assert!(a.needs_stall_metrics());
        let lhs = a.lhs.metric().unwrap();
        assert_eq!(lhs.filters, ["spdy"]);
        assert_eq!(lhs.metric, "rto_stall_ms");
    }

    #[test]
    fn parses_literals_and_counters() {
        let a = Assertion::parse("plt_p50_ms < 9000").unwrap();
        assert_eq!(a.rhs, Operand::Number(9000.0));
        assert!(!a.needs_stall_metrics());

        let a = Assertion::parse("http.counter.tcp.rto_fired >= 1").unwrap();
        let lhs = a.lhs.metric().unwrap();
        assert_eq!(lhs.filters, ["http"]);
        assert_eq!(lhs.metric, "counter.tcp.rto_fired");
    }

    #[test]
    fn filters_can_stack() {
        let a = Assertion::parse("spdy:20:late.seed3.plt_mean_ms <= 12000").unwrap();
        let lhs = a.lhs.metric().unwrap();
        assert_eq!(lhs.filters, ["spdy:20:late", "seed3"]);
        assert_eq!(lhs.metric, "plt_mean_ms");
    }

    #[test]
    fn rejects_malformed_input_with_reasons() {
        for (expr, needle) in [
            ("plt_p50_ms < ", "malformed assertion"),
            ("plt_p50_ms ~ 9", "unknown operator"),
            ("plt_p50 < 9000", "unknown metric"),
            ("1 < 2", "two literals"),
            ("plt_p50_ms < 9000 on 4g", "unknown network"),
            ("spdy..plt_p50_ms < 9000", "malformed metric reference"),
            ("http.counter < 1", "missing a counter name"),
        ] {
            let e = Assertion::parse(expr).unwrap_err();
            assert!(e.contains(needle), "{expr:?}: {e}");
        }
    }

    #[test]
    fn critical_metrics_demand_full_tracing() {
        let a = Assertion::parse("spdy.critical_rto_stall_ms > http.critical_rto_stall_ms on 3g")
            .unwrap();
        assert_eq!(a.required_trace(), TraceLevel::Full);
        assert!(!a.needs_stall_metrics());

        let a = Assertion::parse("spdy.rto_stall_ms > 1").unwrap();
        assert_eq!(a.required_trace(), TraceLevel::Transport);

        let a = Assertion::parse("trace_dropped <= 0").unwrap();
        assert_eq!(a.required_trace(), TraceLevel::Lifecycle);

        let a = Assertion::parse("plt_p50_ms < 9000").unwrap();
        assert_eq!(a.required_trace(), TraceLevel::Off);
    }

    #[test]
    fn comparisons_hold() {
        assert!(CmpOp::Lt.holds(1.0, 2.0));
        assert!(CmpOp::Le.holds(2.0, 2.0));
        assert!(CmpOp::Gt.holds(3.0, 2.0));
        assert!(CmpOp::Ge.holds(2.0, 2.0));
        assert!(!CmpOp::Gt.holds(2.0, 2.0));
        assert_eq!(CmpOp::Ge.symbol(), ">=");
    }
}
