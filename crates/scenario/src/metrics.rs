//! Per-cell metric extraction and pooled assertion evaluation.
//!
//! Each run cell reduces to a [`CellMetrics`] accumulator (a PLT
//! quantile sketch, stall-category sums, trace counters, aggregate
//! TCP/radio counters). Assertion references select cells by filter,
//! merge the accumulators, and compute the named metric over the pool —
//! so `spdy.rto_stall_ms` with three seeds is the mean over every SPDY
//! visit of all three runs, not a mean of means.
//!
//! The accumulator is a *fold*: [`CellMetrics::fold_visit`] ingests one
//! visit at a time and [`CellMetrics::merge`] combines two accumulators
//! exactly (associative and commutative, like the sketch it contains),
//! so a population-scale sweep holds O(cells) state instead of
//! O(total visits), and any sharding of the work produces bit-identical
//! pooled metrics. [`CellMetrics::to_value`]/[`CellMetrics::from_value`]
//! are the checkpoint-store codec resumable sweeps persist cells with.

use crate::assertions::{Assertion, Operand, CRITICAL_METRICS};
use crate::manifest::{Cell, Manifest};
use serde::{Serialize, Value};
use spdyier_causal::critical_paths_from_records;
use spdyier_core::{
    attribute_stalls, AssertionVerdict, FlightLog, RunResult, VerdictStatus, VisitResult,
};
use spdyier_sim::stats::{MergeError, QuantileSketch};
use std::collections::BTreeMap;

/// Everything assertion evaluation needs from one run cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellMetrics {
    /// Protocol compact name (`"http"`, `"spdy:20:late"`, …).
    pub protocol: String,
    /// Matrix variant name (`""` without a matrix).
    pub variant: String,
    /// Cell seed.
    pub seed: u64,
    /// PLT samples (ms) of completed visits, held as a mergeable
    /// log-bucketed sketch: O(buckets) memory however many visits the
    /// cell folds, exact min/max/mean, quantiles within the pinned
    /// sketch error bound (`2^(1/128)/2` ≈ 0.28% relative).
    pub plt: QuantileSketch,
    /// Scheduled visits.
    pub visits: u64,
    /// Completed visits.
    pub completed: u64,
    /// Stall-category sums in µs over attributed visits, in
    /// [promotion, serialization, queueing, rto, think, other] order.
    pub stall_sums_us: [u64; 6],
    /// Visits with a stall attribution (0 when tracing was below
    /// `Transport`).
    pub stall_visits: u64,
    /// Critical-path edge sums in µs over extracted visits, in the
    /// causal engine's canonical [`spdyier_causal::EDGE_KINDS`] order:
    /// [parse, conn_setup, promotion, rto, serialization, queueing,
    /// think, wait, receive].
    pub critical_sums_us: [u64; 9],
    /// Visits with an extracted critical path (0 when tracing was off).
    pub critical_visits: u64,
    /// Aggregate TCP retransmissions.
    pub retransmissions: u64,
    /// Aggregate RTO firings.
    pub timeouts: u64,
    /// Aggregate idle restarts.
    pub idle_restarts: u64,
    /// Client↔proxy connections opened.
    pub connections_opened: u64,
    /// RRC promotions taken.
    pub promotions: u64,
    /// Total page bytes over all visits.
    pub total_bytes: u64,
    /// Radio energy, mJ.
    pub energy_mj: f64,
    /// Trace metrics registry counters.
    pub counters: BTreeMap<String, u64>,
}

impl CellMetrics {
    /// Reduce one cell's run (and its flight log, when recorded).
    pub fn from_run(cell: &Cell, result: &RunResult, log: Option<&FlightLog>) -> CellMetrics {
        let mut m = CellMetrics {
            protocol: cell.protocol.compact(),
            variant: cell.variant.clone(),
            seed: cell.seed,
            retransmissions: result.total_retransmissions,
            timeouts: result.total_timeouts,
            idle_restarts: result.total_idle_restarts,
            connections_opened: result.connections_opened,
            promotions: result.promotions.len() as u64,
            energy_mj: result.energy_mj,
            ..CellMetrics::default()
        };
        for v in &result.visits {
            m.fold_visit(v);
        }
        if let Some(log) = log {
            for b in attribute_stalls(log) {
                m.stall_sums_us[0] += b.promotion_us;
                m.stall_sums_us[1] += b.serialization_us;
                m.stall_sums_us[2] += b.queueing_us;
                m.stall_sums_us[3] += b.rto_stall_us;
                m.stall_sums_us[4] += b.server_think_us;
                m.stall_sums_us[5] += b.other_us;
                m.stall_visits += 1;
            }
            for p in critical_paths_from_records(&log.events) {
                for (sum, add) in m.critical_sums_us.iter_mut().zip(p.sums_us()) {
                    *sum += add;
                }
                m.critical_visits += 1;
            }
            for (name, count) in log.metrics.counters() {
                *m.counters.entry(name.to_string()).or_insert(0) += count;
            }
        }
        m
    }

    /// Fold one visit into the accumulator: count it, and record its
    /// PLT sample and byte total. This is the streaming entry point —
    /// a caller that folds visits one at a time and drops them ends up
    /// with exactly the accumulator [`CellMetrics::from_run`] builds
    /// from a retained [`RunResult`].
    pub fn fold_visit(&mut self, v: &VisitResult) {
        self.visits += 1;
        if v.completed {
            self.completed += 1;
            self.plt.record(v.plt_ms);
        }
        self.total_bytes += v.total_bytes;
    }

    /// Whether `filter` selects this cell: the protocol compact name, the
    /// variant name, or `seed<N>` (all case-insensitive).
    pub fn matches(&self, filter: &str) -> bool {
        let f = filter.to_ascii_lowercase();
        f == self.protocol.to_ascii_lowercase()
            || (!self.variant.is_empty() && f == self.variant.to_ascii_lowercase())
            || f == format!("seed{}", self.seed)
    }

    /// Merge `other`'s samples and counters into `self` (the pooled
    /// accumulator assertions evaluate over, and the shard-combine step
    /// of a folded sweep). Exact, associative, and commutative; a
    /// sketch-layout disagreement surfaces as a field-path
    /// [`MergeError`] instead of a silent mismerge.
    pub fn merge(&mut self, other: &CellMetrics) -> Result<(), MergeError> {
        self.plt.merge(&other.plt)?;
        self.visits += other.visits;
        self.completed += other.completed;
        for (sum, add) in self.stall_sums_us.iter_mut().zip(other.stall_sums_us) {
            *sum += add;
        }
        self.stall_visits += other.stall_visits;
        for (sum, add) in self.critical_sums_us.iter_mut().zip(other.critical_sums_us) {
            *sum += add;
        }
        self.critical_visits += other.critical_visits;
        self.retransmissions += other.retransmissions;
        self.timeouts += other.timeouts;
        self.idle_restarts += other.idle_restarts;
        self.connections_opened += other.connections_opened;
        self.promotions += other.promotions;
        self.total_bytes += other.total_bytes;
        self.energy_mj += other.energy_mj;
        for (name, count) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += count;
        }
        Ok(())
    }

    fn stall_mean_ms(&self, category: usize) -> Result<f64, String> {
        if self.stall_visits == 0 {
            return Err(
                "no stall-attribution samples (stall metrics need transport-level tracing)".into(),
            );
        }
        Ok(self.stall_sums_us[category] as f64 / 1_000.0 / self.stall_visits as f64)
    }

    fn critical_mean_ms(&self, edge: usize) -> Result<f64, String> {
        if self.critical_visits == 0 {
            return Err(
                "no critical-path samples (critical metrics need full-level tracing)".into(),
            );
        }
        Ok(self.critical_sums_us[edge] as f64 / 1_000.0 / self.critical_visits as f64)
    }

    /// Compute a named metric over this (possibly pooled) accumulator.
    pub fn metric(&self, name: &str) -> Result<f64, String> {
        if let Some(counter) = name.strip_prefix("counter.") {
            return Ok(self.counters.get(counter).copied().unwrap_or(0) as f64);
        }
        if let Some(edge) = CRITICAL_METRICS.iter().position(|m| *m == name) {
            return self.critical_mean_ms(edge);
        }
        Ok(match name {
            "plt_p50_ms" => self.plt.percentile(50.0),
            "plt_p90_ms" => self.plt.percentile(90.0),
            "plt_p95_ms" => self.plt.percentile(95.0),
            "plt_mean_ms" => self.plt.mean(),
            "plt_min_ms" => self.plt.min(),
            "plt_max_ms" => self.plt.max(),
            "completion_rate" => {
                if self.visits == 0 {
                    0.0
                } else {
                    self.completed as f64 / self.visits as f64
                }
            }
            "visits" => self.visits as f64,
            "completed_visits" => self.completed as f64,
            "promotion_stall_ms" => self.stall_mean_ms(0)?,
            "serialization_stall_ms" => self.stall_mean_ms(1)?,
            "queueing_stall_ms" => self.stall_mean_ms(2)?,
            "rto_stall_ms" => self.stall_mean_ms(3)?,
            // The paper's headline normalization: attributed RTO stall
            // per RTO firing. One RTO on SPDY's single connection stalls
            // the whole page; HTTP's pool hides most of its (more
            // numerous) firings behind parallel transfers.
            "rto_stall_per_event_ms" => {
                if self.stall_visits == 0 {
                    return Err(
                        "no stall-attribution samples (stall metrics need transport-level tracing)"
                            .into(),
                    );
                }
                if self.timeouts == 0 {
                    return Err("no RTO firings in the selected cells".into());
                }
                self.stall_sums_us[3] as f64 / 1_000.0 / self.timeouts as f64
            }
            "think_stall_ms" => self.stall_mean_ms(4)?,
            "other_stall_ms" => self.stall_mean_ms(5)?,
            // The same normalization on the causal engine's critical
            // path: RTO recovery that actually delayed PLT, per firing.
            "critical_rto_per_event_ms" => {
                if self.critical_visits == 0 {
                    return Err(
                        "no critical-path samples (critical metrics need full-level tracing)"
                            .into(),
                    );
                }
                if self.timeouts == 0 {
                    return Err("no RTO firings in the selected cells".into());
                }
                self.critical_sums_us[3] as f64 / 1_000.0 / self.timeouts as f64
            }
            "retransmissions" => self.retransmissions as f64,
            "timeouts" => self.timeouts as f64,
            "idle_restarts" => self.idle_restarts as f64,
            "connections_opened" => self.connections_opened as f64,
            "promotions" => self.promotions as f64,
            "energy_mj" => self.energy_mj,
            "total_bytes" => self.total_bytes as f64,
            // Trace-sink losses: any drop voids conservation guarantees,
            // so scenarios can pin this to zero.
            "trace_dropped" => self
                .counters
                .get("trace.sink_dropped")
                .copied()
                .unwrap_or(0) as f64,
            other => return Err(format!("unknown metric {other:?}")),
        })
    }

    /// The per-cell summary object recorded in `result.json` (fixed key
    /// set — the golden-schema test pins it).
    pub fn summary_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = vec![
            ("protocol".into(), Value::Str(self.protocol.clone())),
            ("variant".into(), Value::Str(self.variant.clone())),
            ("seed".into(), Value::U64(self.seed)),
            ("visits".into(), Value::U64(self.visits)),
            ("completed".into(), Value::U64(self.completed)),
            ("plt_p50_ms".into(), Value::F64(self.plt.percentile(50.0))),
            ("plt_p90_ms".into(), Value::F64(self.plt.percentile(90.0))),
            ("plt_mean_ms".into(), Value::F64(self.plt.mean())),
            ("retransmissions".into(), Value::U64(self.retransmissions)),
            ("timeouts".into(), Value::U64(self.timeouts)),
            (
                "connections_opened".into(),
                Value::U64(self.connections_opened),
            ),
            ("promotions".into(), Value::U64(self.promotions)),
            ("total_bytes".into(), Value::U64(self.total_bytes)),
            ("energy_mj".into(), Value::F64(self.energy_mj)),
        ];
        if self.stall_visits > 0 {
            for (name, category) in [
                ("promotion_stall_ms", 0),
                ("serialization_stall_ms", 1),
                ("queueing_stall_ms", 2),
                ("rto_stall_ms", 3),
                ("think_stall_ms", 4),
                ("other_stall_ms", 5),
            ] {
                let value =
                    self.stall_sums_us[category] as f64 / 1_000.0 / self.stall_visits as f64;
                entries.push((name.into(), Value::F64(value)));
            }
        }
        if self.critical_visits > 0 {
            for (edge, name) in CRITICAL_METRICS.iter().enumerate() {
                let value =
                    self.critical_sums_us[edge] as f64 / 1_000.0 / self.critical_visits as f64;
                entries.push(((*name).into(), Value::F64(value)));
            }
        }
        Value::Object(entries)
    }

    /// Decode an accumulator from the JSON value its `Serialize` impl
    /// produces — the checkpoint-store codec. Every field is integer or
    /// a shortest-round-trip f64, so encode → decode is lossless and a
    /// resumed sweep reproduces the uninterrupted run byte for byte.
    pub fn from_value(v: &Value) -> Result<CellMetrics, String> {
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell.{name}: missing or not a string"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("cell.{name}: missing or not unsigned"))
        };
        let sums = |name: &str, out: &mut [u64]| -> Result<(), String> {
            let arr = v
                .get(name)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("cell.{name}: missing or not an array"))?;
            if arr.len() != out.len() {
                return Err(format!(
                    "cell.{name}: expected {} entries, got {}",
                    out.len(),
                    arr.len()
                ));
            }
            for (i, (slot, x)) in out.iter_mut().zip(arr).enumerate() {
                *slot = x
                    .as_u64()
                    .ok_or_else(|| format!("cell.{name}[{i}]: not unsigned"))?;
            }
            Ok(())
        };
        let mut m = CellMetrics {
            protocol: str_field("protocol")?,
            variant: str_field("variant")?,
            seed: u64_field("seed")?,
            plt: QuantileSketch::from_value(
                v.get("plt")
                    .ok_or_else(|| "cell.plt: missing".to_string())?,
            )
            .map_err(|e| format!("cell.plt: {e}"))?,
            visits: u64_field("visits")?,
            completed: u64_field("completed")?,
            stall_visits: u64_field("stall_visits")?,
            critical_visits: u64_field("critical_visits")?,
            retransmissions: u64_field("retransmissions")?,
            timeouts: u64_field("timeouts")?,
            idle_restarts: u64_field("idle_restarts")?,
            connections_opened: u64_field("connections_opened")?,
            promotions: u64_field("promotions")?,
            total_bytes: u64_field("total_bytes")?,
            energy_mj: v
                .get("energy_mj")
                .and_then(Value::as_f64)
                .ok_or_else(|| "cell.energy_mj: missing or not a number".to_string())?,
            ..CellMetrics::default()
        };
        sums("stall_sums_us", &mut m.stall_sums_us)?;
        sums("critical_sums_us", &mut m.critical_sums_us)?;
        let Some(Value::Object(counters)) = v.get("counters") else {
            return Err("cell.counters: missing or not an object".to_string());
        };
        for (name, count) in counters {
            let count = count
                .as_u64()
                .ok_or_else(|| format!("cell.counters.{name}: not unsigned"))?;
            m.counters.insert(name.clone(), count);
        }
        Ok(m)
    }
}

impl Serialize for CellMetrics {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("protocol".into(), Value::Str(self.protocol.clone())),
            ("variant".into(), Value::Str(self.variant.clone())),
            ("seed".into(), Value::U64(self.seed)),
            ("plt".into(), self.plt.to_value()),
            ("visits".into(), Value::U64(self.visits)),
            ("completed".into(), Value::U64(self.completed)),
            (
                "stall_sums_us".into(),
                Value::Array(self.stall_sums_us.iter().map(|&x| Value::U64(x)).collect()),
            ),
            ("stall_visits".into(), Value::U64(self.stall_visits)),
            (
                "critical_sums_us".into(),
                Value::Array(
                    self.critical_sums_us
                        .iter()
                        .map(|&x| Value::U64(x))
                        .collect(),
                ),
            ),
            ("critical_visits".into(), Value::U64(self.critical_visits)),
            ("retransmissions".into(), Value::U64(self.retransmissions)),
            ("timeouts".into(), Value::U64(self.timeouts)),
            ("idle_restarts".into(), Value::U64(self.idle_restarts)),
            (
                "connections_opened".into(),
                Value::U64(self.connections_opened),
            ),
            ("promotions".into(), Value::U64(self.promotions)),
            ("total_bytes".into(), Value::U64(self.total_bytes)),
            ("energy_mj".into(), Value::F64(self.energy_mj)),
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, &n)| (k.clone(), Value::U64(n)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Pool the cells selected by `filters` and compute `metric` over them.
pub fn eval_metric(cells: &[CellMetrics], filters: &[String], metric: &str) -> Result<f64, String> {
    let mut pool = CellMetrics::default();
    let mut matched = 0usize;
    for cell in cells {
        if filters.iter().all(|f| cell.matches(f)) {
            pool.merge(cell).map_err(|e| e.to_string())?;
            matched += 1;
        }
    }
    if matched == 0 {
        return Err(format!(
            "no cells match filter \"{}\" (cells: {})",
            filters.join("."),
            cells
                .iter()
                .map(|c| c.protocol.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    pool.metric(metric)
}

fn eval_operand(cells: &[CellMetrics], operand: &Operand) -> Result<f64, String> {
    match operand {
        Operand::Number(x) => Ok(*x),
        Operand::Metric(m) => eval_metric(cells, &m.filters, &m.metric),
    }
}

/// Evaluate every manifest assertion against the cells' metrics.
pub fn evaluate(manifest: &Manifest, cells: &[CellMetrics]) -> Vec<AssertionVerdict> {
    manifest
        .assertions
        .iter()
        .map(|a| evaluate_one(a, manifest, cells))
        .collect()
}

fn evaluate_one(a: &Assertion, manifest: &Manifest, cells: &[CellMetrics]) -> AssertionVerdict {
    if let Some(net) = a.on {
        if net != manifest.network.kind {
            return AssertionVerdict {
                expr: a.expr.clone(),
                status: VerdictStatus::Skipped,
                lhs: None,
                rhs: None,
                detail: format!(
                    "network clause '{}' does not match '{}'",
                    net.cli_name(),
                    manifest.network.kind.cli_name()
                ),
            };
        }
    }
    let lhs_res = eval_operand(cells, &a.lhs);
    let rhs_res = eval_operand(cells, &a.rhs);
    if let (&Ok(lhs), &Ok(rhs)) = (&lhs_res, &rhs_res) {
        let holds = a.op.holds(lhs, rhs);
        return AssertionVerdict {
            expr: a.expr.clone(),
            status: if holds {
                VerdictStatus::Pass
            } else {
                VerdictStatus::Fail
            },
            lhs: Some(lhs),
            rhs: Some(rhs),
            detail: format!(
                "{lhs:.1} {} {rhs:.1}{}",
                a.op.symbol(),
                if holds { "" } else { " is false" }
            ),
        };
    }
    let detail = [&lhs_res, &rhs_res]
        .into_iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect::<Vec<_>>()
        .join("; ");
    AssertionVerdict {
        expr: a.expr.clone(),
        status: VerdictStatus::Fail,
        lhs: lhs_res.ok(),
        rhs: rhs_res.ok(),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn sketch_of(plts: &[f64]) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for &x in plts {
            s.record(x);
        }
        s
    }

    fn cell(protocol: &str, seed: u64, plts: &[f64], rto_us: u64) -> CellMetrics {
        CellMetrics {
            protocol: protocol.into(),
            seed,
            plt: sketch_of(plts),
            visits: plts.len() as u64 + 1,
            completed: plts.len() as u64,
            stall_sums_us: [0, 0, 0, rto_us, 0, 0],
            stall_visits: plts.len() as u64,
            retransmissions: 4,
            counters: BTreeMap::from([("tcp.rto_fired".to_string(), 3u64)]),
            ..CellMetrics::default()
        }
    }

    fn manifest_with(assertions: &[&str]) -> Manifest {
        let mut m = Manifest::paper_baseline("t");
        m.assertions = assertions
            .iter()
            .map(|s| Assertion::parse(s).unwrap())
            .collect();
        m
    }

    #[test]
    fn pooling_merges_samples_across_cells() {
        let cells = vec![
            cell("http", 0, &[100.0, 200.0], 1_000),
            cell("http", 1, &[300.0, 400.0], 3_000),
            cell("spdy", 0, &[500.0], 10_000),
        ];
        // Pooled over both http cells: 4 samples, mean 250.
        assert_eq!(
            eval_metric(&cells, &["http".to_string()], "plt_mean_ms").unwrap(),
            250.0
        );
        // seed filter narrows to one cell.
        assert_eq!(
            eval_metric(
                &cells,
                &["http".to_string(), "seed1".to_string()],
                "plt_mean_ms"
            )
            .unwrap(),
            350.0
        );
        // rto_stall_ms pools sums and visit counts: (1000+3000)/1000/4 = 1.0.
        assert_eq!(
            eval_metric(&cells, &["http".to_string()], "rto_stall_ms").unwrap(),
            1.0
        );
        // counters sum across cells.
        assert_eq!(
            eval_metric(&cells, &[], "counter.tcp.rto_fired").unwrap(),
            9.0
        );
        assert_eq!(eval_metric(&cells, &[], "retransmissions").unwrap(), 12.0);
    }

    #[test]
    fn unmatched_filters_are_an_error() {
        let cells = vec![cell("http", 0, &[100.0], 0)];
        let e = eval_metric(&cells, &["spdy".to_string()], "plt_p50_ms").unwrap_err();
        assert!(e.contains("no cells match"), "{e}");
    }

    #[test]
    fn verdicts_pass_fail_and_skip() {
        let cells = vec![
            cell("http", 0, &[100.0], 1_000),
            cell("spdy", 0, &[200.0], 5_000),
        ];
        let m = manifest_with(&[
            "spdy.rto_stall_ms > http.rto_stall_ms on 3g",
            "plt_p50_ms < 90",
            "plt_p50_ms < 1 on lte",
        ]);
        let verdicts = evaluate(&m, &cells);
        assert_eq!(verdicts[0].status, VerdictStatus::Pass);
        assert_eq!(verdicts[0].lhs, Some(5.0));
        assert_eq!(verdicts[0].rhs, Some(1.0));
        assert_eq!(verdicts[1].status, VerdictStatus::Fail);
        assert!(
            verdicts[1].detail.contains("is false"),
            "{}",
            verdicts[1].detail
        );
        assert_eq!(verdicts[2].status, VerdictStatus::Skipped);
        assert!(verdicts[2].detail.contains("lte"), "{}", verdicts[2].detail);
    }

    #[test]
    fn missing_stall_samples_fail_with_reason() {
        let mut c = cell("http", 0, &[100.0], 0);
        c.stall_visits = 0;
        let m = manifest_with(&["http.rto_stall_ms < 10"]);
        let verdicts = evaluate(&m, &[c]);
        assert_eq!(verdicts[0].status, VerdictStatus::Fail);
        assert!(
            verdicts[0].detail.contains("transport"),
            "{}",
            verdicts[0].detail
        );
    }

    #[test]
    fn summary_value_has_the_pinned_keys() {
        let mut c = cell("http", 0, &[100.0], 2_000);
        c.critical_sums_us = [50_000, 0, 10_000, 30_000, 5_000, 2_000, 1_000, 1_500, 500];
        c.critical_visits = 1;
        let Value::Object(entries) = c.summary_value() else {
            panic!("summary is an object");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "protocol",
                "variant",
                "seed",
                "visits",
                "completed",
                "plt_p50_ms",
                "plt_p90_ms",
                "plt_mean_ms",
                "retransmissions",
                "timeouts",
                "connections_opened",
                "promotions",
                "total_bytes",
                "energy_mj",
                "promotion_stall_ms",
                "serialization_stall_ms",
                "queueing_stall_ms",
                "rto_stall_ms",
                "think_stall_ms",
                "other_stall_ms",
                "critical_parse_ms",
                "critical_conn_setup_ms",
                "critical_promotion_ms",
                "critical_rto_stall_ms",
                "critical_serialization_ms",
                "critical_queueing_ms",
                "critical_think_ms",
                "critical_wait_ms",
                "critical_receive_ms",
            ]
        );
        // Without critical-path samples the critical_* keys stay absent so
        // lifecycle-level runs keep the legacy schema.
        let c = cell("http", 0, &[100.0], 2_000);
        let Value::Object(entries) = c.summary_value() else {
            panic!("summary is an object");
        };
        assert!(entries.iter().all(|(k, _)| !k.starts_with("critical_")));
    }

    #[test]
    fn critical_metrics_pool_like_stall_metrics() {
        let mut a = cell("spdy", 0, &[100.0], 0);
        a.critical_sums_us[3] = 4_000;
        a.critical_visits = 1;
        let mut b = cell("spdy", 1, &[200.0], 0);
        b.critical_sums_us[3] = 2_000;
        b.critical_visits = 2;
        // Pooled mean over 3 visits: (4000+2000)/1000/3 = 2.0 ms.
        assert_eq!(
            eval_metric(&[a, b], &["spdy".to_string()], "critical_rto_stall_ms").unwrap(),
            2.0
        );
    }

    #[test]
    fn critical_metrics_without_samples_fail_with_reason() {
        let c = cell("http", 0, &[100.0], 0);
        let e = c.metric("critical_parse_ms").unwrap_err();
        assert!(e.contains("full-level tracing"), "{e}");
    }

    fn visit(plt_ms: f64, completed: bool, total_bytes: u64) -> VisitResult {
        VisitResult {
            site: 1,
            start: spdyier_sim::SimTime::ZERO,
            onload: None,
            plt_ms,
            completed,
            object_timings: Vec::new(),
            object_count: 0,
            total_bytes,
        }
    }

    #[test]
    fn fold_visit_streams_the_same_accumulator_as_batch() {
        let mut folded = CellMetrics::default();
        for v in [
            visit(120.0, true, 1_000),
            visit(60_000.0, false, 400),
            visit(340.5, true, 2_000),
        ] {
            folded.fold_visit(&v);
        }
        assert_eq!(folded.visits, 3);
        assert_eq!(folded.completed, 2);
        assert_eq!(folded.total_bytes, 3_400);
        assert_eq!(folded.plt.count(), 2, "censored visits contribute no PLT");
        assert_eq!(folded.plt.min(), 120.0);
        assert_eq!(folded.plt.max(), 340.5);
    }

    #[test]
    fn merge_reports_sketch_layout_mismatch_with_field_path() {
        let mut a = cell("http", 0, &[100.0], 0);
        let mut b = cell("http", 1, &[200.0], 0);
        b.plt = QuantileSketch::with_sub_bits(5);
        let e = a.merge(&b).unwrap_err();
        assert_eq!(e.path, "quantile_sketch.sub_bits");
        // eval_metric surfaces it instead of mismerging.
        let cells = vec![cell("http", 0, &[100.0], 0), b];
        let e = eval_metric(&cells, &[], "plt_mean_ms").unwrap_err();
        assert!(e.contains("sub_bits"), "{e}");
    }

    #[test]
    fn checkpoint_codec_round_trips_through_json_text() {
        let mut c = cell("spdy:20:late", 3, &[100.25, 5_432.1, 60_000.0], 9_000);
        c.critical_sums_us = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        c.critical_visits = 2;
        c.energy_mj = 1234.5678;
        c.variant = "rtt_reset".into();
        let text = serde_json::to_string(&c).unwrap();
        let decoded = CellMetrics::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(decoded, c, "encode → text → decode must be lossless");
        // Decode failures carry a field path.
        let e = CellMetrics::from_value(&Value::Object(vec![])).unwrap_err();
        assert!(e.contains("cell.protocol"), "{e}");
    }

    #[test]
    fn trace_dropped_reads_the_sink_counter() {
        let mut c = cell("http", 0, &[100.0], 0);
        assert_eq!(c.metric("trace_dropped").unwrap(), 0.0);
        c.counters.insert("trace.sink_dropped".into(), 7);
        assert_eq!(c.metric("trace_dropped").unwrap(), 7.0);
    }
}
