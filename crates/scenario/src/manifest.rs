//! The scenario manifest: one experiment, declared as data.
//!
//! A manifest is a JSON (or strict-subset YAML, see [`crate::yaml`])
//! document that names everything a run of the testbed depends on: the
//! access network, the workload, the protocol side(s), the §6 mitigation
//! knobs, an optional knob matrix, seeds, trace level, limits, and the
//! assertions the run must satisfy. Decoding is *strict*: unknown keys,
//! wrong types, and out-of-range values are one-line
//! [`ManifestError`]s naming the offending field — they map to the
//! scenario exit code 3 (config error), never to a half-configured run.
//!
//! The defaults of every optional section reproduce
//! [`ExperimentConfig::paper_3g`] exactly; a manifest that only names a
//! network and protocols runs at the paper's operating point, which is
//! what lets the legacy `paired`/`trace` subcommands be re-expressed as
//! committed manifests with byte-identical outputs.

use crate::assertions::Assertion;
use serde::{Serialize, Value};
use spdyier_core::{ExperimentConfig, NetworkSpec, ProtocolMode};
use spdyier_sim::{DetRng, SimDuration};
use spdyier_tcp::CcAlgorithm;
use spdyier_trace::TraceLevel;
use spdyier_workload::{test_page, VisitSchedule};

/// Current manifest schema version; decoding rejects any other.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// A one-line manifest decoding/validation error. The message always
/// names the offending field path (`scenario error at workload.objects:
/// expected an unsigned integer`).
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestError(pub String);

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ManifestError {}

fn err(path: &str, msg: impl std::fmt::Display) -> ManifestError {
    ManifestError(format!("scenario error at {path}: {msg}"))
}

type DResult<T> = Result<T, ManifestError>;

// ---------------------------------------------------------------------
// Decode helpers over the serde `Value` tree
// ---------------------------------------------------------------------

fn as_object<'a>(v: &'a Value, path: &str) -> DResult<&'a [(String, Value)]> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(err(
            path,
            format!("expected an object, got {}", kind_of(other)),
        )),
    }
}

fn kind_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::I64(_) | Value::U64(_) | Value::F64(_) => "a number",
        Value::Str(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

/// Reject unknown and duplicate keys — the strictness that turns typos
/// into exit-code-3 diagnostics instead of silently-defaulted runs.
fn check_keys(entries: &[(String, Value)], allowed: &[&str], path: &str) -> DResult<()> {
    for (i, (key, _)) in entries.iter().enumerate() {
        if !allowed.contains(&key.as_str()) {
            return Err(err(
                &format!("{path}.{key}"),
                format!("unknown field (expected one of: {})", allowed.join(", ")),
            ));
        }
        if entries[..i].iter().any(|(prev, _)| prev == key) {
            return Err(err(&format!("{path}.{key}"), "duplicate field"));
        }
    }
    Ok(())
}

fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(v: &Value, path: &str) -> DResult<u64> {
    match v {
        Value::U64(n) => Ok(*n),
        other => Err(err(
            path,
            format!("expected an unsigned integer, got {}", kind_of(other)),
        )),
    }
}

fn as_bool(v: &Value, path: &str) -> DResult<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(err(
            path,
            format!("expected a boolean, got {}", kind_of(other)),
        )),
    }
}

fn as_str<'a>(v: &'a Value, path: &str) -> DResult<&'a str> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(err(
            path,
            format!("expected a string, got {}", kind_of(other)),
        )),
    }
}

// ---------------------------------------------------------------------
// Protocol specs
// ---------------------------------------------------------------------

/// One protocol side under test, carried as the compact manifest string
/// (`"http"`, `"spdy"`, `"spdy:20"`, `"spdy:20:late"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// The resolved testbed protocol mode.
    pub mode: ProtocolMode,
}

impl ProtocolSpec {
    /// Parse the compact form.
    pub fn parse(s: &str) -> Result<ProtocolSpec, String> {
        let bad = || {
            format!(
                "unknown protocol {s:?} (expected http, spdy, spdy:<connections>, or spdy:<connections>:late)"
            )
        };
        let mode = match s {
            "http" => ProtocolMode::Http,
            "spdy" => ProtocolMode::spdy(),
            other => {
                let mut parts = other.split(':');
                if parts.next() != Some("spdy") {
                    return Err(bad());
                }
                let connections: usize = parts
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(bad)?;
                let late_binding = match parts.next() {
                    None => false,
                    Some("late") => true,
                    Some(_) => return Err(bad()),
                };
                if parts.next().is_some() {
                    return Err(bad());
                }
                ProtocolMode::Spdy {
                    connections,
                    late_binding,
                }
            }
        };
        Ok(ProtocolSpec { mode })
    }

    /// Render back to the compact form ([`Self::parse`] inverts it).
    pub fn compact(&self) -> String {
        match self.mode {
            ProtocolMode::Http => "http".to_string(),
            ProtocolMode::Spdy {
                connections: 1,
                late_binding: false,
            } => "spdy".to_string(),
            ProtocolMode::Spdy {
                connections,
                late_binding: false,
            } => format!("spdy:{connections}"),
            ProtocolMode::Spdy {
                connections,
                late_binding: true,
            } => format!("spdy:{connections}:late"),
        }
    }
}

// ---------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------

/// The `network` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkSection {
    /// Which access network (`"3g"`, `"3g-pinned"`, `"lte"`, `"wifi"`).
    pub kind: NetworkSpec,
    /// Override the radio's idle→active promotion delay, ms.
    pub rrc_promotion_ms: Option<u64>,
}

/// The `workload` section: what pages the schedule visits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// The paper methodology: all 20 Table 1 sites in a seeded random
    /// order, 60 s apart (the schedule is a function of the seed alone).
    Table1,
    /// One Table 1 site, visited `visits` times, `interval_s` apart.
    Site {
        /// 1-based Table 1 row.
        site: u32,
        /// Number of visits.
        visits: u32,
        /// Seconds between visit starts.
        interval_s: u64,
    },
    /// A §5.2-style synthetic page of `objects` equal-size images.
    Synthetic {
        /// Images on the page.
        objects: u32,
        /// Bytes per image.
        object_bytes: u64,
        /// All objects on one domain (vs one domain per object).
        same_domain: bool,
        /// Number of visits.
        visits: u32,
        /// Seconds between visit starts.
        interval_s: u64,
    },
}

/// The `mitigations` section: every §6 knob, defaulted to the paper's
/// baseline (i.e. [`ExperimentConfig::paper_3g`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Mitigations {
    /// §6.2.1: reset the RTT estimate across idle periods.
    pub rtt_reset_after_idle: bool,
    /// RFC 2861 `tcp_slow_start_after_idle` (§6.2.2).
    pub slow_start_after_idle: bool,
    /// Destination metrics cache (§6.2.4).
    pub metrics_cache: bool,
    /// Fig. 14 keepalive ping interval, seconds (absent = off).
    pub keepalive_ping_s: Option<f64>,
    /// Outstanding requests per HTTP connection (1 = paper).
    pub http_pipelining: u64,
    /// Close idle HTTP connections after this many seconds
    /// (JSON `null` disables the reaper; absent = the 10 s default).
    pub http_idle_close_s: Option<f64>,
    /// Congestion control: `"cubic"` (paper testbed) or `"reno"`.
    pub cc: CcAlgorithm,
}

impl Default for Mitigations {
    fn default() -> Self {
        Mitigations {
            rtt_reset_after_idle: false,
            slow_start_after_idle: true,
            metrics_cache: true,
            keepalive_ping_s: None,
            http_pipelining: 1,
            http_idle_close_s: Some(10.0),
            cc: CcAlgorithm::Cubic,
        }
    }
}

/// One matrix knob value: a JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum KnobValue {
    /// Boolean knob setting.
    Bool(bool),
    /// Numeric knob setting.
    Number(f64),
    /// String knob setting (e.g. a `cc` algorithm name).
    Str(String),
    /// Null — disables an optional knob (e.g. `http_idle_close_s`).
    Null,
}

impl KnobValue {
    /// Render for variant names (`slow_start_after_idle=false`).
    pub fn render(&self) -> String {
        match self {
            KnobValue::Bool(b) => b.to_string(),
            KnobValue::Number(x) if x.fract() == 0.0 => format!("{}", *x as i64),
            KnobValue::Number(x) => format!("{x}"),
            KnobValue::Str(s) => s.clone(),
            KnobValue::Null => "off".to_string(),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            KnobValue::Bool(b) => Value::Bool(*b),
            KnobValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Value::U64(*x as u64),
            KnobValue::Number(x) => Value::F64(*x),
            KnobValue::Str(s) => Value::Str(s.clone()),
            KnobValue::Null => Value::Null,
        }
    }

    fn decode(v: &Value, path: &str) -> DResult<KnobValue> {
        Ok(match v {
            Value::Null => KnobValue::Null,
            Value::Bool(b) => KnobValue::Bool(*b),
            Value::U64(n) => KnobValue::Number(*n as f64),
            Value::I64(n) => KnobValue::Number(*n as f64),
            Value::F64(x) => KnobValue::Number(*x),
            Value::Str(s) => KnobValue::Str(s.clone()),
            other => {
                return Err(err(
                    path,
                    format!("expected a scalar, got {}", kind_of(other)),
                ))
            }
        })
    }
}

/// The `seeds` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seeds {
    /// First seed.
    pub base: u64,
    /// Number of seeds (each seed runs every protocol × variant cell).
    pub count: u64,
}

impl Default for Seeds {
    fn default() -> Self {
        Seeds { base: 0, count: 1 }
    }
}

/// The `limits` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Per-run dispatched-event budget; exhaustion is scenario exit 2.
    pub event_budget: u64,
    /// Per-visit deadline, seconds (censored PLT past it).
    pub visit_timeout_s: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            event_budget: 200_000_000,
            visit_timeout_s: 60,
        }
    }
}

/// The `outputs` section: which artifacts the runner writes besides
/// `result.json` and `junit.xml`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Outputs {
    /// Write the legacy paired-sweep JSONL dump (`paired_<net>.jsonl`
    /// plus its schema-versioned `.meta.json` sidecar).
    pub paired_dump: bool,
    /// Write per-cell trace artifacts (`trace_*.jsonl`, waterfall,
    /// stall table + sidecar, metrics registry).
    pub trace_artifacts: bool,
}

// ---------------------------------------------------------------------
// The manifest
// ---------------------------------------------------------------------

/// A fully decoded scenario manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest schema version (currently always 1).
    pub schema_version: u64,
    /// Scenario name (used in artifacts and JUnit suite names).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Access network.
    pub network: NetworkSection,
    /// What pages are loaded.
    pub workload: Workload,
    /// Protocol sides, in run order within a seed.
    pub protocols: Vec<ProtocolSpec>,
    /// §6 mitigation knobs (baseline defaults).
    pub mitigations: Mitigations,
    /// Knob matrix: each entry is a knob name and its value list; the
    /// cross product (insertion order) defines the variants.
    pub matrix: Vec<(String, Vec<KnobValue>)>,
    /// Seed range.
    pub seeds: Seeds,
    /// Flight-recorder level for every cell.
    pub trace: TraceLevel,
    /// Record full per-connection TCP traces (cwnd/ssthresh) — the
    /// legacy paired dump serializes them, so its manifest sets this.
    pub tcp_traces: bool,
    /// Run limits.
    pub limits: Limits,
    /// Assertions evaluated against the pooled cell metrics.
    pub assertions: Vec<Assertion>,
    /// Extra artifact toggles.
    pub outputs: Outputs,
}

/// One resolved run cell: a (variant, seed, protocol) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Index in execution order.
    pub index: usize,
    /// Variant name (`""` when the matrix is empty, else
    /// `knob=value+knob=value` in matrix order).
    pub variant: String,
    /// Protocol side.
    pub protocol: ProtocolSpec,
    /// Root seed for this cell.
    pub seed: u64,
    /// Mitigation knobs after applying the variant's overrides.
    pub settings: Mitigations,
    /// RRC promotion override after variant overrides, ms.
    pub rrc_promotion_ms: Option<u64>,
}

/// The shared Table 1 schedule for seed `s` — the single source of truth
/// for the paper's alternating methodology (HTTP and SPDY see the same
/// order). `spdyier-experiments` delegates its `schedule_for_seed` here.
pub fn table1_schedule_for_seed(s: u64) -> VisitSchedule {
    let mut rng = DetRng::new(0x5C_u64 ^ (s.wrapping_mul(0x9E37_79B9))).fork("schedule");
    VisitSchedule::paper_default(&mut rng)
}

/// Matrix knobs and the type each accepts.
const MATRIX_KNOBS: [&str; 8] = [
    "rtt_reset_after_idle",
    "slow_start_after_idle",
    "metrics_cache",
    "keepalive_ping_s",
    "http_pipelining",
    "http_idle_close_s",
    "cc",
    "rrc_promotion_ms",
];

fn apply_knob(
    settings: &mut Mitigations,
    rrc_promotion_ms: &mut Option<u64>,
    knob: &str,
    value: &KnobValue,
    path: &str,
) -> DResult<()> {
    let type_err = |want: &str| err(path, format!("knob {knob:?} takes {want}"));
    match knob {
        "rtt_reset_after_idle" | "slow_start_after_idle" | "metrics_cache" => {
            let KnobValue::Bool(b) = value else {
                return Err(type_err("a boolean"));
            };
            match knob {
                "rtt_reset_after_idle" => settings.rtt_reset_after_idle = *b,
                "slow_start_after_idle" => settings.slow_start_after_idle = *b,
                _ => settings.metrics_cache = *b,
            }
        }
        "keepalive_ping_s" => match value {
            KnobValue::Null => settings.keepalive_ping_s = None,
            KnobValue::Number(x) if *x > 0.0 => settings.keepalive_ping_s = Some(*x),
            _ => return Err(type_err("a positive number of seconds or null")),
        },
        "http_pipelining" => match value {
            KnobValue::Number(x) if *x >= 1.0 && x.fract() == 0.0 => {
                settings.http_pipelining = *x as u64;
            }
            _ => return Err(type_err("an integer >= 1")),
        },
        "http_idle_close_s" => match value {
            KnobValue::Null => settings.http_idle_close_s = None,
            KnobValue::Number(x) if *x > 0.0 => settings.http_idle_close_s = Some(*x),
            _ => return Err(type_err("a positive number of seconds or null")),
        },
        "cc" => match value {
            KnobValue::Str(s) if s == "cubic" => settings.cc = CcAlgorithm::Cubic,
            KnobValue::Str(s) if s == "reno" => settings.cc = CcAlgorithm::Reno,
            _ => return Err(type_err("\"cubic\" or \"reno\"")),
        },
        "rrc_promotion_ms" => match value {
            KnobValue::Null => *rrc_promotion_ms = None,
            KnobValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 => {
                *rrc_promotion_ms = Some(*x as u64);
            }
            _ => return Err(type_err("a non-negative integer of milliseconds or null")),
        },
        _ => {
            return Err(err(
                path,
                format!(
                    "unknown knob {knob:?} (expected one of: {})",
                    MATRIX_KNOBS.join(", ")
                ),
            ))
        }
    }
    Ok(())
}

impl Manifest {
    /// A minimal manifest at the paper's 3G operating point: Table 1
    /// workload, paired HTTP/SPDY, baseline mitigations, one seed.
    pub fn paper_baseline(name: &str) -> Manifest {
        Manifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            name: name.to_string(),
            description: String::new(),
            network: NetworkSection {
                kind: NetworkSpec::Umts3G,
                rrc_promotion_ms: None,
            },
            workload: Workload::Table1,
            protocols: vec![
                ProtocolSpec::parse("http").expect("http parses"),
                ProtocolSpec::parse("spdy").expect("spdy parses"),
            ],
            mitigations: Mitigations::default(),
            matrix: Vec::new(),
            seeds: Seeds::default(),
            trace: TraceLevel::Off,
            tcp_traces: false,
            limits: Limits::default(),
            assertions: Vec::new(),
            outputs: Outputs::default(),
        }
    }

    /// Decode a manifest from JSON text.
    pub fn from_json(text: &str) -> DResult<Manifest> {
        let value = serde_json::from_str(text)
            .map_err(|e| ManifestError(format!("scenario error: invalid JSON: {e}")))?;
        Manifest::decode(&value)
    }

    /// Decode a manifest from strict-subset YAML text (see [`crate::yaml`]).
    pub fn from_yaml(text: &str) -> DResult<Manifest> {
        let value = crate::yaml::parse(text)
            .map_err(|e| ManifestError(format!("scenario error: invalid YAML: {e}")))?;
        Manifest::decode(&value)
    }

    /// Decode a manifest from a file, dispatching on the `.yaml`/`.yml`
    /// extension (anything else is treated as JSON).
    pub fn from_file(path: &std::path::Path) -> DResult<Manifest> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            ManifestError(format!(
                "scenario error: cannot read {}: {e}",
                path.display()
            ))
        })?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("yaml") | Some("yml") => Manifest::from_yaml(&text),
            _ => Manifest::from_json(&text),
        }
    }

    /// Decode a manifest from a parsed `Value` tree.
    pub fn decode(v: &Value) -> DResult<Manifest> {
        let top = as_object(v, "manifest")?;
        check_keys(
            top,
            &[
                "schema_version",
                "name",
                "description",
                "network",
                "workload",
                "protocols",
                "mitigations",
                "matrix",
                "seeds",
                "trace",
                "tcp_traces",
                "limits",
                "assertions",
                "outputs",
            ],
            "manifest",
        )?;

        let schema_version = as_u64(
            get(top, "schema_version")
                .ok_or_else(|| err("manifest.schema_version", "missing required field"))?,
            "manifest.schema_version",
        )?;
        if schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(err(
                "manifest.schema_version",
                format!("unsupported version {schema_version} (this build speaks {MANIFEST_SCHEMA_VERSION})"),
            ));
        }

        let name = as_str(
            get(top, "name").ok_or_else(|| err("manifest.name", "missing required field"))?,
            "manifest.name",
        )?
        .to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(err(
                "manifest.name",
                "must be a non-empty [A-Za-z0-9_-]+ identifier (it names artifact files)",
            ));
        }

        let description = match get(top, "description") {
            Some(v) => as_str(v, "manifest.description")?.to_string(),
            None => String::new(),
        };

        let network = Self::decode_network(
            get(top, "network").ok_or_else(|| err("manifest.network", "missing required field"))?,
        )?;

        let workload = match get(top, "workload") {
            Some(v) => Self::decode_workload(v)?,
            None => Workload::Table1,
        };

        let protocols_v = get(top, "protocols")
            .ok_or_else(|| err("manifest.protocols", "missing required field"))?;
        let Value::Array(items) = protocols_v else {
            return Err(err(
                "manifest.protocols",
                "expected an array of protocol strings",
            ));
        };
        if items.is_empty() {
            return Err(err(
                "manifest.protocols",
                "at least one protocol is required",
            ));
        }
        let mut protocols = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let path = format!("manifest.protocols[{i}]");
            let s = as_str(item, &path)?;
            protocols.push(ProtocolSpec::parse(s).map_err(|e| err(&path, e))?);
        }

        let mitigations = match get(top, "mitigations") {
            Some(v) => Self::decode_mitigations(v)?,
            None => Mitigations::default(),
        };

        let matrix = match get(top, "matrix") {
            Some(v) => Self::decode_matrix(v, &mitigations, &network)?,
            None => Vec::new(),
        };

        let seeds = match get(top, "seeds") {
            Some(v) => {
                let entries = as_object(v, "manifest.seeds")?;
                check_keys(entries, &["base", "count"], "manifest.seeds")?;
                let base = match get(entries, "base") {
                    Some(v) => as_u64(v, "manifest.seeds.base")?,
                    None => 0,
                };
                let count = match get(entries, "count") {
                    Some(v) => as_u64(v, "manifest.seeds.count")?,
                    None => 1,
                };
                if count == 0 {
                    return Err(err("manifest.seeds.count", "must be at least 1"));
                }
                Seeds { base, count }
            }
            None => Seeds::default(),
        };

        let trace = match get(top, "trace") {
            Some(v) => {
                let s = as_str(v, "manifest.trace")?;
                TraceLevel::parse(s).ok_or_else(|| {
                    err(
                        "manifest.trace",
                        format!(
                            "unknown level {s:?} (expected off, lifecycle, transport, or full)"
                        ),
                    )
                })?
            }
            None => TraceLevel::Off,
        };

        let tcp_traces = match get(top, "tcp_traces") {
            Some(v) => as_bool(v, "manifest.tcp_traces")?,
            None => false,
        };

        let limits = match get(top, "limits") {
            Some(v) => {
                let entries = as_object(v, "manifest.limits")?;
                check_keys(
                    entries,
                    &["event_budget", "visit_timeout_s"],
                    "manifest.limits",
                )?;
                let mut limits = Limits::default();
                if let Some(v) = get(entries, "event_budget") {
                    limits.event_budget = as_u64(v, "manifest.limits.event_budget")?;
                    if limits.event_budget == 0 {
                        return Err(err("manifest.limits.event_budget", "must be positive"));
                    }
                }
                if let Some(v) = get(entries, "visit_timeout_s") {
                    limits.visit_timeout_s = as_u64(v, "manifest.limits.visit_timeout_s")?;
                    if limits.visit_timeout_s == 0 {
                        return Err(err("manifest.limits.visit_timeout_s", "must be positive"));
                    }
                }
                limits
            }
            None => Limits::default(),
        };

        let assertions = match get(top, "assertions") {
            Some(v) => {
                let Value::Array(items) = v else {
                    return Err(err(
                        "manifest.assertions",
                        "expected an array of assertion strings",
                    ));
                };
                let mut assertions = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("manifest.assertions[{i}]");
                    let s = as_str(item, &path)?;
                    assertions.push(Assertion::parse(s).map_err(|e| err(&path, e))?);
                }
                assertions
            }
            None => Vec::new(),
        };

        let outputs = match get(top, "outputs") {
            Some(v) => {
                let entries = as_object(v, "manifest.outputs")?;
                check_keys(
                    entries,
                    &["paired_dump", "trace_artifacts"],
                    "manifest.outputs",
                )?;
                Outputs {
                    paired_dump: match get(entries, "paired_dump") {
                        Some(v) => as_bool(v, "manifest.outputs.paired_dump")?,
                        None => false,
                    },
                    trace_artifacts: match get(entries, "trace_artifacts") {
                        Some(v) => as_bool(v, "manifest.outputs.trace_artifacts")?,
                        None => false,
                    },
                }
            }
            None => Outputs::default(),
        };

        let manifest = Manifest {
            schema_version,
            name,
            description,
            network,
            workload,
            protocols,
            mitigations,
            matrix,
            seeds,
            trace,
            tcp_traces,
            limits,
            assertions,
            outputs,
        };
        if manifest.outputs.paired_dump && !manifest.is_paired() {
            return Err(err(
                "manifest.outputs.paired_dump",
                "requires protocols [\"http\", \"spdy\"] and an empty matrix (the legacy dump format is strictly paired)",
            ));
        }
        Ok(manifest)
    }

    fn decode_network(v: &Value) -> DResult<NetworkSection> {
        let entries = as_object(v, "manifest.network")?;
        check_keys(entries, &["kind", "rrc_promotion_ms"], "manifest.network")?;
        let kind_s = as_str(
            get(entries, "kind")
                .ok_or_else(|| err("manifest.network.kind", "missing required field"))?,
            "manifest.network.kind",
        )?;
        let kind: NetworkSpec = kind_s
            .parse()
            .map_err(|e| err("manifest.network.kind", e))?;
        let rrc_promotion_ms = match get(entries, "rrc_promotion_ms") {
            Some(Value::Null) | None => None,
            Some(v) => Some(as_u64(v, "manifest.network.rrc_promotion_ms")?),
        };
        Ok(NetworkSection {
            kind,
            rrc_promotion_ms,
        })
    }

    fn decode_workload(v: &Value) -> DResult<Workload> {
        let entries = as_object(v, "manifest.workload")?;
        let kind = as_str(
            get(entries, "kind")
                .ok_or_else(|| err("manifest.workload.kind", "missing required field"))?,
            "manifest.workload.kind",
        )?;
        match kind {
            "table1" => {
                check_keys(entries, &["kind"], "manifest.workload")?;
                Ok(Workload::Table1)
            }
            "site" => {
                check_keys(
                    entries,
                    &["kind", "site", "visits", "interval_s"],
                    "manifest.workload",
                )?;
                let site = as_u64(
                    get(entries, "site")
                        .ok_or_else(|| err("manifest.workload.site", "missing required field"))?,
                    "manifest.workload.site",
                )?;
                if !(1..=20).contains(&site) {
                    return Err(err(
                        "manifest.workload.site",
                        "must be a 1-based Table 1 row (1..=20)",
                    ));
                }
                let visits = match get(entries, "visits") {
                    Some(v) => as_u64(v, "manifest.workload.visits")?,
                    None => 1,
                };
                if visits == 0 {
                    return Err(err("manifest.workload.visits", "must be at least 1"));
                }
                let interval_s = match get(entries, "interval_s") {
                    Some(v) => as_u64(v, "manifest.workload.interval_s")?,
                    None => 60,
                };
                Ok(Workload::Site {
                    site: site as u32,
                    visits: visits as u32,
                    interval_s,
                })
            }
            "synthetic" => {
                check_keys(
                    entries,
                    &[
                        "kind",
                        "objects",
                        "object_bytes",
                        "same_domain",
                        "visits",
                        "interval_s",
                    ],
                    "manifest.workload",
                )?;
                let objects = as_u64(
                    get(entries, "objects").ok_or_else(|| {
                        err("manifest.workload.objects", "missing required field")
                    })?,
                    "manifest.workload.objects",
                )?;
                if objects == 0 {
                    return Err(err("manifest.workload.objects", "must be at least 1"));
                }
                let object_bytes = match get(entries, "object_bytes") {
                    Some(v) => as_u64(v, "manifest.workload.object_bytes")?,
                    None => 2_500,
                };
                let same_domain = match get(entries, "same_domain") {
                    Some(v) => as_bool(v, "manifest.workload.same_domain")?,
                    None => false,
                };
                let visits = match get(entries, "visits") {
                    Some(v) => as_u64(v, "manifest.workload.visits")?,
                    None => 1,
                };
                if visits == 0 {
                    return Err(err("manifest.workload.visits", "must be at least 1"));
                }
                let interval_s = match get(entries, "interval_s") {
                    Some(v) => as_u64(v, "manifest.workload.interval_s")?,
                    None => 60,
                };
                Ok(Workload::Synthetic {
                    objects: objects as u32,
                    object_bytes,
                    same_domain,
                    visits: visits as u32,
                    interval_s,
                })
            }
            other => Err(err(
                "manifest.workload.kind",
                format!("unknown workload {other:?} (expected table1, site, or synthetic)"),
            )),
        }
    }

    fn decode_mitigations(v: &Value) -> DResult<Mitigations> {
        let entries = as_object(v, "manifest.mitigations")?;
        check_keys(
            entries,
            &[
                "rtt_reset_after_idle",
                "slow_start_after_idle",
                "metrics_cache",
                "keepalive_ping_s",
                "http_pipelining",
                "http_idle_close_s",
                "cc",
            ],
            "manifest.mitigations",
        )?;
        let mut m = Mitigations::default();
        let mut unused_rrc = None;
        for (key, value) in entries {
            let path = format!("manifest.mitigations.{key}");
            let knob = KnobValue::decode(value, &path)?;
            apply_knob(&mut m, &mut unused_rrc, key, &knob, &path)?;
        }
        Ok(m)
    }

    fn decode_matrix(
        v: &Value,
        base: &Mitigations,
        network: &NetworkSection,
    ) -> DResult<Vec<(String, Vec<KnobValue>)>> {
        let entries = as_object(v, "manifest.matrix")?;
        let mut matrix = Vec::with_capacity(entries.len());
        for (i, (knob, values)) in entries.iter().enumerate() {
            let path = format!("manifest.matrix.{knob}");
            if entries[..i].iter().any(|(prev, _)| prev == knob) {
                return Err(err(&path, "duplicate knob"));
            }
            let Value::Array(items) = values else {
                return Err(err(&path, "expected an array of knob values"));
            };
            if items.is_empty() {
                return Err(err(&path, "needs at least one value"));
            }
            let mut decoded = Vec::with_capacity(items.len());
            for (j, item) in items.iter().enumerate() {
                let vpath = format!("{path}[{j}]");
                let value = KnobValue::decode(item, &vpath)?;
                // Type-check eagerly on a scratch copy so bad matrix
                // values are exit-3 config errors, not mid-run failures.
                let mut scratch = base.clone();
                let mut scratch_rrc = network.rrc_promotion_ms;
                apply_knob(&mut scratch, &mut scratch_rrc, knob, &value, &vpath)?;
                decoded.push(value);
            }
            matrix.push((knob.clone(), decoded));
        }
        Ok(matrix)
    }

    /// Whether this is a strict legacy pairing: exactly `[http, spdy]`
    /// with no matrix (the shape `paired_runs` and the dump format assume).
    pub fn is_paired(&self) -> bool {
        self.matrix.is_empty()
            && self.protocols.len() == 2
            && self.protocols[0].mode == ProtocolMode::Http
            && self.protocols[1].mode == ProtocolMode::spdy()
    }

    /// Matrix variants in cross-product order. An empty matrix yields one
    /// unnamed variant with no overrides.
    pub fn variants(&self) -> Vec<(String, Vec<(String, KnobValue)>)> {
        let mut variants: Vec<(String, Vec<(String, KnobValue)>)> =
            vec![(String::new(), Vec::new())];
        for (knob, values) in &self.matrix {
            let mut next = Vec::with_capacity(variants.len() * values.len());
            for (name, overrides) in &variants {
                for value in values {
                    let part = format!("{knob}={}", value.render());
                    let name = if name.is_empty() {
                        part
                    } else {
                        format!("{name}+{part}")
                    };
                    let mut overrides = overrides.clone();
                    overrides.push((knob.clone(), value.clone()));
                    next.push((name, overrides));
                }
            }
            variants = next;
        }
        variants
    }

    /// All run cells in execution order: variant-outer, then seed, then
    /// protocol — so a paired manifest's cells interleave exactly like the
    /// legacy dump (HTTP line then SPDY line per seed).
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (variant, overrides) in self.variants() {
            let mut settings = self.mitigations.clone();
            let mut rrc = self.network.rrc_promotion_ms;
            for (knob, value) in &overrides {
                apply_knob(&mut settings, &mut rrc, knob, value, "manifest.matrix")
                    .expect("matrix values were type-checked at decode");
            }
            for seed in self.seeds.base..self.seeds.base + self.seeds.count {
                for &protocol in &self.protocols {
                    cells.push(Cell {
                        index: cells.len(),
                        variant: variant.clone(),
                        protocol,
                        seed,
                        settings: settings.clone(),
                        rrc_promotion_ms: rrc,
                    });
                }
            }
        }
        cells
    }

    /// The trace level the runner actually uses: the declared level,
    /// raised to whatever the assertions demand — `Transport` for stall
    /// attribution, `Full` for critical-path metrics, `Lifecycle` for
    /// `trace_dropped` / counter passthroughs (the flight recorder is
    /// passive, so raising it never perturbs the simulation — the
    /// determinism suite pins that).
    pub fn effective_trace(&self) -> TraceLevel {
        let needed = self
            .assertions
            .iter()
            .map(|a| a.required_trace())
            .max()
            .unwrap_or(TraceLevel::Off);
        self.trace.max(needed)
    }

    /// Render the manifest back to its canonical `Value` tree
    /// ([`Manifest::decode`] inverts it — the round-trip property the
    /// proptest suite pins).
    pub fn to_value(&self) -> Value {
        let mut top: Vec<(String, Value)> = Vec::new();
        top.push(("schema_version".into(), Value::U64(self.schema_version)));
        top.push(("name".into(), Value::Str(self.name.clone())));
        if !self.description.is_empty() {
            top.push(("description".into(), Value::Str(self.description.clone())));
        }
        let mut network: Vec<(String, Value)> = Vec::new();
        network.push((
            "kind".into(),
            Value::Str(self.network.kind.cli_name().into()),
        ));
        if let Some(ms) = self.network.rrc_promotion_ms {
            network.push(("rrc_promotion_ms".into(), Value::U64(ms)));
        }
        top.push(("network".into(), Value::Object(network)));
        match &self.workload {
            Workload::Table1 => {
                top.push((
                    "workload".into(),
                    Value::Object(vec![("kind".into(), Value::Str("table1".into()))]),
                ));
            }
            Workload::Site {
                site,
                visits,
                interval_s,
            } => {
                top.push((
                    "workload".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::Str("site".into())),
                        ("site".into(), Value::U64(u64::from(*site))),
                        ("visits".into(), Value::U64(u64::from(*visits))),
                        ("interval_s".into(), Value::U64(*interval_s)),
                    ]),
                ));
            }
            Workload::Synthetic {
                objects,
                object_bytes,
                same_domain,
                visits,
                interval_s,
            } => {
                top.push((
                    "workload".into(),
                    Value::Object(vec![
                        ("kind".into(), Value::Str("synthetic".into())),
                        ("objects".into(), Value::U64(u64::from(*objects))),
                        ("object_bytes".into(), Value::U64(*object_bytes)),
                        ("same_domain".into(), Value::Bool(*same_domain)),
                        ("visits".into(), Value::U64(u64::from(*visits))),
                        ("interval_s".into(), Value::U64(*interval_s)),
                    ]),
                ));
            }
        }
        top.push((
            "protocols".into(),
            Value::Array(
                self.protocols
                    .iter()
                    .map(|p| Value::Str(p.compact()))
                    .collect(),
            ),
        ));
        let m = &self.mitigations;
        let d = Mitigations::default();
        let mut mit: Vec<(String, Value)> = Vec::new();
        if m.rtt_reset_after_idle != d.rtt_reset_after_idle {
            mit.push((
                "rtt_reset_after_idle".into(),
                Value::Bool(m.rtt_reset_after_idle),
            ));
        }
        if m.slow_start_after_idle != d.slow_start_after_idle {
            mit.push((
                "slow_start_after_idle".into(),
                Value::Bool(m.slow_start_after_idle),
            ));
        }
        if m.metrics_cache != d.metrics_cache {
            mit.push(("metrics_cache".into(), Value::Bool(m.metrics_cache)));
        }
        if let Some(s) = m.keepalive_ping_s {
            mit.push(("keepalive_ping_s".into(), KnobValue::Number(s).to_value()));
        }
        if m.http_pipelining != d.http_pipelining {
            mit.push(("http_pipelining".into(), Value::U64(m.http_pipelining)));
        }
        if m.http_idle_close_s != d.http_idle_close_s {
            mit.push((
                "http_idle_close_s".into(),
                match m.http_idle_close_s {
                    Some(s) => KnobValue::Number(s).to_value(),
                    None => Value::Null,
                },
            ));
        }
        if m.cc != d.cc {
            mit.push(("cc".into(), Value::Str("reno".into())));
        }
        if !mit.is_empty() {
            top.push(("mitigations".into(), Value::Object(mit)));
        }
        if !self.matrix.is_empty() {
            top.push((
                "matrix".into(),
                Value::Object(
                    self.matrix
                        .iter()
                        .map(|(knob, values)| {
                            (
                                knob.clone(),
                                Value::Array(values.iter().map(KnobValue::to_value).collect()),
                            )
                        })
                        .collect(),
                ),
            ));
        }
        if self.seeds != Seeds::default() {
            top.push((
                "seeds".into(),
                Value::Object(vec![
                    ("base".into(), Value::U64(self.seeds.base)),
                    ("count".into(), Value::U64(self.seeds.count)),
                ]),
            ));
        }
        if self.trace != TraceLevel::Off {
            let name = match self.trace {
                TraceLevel::Off => "off",
                TraceLevel::Lifecycle => "lifecycle",
                TraceLevel::Transport => "transport",
                TraceLevel::Full => "full",
            };
            top.push(("trace".into(), Value::Str(name.into())));
        }
        if self.tcp_traces {
            top.push(("tcp_traces".into(), Value::Bool(true)));
        }
        if self.limits != Limits::default() {
            top.push((
                "limits".into(),
                Value::Object(vec![
                    ("event_budget".into(), Value::U64(self.limits.event_budget)),
                    (
                        "visit_timeout_s".into(),
                        Value::U64(self.limits.visit_timeout_s),
                    ),
                ]),
            ));
        }
        if !self.assertions.is_empty() {
            top.push((
                "assertions".into(),
                Value::Array(
                    self.assertions
                        .iter()
                        .map(|a| Value::Str(a.expr.clone()))
                        .collect(),
                ),
            ));
        }
        if self.outputs != Outputs::default() {
            let mut out: Vec<(String, Value)> = Vec::new();
            if self.outputs.paired_dump {
                out.push(("paired_dump".into(), Value::Bool(true)));
            }
            if self.outputs.trace_artifacts {
                out.push(("trace_artifacts".into(), Value::Bool(true)));
            }
            top.push(("outputs".into(), Value::Object(out)));
        }
        Value::Object(top)
    }

    /// Render as pretty JSON (the committed `scenarios/*.json` format).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&SerializeValue(self.to_value()))
            .expect("manifest serializes");
        s.push('\n');
        s
    }
}

/// Newtype bridging an already-built `Value` into the serialize-only
/// vendored serde model.
struct SerializeValue(Value);

impl Serialize for SerializeValue {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl Cell {
    /// Build the full [`ExperimentConfig`] for this cell. Defaults match
    /// [`ExperimentConfig::paper_3g`] exactly, so a baseline manifest's
    /// cells are byte-identical to the legacy subcommands' runs.
    pub fn build_config(&self, manifest: &Manifest) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_3g(self.protocol.mode, self.seed)
            .with_network(manifest.network.kind);
        match &manifest.workload {
            Workload::Table1 => {
                cfg = cfg.with_schedule(table1_schedule_for_seed(self.seed));
            }
            Workload::Site {
                site,
                visits,
                interval_s,
            } => {
                cfg = cfg.with_schedule(VisitSchedule::sequential(
                    vec![*site; *visits as usize],
                    SimDuration::from_secs(*interval_s),
                ));
            }
            Workload::Synthetic {
                objects,
                object_bytes,
                same_domain,
                visits,
                interval_s,
            } => {
                cfg = cfg
                    .with_custom_pages(vec![test_page(
                        *objects as usize,
                        *object_bytes,
                        *same_domain,
                    )])
                    .with_schedule(VisitSchedule::sequential(
                        vec![1; *visits as usize],
                        SimDuration::from_secs(*interval_s),
                    ));
            }
        }
        let s = &self.settings;
        cfg.tcp.reset_rtt_after_idle = s.rtt_reset_after_idle;
        cfg.tcp.slow_start_after_idle = s.slow_start_after_idle;
        cfg.tcp.cc = s.cc;
        cfg.cache_metrics = s.metrics_cache;
        cfg.keepalive_ping = s.keepalive_ping_s.map(secs_f64);
        cfg.http_pipelining = s.http_pipelining as usize;
        cfg.http_idle_close = s.http_idle_close_s.map(secs_f64);
        cfg.rrc_promotion_override = self.rrc_promotion_ms.map(SimDuration::from_millis);
        cfg.trace_level = manifest.effective_trace();
        cfg.record_traces = manifest.tcp_traces;
        cfg.event_budget = manifest.limits.event_budget;
        cfg.visit_timeout = SimDuration::from_secs(manifest.limits.visit_timeout_s);
        cfg
    }

    /// Artifact label for this cell: the protocol compact name, extended
    /// with the seed and variant when the manifest has several cells per
    /// protocol (single-cell-per-protocol manifests keep the legacy
    /// `trace_<proto>.*` names).
    pub fn artifact_label(&self, manifest: &Manifest) -> String {
        let proto = self.protocol.compact().replace(':', "-");
        let mut label = proto;
        if manifest.seeds.count > 1 {
            label.push_str(&format!("_s{}", self.seed));
        }
        if !self.variant.is_empty() {
            label.push('_');
            label.push_str(&self.variant.replace('=', "-").replace('+', "_"));
        }
        label
    }
}

fn secs_f64(s: f64) -> SimDuration {
    SimDuration::from_millis((s * 1_000.0).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_core::config::PageSource;

    const MINIMAL: &str = r#"{
        "schema_version": 1,
        "name": "paired_3g",
        "network": { "kind": "3g" },
        "protocols": ["http", "spdy"]
    }"#;

    #[test]
    fn minimal_manifest_matches_paper_baseline() {
        let m = Manifest::from_json(MINIMAL).unwrap();
        assert_eq!(m, Manifest::paper_baseline("paired_3g"));
        assert!(m.is_paired());
        assert_eq!(m.effective_trace(), TraceLevel::Off);
    }

    #[test]
    fn baseline_cell_config_equals_paper_3g() {
        let m = Manifest::paper_baseline("x");
        let cells = m.cells();
        assert_eq!(cells.len(), 2);
        let cfg = cells[1].build_config(&m);
        let reference = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 0)
            .with_schedule(table1_schedule_for_seed(0));
        assert_eq!(cfg.seed, reference.seed);
        assert_eq!(cfg.network, reference.network);
        assert_eq!(cfg.protocol, reference.protocol);
        assert_eq!(cfg.tcp, reference.tcp);
        assert_eq!(cfg.cache_metrics, reference.cache_metrics);
        assert_eq!(cfg.keepalive_ping, reference.keepalive_ping);
        assert_eq!(cfg.schedule.order, reference.schedule.order);
        assert_eq!(cfg.visit_timeout, reference.visit_timeout);
        assert_eq!(cfg.record_traces, reference.record_traces);
        assert_eq!(cfg.trace_level, reference.trace_level);
        assert_eq!(cfg.ssl_setup_rtts, reference.ssl_setup_rtts);
        assert_eq!(cfg.http_idle_close, reference.http_idle_close);
        assert_eq!(cfg.http_pipelining, reference.http_pipelining);
        assert_eq!(cfg.rrc_promotion_override, reference.rrc_promotion_override);
        assert_eq!(cfg.event_budget, reference.event_budget);
    }

    #[test]
    fn unknown_fields_are_rejected_with_path() {
        let text = MINIMAL.replace("\"protocols\"", "\"protocolz\"");
        let e = Manifest::from_json(&text).unwrap_err();
        assert!(e.0.contains("manifest.protocolz"), "{e}");
        assert!(e.0.contains("unknown field"), "{e}");

        let nested = r#"{
            "schema_version": 1, "name": "x",
            "network": { "kind": "3g", "rrc": 1 },
            "protocols": ["http"]
        }"#;
        let e = Manifest::from_json(nested).unwrap_err();
        assert!(e.0.contains("manifest.network.rrc"), "{e}");
    }

    #[test]
    fn bad_values_name_the_field() {
        let e = Manifest::from_json(&MINIMAL.replace("\"3g\"", "\"4g\"")).unwrap_err();
        assert!(e.0.contains("manifest.network.kind"), "{e}");
        assert!(e.0.contains("unknown network \"4g\""), "{e}");

        let e = Manifest::from_json(&MINIMAL.replace("\"spdy\"", "\"quic\"")).unwrap_err();
        assert!(e.0.contains("manifest.protocols[1]"), "{e}");

        let e =
            Manifest::from_json(&MINIMAL.replace("\"schema_version\": 1", "\"schema_version\": 9"))
                .unwrap_err();
        assert!(e.0.contains("unsupported version 9"), "{e}");
    }

    #[test]
    fn protocol_compact_round_trips() {
        for s in ["http", "spdy", "spdy:20", "spdy:20:late", "spdy:1:late"] {
            let p = ProtocolSpec::parse(s).unwrap();
            assert_eq!(p.compact(), s);
        }
        assert!(ProtocolSpec::parse("spdy:0").is_err());
        assert!(ProtocolSpec::parse("spdy:2:early").is_err());
        assert!(ProtocolSpec::parse("h2").is_err());
    }

    #[test]
    fn matrix_cross_product_orders_and_names_variants() {
        let text = r#"{
            "schema_version": 1,
            "name": "matrix",
            "network": { "kind": "3g" },
            "protocols": ["http", "spdy"],
            "matrix": {
                "rtt_reset_after_idle": [false, true],
                "slow_start_after_idle": [true, false]
            }
        }"#;
        let m = Manifest::from_json(text).unwrap();
        let names: Vec<String> = m.variants().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "rtt_reset_after_idle=false+slow_start_after_idle=true",
                "rtt_reset_after_idle=false+slow_start_after_idle=false",
                "rtt_reset_after_idle=true+slow_start_after_idle=true",
                "rtt_reset_after_idle=true+slow_start_after_idle=false",
            ]
        );
        let cells = m.cells();
        assert_eq!(cells.len(), 8);
        // variant-outer, seed, then protocol.
        assert_eq!(cells[0].protocol.compact(), "http");
        assert_eq!(cells[1].protocol.compact(), "spdy");
        assert_eq!(cells[0].variant, cells[1].variant);
        assert!(cells[2].settings.slow_start_after_idle != cells[0].settings.slow_start_after_idle);
        assert!(cells[6].settings.rtt_reset_after_idle);
        assert!(!m.is_paired(), "matrix manifests are not strictly paired");
    }

    #[test]
    fn matrix_values_are_type_checked_at_decode() {
        let text = r#"{
            "schema_version": 1,
            "name": "matrix",
            "network": { "kind": "3g" },
            "protocols": ["http"],
            "matrix": { "rtt_reset_after_idle": [1] }
        }"#;
        let e = Manifest::from_json(text).unwrap_err();
        assert!(
            e.0.contains("manifest.matrix.rtt_reset_after_idle[0]"),
            "{e}"
        );
        assert!(e.0.contains("takes a boolean"), "{e}");

        let text = r#"{
            "schema_version": 1,
            "name": "matrix",
            "network": { "kind": "3g" },
            "protocols": ["http"],
            "matrix": { "mss": [1380] }
        }"#;
        let e = Manifest::from_json(text).unwrap_err();
        assert!(e.0.contains("unknown knob"), "{e}");
    }

    #[test]
    fn synthetic_workload_builds_custom_pages() {
        let text = r#"{
            "schema_version": 1,
            "name": "synth",
            "network": { "kind": "wifi" },
            "protocols": ["spdy"],
            "workload": { "kind": "synthetic", "objects": 50, "object_bytes": 2500 }
        }"#;
        let m = Manifest::from_json(text).unwrap();
        let cfg = m.cells()[0].build_config(&m);
        assert_eq!(cfg.schedule.order, vec![1]);
        match &cfg.pages {
            PageSource::Custom(pages) => {
                assert_eq!(pages.len(), 1);
                assert_eq!(pages[0].objects.len(), 51);
            }
            PageSource::Table1 => panic!("expected custom pages"),
        }
    }

    #[test]
    fn assertions_raise_trace_level_for_stall_metrics() {
        let text = r#"{
            "schema_version": 1,
            "name": "stalls",
            "network": { "kind": "3g" },
            "protocols": ["http", "spdy"],
            "assertions": ["spdy.rto_stall_ms > http.rto_stall_ms on 3g"]
        }"#;
        let m = Manifest::from_json(text).unwrap();
        assert_eq!(m.trace, TraceLevel::Off);
        assert_eq!(m.effective_trace(), TraceLevel::Transport);
        let cfg = m.cells()[0].build_config(&m);
        assert_eq!(cfg.trace_level, TraceLevel::Transport);
    }

    #[test]
    fn critical_path_assertions_raise_trace_level_to_full() {
        let text = r#"{
            "schema_version": 1,
            "name": "critical",
            "network": { "kind": "3g" },
            "protocols": ["http", "spdy"],
            "assertions": [
                "spdy.critical_rto_stall_ms > http.critical_rto_stall_ms on 3g"
            ]
        }"#;
        let m = Manifest::from_json(text).unwrap();
        assert_eq!(m.trace, TraceLevel::Off);
        assert_eq!(m.effective_trace(), TraceLevel::Full);

        let text = r#"{
            "schema_version": 1,
            "name": "lossless",
            "network": { "kind": "wifi" },
            "protocols": ["http"],
            "assertions": ["trace_dropped <= 0"]
        }"#;
        let m = Manifest::from_json(text).unwrap();
        assert_eq!(m.effective_trace(), TraceLevel::Lifecycle);
    }

    #[test]
    fn paired_dump_requires_paired_shape() {
        let text = r#"{
            "schema_version": 1,
            "name": "bad",
            "network": { "kind": "3g" },
            "protocols": ["spdy"],
            "outputs": { "paired_dump": true }
        }"#;
        let e = Manifest::from_json(text).unwrap_err();
        assert!(e.0.contains("paired_dump"), "{e}");
    }

    #[test]
    fn canonical_json_round_trips() {
        let text = r#"{
            "schema_version": 1,
            "name": "full",
            "description": "everything set",
            "network": { "kind": "lte", "rrc_promotion_ms": 500 },
            "workload": { "kind": "site", "site": 9, "visits": 3, "interval_s": 30 },
            "protocols": ["http", "spdy", "spdy:20:late"],
            "mitigations": { "rtt_reset_after_idle": true, "http_idle_close_s": null, "cc": "reno" },
            "matrix": { "slow_start_after_idle": [true, false] },
            "seeds": { "base": 7, "count": 2 },
            "trace": "transport",
            "tcp_traces": true,
            "limits": { "event_budget": 1000000, "visit_timeout_s": 45 },
            "assertions": ["plt_p50_ms < 9000 on lte"],
            "outputs": { "trace_artifacts": true }
        }"#;
        let m = Manifest::from_json(text).unwrap();
        assert_eq!(m.mitigations.http_idle_close_s, None);
        assert_eq!(m.mitigations.cc, CcAlgorithm::Reno);
        let rendered = m.to_json();
        let reparsed = Manifest::from_json(&rendered).unwrap();
        assert_eq!(m, reparsed);
        assert_eq!(
            rendered,
            reparsed.to_json(),
            "canonical form is a fixed point"
        );
    }

    #[test]
    fn artifact_labels_stay_legacy_for_single_cells() {
        let m = Manifest::from_json(MINIMAL).unwrap();
        let cells = m.cells();
        assert_eq!(cells[0].artifact_label(&m), "http");
        assert_eq!(cells[1].artifact_label(&m), "spdy");
        let mut multi = m.clone();
        multi.seeds.count = 2;
        let cells = multi.cells();
        assert_eq!(cells[0].artifact_label(&multi), "http_s0");
        assert_eq!(cells[3].artifact_label(&multi), "spdy_s1");
    }
}
