//! # spdyier-scenario
//!
//! Declarative scenario manifests: an experiment as *data* instead of a
//! Rust function. A manifest (JSON, or the strict YAML subset in
//! [`yaml`]) declares the network, workload, protocol sides, §6
//! mitigation knobs, an optional knob matrix, seeds, trace level,
//! limits, and assertions; [`Manifest::cells`] expands it into the
//! deterministic run cells and [`Cell::build_config`] produces the exact
//! [`spdyier_core::ExperimentConfig`] each cell runs — with defaults
//! that reproduce the paper baseline byte-for-byte.
//!
//! The runner half (parallel execution, `result.json` + JUnit XML
//! emission, exit codes) lives in `spdyier-experiments`; this crate is
//! pure data and evaluation so it stays trivially testable:
//!
//! ```
//! use spdyier_scenario::Manifest;
//!
//! let m = Manifest::from_json(r#"{
//!     "schema_version": 1,
//!     "name": "headline",
//!     "network": { "kind": "3g" },
//!     "protocols": ["http", "spdy"],
//!     "assertions": ["spdy.rto_stall_ms > http.rto_stall_ms on 3g"]
//! }"#).unwrap();
//! assert_eq!(m.cells().len(), 2);
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod assertions;
pub mod manifest;
pub mod metrics;
pub mod yaml;

pub use assertions::{Assertion, CmpOp, MetricRef, Operand, KNOWN_METRICS, STALL_METRICS};
pub use manifest::{
    table1_schedule_for_seed, Cell, KnobValue, Limits, Manifest, ManifestError, Mitigations,
    NetworkSection, Outputs, ProtocolSpec, Seeds, Workload, MANIFEST_SCHEMA_VERSION,
};
pub use metrics::{eval_metric, evaluate, CellMetrics};
