//! A strict-subset YAML front-end for manifests.
//!
//! Manifests are canonically JSON, but a thin YAML surface reads better
//! for hand-written scenarios. Only the subset that maps 1:1 onto the
//! JSON tree is accepted — anything fancier is a parse error, never a
//! guess:
//!
//! - block mappings (`key: value`, nesting by 2+-space indentation)
//! - block sequences of scalars (`- item`)
//! - inline flow sequences of scalars (`[a, b, c]`)
//! - scalars: `null`/`~`, `true`/`false`, JSON numbers, double-quoted
//!   strings (JSON escapes), and bare strings
//! - full-line and trailing ` #` comments
//!
//! No anchors, aliases, multi-document streams, flow mappings, block
//! scalars, or tabs.

use serde::Value;

/// Parse strict-subset YAML into a `Value` tree.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            continue;
        }
        if line.contains('\t') {
            return Err(format!("line {}: tabs are not allowed (use spaces)", i + 1));
        }
        let indent = line.len() - line.trim_start().len();
        lines.push((i + 1, indent, line.trim_start().to_string()));
    }
    if lines.is_empty() {
        return Err("empty document".to_string());
    }
    let (value, consumed) = parse_block(&lines, 0, lines[0].1)?;
    if consumed != lines.len() {
        let (num, _, _) = &lines[consumed];
        return Err(format!(
            "line {num}: content indented left of the document root"
        ));
    }
    Ok(value)
}

/// Strip a trailing comment: a `#` at start of content or preceded by a
/// space, outside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    let mut escaped = false;
    let mut prev: Option<char> = None;
    for (pos, c) in line.char_indices() {
        if in_quotes {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_quotes = false;
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == '#' && prev.is_none_or(|p| p == ' ') {
            return &line[..pos];
        }
        prev = Some(c);
    }
    line
}

/// Parse the block starting at `lines[start]`, whose items sit at
/// exactly `indent`. Returns the value and the number of lines consumed
/// from `start`.
fn parse_block(
    lines: &[(usize, usize, String)],
    start: usize,
    indent: usize,
) -> Result<(Value, usize), String> {
    let (_, _, first) = &lines[start];
    if first.starts_with("- ") || first == "-" {
        parse_sequence(lines, start, indent)
    } else {
        parse_mapping(lines, start, indent)
    }
}

fn parse_sequence(
    lines: &[(usize, usize, String)],
    start: usize,
    indent: usize,
) -> Result<(Value, usize), String> {
    let mut items = Vec::new();
    let mut i = start;
    while i < lines.len() {
        let (num, line_indent, content) = &lines[i];
        if *line_indent < indent {
            break;
        }
        if *line_indent > indent {
            return Err(format!(
                "line {num}: unexpected indentation inside a sequence"
            ));
        }
        let Some(rest) = content.strip_prefix('-') else {
            return Err(format!("line {num}: expected a \"- item\" sequence entry"));
        };
        let rest = rest.trim_start();
        if rest.is_empty() {
            return Err(format!(
                "line {num}: nested blocks under \"-\" are outside the supported YAML subset"
            ));
        }
        items.push(parse_scalar(rest, *num)?);
        i += 1;
    }
    Ok((Value::Array(items), i - start))
}

fn parse_mapping(
    lines: &[(usize, usize, String)],
    start: usize,
    indent: usize,
) -> Result<(Value, usize), String> {
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut i = start;
    while i < lines.len() {
        let (num, line_indent, content) = &lines[i];
        if *line_indent < indent {
            break;
        }
        if *line_indent > indent {
            return Err(format!(
                "line {num}: unexpected indentation (expected a key at column {indent})"
            ));
        }
        let Some(colon) = find_key_colon(content) else {
            return Err(format!("line {num}: expected \"key: value\""));
        };
        let key_raw = content[..colon].trim();
        let key = match parse_scalar(key_raw, *num)? {
            Value::Str(s) => s,
            other => other.to_string(),
        };
        let rest = content[colon + 1..].trim();
        i += 1;
        let value = if rest.is_empty() {
            // A nested block must follow, indented deeper.
            if i < lines.len() && lines[i].1 > indent {
                let (value, consumed) = parse_block(lines, i, lines[i].1)?;
                i += consumed;
                value
            } else {
                return Err(format!(
                    "line {num}: key {key:?} has no value (a nested block must be indented)"
                ));
            }
        } else {
            parse_scalar(rest, *num)?
        };
        entries.push((key, value));
    }
    Ok((Value::Object(entries), i - start))
}

/// Find the colon separating key from value (outside double quotes).
fn find_key_colon(content: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (pos, c) in content.char_indices() {
        if in_quotes {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_quotes = false;
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == ':' {
            // YAML requires a space (or end of line) after the key colon,
            // which keeps `spdy:20` parseable as a bare scalar value.
            if content[pos + 1..].is_empty() || content[pos + 1..].starts_with(' ') {
                return Some(pos);
            }
        }
    }
    None
}

fn parse_scalar(token: &str, line: usize) -> Result<Value, String> {
    let token = token.trim();
    match token {
        "null" | "~" => return Ok(Value::Null),
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if token.starts_with('[') {
        if !token.ends_with(']') {
            return Err(format!("line {line}: unterminated flow sequence"));
        }
        let inner = &token[1..token.len() - 1];
        let mut items = Vec::new();
        if !inner.trim().is_empty() {
            for part in split_flow_items(inner, line)? {
                let part = part.trim();
                if part.is_empty() {
                    return Err(format!("line {line}: empty item in flow sequence"));
                }
                if part.starts_with('[') {
                    return Err(format!(
                        "line {line}: nested flow sequences are outside the supported YAML subset"
                    ));
                }
                items.push(parse_scalar(part, line)?);
            }
        }
        return Ok(Value::Array(items));
    }
    if token.starts_with('{') {
        return Err(format!(
            "line {line}: flow mappings are outside the supported YAML subset (use block form)"
        ));
    }
    if token.starts_with('"') {
        // Reuse the JSON string grammar (escapes included).
        return serde_json::from_str(token)
            .map_err(|e| format!("line {line}: bad quoted string: {e}"));
    }
    if token.starts_with('\'') {
        return Err(format!(
            "line {line}: single-quoted strings are outside the supported YAML subset (use double quotes)"
        ));
    }
    // JSON number?
    if token
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-')
    {
        if let Ok(v) = serde_json::from_str(token) {
            return Ok(v);
        }
    }
    Ok(Value::Str(token.to_string()))
}

/// Split flow-sequence items on top-level commas (quotes respected).
fn split_flow_items(inner: &str, line: usize) -> Result<Vec<&str>, String> {
    let mut items = Vec::new();
    let mut item_start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (pos, c) in inner.char_indices() {
        if in_quotes {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_quotes = false;
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == ',' {
            items.push(&inner[item_start..pos]);
            item_start = pos + 1;
        }
    }
    if in_quotes {
        return Err(format!("line {line}: unterminated string in flow sequence"));
    }
    items.push(&inner[item_start..]);
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_manifest_shaped_document() {
        let text = r#"
# A quick wifi check.
schema_version: 1
name: quick_wifi
network:
  kind: wifi
protocols: [http, spdy]
workload:
  kind: synthetic
  objects: 50
  object_bytes: 2500
assertions:
  - "plt_p50_ms < 9000"
  - completion_rate >= 1 # trailing comment
"#;
        let v = parse(text).unwrap();
        assert_eq!(v["schema_version"], Value::U64(1));
        assert_eq!(v["name"], Value::Str("quick_wifi".into()));
        assert_eq!(v["network"]["kind"], Value::Str("wifi".into()));
        assert_eq!(
            v["protocols"],
            Value::Array(vec![Value::Str("http".into()), Value::Str("spdy".into())])
        );
        assert_eq!(v["workload"]["objects"], Value::U64(50));
        assert_eq!(v["assertions"][0], Value::Str("plt_p50_ms < 9000".into()));
        assert_eq!(
            v["assertions"][1],
            Value::Str("completion_rate >= 1".into())
        );
    }

    #[test]
    fn scalars_cover_json_types() {
        let v = parse("a: null\nb: ~\nc: true\nd: -3\ne: 2.5\nf: \"x # y\"\ng: spdy:20:late\n")
            .unwrap();
        assert_eq!(v["a"], Value::Null);
        assert_eq!(v["b"], Value::Null);
        assert_eq!(v["c"], Value::Bool(true));
        assert_eq!(v["d"], Value::I64(-3));
        assert_eq!(v["e"], Value::F64(2.5));
        assert_eq!(v["f"], Value::Str("x # y".into()));
        assert_eq!(v["g"], Value::Str("spdy:20:late".into()));
    }

    #[test]
    fn rejects_out_of_subset_constructs() {
        for (text, needle) in [
            ("a: {b: 1}", "flow mappings"),
            ("a: 'x'", "single-quoted"),
            ("a:\n  - x\n    y: 1", "indentation"),
            ("a: [1, [2]]", "nested flow"),
            ("\ta: 1", "tabs"),
            ("a:\nb: 1", "no value"),
            ("just a line", "key: value"),
            ("", "empty document"),
        ] {
            let e = parse(text).unwrap_err();
            assert!(e.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn nested_blocks_under_dash_are_rejected() {
        let e = parse("items:\n  -\n    a: 1").unwrap_err();
        assert!(e.contains("subset"), "{e}");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let v = parse(
            "# top\n\na: 1\n  # indented comment only counts as content? no: it is stripped\n",
        )
        .unwrap();
        assert_eq!(v["a"], Value::U64(1));
    }
}
