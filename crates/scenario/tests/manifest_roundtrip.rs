//! Property test: any manifest the model can express renders to JSON and
//! decodes back to an identical manifest, and the canonical rendering is
//! a fixed point (render → parse → render is byte-identical).

use proptest::prelude::*;
use spdyier_scenario::{
    Assertion, KnobValue, Manifest, Mitigations, ProtocolSpec, Seeds, Workload,
};
use spdyier_tcp::CcAlgorithm;
use spdyier_trace::TraceLevel;

/// SplitMix-style picks derived from one drawn seed: the stub proptest
/// has no `prop_oneof`, so structure is generated from integers.
fn next(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

fn pick(s: &mut u64, n: u64) -> u64 {
    next(s) % n
}

fn chance(s: &mut u64) -> bool {
    next(s) & 1 == 1
}

const PROTOCOL_POOL: [&str; 6] = [
    "http",
    "spdy",
    "spdy:4",
    "spdy:20",
    "spdy:20:late",
    "spdy:2:late",
];

const ASSERTION_POOL: [&str; 6] = [
    "spdy.rto_stall_ms > http.rto_stall_ms on 3g",
    "plt_p50_ms < 9000",
    "completion_rate >= 0.9",
    "http.counter.tcp.rto_fired >= 0",
    "plt_p90_ms <= 60000 on lte",
    "spdy.retransmissions >= 0",
];

fn gen_manifest(mut s: u64) -> Manifest {
    let mut m = Manifest::paper_baseline("generated");
    if chance(&mut s) {
        m.description = format!("generated manifest #{}", pick(&mut s, 1_000));
    }
    m.network.kind = ["3g", "3g-pinned", "lte", "wifi"][pick(&mut s, 4) as usize]
        .parse()
        .expect("pool entries parse");
    if chance(&mut s) {
        m.network.rrc_promotion_ms = Some(pick(&mut s, 4_000));
    }
    m.workload = match pick(&mut s, 3) {
        0 => Workload::Table1,
        1 => Workload::Site {
            site: pick(&mut s, 20) as u32 + 1,
            visits: pick(&mut s, 3) as u32 + 1,
            interval_s: pick(&mut s, 90) + 1,
        },
        _ => Workload::Synthetic {
            objects: pick(&mut s, 200) as u32 + 1,
            object_bytes: pick(&mut s, 50_000) + 100,
            same_domain: chance(&mut s),
            visits: pick(&mut s, 3) as u32 + 1,
            interval_s: pick(&mut s, 90) + 1,
        },
    };
    m.protocols = (0..pick(&mut s, 3) + 1)
        .map(|_| {
            ProtocolSpec::parse(PROTOCOL_POOL[pick(&mut s, PROTOCOL_POOL.len() as u64) as usize])
                .expect("pool entries parse")
        })
        .collect();
    m.mitigations = Mitigations {
        rtt_reset_after_idle: chance(&mut s),
        slow_start_after_idle: chance(&mut s),
        metrics_cache: chance(&mut s),
        keepalive_ping_s: chance(&mut s).then(|| (pick(&mut s, 240) + 1) as f64 / 2.0),
        http_pipelining: pick(&mut s, 4) + 1,
        http_idle_close_s: chance(&mut s).then(|| (pick(&mut s, 60) + 1) as f64),
        cc: if chance(&mut s) {
            CcAlgorithm::Cubic
        } else {
            CcAlgorithm::Reno
        },
    };
    for _ in 0..pick(&mut s, 3) {
        let (knob, values) = match pick(&mut s, 4) {
            0 => (
                "rtt_reset_after_idle",
                vec![KnobValue::Bool(false), KnobValue::Bool(true)],
            ),
            1 => (
                "slow_start_after_idle",
                vec![KnobValue::Bool(true), KnobValue::Bool(false)],
            ),
            2 => (
                "http_pipelining",
                vec![
                    KnobValue::Number((pick(&mut s, 4) + 1) as f64),
                    KnobValue::Number((pick(&mut s, 4) + 1) as f64),
                ],
            ),
            _ => (
                "keepalive_ping_s",
                vec![
                    KnobValue::Null,
                    KnobValue::Number((pick(&mut s, 30) + 1) as f64),
                ],
            ),
        };
        if !m.matrix.iter().any(|(k, _)| k == knob) {
            m.matrix.push((knob.to_string(), values));
        }
    }
    m.seeds = Seeds {
        base: pick(&mut s, 10),
        count: pick(&mut s, 4) + 1,
    };
    m.trace = [
        TraceLevel::Off,
        TraceLevel::Lifecycle,
        TraceLevel::Transport,
        TraceLevel::Full,
    ][pick(&mut s, 4) as usize];
    m.tcp_traces = chance(&mut s);
    m.limits.event_budget = pick(&mut s, 1_000_000_000) + 1;
    m.limits.visit_timeout_s = pick(&mut s, 120) + 1;
    for _ in 0..pick(&mut s, 3) {
        let expr = ASSERTION_POOL[pick(&mut s, ASSERTION_POOL.len() as u64) as usize];
        m.assertions
            .push(Assertion::parse(expr).expect("pool entries parse"));
    }
    m.outputs.trace_artifacts = chance(&mut s);
    m.outputs.paired_dump = m.is_paired() && chance(&mut s);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_manifests_parse_back_identically(seed in any::<u64>()) {
        let original = gen_manifest(seed);
        let rendered = original.to_json();
        let decoded = Manifest::from_json(&rendered)
            .unwrap_or_else(|e| panic!("rendered manifest failed to decode: {e}\n{rendered}"));
        prop_assert_eq!(&original, &decoded);
        prop_assert_eq!(rendered, decoded.to_json());
    }

    #[test]
    fn generated_manifests_expand_to_consistent_cells(seed in any::<u64>()) {
        let m = gen_manifest(seed);
        let cells = m.cells();
        let variants = m.variants().len() as u64;
        prop_assert_eq!(
            cells.len() as u64,
            variants * m.seeds.count * m.protocols.len() as u64
        );
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(cell.index, i);
            let cfg = cell.build_config(&m);
            prop_assert_eq!(cfg.seed, cell.seed);
            prop_assert_eq!(cfg.network, m.network.kind);
            prop_assert_eq!(cfg.trace_level, m.effective_trace());
            prop_assert_eq!(cfg.event_budget, m.limits.event_budget);
        }
    }
}
