//! Property tests for the fold/merge algebra the streaming sweep
//! pipeline rests on: merging [`CellMetrics`] accumulators (and the
//! [`QuantileSketch`] inside them) must be **associative** and
//! **commutative**, and merging must equal folding the concatenated
//! sample streams directly. Those three properties are what make a
//! sharded, resumable sweep bit-identical to a serial one regardless of
//! how cells are partitioned across workers or checkpoint replays.

use proptest::prelude::*;
use spdyier_scenario::CellMetrics;
use spdyier_sim::QuantileSketch;

/// One synthetic visit: (plt_ms, stall_us, counter_increment).
type Sample = (f64, u64, u64);

/// Fold a sample stream into an accumulator the way a worker would.
fn build_cell(samples: &[Sample]) -> CellMetrics {
    let mut m = CellMetrics::default();
    for &(plt_ms, stall_us, counter) in samples {
        m.plt.record(plt_ms);
        m.visits += 1;
        m.completed += 1;
        m.stall_sums_us[3] += stall_us;
        m.stall_visits += 1;
        m.critical_sums_us[3] += stall_us / 2;
        m.critical_visits += 1;
        m.retransmissions += counter % 3;
        m.timeouts += counter % 2;
        m.total_bytes += stall_us;
        *m.counters.entry("tcp.rto_fired".into()).or_insert(0) += counter;
    }
    m
}

fn merged(into: &CellMetrics, from: &CellMetrics) -> CellMetrics {
    let mut out = into.clone();
    out.merge(from).expect("same layout merges");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sketch_merge_is_associative_commutative_and_exact(
        a in prop::collection::vec(0.0f64..70_000.0, 0..50),
        b in prop::collection::vec(0.0f64..70_000.0, 0..50),
        c in prop::collection::vec(0.0f64..70_000.0, 0..50)
    ) {
        let sketch = |xs: &[f64]| {
            let mut s = QuantileSketch::new();
            for &x in xs {
                s.record(x);
            }
            s
        };
        let (sa, sb, sc) = (sketch(&a), sketch(&b), sketch(&c));

        // Merging equals sketching the concatenated stream (exactness).
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = sketch(&all);

        let mut ab_c = sa.clone();
        ab_c.merge(&sb).unwrap();
        ab_c.merge(&sc).unwrap();
        prop_assert_eq!(&ab_c, &direct, "((a+b)+c) != sketch(a++b++c)");

        let mut bc = sb.clone();
        bc.merge(&sc).unwrap();
        let mut a_bc = sa.clone();
        a_bc.merge(&bc).unwrap();
        prop_assert_eq!(&a_bc, &direct, "(a+(b+c)) != sketch(a++b++c)");

        let mut ba = sb.clone();
        ba.merge(&sa).unwrap();
        let mut ab = sa.clone();
        ab.merge(&sb).unwrap();
        prop_assert_eq!(&ab, &ba, "a+b != b+a");
    }

    #[test]
    fn cell_metrics_merge_is_associative_and_commutative(
        a in prop::collection::vec((0.0f64..70_000.0, 0u64..5_000_000, 0u64..9), 0..30),
        b in prop::collection::vec((0.0f64..70_000.0, 0u64..5_000_000, 0u64..9), 0..30),
        c in prop::collection::vec((0.0f64..70_000.0, 0u64..5_000_000, 0u64..9), 0..30)
    ) {
        let (ca, cb, cc) = (build_cell(&a), build_cell(&b), build_cell(&c));

        let ab_c = merged(&merged(&ca, &cb), &cc);
        let a_bc = merged(&ca, &merged(&cb, &cc));
        prop_assert_eq!(&ab_c, &a_bc, "cell merge is not associative");

        let ab = merged(&ca, &cb);
        let ba = merged(&cb, &ca);
        prop_assert_eq!(&ab, &ba, "cell merge is not commutative");

        // Merging equals folding the concatenated visit stream.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &build_cell(&all), "merge != fold of the union");
    }
}
