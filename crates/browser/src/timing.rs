//! Per-object timing records.
//!
//! The paper's Figure 5 splits every object's life into four steps:
//! **init** (needed → requested: pool waits and TCP handshakes), **send**
//! (request onto the wire), **wait** (request sent → first response byte),
//! and **receive** (first byte → complete). These records capture the five
//! boundary instants; the splits are derived.

use serde::Serialize;
use spdyier_sim::{SimDuration, SimTime};

/// Boundary instants for one object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ObjectTiming {
    /// Browser learned the object exists (parent evaluated).
    pub discovered: Option<SimTime>,
    /// Request handed to a connection (after any pool wait / handshake).
    pub requested: Option<SimTime>,
    /// Request fully written to the transport.
    pub sent: Option<SimTime>,
    /// First response byte arrived.
    pub first_byte: Option<SimTime>,
    /// Last response byte arrived.
    pub complete: Option<SimTime>,
}

impl ObjectTiming {
    /// Init step: discovery → request issue.
    pub fn init_time(&self) -> Option<SimDuration> {
        Some(self.requested?.saturating_since(self.discovered?))
    }

    /// Send step: request issue → fully written.
    pub fn send_time(&self) -> Option<SimDuration> {
        Some(self.sent?.saturating_since(self.requested?))
    }

    /// Wait step: request written → first response byte.
    pub fn wait_time(&self) -> Option<SimDuration> {
        Some(self.first_byte?.saturating_since(self.sent?))
    }

    /// Receive step: first byte → complete.
    pub fn recv_time(&self) -> Option<SimDuration> {
        Some(self.complete?.saturating_since(self.first_byte?))
    }

    /// Total life: discovery → complete.
    pub fn total_time(&self) -> Option<SimDuration> {
        Some(self.complete?.saturating_since(self.discovered?))
    }
}

/// Average the four steps across a set of objects (Fig. 5's bars),
/// in milliseconds. Objects missing a boundary contribute zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct StepAverages {
    /// Mean init step, ms.
    pub init_ms: f64,
    /// Mean send step, ms.
    pub send_ms: f64,
    /// Mean wait step, ms.
    pub wait_ms: f64,
    /// Mean receive step, ms.
    pub recv_ms: f64,
}

impl StepAverages {
    /// Compute from a set of object timings.
    pub fn from_timings(timings: &[ObjectTiming]) -> StepAverages {
        let n = timings.len().max(1) as f64;
        let ms = |d: Option<SimDuration>| d.map_or(0.0, |d| d.as_secs_f64() * 1e3);
        let mut out = StepAverages::default();
        for t in timings {
            out.init_ms += ms(t.init_time());
            out.send_ms += ms(t.send_time());
            out.wait_ms += ms(t.wait_time());
            out.recv_ms += ms(t.recv_time());
        }
        out.init_ms /= n;
        out.send_ms /= n;
        out.wait_ms /= n;
        out.recv_ms /= n;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn splits_derive_from_boundaries() {
        let timing = ObjectTiming {
            discovered: Some(t(100)),
            requested: Some(t(180)),
            sent: Some(t(181)),
            first_byte: Some(t(400)),
            complete: Some(t(450)),
        };
        assert_eq!(timing.init_time(), Some(SimDuration::from_millis(80)));
        assert_eq!(timing.send_time(), Some(SimDuration::from_millis(1)));
        assert_eq!(timing.wait_time(), Some(SimDuration::from_millis(219)));
        assert_eq!(timing.recv_time(), Some(SimDuration::from_millis(50)));
        assert_eq!(timing.total_time(), Some(SimDuration::from_millis(350)));
    }

    #[test]
    fn incomplete_objects_have_no_splits() {
        let timing = ObjectTiming {
            discovered: Some(t(1)),
            ..Default::default()
        };
        assert_eq!(timing.init_time(), None);
        assert_eq!(timing.total_time(), None);
    }

    #[test]
    fn averages_over_objects() {
        let a = ObjectTiming {
            discovered: Some(t(0)),
            requested: Some(t(100)),
            sent: Some(t(100)),
            first_byte: Some(t(300)),
            complete: Some(t(400)),
        };
        let b = ObjectTiming {
            discovered: Some(t(0)),
            requested: Some(t(300)),
            sent: Some(t(300)),
            first_byte: Some(t(700)),
            complete: Some(t(800)),
        };
        let avg = StepAverages::from_timings(&[a, b]);
        assert_eq!(avg.init_ms, 200.0);
        assert_eq!(avg.send_ms, 0.0);
        assert_eq!(avg.wait_ms, 300.0);
        assert_eq!(avg.recv_ms, 100.0);
    }
}
