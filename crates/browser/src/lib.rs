//! # spdyier-browser
//!
//! The browser model of the SPDY'ier reproduction testbed: a sans-IO
//! page-load state machine ([`PageLoad`]) implementing the two behaviours
//! the paper's §5.2 identifies as decisive — dependency-gated object
//! discovery and sequential script evaluation — plus the per-object timing
//! breakdown of Figure 5 ([`ObjectTiming`], [`StepAverages`]).
//!
//! Protocol specifics (the 6-per-domain HTTP pool, the single prioritised
//! SPDY session) live in the testbed driver; this crate is protocol-
//! agnostic.
//!
//! ```
//! use spdyier_browser::PageLoad;
//! use spdyier_workload::test_page;
//! use spdyier_sim::SimTime;
//!
//! let load = PageLoad::new(test_page(50, 40_000, true), SimTime::ZERO);
//! assert_eq!(load.ready_count(), 1, "only the root until it is parsed");
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod load;
pub mod timing;

pub use load::{PageLoad, Phase};
pub use timing::{ObjectTiming, StepAverages};
