//! The page-load state machine.
//!
//! Drives one page through discovery → request → download → evaluation,
//! with the two browser behaviours §5.2 shows to matter:
//!
//! 1. an object becomes *requestable* only after the object referencing it
//!    has been downloaded **and evaluated**, and
//! 2. evaluation (HTML parse, script execution) is **sequential** — one
//!    evaluator, a queue — since scripts can mutate the page.
//!
//! The machine is sans-IO: the protocol driver pops ready objects, issues
//! requests its own way (6-connection HTTP pool or one SPDY session), and
//! reports the transfer boundaries back.

use crate::timing::ObjectTiming;
use spdyier_sim::{SimDuration, SimTime};
use spdyier_workload::{ObjectId, WebPage};
use std::collections::VecDeque;
use std::sync::Arc;

/// Lifecycle phase of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Referenced by an object that has not been evaluated yet.
    Hidden,
    /// Known to the browser, not yet requested.
    Ready,
    /// Request issued, transfer in progress.
    InFlight,
    /// Fully downloaded (and queued for / undergoing evaluation if it is
    /// an evaluated kind).
    Downloaded,
    /// Downloaded and (if applicable) evaluated.
    Done,
}

/// One page load in progress.
///
/// The page is held behind an [`Arc`] so the driver can share it with
/// its own per-visit state without cloning the object table, and the
/// per-object bookkeeping vectors can be recycled across visits via
/// [`PageLoad::reset`] — a sweep cell loads thousands of pages, and
/// re-allocating phase/timing tables per visit dominated the
/// control-plane allocation profile.
#[derive(Debug)]
pub struct PageLoad {
    page: Arc<WebPage>,
    start: SimTime,
    phases: Vec<Phase>,
    timings: Vec<ObjectTiming>,
    /// Objects discovered but not yet requested, in discovery order.
    ready: VecDeque<ObjectId>,
    /// Downloaded evaluated-kind objects awaiting the single evaluator.
    eval_queue: VecDeque<ObjectId>,
    /// `(object, finish_time)` of the evaluation in progress.
    evaluating: Option<(ObjectId, SimTime)>,
    onload: Option<SimTime>,
}

impl PageLoad {
    /// Begin loading `page` at `now`; the root document is immediately
    /// ready to request.
    pub fn new(page: impl Into<Arc<WebPage>>, now: SimTime) -> PageLoad {
        let page = page.into();
        let n = page.object_count();
        let mut load = PageLoad {
            page,
            start: now,
            phases: vec![Phase::Hidden; n],
            timings: vec![ObjectTiming::default(); n],
            ready: VecDeque::new(),
            eval_queue: VecDeque::new(),
            evaluating: None,
            onload: None,
        };
        load.discover(ObjectId(0), now);
        load
    }

    /// Rebind this load to a fresh `page` starting at `now`, reusing the
    /// already-allocated phase/timing/queue buffers. Equivalent to
    /// [`PageLoad::new`] in every observable way.
    pub fn reset(&mut self, page: impl Into<Arc<WebPage>>, now: SimTime) {
        self.page = page.into();
        let n = self.page.object_count();
        self.start = now;
        self.phases.clear();
        self.phases.resize(n, Phase::Hidden);
        self.timings.clear();
        self.timings.resize(n, ObjectTiming::default());
        self.ready.clear();
        self.eval_queue.clear();
        self.evaluating = None;
        self.onload = None;
        self.discover(ObjectId(0), now);
    }

    /// The page being loaded.
    pub fn page(&self) -> &WebPage {
        &self.page
    }

    /// Shared handle to the page being loaded.
    pub fn page_arc(&self) -> &Arc<WebPage> {
        &self.page
    }

    /// Load start instant.
    pub fn start_time(&self) -> SimTime {
        self.start
    }

    /// Objects currently requestable, in discovery order.
    pub fn ready_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.ready.iter().copied()
    }

    /// Number of requestable objects.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Phase of an object.
    pub fn phase(&self, id: ObjectId) -> Phase {
        self.phases[id.0 as usize]
    }

    /// Reserve a ready object for a fetcher without issuing its request
    /// yet (e.g. while a fresh connection completes its handshake). The
    /// object leaves the ready queue but stays in phase `Ready` so
    /// [`PageLoad::note_requested`] still applies when the request goes
    /// out.
    pub fn take_ready(&mut self, id: ObjectId) {
        self.ready.retain(|&r| r != id);
    }

    /// The driver issued the request for `id` at `now` (after any pool
    /// wait / handshake). Also records the send completion at the same
    /// instant unless [`PageLoad::note_sent`] refines it.
    pub fn note_requested(&mut self, id: ObjectId, now: SimTime) {
        let i = id.0 as usize;
        debug_assert_eq!(
            self.phases[i],
            Phase::Ready,
            "request of non-ready object {id:?}"
        );
        self.phases[i] = Phase::InFlight;
        self.ready.retain(|&r| r != id);
        self.timings[i].requested = Some(now);
        self.timings[i].sent = Some(now);
    }

    /// Refine the instant the request was fully written to the transport.
    pub fn note_sent(&mut self, id: ObjectId, now: SimTime) {
        self.timings[id.0 as usize].sent = Some(now);
    }

    /// First response byte for `id` arrived.
    pub fn note_first_byte(&mut self, id: ObjectId, now: SimTime) {
        let t = &mut self.timings[id.0 as usize];
        if t.first_byte.is_none() {
            t.first_byte = Some(now);
        }
    }

    /// The object fully downloaded at `now`. Evaluated kinds enter the
    /// (sequential) evaluation queue; others are immediately done.
    pub fn note_complete(&mut self, id: ObjectId, now: SimTime) {
        let i = id.0 as usize;
        if self.phases[i] != Phase::InFlight {
            return; // duplicate completion
        }
        self.timings[i].complete = Some(now);
        if self.timings[i].first_byte.is_none() {
            self.timings[i].first_byte = Some(now);
        }
        if self.page.objects[i].kind.is_evaluated() {
            self.phases[i] = Phase::Downloaded;
            self.eval_queue.push_back(id);
            self.maybe_start_eval(now);
        } else {
            self.phases[i] = Phase::Done;
            self.maybe_onload(now);
        }
    }

    /// The next instant the evaluator needs a callback, if any.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.evaluating.map(|(_, finish)| finish)
    }

    /// Run the evaluator up to `now`. Returns objects newly discovered by
    /// completed evaluations.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<ObjectId> {
        let mut discovered = Vec::new();
        while let Some((id, finish)) = self.evaluating {
            if finish > now {
                break;
            }
            self.evaluating = None;
            self.phases[id.0 as usize] = Phase::Done;
            // Cheap handle clone so the child walk can run while
            // `discover` mutates the bookkeeping (no per-call id Vec).
            let page = Arc::clone(&self.page);
            for child in page.children_iter(id) {
                if self.phases[child.0 as usize] == Phase::Hidden {
                    self.discover(child, finish);
                    discovered.push(child);
                }
            }
            self.maybe_start_eval(finish);
            self.maybe_onload(finish);
        }
        discovered
    }

    /// True once every object is done and the evaluator is idle.
    pub fn is_complete(&self) -> bool {
        self.onload.is_some()
    }

    /// The onLoad instant, once fired.
    pub fn onload_time(&self) -> Option<SimTime> {
        self.onload
    }

    /// Page load time (onLoad − start), once complete.
    pub fn page_load_time(&self) -> Option<SimDuration> {
        Some(self.onload?.saturating_since(self.start))
    }

    /// Per-object timing records (index = object id).
    pub fn timings(&self) -> &[ObjectTiming] {
        &self.timings
    }

    /// Objects still not `Done` (diagnostics for stalled loads).
    pub fn unfinished(&self) -> Vec<ObjectId> {
        self.phases
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != Phase::Done)
            .map(|(i, _)| ObjectId(i as u32))
            .collect()
    }

    fn discover(&mut self, id: ObjectId, now: SimTime) {
        let i = id.0 as usize;
        self.phases[i] = Phase::Ready;
        self.timings[i].discovered = Some(now);
        self.ready.push_back(id);
    }

    fn maybe_start_eval(&mut self, now: SimTime) {
        if self.evaluating.is_none() {
            if let Some(id) = self.eval_queue.pop_front() {
                let eval = self.page.objects[id.0 as usize].eval_time;
                self.evaluating = Some((id, now + eval));
            }
        }
    }

    fn maybe_onload(&mut self, now: SimTime) {
        if self.onload.is_some() {
            return;
        }
        let all_done = self.phases.iter().all(|&p| p == Phase::Done);
        if all_done && self.evaluating.is_none() && self.eval_queue.is_empty() {
            self.onload = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_sim::DetRng;
    use spdyier_workload::{synthesize, test_page, ObjectKind, SiteSpec};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drive a load to completion with a fixed per-object fetch latency.
    fn drive(mut load: PageLoad, fetch_ms: u64) -> PageLoad {
        let mut now = load.start_time();
        let mut guard = 0;
        while !load.is_complete() {
            guard += 1;
            assert!(
                guard < 100_000,
                "load stuck; unfinished: {:?}",
                load.unfinished()
            );
            let ready: Vec<ObjectId> = load.ready_objects().collect();
            for id in ready {
                load.note_requested(id, now);
                load.note_first_byte(id, now + SimDuration::from_millis(fetch_ms / 2));
                load.note_complete(id, now + SimDuration::from_millis(fetch_ms));
            }
            now = match load.next_timer() {
                Some(timer) => timer.max(now + SimDuration::from_millis(fetch_ms)),
                None => now + SimDuration::from_millis(fetch_ms),
            };
            load.on_timer(now);
        }
        load
    }

    #[test]
    fn root_is_immediately_ready() {
        let page = test_page(5, 1000, true);
        let load = PageLoad::new(page, t(0));
        let ready: Vec<ObjectId> = load.ready_objects().collect();
        assert_eq!(ready, vec![ObjectId(0)]);
        assert_eq!(load.phase(ObjectId(0)), Phase::Ready);
        assert_eq!(load.phase(ObjectId(1)), Phase::Hidden);
    }

    #[test]
    fn images_appear_after_root_evaluation() {
        let page = test_page(3, 1000, true);
        let mut load = PageLoad::new(page, t(0));
        load.note_requested(ObjectId(0), t(10));
        load.note_first_byte(ObjectId(0), t(100));
        load.note_complete(ObjectId(0), t(150));
        // Root parse takes 20 ms → children hidden until t=170.
        assert_eq!(load.ready_count(), 0);
        let timer = load.next_timer().expect("evaluator running");
        assert_eq!(timer, t(170));
        let discovered = load.on_timer(timer);
        assert_eq!(discovered.len(), 3);
        assert_eq!(load.ready_count(), 3);
    }

    #[test]
    fn full_load_of_test_page() {
        let page = test_page(10, 1000, true);
        let load = drive(PageLoad::new(page, t(0)), 100);
        assert!(load.is_complete());
        let plt = load.page_load_time().unwrap();
        // Root fetch (100) + parse (20) + images fetch (100) ≈ 220 ms.
        assert!(plt >= SimDuration::from_millis(200));
        assert!(plt < SimDuration::from_millis(400), "plt {plt}");
    }

    #[test]
    fn evaluation_is_sequential() {
        // Two scripts completing together evaluate one after the other.
        let spec = SiteSpec::by_index(14).unwrap(); // 94 JS/CSS objects
        let page = synthesize(spec, &mut DetRng::new(2));
        let scripts: Vec<ObjectId> = page
            .objects
            .iter()
            .filter(|o| o.kind == ObjectKind::Script && o.discovered_by == Some(ObjectId(0)))
            .map(|o| o.id)
            .take(2)
            .collect();
        assert!(scripts.len() == 2, "need two root-level scripts");
        let mut load = PageLoad::new(page.clone(), t(0));
        load.note_requested(ObjectId(0), t(0));
        load.note_complete(ObjectId(0), t(10));
        let root_done = load.next_timer().unwrap();
        load.on_timer(root_done);
        // Request and complete both scripts at the same instant.
        for &s in &scripts {
            load.note_requested(s, root_done);
        }
        for &s in &scripts {
            load.note_complete(s, root_done + SimDuration::from_millis(50));
        }
        let first_finish = load.next_timer().unwrap();
        load.on_timer(first_finish);
        let second_finish = load.next_timer().unwrap();
        assert!(
            second_finish > first_finish,
            "second script waits for the evaluator"
        );
    }

    #[test]
    fn stepped_discovery_on_synthesized_site() {
        // Deep pages discover objects in waves, not all at once (Fig. 6).
        let spec = SiteSpec::by_index(7).unwrap();
        let page = synthesize(spec, &mut DetRng::new(3));
        let mut load = PageLoad::new(page, t(0));
        load.note_requested(ObjectId(0), t(0));
        load.note_complete(ObjectId(0), t(100));
        let timer = load.next_timer().unwrap();
        let wave1 = load.on_timer(timer).len();
        let total = load.page().object_count();
        assert!(wave1 > 0);
        assert!(
            wave1 < total - 1,
            "not everything discovered at once: {wave1} of {total}"
        );
    }

    #[test]
    fn full_load_of_all_table1_sites() {
        for idx in 1..=20u32 {
            let spec = SiteSpec::by_index(idx).unwrap();
            let page = synthesize(spec, &mut DetRng::new(u64::from(idx)));
            let load = drive(PageLoad::new(page, t(0)), 50);
            assert!(load.is_complete(), "site {idx} completed");
            assert!(load.timings().iter().all(|t| t.complete.is_some()));
        }
    }

    #[test]
    fn timings_capture_all_boundaries() {
        let page = test_page(2, 500, true);
        let load = drive(PageLoad::new(page, t(0)), 80);
        for timing in load.timings() {
            assert!(timing.discovered.is_some());
            assert!(timing.requested.is_some());
            assert!(timing.first_byte.is_some());
            assert!(timing.complete.is_some());
            assert!(timing.init_time().is_some());
        }
    }

    #[test]
    fn duplicate_completion_is_ignored() {
        let page = test_page(1, 500, true);
        let mut load = PageLoad::new(page, t(0));
        load.note_requested(ObjectId(0), t(0));
        load.note_complete(ObjectId(0), t(10));
        load.note_complete(ObjectId(0), t(20)); // duplicate
        assert_eq!(load.timings()[0].complete, Some(t(10)));
    }

    #[test]
    fn reset_reuses_buffers_and_matches_fresh_load() {
        // A load recycled with `reset` must behave identically to a
        // freshly constructed one on a different page.
        let first = synthesize(SiteSpec::by_index(3).unwrap(), &mut DetRng::new(7));
        let second = synthesize(SiteSpec::by_index(9).unwrap(), &mut DetRng::new(8));
        let mut recycled = drive(PageLoad::new(first, t(0)), 60);
        assert!(recycled.is_complete());
        recycled.reset(second.clone(), t(5));
        let recycled = drive(recycled, 60);
        let fresh = drive(PageLoad::new(second, t(5)), 60);
        assert_eq!(recycled.start_time(), fresh.start_time());
        assert_eq!(recycled.onload_time(), fresh.onload_time());
        assert_eq!(recycled.timings(), fresh.timings());
    }

    #[test]
    fn onload_waits_for_final_evaluation() {
        let page = test_page(0, 500, true); // just the root
        let mut load = PageLoad::new(page, t(0));
        load.note_requested(ObjectId(0), t(0));
        load.note_complete(ObjectId(0), t(10));
        assert!(!load.is_complete(), "parse still pending");
        load.on_timer(t(30));
        assert!(load.is_complete());
        assert_eq!(load.onload_time(), Some(t(30)));
    }
}
