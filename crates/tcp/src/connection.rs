//! The sans-IO TCP connection state machine.
//!
//! A [`TcpConnection`] never touches a socket or a clock of its own: the
//! driver feeds it segments ([`TcpConnection::on_segment`]) and timer
//! expirations ([`TcpConnection::on_timer`]), and drains segments to put on
//! the wire ([`TcpConnection::poll_transmit`]). [`TcpConnection::next_timer`]
//! tells the driver when to call back. This is the quinn-proto/smoltcp
//! idiom: the whole protocol is deterministic and unit-testable.

use crate::buffer::{RecvBuffer, SendBuffer};
use crate::cc::CongestionControl;
use crate::config::TcpConfig;
use crate::metrics_cache::CachedMetrics;
use crate::rtt::RttEstimator;
use crate::segment::{SegFlags, Segment};
use crate::trace::{TcpStats, TcpTrace};
use spdyier_bytes::Payload;
use spdyier_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// TCP connection states (RFC 793 subset relevant to the testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Passive open, awaiting SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We closed first; FIN sent.
    FinWait1,
    /// Our FIN acked; awaiting peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Both sides closed simultaneously.
    Closing,
    /// Peer closed, then we closed; awaiting final ACK.
    LastAck,
    /// Final 2MSL-style hold.
    TimeWait,
}

/// An entry in the retransmission queue.
#[derive(Debug, Clone)]
struct SentSegment {
    seq: u64,
    payload: Payload,
    syn: bool,
    fin: bool,
    time_sent: SimTime,
    retransmitted: bool,
}

impl SentSegment {
    fn seq_space(&self) -> u64 {
        self.payload.len() + u64::from(self.syn) + u64::from(self.fin)
    }
    fn seq_end(&self) -> u64 {
        self.seq + self.seq_space()
    }
}

/// A full TCP endpoint for one connection.
pub struct TcpConnection {
    cfg: TcpConfig,
    state: TcpState,
    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    peer_wnd: u64,
    send_buf: SendBuffer,
    rtx_queue: VecDeque<SentSegment>,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    dup_acks: u32,
    /// `snd_nxt` at loss-recovery entry (fast retransmit or RTO); recovery
    /// ends when acked past it. While set, partial ACKs retransmit the
    /// next hole immediately (NewReno-style go-back-N continuation).
    recover: Option<u64>,
    /// The active recovery episode began with an RTO (cwnd regrows in slow
    /// start during it, unlike dupack-triggered recovery).
    rto_recovery: bool,
    /// Index-0 retransmission pending (fast retransmit or RTO).
    rtx_pending: bool,
    /// `seq_end` of the most recently retransmitted segment. A partial ACK
    /// that advances *past* this boundary means later data was already
    /// received (the stall was spurious) — no further retransmission; an
    /// ACK stalling at it reveals the next genuine hole (what a SACK
    /// scoreboard would tell a 2013 Linux sender).
    last_rtx_end: Option<u64>,
    /// Last instant we put data on the wire (for RFC 2861 idle detection).
    last_send_activity: SimTime,
    /// Persist-timer deadline for zero-window probing.
    persist_deadline: Option<SimTime>,
    /// Window state captured at the last RTO, for DSACK-driven undo:
    /// `(prior_cwnd, prior_ssthresh, expires_at, rto_fires)`. The expiry
    /// bounds how stale a restore can be (the originals' ACKs arrive
    /// before the duplicate report, so clearing on full-ACK would defeat
    /// the undo). `rto_fires` counts timeouts in the episode: undo only
    /// succeeds for single-RTO episodes — with multiple backed-off copies
    /// in flight, Linux's `undo_retrans` bookkeeping rarely reaches zero,
    /// which is why the paper's promotion-length stalls show *persistent*
    /// window collapse.
    undo_state: Option<(u64, u64, SimTime, u32)>,
    /// We received duplicate payload; the next ACK we emit reports it.
    dsack_pending: bool,
    /// Cached RTT metrics to seed once established (never for the SYN).
    pending_rtt_seed: Option<(SimDuration, SimDuration)>,
    need_syn: bool,
    need_syn_ack: bool,
    fin_queued: bool,
    fin_sent: bool,
    // --- receive side ---
    recv: Option<RecvBuffer>,
    /// Sequence of the peer's FIN, once seen.
    fin_rcvd: Option<u64>,
    /// In-order segments received since the last ACK we sent.
    ack_pending: u32,
    /// Pure ACKs owed right now (out-of-order arrivals owe one each, so a
    /// burst of holes produces the duplicate-ACK train fast retransmit
    /// depends on).
    acks_owed: u32,
    delack_deadline: Option<SimTime>,
    time_wait_deadline: Option<SimTime>,
    // --- diagnostics ---
    stats: TcpStats,
    trace: Option<Box<TcpTrace>>,
}

impl std::fmt::Debug for TcpConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpConnection")
            .field("state", &self.state)
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("cwnd", &self.cc.cwnd())
            .finish()
    }
}

impl TcpConnection {
    /// A client endpoint in `Closed`; call [`TcpConnection::connect`].
    pub fn client(cfg: TcpConfig) -> TcpConnection {
        Self::new(cfg, TcpState::Closed)
    }

    /// A passive (server) endpoint awaiting a SYN.
    pub fn server(cfg: TcpConfig) -> TcpConnection {
        Self::new(cfg, TcpState::Listen)
    }

    fn new(cfg: TcpConfig, state: TcpState) -> TcpConnection {
        TcpConnection {
            state,
            snd_una: 0,
            snd_nxt: 0,
            peer_wnd: cfg.mss, // conservatively one segment until learned
            send_buf: SendBuffer::new(),
            rtx_queue: VecDeque::new(),
            cc: cfg.cc.build(cfg.mss, cfg.initial_cwnd()),
            rtt: RttEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto),
            rto_deadline: None,
            rto_backoff: 1,
            dup_acks: 0,
            recover: None,
            rto_recovery: false,
            rtx_pending: false,
            last_rtx_end: None,
            last_send_activity: SimTime::ZERO,
            persist_deadline: None,
            undo_state: None,
            dsack_pending: false,
            pending_rtt_seed: None,
            need_syn: false,
            need_syn_ack: false,
            fin_queued: false,
            fin_sent: false,
            recv: None,
            fin_rcvd: None,
            ack_pending: 0,
            acks_owed: 0,
            delack_deadline: None,
            time_wait_deadline: None,
            stats: TcpStats::default(),
            trace: if cfg.trace {
                Some(Box::default())
            } else {
                None
            },
            cfg,
        }
    }

    /// Begin the active open (client side).
    pub fn connect(&mut self, now: SimTime) {
        assert_eq!(self.state, TcpState::Closed, "connect() from Closed only");
        self.state = TcpState::SynSent;
        self.need_syn = true;
        self.last_send_activity = now;
    }

    /// Seed congestion/RTT state from the host metrics cache
    /// (Linux `tcp_metrics` behaviour; see the paper's §6.2.4). The
    /// ssthresh seed applies immediately; the RTT seed applies once the
    /// handshake completes — the SYN itself always uses the fixed initial
    /// RTO, as in real stacks.
    pub fn apply_cached_metrics(&mut self, m: CachedMetrics) {
        self.cc.set_ssthresh(m.ssthresh);
        self.pending_rtt_seed = Some((m.srtt, m.rttvar));
    }

    fn apply_pending_rtt_seed(&mut self) {
        if let Some((srtt, rttvar)) = self.pending_rtt_seed.take() {
            // Only seed if the handshake itself produced no better sample.
            if self.rtt.samples_taken() == 0 {
                self.rtt.seed(srtt, rttvar);
            }
        }
    }

    /// Snapshot metrics for the cache at close. `None` until an RTT sample
    /// exists.
    pub fn snapshot_metrics(&self) -> Option<CachedMetrics> {
        self.rtt.srtt().map(|srtt| CachedMetrics {
            ssthresh: if self.cc.ssthresh() == u64::MAX {
                self.cc.cwnd()
            } else {
                self.cc.ssthresh()
            },
            srtt,
            rttvar: self.rtt.rttvar(),
        })
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Data may be written and read.
    pub fn is_established(&self) -> bool {
        matches!(self.state, TcpState::Established | TcpState::CloseWait)
    }

    /// Fully shut (including TIME_WAIT expiry).
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed && !self.need_syn
    }

    /// Cumulative counters.
    pub fn stats(&self) -> TcpStats {
        let mut s = self.stats;
        if let Some(recv) = &self.recv {
            s.dup_bytes_rcvd = recv.dup_bytes();
        }
        s
    }

    /// The trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&TcpTrace> {
        self.trace.as_deref()
    }

    /// Move the trace out (for results harvesting at end of run).
    pub fn take_trace(&mut self) -> Option<TcpTrace> {
        self.trace.take().map(|b| *b)
    }

    /// Unacknowledged bytes in flight (sequence space).
    pub fn bytes_in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current congestion window, bytes.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Current slow-start threshold, bytes.
    pub fn ssthresh(&self) -> u64 {
        self.cc.ssthresh()
    }

    /// Current retransmission timeout (with backoff applied).
    pub fn rto(&self) -> SimDuration {
        self.rtt.rto().saturating_mul(u64::from(self.rto_backoff))
    }

    /// The RTT estimator (read-only).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Bytes queued but not yet transmitted.
    pub fn send_queue_len(&self) -> u64 {
        self.send_buf.len()
    }

    /// Free space in the send buffer. Writes are never rejected, but
    /// callers that respect this keep their own schedulers in charge of
    /// ordering instead of dumping everything into TCP at once.
    pub fn send_space(&self) -> u64 {
        self.cfg.send_buffer.saturating_sub(self.send_buf.len())
    }

    /// Queue application data for transmission.
    pub fn write(&mut self, data: Payload) {
        debug_assert!(
            matches!(
                self.state,
                TcpState::SynSent | TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait
            ),
            "write in state {:?}",
            self.state
        );
        self.send_buf.write(data);
    }

    /// Read the next chunk of in-order received data.
    pub fn read(&mut self) -> Option<Payload> {
        self.recv.as_mut()?.read()
    }

    /// In-order bytes available to read.
    pub fn readable(&self) -> u64 {
        self.recv.as_ref().map_or(0, |r| r.readable())
    }

    /// True once the peer's FIN has been consumed (EOF after draining reads).
    pub fn peer_closed(&self) -> bool {
        match (&self.fin_rcvd, &self.recv) {
            (Some(fin_seq), Some(recv)) => recv.rcv_nxt() >= *fin_seq,
            _ => false,
        }
    }

    /// Close the send side (queue a FIN after pending data).
    pub fn close(&mut self, _now: SimTime) {
        if !self.fin_queued
            && matches!(
                self.state,
                TcpState::Established | TcpState::CloseWait | TcpState::SynSent | TcpState::SynRcvd
            )
        {
            self.fin_queued = true;
        }
    }

    /// The cumulative acknowledgment we should advertise.
    fn ack_value(&self) -> u64 {
        match &self.recv {
            None => 0,
            Some(recv) => {
                let mut ack = recv.rcv_nxt();
                if let Some(fin_seq) = self.fin_rcvd {
                    if recv.rcv_nxt() >= fin_seq {
                        ack = fin_seq + 1;
                    }
                }
                ack
            }
        }
    }

    fn recv_window(&self) -> u64 {
        self.recv
            .as_ref()
            .map_or(self.cfg.recv_buffer, |r| r.window())
    }

    fn record_window_trace(&mut self, now: SimTime) {
        let inflight = self.bytes_in_flight();
        let (cwnd, ssthresh, mss) = (self.cc.cwnd(), self.cc.ssthresh(), self.cfg.mss);
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.record_window(now, cwnd, ssthresh, mss, inflight);
        }
    }

    // ------------------------------------------------------------------
    // Segment ingestion
    // ------------------------------------------------------------------

    /// Feed one segment that arrived from the network at `now`.
    pub fn on_segment(&mut self, now: SimTime, seg: Segment) {
        self.stats.segs_rcvd += 1;
        if seg.flags.rst {
            self.state = TcpState::Closed;
            return;
        }
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => self.on_segment_listen(now, seg),
            TcpState::SynSent => self.on_segment_syn_sent(now, seg),
            _ => self.on_segment_synchronized(now, seg),
        }
    }

    fn on_segment_listen(&mut self, now: SimTime, seg: Segment) {
        if seg.flags.syn && !seg.flags.ack {
            self.recv = Some(RecvBuffer::new(seg.seq + 1, self.cfg.recv_buffer));
            self.peer_wnd = seg.wnd;
            self.state = TcpState::SynRcvd;
            self.need_syn_ack = true;
            self.last_send_activity = now;
        }
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, seg: Segment) {
        if seg.flags.syn && seg.flags.ack && seg.ack == self.snd_nxt {
            self.recv = Some(RecvBuffer::new(seg.seq + 1, self.cfg.recv_buffer));
            self.peer_wnd = seg.wnd;
            self.accept_ack(now, seg.ack);
            self.state = TcpState::Established;
            self.apply_pending_rtt_seed();
            self.acks_owed = self.acks_owed.max(1);
        }
    }

    fn on_segment_synchronized(&mut self, now: SimTime, seg: Segment) {
        // ACK processing first (may complete the handshake in SynRcvd).
        if seg.flags.ack {
            self.process_ack(now, &seg);
        }
        // Payload.
        if !seg.payload.is_empty() {
            self.process_data(now, &seg);
        }
        // FIN.
        if seg.flags.fin {
            self.process_fin(now, &seg);
        }
    }

    fn process_ack(&mut self, now: SimTime, seg: &Segment) {
        self.peer_wnd = seg.wnd;
        if seg.dsack {
            self.apply_undo(now);
        }
        if self.peer_wnd > 0 {
            self.persist_deadline = None;
        }
        if seg.ack > self.snd_nxt {
            return; // acks data we never sent; ignore
        }
        if seg.ack > self.snd_una {
            self.accept_ack(now, seg.ack);
            if self.state == TcpState::SynRcvd {
                self.state = TcpState::Established;
                self.apply_pending_rtt_seed();
            }
            self.maybe_complete_close(now);
        } else if seg.ack == self.snd_una
            && seg.payload.is_empty()
            && !seg.flags.fin
            && !seg.flags.syn
            && !self.rtx_queue.is_empty()
        {
            // Duplicate ACK.
            self.dup_acks += 1;
            self.stats.dup_acks_in += 1;
            if self.dup_acks == self.cfg.dupack_threshold && self.recover.is_none() {
                self.enter_fast_retransmit(now);
            }
        }
    }

    /// Handle `ack` advancing `snd_una`.
    fn accept_ack(&mut self, now: SimTime, ack: u64) {
        // cwnd validation (RFC 2861 §3 / Linux `tcp_is_cwnd_limited`):
        // the window only grows when the sender was actually using it.
        let inflight_before = self.snd_nxt - self.snd_una;
        let cwnd_limited = inflight_before.saturating_mul(2) >= self.cc.cwnd();
        let newly_acked = ack - self.snd_una;
        self.snd_una = ack;
        self.dup_acks = 0;
        self.rto_backoff = 1;
        // Expire stale undo candidates: if no DSACK arrived within the
        // window, the retransmission filled a genuine hole.
        if let Some((_, _, expires_at, _)) = self.undo_state {
            if now > expires_at {
                self.undo_state = None;
            }
        }

        // Retire fully acked retransmission-queue entries; sample RTT per
        // Karn's rule (only never-retransmitted segments).
        let mut rtt_sample: Option<SimDuration> = None;
        while let Some(front) = self.rtx_queue.front() {
            if front.seq_end() <= ack {
                let e = self.rtx_queue.pop_front().expect("peeked");
                if !e.retransmitted {
                    rtt_sample = now.checked_since(e.time_sent);
                }
            } else {
                break;
            }
        }
        // Partial ACK into the middle of the front segment: trim it.
        if let Some(front) = self.rtx_queue.front_mut() {
            if front.seq < ack {
                let trim = ack - front.seq;
                if trim <= front.payload.len() {
                    front.payload.advance(trim);
                    front.seq = ack;
                }
            }
        }
        if let Some(rtt) = rtt_sample {
            self.rtt.sample(rtt);
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.rtt_samples_ms.push(now, rtt.as_secs_f64() * 1e3);
            }
        }

        // Recovery bookkeeping (NewReno + SACK-informed hole detection).
        match self.recover {
            Some(recover_point)
                if ack < recover_point
                // Partial ACK: retransmit the next hole — but only when the
                // ACK stalls at (or before) the last retransmission's
                // boundary. An ACK sailing past it means the receiver
                // already holds the following data: the timeout was
                // spurious and nothing else is missing yet.
                && self.last_rtx_end.is_none_or(|end| ack <= end) =>
            {
                self.rtx_pending = true;
            }
            Some(_) => {
                self.recover = None;
                self.rto_recovery = false;
                self.last_rtx_end = None;
            }
            None => {}
        }

        // cwnd grows on ACKs outside recovery, and also during RTO
        // recovery (slow-start regrowth, as in Linux); dupack-triggered
        // fast recovery holds the window at the reduced value. Growth
        // requires the sender to have been cwnd-limited.
        if cwnd_limited && (self.recover.is_none() || self.rto_recovery) {
            self.cc.on_ack(now, newly_acked, self.rtt.srtt());
        }

        // Restart or disarm the RTO.
        if self.rtx_queue.is_empty() {
            self.rto_deadline = None;
        } else {
            self.rto_deadline = Some(now + self.rto());
        }
        self.record_window_trace(now);
    }

    /// Linux's Eifel/DSACK undo: the peer saw duplicate data, so the RTO
    /// that caused the last collapse was spurious — restore the window.
    fn apply_undo(&mut self, now: SimTime) {
        if let Some((cwnd0, ssthresh0, _, _fires)) = self.undo_state.take() {
            self.cc.undo(cwnd0, ssthresh0);
            self.rto_backoff = 1;
            self.recover = None;
            self.rto_recovery = false;
            self.stats.spurious_undos += 1;
            self.record_window_trace(now);
        }
    }

    fn enter_fast_retransmit(&mut self, now: SimTime) {
        self.recover = Some(self.snd_nxt);
        self.cc.on_loss_event(now);
        self.rtx_pending = true;
        self.stats.fast_retransmits += 1;
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.retransmits.mark(now);
        }
        self.record_window_trace(now);
    }

    fn process_data(&mut self, now: SimTime, seg: &Segment) {
        let Some(recv) = self.recv.as_mut() else {
            return;
        };
        let dup_before = recv.dup_bytes();
        let advanced = recv.ingest(seg.seq, seg.payload.clone());
        if recv.dup_bytes() > dup_before {
            // Duplicate payload received: report it (RFC 2883 DSACK).
            self.dsack_pending = true;
        }
        if advanced {
            self.stats.bytes_rcvd += seg.payload.len(); // approximation: counts the advancing segment
        }
        if !advanced || recv.has_ooo() {
            // Out-of-order or duplicate: owe one immediate (duplicate) ACK
            // per arrival — the duplicate-ACK train fast retransmit needs.
            self.acks_owed += 1;
            self.ack_pending = 0;
            self.delack_deadline = None;
        } else {
            self.ack_pending += 1;
            if self.ack_pending >= 2 {
                // Ack every second in-order segment per RFC 5681.
                self.acks_owed = self.acks_owed.max(1);
                self.ack_pending = 0;
                self.delack_deadline = None;
            } else if self.delack_deadline.is_none() {
                self.delack_deadline = Some(now + self.cfg.delayed_ack);
            }
        }
    }

    fn process_fin(&mut self, now: SimTime, seg: &Segment) {
        let fin_seq = seg.seq + seg.len();
        if self.fin_rcvd.is_none() {
            self.fin_rcvd = Some(fin_seq);
        }
        let consumed = self.recv.as_ref().is_some_and(|r| r.rcv_nxt() >= fin_seq);
        if consumed {
            self.acks_owed = self.acks_owed.max(1);
            self.delack_deadline = None;
            match self.state {
                TcpState::Established => self.state = TcpState::CloseWait,
                TcpState::FinWait1 => {
                    // Our FIN not yet acked: simultaneous close.
                    self.state = TcpState::Closing;
                }
                TcpState::FinWait2 => {
                    self.state = TcpState::TimeWait;
                    self.time_wait_deadline = Some(now + self.cfg.time_wait);
                }
                _ => {}
            }
        }
    }

    fn maybe_complete_close(&mut self, now: SimTime) {
        let fin_acked = self.fin_sent && self.snd_una == self.snd_nxt;
        if !fin_acked {
            return;
        }
        match self.state {
            TcpState::FinWait1 => self.state = TcpState::FinWait2,
            TcpState::Closing => {
                self.state = TcpState::TimeWait;
                self.time_wait_deadline = Some(now + self.cfg.time_wait);
            }
            TcpState::LastAck => self.state = TcpState::Closed,
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    /// Produce the next segment to put on the wire, if any. Call until it
    /// returns `None`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Segment> {
        if let Some(seg) = self.poll_handshake(now) {
            return Some(self.finish_emit(now, seg));
        }
        if self.rtx_pending {
            if let Some(seg) = self.emit_retransmit(now) {
                return Some(self.finish_emit(now, seg));
            }
        }
        if let Some(seg) = self.poll_data(now) {
            return Some(self.finish_emit(now, seg));
        }
        if let Some(seg) = self.poll_fin(now) {
            return Some(self.finish_emit(now, seg));
        }
        if self.acks_owed > 0 && self.recv.is_some() {
            self.acks_owed -= 1;
            let seg = self.pure_ack();
            return Some(self.finish_emit_ack_only(seg));
        }
        None
    }

    /// Book-keeping for a pure ACK: it does not clear further owed ACKs
    /// (a duplicate-ACK train must come out one per owed arrival).
    fn finish_emit_ack_only(&mut self, mut seg: Segment) -> Segment {
        self.stats.segs_sent += 1;
        self.ack_pending = 0;
        self.delack_deadline = None;
        if self.dsack_pending {
            seg.dsack = true;
            self.dsack_pending = false;
        }
        seg
    }

    fn finish_emit(&mut self, now: SimTime, mut seg: Segment) -> Segment {
        self.stats.segs_sent += 1;
        // Any data/flag-bearing segment carries the latest cumulative ACK,
        // satisfying every pending-ACK obligation at once.
        if seg.flags.ack {
            self.ack_pending = 0;
            self.acks_owed = 0;
            self.delack_deadline = None;
            if self.dsack_pending {
                seg.dsack = true;
                self.dsack_pending = false;
            }
        }
        if !seg.payload.is_empty() || seg.flags.syn || seg.flags.fin {
            self.last_send_activity = now;
            if self.rto_deadline.is_none() {
                self.rto_deadline = Some(now + self.rto());
            }
        }
        seg
    }

    fn poll_handshake(&mut self, now: SimTime) -> Option<Segment> {
        if self.need_syn {
            self.need_syn = false;
            self.snd_nxt = 1;
            self.rtx_queue.push_back(SentSegment {
                seq: 0,
                payload: Payload::new(),
                syn: true,
                fin: false,
                time_sent: now,
                retransmitted: false,
            });
            return Some(Segment {
                seq: 0,
                ack: 0,
                flags: SegFlags::SYN,
                wnd: self.cfg.recv_buffer,
                payload: Payload::new(),
                retransmit: false,
                dsack: false,
            });
        }
        if self.need_syn_ack {
            self.need_syn_ack = false;
            self.snd_nxt = 1;
            self.rtx_queue.push_back(SentSegment {
                seq: 0,
                payload: Payload::new(),
                syn: true,
                fin: false,
                time_sent: now,
                retransmitted: false,
            });
            return Some(Segment {
                seq: 0,
                ack: self.ack_value(),
                flags: SegFlags::SYN_ACK,
                wnd: self.recv_window(),
                payload: Payload::new(),
                retransmit: false,
                dsack: false,
            });
        }
        None
    }

    fn emit_retransmit(&mut self, now: SimTime) -> Option<Segment> {
        self.rtx_pending = false;
        let ack_value = self.ack_value();
        let wnd = self.recv_window();
        let entry = self.rtx_queue.front_mut()?;
        entry.retransmitted = true;
        entry.time_sent = now;
        self.last_rtx_end = Some(entry.seq_end());
        self.stats.retransmissions += 1;
        self.stats.bytes_retransmitted += entry.payload.len();
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.retransmits.mark(now);
        }
        let entry = self.rtx_queue.front().expect("still there");
        Some(Segment {
            seq: entry.seq,
            ack: ack_value,
            flags: SegFlags {
                syn: entry.syn,
                ack: !entry.syn || entry.seq > 0 || self.recv.is_some(),
                fin: entry.fin,
                rst: false,
            },
            wnd,
            payload: entry.payload.clone(),
            retransmit: true,
            dsack: false,
        })
    }

    fn usable_window(&self) -> u64 {
        self.cc.cwnd().min(self.peer_wnd)
    }

    /// RFC 2861: before sending new data after an idle period longer than
    /// one RTO, collapse cwnd back to the initial window. The paper's fix
    /// additionally resets the RTT estimate.
    fn maybe_idle_restart(&mut self, now: SimTime) {
        if self.bytes_in_flight() > 0 {
            return;
        }
        let idle = now.saturating_since(self.last_send_activity);
        if idle <= self.rtt.rto() {
            return;
        }
        if self.cfg.slow_start_after_idle {
            self.cc.on_idle_restart(now);
            self.stats.idle_restarts += 1;
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.idle_restarts.mark(now);
            }
            self.record_window_trace(now);
        }
        if self.cfg.reset_rtt_after_idle {
            self.rtt.reset_to(self.cfg.post_idle_rto);
        }
    }

    fn poll_data(&mut self, now: SimTime) -> Option<Segment> {
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::Closing
        ) {
            return None;
        }
        if self.send_buf.is_empty() {
            return None;
        }
        self.maybe_idle_restart(now);
        let in_flight = self.bytes_in_flight();
        let usable = self.usable_window();
        if self.peer_wnd == 0 {
            // Zero-window: arm the persist timer; probes are sent from
            // `on_timer`.
            if self.persist_deadline.is_none() && in_flight == 0 {
                self.persist_deadline = Some(now + self.rto());
            }
            return None;
        }
        if in_flight >= usable {
            return None;
        }
        let room = usable - in_flight;
        let chunk = self.cfg.mss.min(room).min(self.send_buf.len());
        if chunk == 0 {
            return None;
        }
        // Nagle (RFC 896): a sub-MSS segment waits while data is
        // outstanding; it flushes when everything is acknowledged.
        if self.cfg.nagle && chunk < self.cfg.mss && in_flight > 0 {
            return None;
        }
        Some(self.emit_data_segment(now, chunk))
    }

    fn emit_data_segment(&mut self, now: SimTime, chunk: u64) -> Segment {
        let payload = self.send_buf.pull(chunk);
        let seq = self.snd_nxt;
        self.snd_nxt += payload.len();
        self.stats.bytes_sent += payload.len();
        self.rtx_queue.push_back(SentSegment {
            seq,
            payload: payload.clone(),
            syn: false,
            fin: false,
            time_sent: now,
            retransmitted: false,
        });
        self.record_window_trace(now);
        Segment {
            seq,
            ack: self.ack_value(),
            flags: SegFlags::ACK,
            wnd: self.recv_window(),
            payload,
            retransmit: false,
            dsack: false,
        }
    }

    fn poll_fin(&mut self, now: SimTime) -> Option<Segment> {
        if !self.fin_queued || self.fin_sent || !self.send_buf.is_empty() {
            return None;
        }
        if !matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::SynRcvd
        ) {
            return None;
        }
        let seq = self.snd_nxt;
        self.snd_nxt += 1;
        self.fin_sent = true;
        self.state = match self.state {
            TcpState::CloseWait => TcpState::LastAck,
            _ => TcpState::FinWait1,
        };
        self.rtx_queue.push_back(SentSegment {
            seq,
            payload: Payload::new(),
            syn: false,
            fin: true,
            time_sent: now,
            retransmitted: false,
        });
        Some(Segment {
            seq,
            ack: self.ack_value(),
            flags: SegFlags::FIN_ACK,
            wnd: self.recv_window(),
            payload: Payload::new(),
            retransmit: false,
            dsack: false,
        })
    }

    fn pure_ack(&self) -> Segment {
        Segment {
            seq: self.snd_nxt,
            ack: self.ack_value(),
            flags: SegFlags::ACK,
            wnd: self.recv_window(),
            payload: Payload::new(),
            retransmit: false,
            dsack: false,
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// The earliest instant at which [`TcpConnection::on_timer`] must run.
    pub fn next_timer(&self) -> Option<SimTime> {
        [
            self.rto_deadline,
            self.delack_deadline,
            self.persist_deadline,
            self.time_wait_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Fire all timers that have expired by `now`.
    pub fn on_timer(&mut self, now: SimTime) {
        if let Some(d) = self.delack_deadline {
            if d <= now {
                self.delack_deadline = None;
                if self.ack_pending > 0 {
                    self.acks_owed = self.acks_owed.max(1);
                }
            }
        }
        if let Some(d) = self.time_wait_deadline {
            if d <= now {
                self.time_wait_deadline = None;
                self.state = TcpState::Closed;
            }
        }
        if let Some(d) = self.persist_deadline {
            if d <= now {
                self.persist_deadline = None;
                if self.peer_wnd == 0 && !self.send_buf.is_empty() {
                    // Zero-window probe: force out one byte.
                    self.peer_wnd = 1;
                    // Next poll_transmit will send a 1-byte segment; the
                    // peer's next ACK restores the true window.
                }
            }
        }
        if let Some(d) = self.rto_deadline {
            if d <= now {
                self.on_rto_fired(now);
            }
        }
    }

    fn on_rto_fired(&mut self, now: SimTime) {
        if self.rtx_queue.is_empty() {
            self.rto_deadline = None;
            return;
        }
        self.stats.timeouts += 1;
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.timeouts.mark(now);
        }
        // Capture pre-collapse state once per loss episode so a DSACK from
        // the receiver (spurious-timeout evidence) can undo the damage.
        match &mut self.undo_state {
            Some((_, _, exp, fires)) if now <= *exp => *fires += 1,
            _ => {
                self.undo_state = Some((
                    self.cc.cwnd(),
                    self.cc.ssthresh(),
                    now + SimDuration::from_secs(10),
                    1,
                ));
            }
        }
        self.cc.on_rto(now);
        // Enter RTO loss recovery: everything outstanding may be lost, and
        // each partial ACK must pull the next segment out immediately.
        self.recover = Some(self.snd_nxt);
        self.rto_recovery = true;
        self.dup_acks = 0;
        self.rto_backoff = self.rto_backoff.saturating_mul(2).min(64);
        self.rtx_pending = true;
        self.rto_deadline = Some(now + self.rto());
        self.record_window_trace(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcAlgorithm;

    fn cfg() -> TcpConfig {
        TcpConfig {
            trace: true,
            ..TcpConfig::default()
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Drive two connections against each other over a perfect,
    /// fixed-latency pipe, reading both applications promptly. Returns the
    /// clock at quiescence plus the bytes each side received.
    fn converse_rx(
        a: &mut TcpConnection,
        b: &mut TcpConnection,
        start: SimTime,
        latency: SimDuration,
    ) -> (SimTime, Vec<u8>, Vec<u8>) {
        let mut now = start;
        let mut a_rx = Vec::new();
        let mut b_rx = Vec::new();
        // (deliver_at, to_a?, segment)
        let mut wire: Vec<(SimTime, bool, Segment)> = Vec::new();
        for _ in 0..100_000 {
            // Drain both endpoints (segments and application reads).
            while let Some(seg) = a.poll_transmit(now) {
                wire.push((now + latency, false, seg));
            }
            while let Some(seg) = b.poll_transmit(now) {
                wire.push((now + latency, true, seg));
            }
            while let Some(chunk) = a.read() {
                a_rx.extend(chunk.to_vec());
            }
            while let Some(chunk) = b.read() {
                b_rx.extend(chunk.to_vec());
            }
            // Next event: wire delivery or timer.
            let next_wire = wire.iter().map(|(at, _, _)| *at).min();
            let next_timer = [a.next_timer(), b.next_timer()].into_iter().flatten().min();
            let next = match (next_wire, next_timer) {
                (Some(w), Some(tm)) => w.min(tm),
                (Some(w), None) => w,
                (None, Some(tm)) => tm,
                (None, None) => return (now, a_rx, b_rx),
            };
            now = next.max(now);
            // Deliver due segments.
            let mut i = 0;
            while i < wire.len() {
                if wire[i].0 <= now {
                    let (_, to_a, seg) = wire.remove(i);
                    if to_a {
                        a.on_segment(now, seg);
                    } else {
                        b.on_segment(now, seg);
                    }
                } else {
                    i += 1;
                }
            }
            a.on_timer(now);
            b.on_timer(now);
        }
        panic!("conversation did not quiesce");
    }

    /// `converse_rx` discarding received data.
    fn converse(
        a: &mut TcpConnection,
        b: &mut TcpConnection,
        start: SimTime,
        latency: SimDuration,
    ) -> SimTime {
        converse_rx(a, b, start, latency).0
    }

    fn handshake() -> (TcpConnection, TcpConnection, SimTime) {
        let mut c = TcpConnection::client(cfg());
        let mut s = TcpConnection::server(cfg());
        c.connect(SimTime::ZERO);
        let now = converse(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(50));
        assert!(c.is_established());
        (c, s, now)
    }

    #[test]
    fn three_way_handshake() {
        let (c, s, now) = handshake();
        assert_eq!(c.state(), TcpState::Established);
        assert_eq!(s.state(), TcpState::Established);
        // One RTT sample from the handshake on the client.
        assert!(c.rtt().srtt().is_some());
        assert!(now >= t(100), "two 50 ms hops");
    }

    #[test]
    fn data_transfer_small() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from("hello, tcp!"));
        let (_, _, got) = converse_rx(&mut c, &mut s, now, SimDuration::from_millis(50));
        assert_eq!(&got[..], b"hello, tcp!");
        assert!(s.read().is_none());
    }

    #[test]
    fn bulk_transfer_segments_at_mss() {
        let (mut c, mut s, now) = handshake();
        let payload = vec![0xAB_u8; 100_000];
        c.write(Payload::from(payload.clone()));
        let (_, _, got) = converse_rx(&mut c, &mut s, now, SimDuration::from_millis(50));
        assert_eq!(got, payload);
        assert_eq!(c.stats().retransmissions, 0, "lossless pipe");
        // All payload-bearing segments were MSS-bounded.
        assert!(c.stats().segs_sent >= 100_000 / 1380);
    }

    #[test]
    fn bidirectional_transfer() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from(vec![1u8; 30_000]));
        s.write(Payload::from(vec![2u8; 30_000]));
        let (_, c_rx, s_rx) = converse_rx(&mut c, &mut s, now, SimDuration::from_millis(50));
        assert_eq!(s_rx.len(), 30_000);
        assert_eq!(c_rx.len(), 30_000);
        assert!(s_rx.iter().all(|&b| b == 1));
        assert!(c_rx.iter().all(|&b| b == 2));
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from("bye"));
        c.close(now);
        let (now, _, s_rx) = converse_rx(&mut c, &mut s, now, SimDuration::from_millis(50));
        assert!(s.peer_closed());
        assert_eq!(&s_rx[..], b"bye");
        s.close(now);
        converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        assert!(matches!(c.state(), TcpState::TimeWait | TcpState::Closed));
        assert_eq!(s.state(), TcpState::Closed);
    }

    #[test]
    fn cwnd_grows_during_bulk_transfer() {
        let (mut c, mut s, now) = handshake();
        let initial = c.cwnd();
        c.write(Payload::from(vec![0u8; 500_000]));
        converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        assert!(c.cwnd() > initial, "slow start grew the window");
    }

    #[test]
    fn rto_fires_when_peer_vanishes() {
        let (mut c, _s, now) = handshake();
        c.write(Payload::from(vec![0u8; 1380]));
        let seg = c.poll_transmit(now).expect("one segment");
        assert!(!seg.retransmit);
        // Peer never answers. Walk the timers.
        let mut now;
        let mut rtx_seen = 0;
        for _ in 0..6 {
            let deadline = c.next_timer().expect("rto armed");
            now = deadline;
            c.on_timer(now);
            if let Some(seg) = c.poll_transmit(now) {
                if seg.retransmit {
                    rtx_seen += 1;
                }
            }
        }
        assert!(
            rtx_seen >= 3,
            "retransmissions under total loss, saw {rtx_seen}"
        );
        assert!(c.stats().timeouts >= 3);
        assert!(c.rto() > SimDuration::from_secs(1), "exponential backoff");
        assert_eq!(c.cwnd(), 1380, "collapsed to one segment");
    }

    #[test]
    fn fast_retransmit_on_triple_dupack() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from(vec![7u8; 1380 * 8]));
        // Pull all segments; drop the first, deliver the rest.
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_transmit(now) {
            segs.push(seg);
        }
        assert!(
            segs.len() >= 4,
            "need at least 4 segments, got {}",
            segs.len()
        );
        for seg in segs.iter().skip(1) {
            s.on_segment(now, seg.clone());
        }
        // Collect the duplicate ACKs the receiver generated.
        let mut acks = Vec::new();
        while let Some(a) = s.poll_transmit(now) {
            acks.push(a);
        }
        assert!(acks.len() >= 3, "dupacks expected, got {}", acks.len());
        let cwnd_before = c.cwnd();
        for a in acks {
            c.on_segment(now, a);
        }
        // Fast retransmit of the dropped head segment.
        let rtx = c.poll_transmit(now).expect("fast retransmit");
        assert!(rtx.retransmit);
        assert_eq!(rtx.seq, segs[0].seq);
        assert!(c.cwnd() < cwnd_before, "multiplicative decrease");
        assert_eq!(c.stats().fast_retransmits, 1);
        assert_eq!(c.stats().timeouts, 0, "no RTO needed");
        // Deliver it; receiver assembles everything.
        s.on_segment(now, rtx);
        let total: u64 = std::iter::from_fn(|| s.read()).map(|b| b.len()).sum();
        assert_eq!(total, 1380 * 8);
    }

    #[test]
    fn idle_restart_collapses_cwnd_but_keeps_rto_tight() {
        // The paper's core pathology, §5.5.1.
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from(vec![0u8; 300_000]));
        let now = converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        let grown = c.cwnd();
        assert!(grown > c.cfg.initial_cwnd());
        let tight_rto = c.rto();
        assert!(tight_rto < SimDuration::from_millis(600));
        // Go idle for 10 s, then send again.
        let later = now + SimDuration::from_secs(10);
        c.write(Payload::from(vec![0u8; 1380]));
        let _seg = c.poll_transmit(later).expect("post-idle segment");
        assert_eq!(c.cwnd(), c.cfg.initial_cwnd(), "cwnd collapsed to IW");
        assert_eq!(c.stats().idle_restarts, 1);
        // The flaw: the RTO is still the tight active-period estimate.
        assert_eq!(c.rto(), tight_rto, "RTT estimate survived the idle period");
    }

    #[test]
    fn reset_rtt_after_idle_fix_restores_initial_rto() {
        // The paper's §6.2.1 proposal.
        let mut config = cfg();
        config.reset_rtt_after_idle = true;
        let mut c = TcpConnection::client(config);
        let mut s = TcpConnection::server(cfg());
        c.connect(SimTime::ZERO);
        let now = converse(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(50));
        c.write(Payload::from(vec![0u8; 100_000]));
        let now = converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        assert!(c.rto() < SimDuration::from_millis(600));
        let later = now + SimDuration::from_secs(10);
        c.write(Payload::from(vec![0u8; 1380]));
        let _ = c.poll_transmit(later);
        assert_eq!(
            c.rto(),
            SimDuration::from_secs(3),
            "RTO at the multi-second post-idle value, covering any promotion delay"
        );
    }

    #[test]
    fn slow_start_after_idle_disabled_keeps_cwnd() {
        // Fig. 15's toggle.
        let mut config = cfg();
        config.slow_start_after_idle = false;
        let mut c = TcpConnection::client(config);
        let mut s = TcpConnection::server(cfg());
        c.connect(SimTime::ZERO);
        let now = converse(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(50));
        c.write(Payload::from(vec![0u8; 300_000]));
        let now = converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        let grown = c.cwnd();
        let later = now + SimDuration::from_secs(10);
        c.write(Payload::from(vec![0u8; 1380]));
        let _ = c.poll_transmit(later);
        assert_eq!(c.cwnd(), grown, "window preserved across idle");
        assert_eq!(c.stats().idle_restarts, 0);
    }

    #[test]
    fn spurious_timeout_when_acks_stall_longer_than_rto() {
        // Reproduce the promotion-delay pathology at the unit level: the
        // peer receives everything, but its ACKs arrive after our RTO.
        let (mut c, mut s, now) = handshake();
        // Converge the RTT estimate.
        c.write(Payload::from(vec![0u8; 100_000]));
        let now = converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        // Idle 10 s (device demotes to IDLE in the real network).
        let later = now + SimDuration::from_secs(10);
        c.write(Payload::from(vec![0u8; 1380 * 2]));
        let mut inflight = Vec::new();
        while let Some(seg) = c.poll_transmit(later) {
            inflight.push(seg);
        }
        // A 2 s promotion delays delivery beyond the tight RTO.
        let rto_deadline = c.next_timer().expect("armed");
        assert!(
            rto_deadline < later + SimDuration::from_millis(2_000),
            "tight RTO fires before the 2 s promotion completes"
        );
        c.on_timer(rto_deadline);
        let rtx = c
            .poll_transmit(rto_deadline)
            .expect("spurious retransmission");
        assert!(rtx.retransmit);
        assert_eq!(c.stats().timeouts, 1);
        // Deliver originals + retransmission after the promotion.
        let delivery = later + SimDuration::from_millis(2_050);
        for seg in inflight {
            s.on_segment(delivery, seg.clone());
        }
        s.on_segment(delivery, rtx);
        // The receiver saw duplicate payload — the spurious signature.
        assert!(
            s.stats().dup_bytes_rcvd > 0,
            "receiver-observed duplicate bytes"
        );
    }

    #[test]
    fn delayed_ack_fires_on_timer() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from(vec![0u8; 100]));
        let seg = c.poll_transmit(now).unwrap();
        s.on_segment(now, seg);
        // One small segment: no immediate ACK...
        assert!(s.poll_transmit(now).is_none(), "delayed ACK holds");
        let deadline = s.next_timer().expect("delack armed");
        assert_eq!(deadline, now + SimDuration::from_millis(40));
        s.on_timer(deadline);
        let ack = s.poll_transmit(deadline).expect("delayed ACK out");
        assert!(ack.is_empty() && ack.flags.ack);
    }

    #[test]
    fn second_segment_acks_immediately() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from(vec![0u8; 1380 * 2]));
        let s1 = c.poll_transmit(now).unwrap();
        let s2 = c.poll_transmit(now).unwrap();
        let expected_ack = s2.seq + s2.len();
        s.on_segment(now, s1);
        s.on_segment(now, s2);
        let ack = s.poll_transmit(now).expect("RFC 5681 ack-every-2");
        assert_eq!(ack.ack, expected_ack);
    }

    #[test]
    fn receive_window_limits_sender() {
        let mut small = cfg();
        small.recv_buffer = 4096;
        let mut c = TcpConnection::client(cfg());
        let mut s = TcpConnection::server(small);
        c.connect(SimTime::ZERO);
        let now = converse(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(50));
        c.write(Payload::from(vec![0u8; 100_000]));
        // Drive manually without reading at the server: sender must stall.
        let mut wire: Vec<Segment> = Vec::new();
        let mut moved = 0u64;
        for step in 0..200 {
            let tnow = now + SimDuration::from_millis(step * 10);
            while let Some(seg) = c.poll_transmit(tnow) {
                wire.push(seg);
            }
            for seg in wire.drain(..) {
                moved += seg.len();
                s.on_segment(tnow, seg);
            }
            while let Some(a) = s.poll_transmit(tnow) {
                c.on_segment(tnow, a);
            }
            c.on_timer(tnow);
            s.on_timer(tnow);
        }
        assert!(
            moved <= 4096 + 2 * 1380,
            "sender respected the 4 KiB advertised window, moved {moved}"
        );
        // A handful of 1-byte zero-window probes may land past capacity.
        assert!(s.readable() <= 4096 + 64, "readable {}", s.readable());
    }

    #[test]
    fn trace_records_window_dynamics() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from(vec![0u8; 200_000]));
        converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        let trace = c.trace().expect("tracing enabled");
        assert!(!trace.cwnd_segments.is_empty());
        assert!(trace.cwnd_segments.max_value().unwrap() > 10.0);
        assert!(!trace.inflight_bytes.is_empty());
    }

    #[test]
    fn metrics_snapshot_roundtrip() {
        let (mut c, mut s, now) = handshake();
        c.write(Payload::from(vec![0u8; 50_000]));
        converse(&mut c, &mut s, now, SimDuration::from_millis(50));
        let m = c.snapshot_metrics().expect("sampled RTT");
        assert!(m.srtt >= SimDuration::from_millis(90));
        let mut fresh = TcpConnection::client(cfg().with_cc(CcAlgorithm::Reno));
        fresh.apply_cached_metrics(m);
        assert_eq!(fresh.ssthresh(), m.ssthresh.max(2 * 1380));
        // The RTT seed is deferred past the handshake: the SYN must use the
        // fixed initial RTO (real stacks never seed the SYN timer).
        assert_eq!(fresh.rtt().srtt(), None);
        assert_eq!(fresh.rto(), SimDuration::from_secs(1));
        let mut peer = TcpConnection::server(cfg());
        fresh.connect(SimTime::ZERO);
        converse(
            &mut fresh,
            &mut peer,
            SimTime::ZERO,
            SimDuration::from_millis(10),
        );
        assert!(fresh.is_established());
        // The handshake itself samples the RTT, which beats the stale seed.
        assert!(
            fresh.rtt().srtt().is_some(),
            "estimate present after establishment"
        );
    }

    #[test]
    fn nagle_holds_small_segments_while_unacked() {
        let mut config = cfg();
        config.nagle = true;
        let mut c = TcpConnection::client(config);
        let mut s = TcpConnection::server(cfg());
        c.connect(SimTime::ZERO);
        let now = converse(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(50));
        // First small write goes out immediately (nothing outstanding).
        c.write(Payload::from("first"));
        let seg1 = c.poll_transmit(now).expect("first small segment sent");
        assert_eq!(seg1.len(), 5);
        // Second small write must wait for the ACK.
        c.write(Payload::from("second"));
        assert!(c.poll_transmit(now).is_none(), "Nagle holds the tinygram");
        // Deliver and ACK the first; the second flushes.
        s.on_segment(now + SimDuration::from_millis(50), seg1);
        s.on_timer(now + SimDuration::from_millis(100));
        let ack = s
            .poll_transmit(now + SimDuration::from_millis(100))
            .expect("ack");
        c.on_segment(now + SimDuration::from_millis(150), ack);
        let seg2 = c
            .poll_transmit(now + SimDuration::from_millis(150))
            .expect("released after ACK");
        assert_eq!(seg2.len(), 6);
    }

    #[test]
    fn nagle_never_delays_full_segments() {
        let mut config = cfg();
        config.nagle = true;
        let mut c = TcpConnection::client(config);
        let mut s = TcpConnection::server(cfg());
        c.connect(SimTime::ZERO);
        let now = converse(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(50));
        c.write(Payload::from(vec![0u8; 1380 * 3]));
        let mut sent = 0;
        while let Some(seg) = c.poll_transmit(now) {
            assert_eq!(seg.len(), 1380, "full MSS segments flow freely");
            sent += 1;
        }
        assert_eq!(sent, 3);
    }

    #[test]
    fn nodelay_default_sends_tinygrams_back_to_back() {
        let (mut c, _s, now) = handshake();
        c.write(Payload::from("a"));
        assert!(c.poll_transmit(now).is_some());
        c.write(Payload::from("b"));
        assert!(
            c.poll_transmit(now).is_some(),
            "TCP_NODELAY (the browser default) sends immediately"
        );
    }

    #[test]
    fn reno_and_cubic_both_complete_transfers() {
        for algo in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
            let mut c = TcpConnection::client(cfg().with_cc(algo));
            let mut s = TcpConnection::server(cfg());
            c.connect(SimTime::ZERO);
            let now = converse(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(30));
            c.write(Payload::from(vec![9u8; 250_000]));
            let (_, _, s_rx) = converse_rx(&mut c, &mut s, now, SimDuration::from_millis(30));
            assert_eq!(s_rx.len(), 250_000, "{algo:?}");
        }
    }
}

#[cfg(test)]
mod undo_tests {
    use super::tests_support::*;
    use super::*;
    use crate::metrics_cache::CachedMetrics;

    /// Converge a sender, idle it, fire `n` RTOs against a silent network,
    /// then deliver everything (originals + spurious copies) and the
    /// resulting DSACK-bearing ACKs. Returns the connection afterwards
    /// plus its pre-collapse window state.
    fn spurious_episode(rto_fires: usize) -> (TcpConnection, u64, u64) {
        let (mut c, mut s, now) = handshake_pair();
        c.write(Payload::from(vec![0u8; 200_000]));
        let now = converse_pair(&mut c, &mut s, now, SimDuration::from_millis(50));
        // Give the episode a finite prior ssthresh (as a connection that
        // has seen loss, or was cache-seeded, would have).
        c.apply_cached_metrics(CachedMetrics {
            ssthresh: 80 * 1380,
            srtt: SimDuration::from_millis(100),
            rttvar: SimDuration::from_millis(20),
        });
        let grown_cwnd = c.cwnd();
        let grown_ssthresh = c.ssthresh();
        assert_eq!(grown_ssthresh, 80 * 1380);
        let later = now + SimDuration::from_secs(10);
        c.write(Payload::from(vec![0u8; 1380 * 2]));
        let mut inflight = Vec::new();
        while let Some(seg) = c.poll_transmit(later) {
            inflight.push(seg);
        }
        let mut rtxs = Vec::new();
        for _ in 0..rto_fires {
            let t = c.next_timer().expect("rto armed");
            c.on_timer(t);
            while let Some(seg) = c.poll_transmit(t) {
                if seg.retransmit {
                    rtxs.push(seg);
                }
            }
        }
        assert!(c.stats().timeouts >= rto_fires as u64);
        assert!(c.cwnd() < grown_cwnd, "collapsed");
        let arrive = later + SimDuration::from_secs(9);
        for seg in inflight.into_iter().chain(rtxs) {
            s.on_segment(arrive, seg);
        }
        let mut acks = Vec::new();
        while let Some(a) = s.poll_transmit(arrive) {
            acks.push(a);
        }
        assert!(
            acks.iter().any(|a| a.dsack),
            "a DSACK-bearing ACK must exist"
        );
        for a in acks {
            c.on_segment(arrive + SimDuration::from_millis(100), a);
        }
        (c, grown_cwnd, grown_ssthresh)
    }

    #[test]
    fn single_rto_episode_is_fully_undone() {
        let (c, grown_cwnd, grown_ssthresh) = spurious_episode(1);
        assert_eq!(c.stats().spurious_undos, 1, "undo fired");
        assert!(
            c.cwnd() >= grown_cwnd.min(13_800),
            "window restored, got {}",
            c.cwnd()
        );
        assert!(
            c.ssthresh() >= grown_ssthresh / 2,
            "ssthresh at least half-restored, got {}",
            c.ssthresh()
        );
    }

    #[test]
    fn multi_rto_episode_is_also_undone() {
        // Promotion-length stalls back off through several RTOs; once the
        // receiver's duplicate reports arrive, the whole reduction is
        // reverted (cwnd and ssthresh), matching the ssthresh recoveries
        // visible in the paper's Fig. 11 between collapses.
        let (c, grown_cwnd, grown_ssthresh) = spurious_episode(4);
        assert_eq!(c.stats().spurious_undos, 1, "undo fires");
        assert!(
            c.cwnd() >= grown_cwnd.min(13_800),
            "cwnd restored, got {}",
            c.cwnd()
        );
        assert!(
            c.ssthresh() >= grown_ssthresh / 2,
            "threshold restored: {} vs prior {}",
            c.ssthresh(),
            grown_ssthresh
        );
    }
}

#[cfg(test)]
mod tests_support {
    use super::*;
    use crate::config::TcpConfig;

    pub fn cfg_t() -> TcpConfig {
        TcpConfig {
            trace: true,
            ..TcpConfig::default()
        }
    }

    pub fn handshake_pair() -> (TcpConnection, TcpConnection, SimTime) {
        let mut c = TcpConnection::client(cfg_t());
        let mut s = TcpConnection::server(cfg_t());
        c.connect(SimTime::ZERO);
        let now = converse_pair(&mut c, &mut s, SimTime::ZERO, SimDuration::from_millis(50));
        assert!(c.is_established());
        (c, s, now)
    }

    /// Minimal lossless-pipe driver with prompt reads.
    pub fn converse_pair(
        a: &mut TcpConnection,
        b: &mut TcpConnection,
        start: SimTime,
        latency: SimDuration,
    ) -> SimTime {
        let mut now = start;
        let mut wire: Vec<(SimTime, bool, Segment)> = Vec::new();
        for _ in 0..100_000 {
            while let Some(seg) = a.poll_transmit(now) {
                wire.push((now + latency, false, seg));
            }
            while let Some(seg) = b.poll_transmit(now) {
                wire.push((now + latency, true, seg));
            }
            while a.read().is_some() {}
            while b.read().is_some() {}
            let next_wire = wire.iter().map(|(at, _, _)| *at).min();
            let next_timer = [a.next_timer(), b.next_timer()].into_iter().flatten().min();
            let next = match (next_wire, next_timer) {
                (Some(w), Some(t)) => w.min(t),
                (Some(w), None) => w,
                (None, Some(t)) => t,
                (None, None) => return now,
            };
            now = next.max(now);
            let mut i = 0;
            while i < wire.len() {
                if wire[i].0 <= now {
                    let (_, to_a, seg) = wire.remove(i);
                    if to_a {
                        a.on_segment(now, seg);
                    } else {
                        b.on_segment(now, seg);
                    }
                } else {
                    i += 1;
                }
            }
            a.on_timer(now);
            b.on_timer(now);
        }
        panic!("did not quiesce");
    }
}
