//! Send-side byte queue and receive-side reassembly.
//!
//! Both sides hold [`Payload`] ropes: pulling MSS-sized slices off the
//! send queue and stitching segments back together on receive are chunk
//! bookkeeping — no byte is copied on either path.

use spdyier_bytes::Payload;
use std::collections::BTreeMap;

/// The un-sent portion of the application's byte stream.
///
/// Chunks written by the application are queued and pulled off in
/// MSS-or-smaller slices by the sender. A pull that crosses chunk
/// boundaries returns a multi-chunk rope rather than coalescing.
#[derive(Debug, Default)]
pub struct SendBuffer {
    queue: Payload,
}

impl SendBuffer {
    /// An empty buffer.
    pub fn new() -> SendBuffer {
        SendBuffer::default()
    }

    /// Queue application data.
    pub fn write(&mut self, data: Payload) {
        self.queue.append(data);
    }

    /// Unsent bytes remaining.
    pub fn len(&self) -> u64 {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Remove and return up to `max` bytes.
    pub fn pull(&mut self, max: u64) -> Payload {
        self.queue.split_to(max.min(self.queue.len()))
    }
}

/// Receive-side reassembly: buffers out-of-order segments and exposes the
/// in-order byte stream to the application.
#[derive(Debug)]
pub struct RecvBuffer {
    /// Next in-order sequence number expected.
    rcv_nxt: u64,
    /// Out-of-order segments keyed by their start sequence.
    ooo: BTreeMap<u64, Payload>,
    /// In-order data awaiting application reads.
    assembled: Payload,
    /// Total capacity governing the advertised window.
    capacity: u64,
    /// Count of exact or partial duplicate payload bytes seen (a signature
    /// of spurious retransmission at the receiver).
    dup_bytes: u64,
}

impl RecvBuffer {
    /// A buffer expecting sequence `rcv_nxt` first, with `capacity` bytes
    /// of advertised window.
    pub fn new(rcv_nxt: u64, capacity: u64) -> RecvBuffer {
        RecvBuffer {
            rcv_nxt,
            ooo: BTreeMap::new(),
            assembled: Payload::new(),
            capacity,
            dup_bytes: 0,
        }
    }

    /// Next expected sequence number (the ACK we should send).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes of window to advertise: capacity minus data the application
    /// has not yet consumed (including buffered out-of-order data).
    pub fn window(&self) -> u64 {
        let buffered = self.assembled.len() + self.ooo.values().map(|b| b.len()).sum::<u64>();
        self.capacity.saturating_sub(buffered)
    }

    /// Duplicate payload bytes observed (spurious-retransmission signature).
    pub fn dup_bytes(&self) -> u64 {
        self.dup_bytes
    }

    /// True if any out-of-order data is parked (we should send an
    /// immediate duplicate ACK while this holds).
    pub fn has_ooo(&self) -> bool {
        !self.ooo.is_empty()
    }

    /// Ingest a data segment. Returns `true` if `rcv_nxt` advanced (new
    /// in-order data became available).
    pub fn ingest(&mut self, seq: u64, mut payload: Payload) -> bool {
        if payload.is_empty() {
            return false;
        }
        let end = seq + payload.len();
        // Entirely old? Pure duplicate.
        if end <= self.rcv_nxt {
            self.dup_bytes += payload.len();
            return false;
        }
        // Trim the already-received prefix.
        let mut seq = seq;
        if seq < self.rcv_nxt {
            let trim = self.rcv_nxt - seq;
            self.dup_bytes += trim;
            payload.advance(trim);
            seq = self.rcv_nxt;
        }
        // Trim against overlapping out-of-order holdings (exact duplicates
        // of retransmitted segments are the common case).
        if let Some((&exist_seq, exist)) = self.ooo.range(..=seq).next_back() {
            let exist_end = exist_seq + exist.len();
            if exist_end >= seq + payload.len() {
                self.dup_bytes += payload.len();
                return false; // fully contained in an existing segment
            }
            if exist_end > seq {
                let trim = exist_end - seq;
                self.dup_bytes += trim;
                payload.advance(trim);
                seq = exist_end;
            }
        }
        // Trim the tail against the next segment above us.
        if let Some((&above_seq, _)) = self.ooo.range(seq..).next() {
            let our_end = seq + payload.len();
            if above_seq < our_end {
                let keep = above_seq - seq;
                self.dup_bytes += payload.len() - keep;
                payload.truncate(keep);
            }
        }
        if payload.is_empty() {
            return false;
        }
        self.ooo.insert(seq, payload);
        // Advance rcv_nxt through any now-contiguous run.
        let mut advanced = false;
        while let Some(entry) = self.ooo.remove(&self.rcv_nxt) {
            self.rcv_nxt += entry.len();
            self.assembled.append(entry);
            advanced = true;
        }
        advanced
    }

    /// Read everything assembled so far as one rope (chunk handoff, no
    /// coalescing copy), or `None` when nothing is pending.
    pub fn read(&mut self) -> Option<Payload> {
        if self.assembled.is_empty() {
            return None;
        }
        Some(self.assembled.take())
    }

    /// In-order bytes available to read.
    pub fn readable(&self) -> u64 {
        self.assembled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_bytes::testsupport::bytes_of;

    fn payload_of(n: usize, fill: u8) -> Payload {
        Payload::real(bytes_of(n, fill))
    }

    #[test]
    fn send_buffer_fifo_and_len() {
        let mut b = SendBuffer::new();
        b.write(Payload::from("hello "));
        b.write(Payload::from("world"));
        assert_eq!(b.len(), 11);
        assert_eq!(b.pull(6).to_vec(), b"hello ");
        assert_eq!(b.pull(100).to_vec(), b"world");
        assert!(b.is_empty());
        assert!(b.pull(5).is_empty());
    }

    #[test]
    fn send_buffer_pull_crosses_chunks_without_copying() {
        let mut b = SendBuffer::new();
        b.write(Payload::from("ab"));
        b.write(Payload::from("cd"));
        b.write(Payload::from("ef"));
        let out = b.pull(5);
        assert_eq!(out.to_vec(), b"abcde");
        assert_eq!(b.len(), 1);
        assert_eq!(b.pull(1).to_vec(), b"f");
    }

    #[test]
    fn send_buffer_ignores_empty_writes() {
        let mut b = SendBuffer::new();
        b.write(Payload::new());
        assert!(b.is_empty());
    }

    #[test]
    fn send_buffer_synthetic_stays_synthetic() {
        let mut b = SendBuffer::new();
        b.write(Payload::synthetic(3000));
        let seg = b.pull(1460);
        assert_eq!(seg.len(), 1460);
        assert_eq!(seg.chunk_count(), 1, "no materialization on pull");
        assert_eq!(b.len(), 1540);
    }

    #[test]
    fn recv_in_order() {
        let mut r = RecvBuffer::new(0, 1024);
        assert!(r.ingest(0, payload_of(10, b'a')));
        assert_eq!(r.rcv_nxt(), 10);
        assert_eq!(r.readable(), 10);
        assert_eq!(r.read().unwrap().len(), 10);
        assert_eq!(r.readable(), 0);
    }

    #[test]
    fn recv_out_of_order_reassembles() {
        let mut r = RecvBuffer::new(0, 1024);
        assert!(
            !r.ingest(10, payload_of(10, b'b')),
            "hole: nothing advances"
        );
        assert!(r.has_ooo());
        assert_eq!(r.rcv_nxt(), 0);
        assert!(r.ingest(0, payload_of(10, b'a')), "hole filled");
        assert_eq!(r.rcv_nxt(), 20);
        assert!(!r.has_ooo());
        assert_eq!(r.readable(), 20);
    }

    #[test]
    fn recv_pure_duplicate_counts_dup_bytes() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(0, payload_of(10, b'a'));
        assert!(!r.ingest(0, payload_of(10, b'a')), "full duplicate");
        assert_eq!(r.dup_bytes(), 10);
        assert_eq!(r.rcv_nxt(), 10);
    }

    #[test]
    fn recv_partial_overlap_trims_prefix() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(0, payload_of(10, b'a'));
        // Bytes 5..15: first 5 are duplicates.
        assert!(r.ingest(5, payload_of(10, b'b')));
        assert_eq!(r.rcv_nxt(), 15);
        assert_eq!(r.dup_bytes(), 5);
    }

    #[test]
    fn recv_duplicate_of_parked_ooo_segment() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(10, payload_of(10, b'b'));
        assert!(
            !r.ingest(10, payload_of(10, b'b')),
            "duplicate of parked segment"
        );
        assert_eq!(r.dup_bytes(), 10);
        r.ingest(0, payload_of(10, b'a'));
        assert_eq!(r.rcv_nxt(), 20, "stream assembles exactly once");
        let total: u64 = std::iter::from_fn(|| r.read()).map(|b| b.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn recv_overlap_with_segment_above() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(10, payload_of(10, b'c')); // [10, 20)
        r.ingest(5, payload_of(10, b'b')); // [5, 15) → keep [5, 10)
        assert_eq!(r.dup_bytes(), 5);
        r.ingest(0, payload_of(5, b'a')); // [0, 5)
        assert_eq!(r.rcv_nxt(), 20);
    }

    #[test]
    fn window_shrinks_with_unread_data() {
        let mut r = RecvBuffer::new(0, 100);
        assert_eq!(r.window(), 100);
        r.ingest(0, payload_of(30, b'a'));
        assert_eq!(r.window(), 70);
        r.ingest(50, payload_of(20, b'c'));
        assert_eq!(r.window(), 50, "ooo data also occupies the buffer");
        r.read();
        assert_eq!(r.window(), 80);
    }

    #[test]
    fn empty_payload_is_noop() {
        let mut r = RecvBuffer::new(0, 100);
        assert!(!r.ingest(0, Payload::new()));
        assert_eq!(r.rcv_nxt(), 0);
    }

    #[test]
    fn nonzero_initial_sequence() {
        let mut r = RecvBuffer::new(1000, 1024);
        assert!(r.ingest(1000, payload_of(10, b'x')));
        assert_eq!(r.rcv_nxt(), 1010);
        assert!(
            !r.ingest(500, payload_of(10, b'y')),
            "ancient data is a duplicate"
        );
    }

    /// Satellite regression: the application-visible byte stream is the
    /// same whether data arrived as one contiguous segment or as many
    /// small (even reordered) ones — reads differ only in chunking.
    #[test]
    fn chunked_and_contiguous_delivery_read_identically() {
        let mut stream = Payload::new();
        stream.push_bytes(bytes_of(40, b'h'));
        stream.push_synthetic(500);
        stream.push_bytes(bytes_of(7, b't'));

        // Contiguous: one segment carrying the whole stream.
        let mut contiguous = RecvBuffer::new(0, 4096);
        contiguous.ingest(0, stream.clone());
        let got_contiguous = contiguous.read().unwrap();

        // Chunked: odd-sized segments delivered back to front.
        let mut chunked = RecvBuffer::new(0, 4096);
        let sizes = [13u64, 64, 200, 1, 150, 119];
        let mut segs = Vec::new();
        let mut rest = stream.clone();
        let mut seq = 0u64;
        for s in sizes {
            let part = rest.split_to(s.min(rest.len()));
            let plen = part.len();
            segs.push((seq, part));
            seq += plen;
        }
        segs.push((seq, rest));
        for (seq, part) in segs.into_iter().rev() {
            chunked.ingest(seq, part);
        }
        let got_chunked = chunked.read().unwrap();

        assert_eq!(got_contiguous, stream);
        assert_eq!(got_chunked, stream);
        assert_eq!(got_chunked, got_contiguous);
    }
}
