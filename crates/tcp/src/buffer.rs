//! Send-side byte queue and receive-side reassembly.

use bytes::{Bytes, BytesMut};
use std::collections::{BTreeMap, VecDeque};

/// The un-sent portion of the application's byte stream.
///
/// Chunks written by the application are queued and pulled off in
/// MSS-or-smaller slices by the sender. Pulling may coalesce across chunk
/// boundaries.
#[derive(Debug, Default)]
pub struct SendBuffer {
    chunks: VecDeque<Bytes>,
    len: u64,
}

impl SendBuffer {
    /// An empty buffer.
    pub fn new() -> SendBuffer {
        SendBuffer::default()
    }

    /// Queue application data.
    pub fn write(&mut self, data: Bytes) {
        if !data.is_empty() {
            self.len += data.len() as u64;
            self.chunks.push_back(data);
        }
    }

    /// Unsent bytes remaining.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove and return up to `max` bytes.
    pub fn pull(&mut self, max: u64) -> Bytes {
        if max == 0 || self.is_empty() {
            return Bytes::new();
        }
        // Fast path: the head chunk alone satisfies the request.
        if let Some(front) = self.chunks.front_mut() {
            if front.len() as u64 >= max {
                let out = front.split_to(max as usize);
                if front.is_empty() {
                    self.chunks.pop_front();
                }
                self.len -= max;
                return out;
            }
        }
        // Slow path: coalesce across chunks.
        let take = max.min(self.len) as usize;
        let mut out = BytesMut::with_capacity(take);
        while out.len() < take {
            let mut front = self.chunks.pop_front().expect("len accounting");
            let need = take - out.len();
            if front.len() <= need {
                out.extend_from_slice(&front);
            } else {
                out.extend_from_slice(&front.split_to(need));
                self.chunks.push_front(front);
            }
        }
        self.len -= take as u64;
        out.freeze()
    }
}

/// Receive-side reassembly: buffers out-of-order segments and exposes the
/// in-order byte stream to the application.
#[derive(Debug)]
pub struct RecvBuffer {
    /// Next in-order sequence number expected.
    rcv_nxt: u64,
    /// Out-of-order segments keyed by their start sequence.
    ooo: BTreeMap<u64, Bytes>,
    /// In-order data awaiting application reads.
    assembled: VecDeque<Bytes>,
    assembled_len: u64,
    /// Total capacity governing the advertised window.
    capacity: u64,
    /// Count of exact or partial duplicate payload bytes seen (a signature
    /// of spurious retransmission at the receiver).
    dup_bytes: u64,
}

impl RecvBuffer {
    /// A buffer expecting sequence `rcv_nxt` first, with `capacity` bytes
    /// of advertised window.
    pub fn new(rcv_nxt: u64, capacity: u64) -> RecvBuffer {
        RecvBuffer {
            rcv_nxt,
            ooo: BTreeMap::new(),
            assembled: VecDeque::new(),
            assembled_len: 0,
            capacity,
            dup_bytes: 0,
        }
    }

    /// Next expected sequence number (the ACK we should send).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes of window to advertise: capacity minus data the application
    /// has not yet consumed (including buffered out-of-order data).
    pub fn window(&self) -> u64 {
        let buffered = self.assembled_len + self.ooo.values().map(|b| b.len() as u64).sum::<u64>();
        self.capacity.saturating_sub(buffered)
    }

    /// Duplicate payload bytes observed (spurious-retransmission signature).
    pub fn dup_bytes(&self) -> u64 {
        self.dup_bytes
    }

    /// True if any out-of-order data is parked (we should send an
    /// immediate duplicate ACK while this holds).
    pub fn has_ooo(&self) -> bool {
        !self.ooo.is_empty()
    }

    /// Ingest a data segment. Returns `true` if `rcv_nxt` advanced (new
    /// in-order data became available).
    pub fn ingest(&mut self, seq: u64, mut payload: Bytes) -> bool {
        if payload.is_empty() {
            return false;
        }
        let end = seq + payload.len() as u64;
        // Entirely old? Pure duplicate.
        if end <= self.rcv_nxt {
            self.dup_bytes += payload.len() as u64;
            return false;
        }
        // Trim the already-received prefix.
        let mut seq = seq;
        if seq < self.rcv_nxt {
            let trim = (self.rcv_nxt - seq) as usize;
            self.dup_bytes += trim as u64;
            payload.advance_impl(trim);
            seq = self.rcv_nxt;
        }
        // Trim against overlapping out-of-order holdings (exact duplicates
        // of retransmitted segments are the common case).
        if let Some((&exist_seq, exist)) = self.ooo.range(..=seq).next_back() {
            let exist_end = exist_seq + exist.len() as u64;
            if exist_end >= seq + payload.len() as u64 {
                self.dup_bytes += payload.len() as u64;
                return false; // fully contained in an existing segment
            }
            if exist_end > seq {
                let trim = (exist_end - seq) as usize;
                self.dup_bytes += trim as u64;
                payload.advance_impl(trim);
                seq = exist_end;
            }
        }
        // Trim the tail against the next segment above us.
        if let Some((&above_seq, _)) = self.ooo.range(seq..).next() {
            let our_end = seq + payload.len() as u64;
            if above_seq < our_end {
                let keep = (above_seq - seq) as usize;
                self.dup_bytes += (payload.len() - keep) as u64;
                payload.truncate(keep);
            }
        }
        if payload.is_empty() {
            return false;
        }
        self.ooo.insert(seq, payload);
        // Advance rcv_nxt through any now-contiguous run.
        let mut advanced = false;
        while let Some(entry) = self.ooo.remove(&self.rcv_nxt) {
            self.rcv_nxt += entry.len() as u64;
            self.assembled_len += entry.len() as u64;
            self.assembled.push_back(entry);
            advanced = true;
        }
        advanced
    }

    /// Read the next in-order chunk, if any.
    pub fn read(&mut self) -> Option<Bytes> {
        let chunk = self.assembled.pop_front()?;
        self.assembled_len -= chunk.len() as u64;
        Some(chunk)
    }

    /// In-order bytes available to read.
    pub fn readable(&self) -> u64 {
        self.assembled_len
    }
}

/// Tiny extension to make `Bytes::advance` available without importing the
/// `Buf` trait at every call site.
trait AdvanceImpl {
    fn advance_impl(&mut self, n: usize);
}

impl AdvanceImpl for Bytes {
    fn advance_impl(&mut self, n: usize) {
        use bytes::Buf;
        self.advance(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn send_buffer_fifo_and_len() {
        let mut b = SendBuffer::new();
        b.write(Bytes::from_static(b"hello "));
        b.write(Bytes::from_static(b"world"));
        assert_eq!(b.len(), 11);
        assert_eq!(&b.pull(6)[..], b"hello ");
        assert_eq!(&b.pull(100)[..], b"world");
        assert!(b.is_empty());
        assert!(b.pull(5).is_empty());
    }

    #[test]
    fn send_buffer_coalesces_across_chunks() {
        let mut b = SendBuffer::new();
        b.write(Bytes::from_static(b"ab"));
        b.write(Bytes::from_static(b"cd"));
        b.write(Bytes::from_static(b"ef"));
        let out = b.pull(5);
        assert_eq!(&out[..], b"abcde");
        assert_eq!(b.len(), 1);
        assert_eq!(&b.pull(1)[..], b"f");
    }

    #[test]
    fn send_buffer_ignores_empty_writes() {
        let mut b = SendBuffer::new();
        b.write(Bytes::new());
        assert!(b.is_empty());
    }

    #[test]
    fn recv_in_order() {
        let mut r = RecvBuffer::new(0, 1024);
        assert!(r.ingest(0, bytes_of(10, b'a')));
        assert_eq!(r.rcv_nxt(), 10);
        assert_eq!(r.readable(), 10);
        assert_eq!(r.read().unwrap().len(), 10);
        assert_eq!(r.readable(), 0);
    }

    #[test]
    fn recv_out_of_order_reassembles() {
        let mut r = RecvBuffer::new(0, 1024);
        assert!(!r.ingest(10, bytes_of(10, b'b')), "hole: nothing advances");
        assert!(r.has_ooo());
        assert_eq!(r.rcv_nxt(), 0);
        assert!(r.ingest(0, bytes_of(10, b'a')), "hole filled");
        assert_eq!(r.rcv_nxt(), 20);
        assert!(!r.has_ooo());
        assert_eq!(r.readable(), 20);
    }

    #[test]
    fn recv_pure_duplicate_counts_dup_bytes() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(0, bytes_of(10, b'a'));
        assert!(!r.ingest(0, bytes_of(10, b'a')), "full duplicate");
        assert_eq!(r.dup_bytes(), 10);
        assert_eq!(r.rcv_nxt(), 10);
    }

    #[test]
    fn recv_partial_overlap_trims_prefix() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(0, bytes_of(10, b'a'));
        // Bytes 5..15: first 5 are duplicates.
        assert!(r.ingest(5, bytes_of(10, b'b')));
        assert_eq!(r.rcv_nxt(), 15);
        assert_eq!(r.dup_bytes(), 5);
    }

    #[test]
    fn recv_duplicate_of_parked_ooo_segment() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(10, bytes_of(10, b'b'));
        assert!(
            !r.ingest(10, bytes_of(10, b'b')),
            "duplicate of parked segment"
        );
        assert_eq!(r.dup_bytes(), 10);
        r.ingest(0, bytes_of(10, b'a'));
        assert_eq!(r.rcv_nxt(), 20, "stream assembles exactly once");
        let total: usize = std::iter::from_fn(|| r.read()).map(|b| b.len()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn recv_overlap_with_segment_above() {
        let mut r = RecvBuffer::new(0, 1024);
        r.ingest(10, bytes_of(10, b'c')); // [10, 20)
        r.ingest(5, bytes_of(10, b'b')); // [5, 15) → keep [5, 10)
        assert_eq!(r.dup_bytes(), 5);
        r.ingest(0, bytes_of(5, b'a')); // [0, 5)
        assert_eq!(r.rcv_nxt(), 20);
    }

    #[test]
    fn window_shrinks_with_unread_data() {
        let mut r = RecvBuffer::new(0, 100);
        assert_eq!(r.window(), 100);
        r.ingest(0, bytes_of(30, b'a'));
        assert_eq!(r.window(), 70);
        r.ingest(50, bytes_of(20, b'c'));
        assert_eq!(r.window(), 50, "ooo data also occupies the buffer");
        r.read();
        assert_eq!(r.window(), 80);
    }

    #[test]
    fn empty_payload_is_noop() {
        let mut r = RecvBuffer::new(0, 100);
        assert!(!r.ingest(0, Bytes::new()));
        assert_eq!(r.rcv_nxt(), 0);
    }

    #[test]
    fn nonzero_initial_sequence() {
        let mut r = RecvBuffer::new(1000, 1024);
        assert!(r.ingest(1000, bytes_of(10, b'x')));
        assert_eq!(r.rcv_nxt(), 1010);
        assert!(
            !r.ingest(500, bytes_of(10, b'y')),
            "ancient data is a duplicate"
        );
    }
}
