//! TCP segments as they travel across the simulated network.

use spdyier_bytes::Payload;

/// TCP header flags (the subset the testbed uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    /// Synchronise sequence numbers (connection setup).
    pub syn: bool,
    /// Acknowledgment field is valid.
    pub ack: bool,
    /// No more data from sender (connection teardown).
    pub fin: bool,
    /// Abort the connection.
    pub rst: bool,
}

impl SegFlags {
    /// A pure ACK.
    pub const ACK: SegFlags = SegFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// A SYN (client handshake opener).
    pub const SYN: SegFlags = SegFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// A SYN-ACK (server handshake reply).
    pub const SYN_ACK: SegFlags = SegFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// A FIN-ACK (sender-side close).
    pub const FIN_ACK: SegFlags = SegFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
    /// A RST.
    pub const RST: SegFlags = SegFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

/// One TCP segment. Sequence numbers are absolute 64-bit offsets (the
/// simulation never wraps), with SYN and FIN each occupying one unit of
/// sequence space as in real TCP.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u64,
    /// Cumulative acknowledgment: all bytes `< ack` received.
    pub ack: u64,
    /// Header flags.
    pub flags: SegFlags,
    /// Advertised receive window, bytes.
    pub wnd: u64,
    /// Payload.
    pub payload: Payload,
    /// True if this segment is a retransmission (diagnostic only — real
    /// TCP infers this; the testbed records it for the analyzer).
    pub retransmit: bool,
    /// Duplicate-SACK signal: the sender of this ACK received duplicate
    /// payload (a spurious-retransmission report, RFC 2883). Drives the
    /// receiver-side half of Linux's cwnd/ssthresh undo.
    pub dsack: bool,
}

impl Segment {
    /// Payload length in bytes.
    pub fn len(&self) -> u64 {
        self.payload.len()
    }

    /// True when the segment carries no payload.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Units of sequence space this segment occupies (payload + SYN + FIN).
    pub fn seq_space(&self) -> u64 {
        self.len() + u64::from(self.flags.syn) + u64::from(self.flags.fin)
    }

    /// The sequence number just past this segment.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.seq_space()
    }

    /// Bytes this segment occupies on the wire (payload + 40 B of
    /// TCP/IP headers).
    pub fn wire_size(&self) -> u64 {
        self.len() + 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, n: u64) -> Segment {
        Segment {
            seq,
            ack: 0,
            flags: SegFlags::ACK,
            wnd: 65535,
            payload: Payload::synthetic(n),
            retransmit: false,
            dsack: false,
        }
    }

    #[test]
    fn seq_space_counts_payload() {
        let s = data(100, 1380);
        assert_eq!(s.seq_space(), 1380);
        assert_eq!(s.seq_end(), 1480);
        assert_eq!(s.wire_size(), 1420);
    }

    #[test]
    fn syn_and_fin_occupy_sequence_space() {
        let syn = Segment {
            seq: 0,
            ack: 0,
            flags: SegFlags::SYN,
            wnd: 65535,
            payload: Payload::new(),
            retransmit: false,
            dsack: false,
        };
        assert_eq!(syn.seq_space(), 1);
        assert!(syn.is_empty());
        let fin = Segment {
            flags: SegFlags::FIN_ACK,
            ..syn.clone()
        };
        assert_eq!(fin.seq_space(), 1);
    }

    #[test]
    fn pure_ack_occupies_nothing() {
        let a = data(5, 0);
        assert_eq!(a.seq_space(), 0);
        assert_eq!(a.wire_size(), 40);
    }
}
