//! TCP tunables.
//!
//! Every Linux sysctl the paper experiments with is a field here:
//! `tcp_slow_start_after_idle` (§6.2.2, Fig. 15), the RTT-reset-after-idle
//! fix (§6.2.1), the congestion control variant (§6.2.3, Table 2), and the
//! destination metrics cache (§6.2.4).

use crate::cc::CcAlgorithm;
use serde::{Deserialize, Serialize};
use spdyier_sim::SimDuration;

/// Per-connection TCP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size, bytes.
    pub mss: u64,
    /// Initial congestion window, segments (the 2013-era Linux default of
    /// 10 that the paper quotes).
    pub initial_cwnd_segments: u64,
    /// Receive buffer capacity (advertised window ceiling), bytes.
    pub recv_buffer: u64,
    /// Send buffer capacity, bytes. The connection accepts writes beyond
    /// this, but well-behaved callers check
    /// [`crate::TcpConnection::send_space`] first — the backpressure that
    /// keeps application schedulers (e.g. SPDY priorities) meaningful.
    pub send_buffer: u64,
    /// RTO before any RTT sample (RFC 6298: 1 s).
    pub initial_rto: SimDuration,
    /// Minimum RTO (Linux: 200 ms).
    pub min_rto: SimDuration,
    /// Maximum RTO (Linux: 120 s).
    pub max_rto: SimDuration,
    /// Delayed-ACK timer.
    pub delayed_ack: SimDuration,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Congestion control algorithm.
    pub cc: CcAlgorithm,
    /// RFC 2861 `tcp_slow_start_after_idle`: collapse cwnd to the initial
    /// window after an idle period longer than one RTO.
    pub slow_start_after_idle: bool,
    /// The paper's §6.2.1 proposal: *also* reset the RTT estimate across
    /// an idle period, holding the RTO at `post_idle_rto` until a fresh
    /// sample arrives, so the first post-idle RTO comfortably covers the
    /// RRC promotion delay.
    pub reset_rtt_after_idle: bool,
    /// RTO used right after an idle-period RTT reset (the paper:
    /// "the initial default value (of multiple seconds)").
    pub post_idle_rto: SimDuration,
    /// TIME_WAIT hold before the connection object reports closed.
    pub time_wait: SimDuration,
    /// Nagle's algorithm (RFC 896): hold sub-MSS payloads while anything
    /// is unacknowledged. Browsers disable it (TCP_NODELAY), so the
    /// default here is off; the flag exists to measure its interaction
    /// with request/FIN chatter.
    pub nagle: bool,
    /// Record a full [`crate::trace::TcpTrace`] for this connection.
    pub trace: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1380,
            initial_cwnd_segments: 10,
            recv_buffer: 512 * 1024,
            send_buffer: 128 * 1024,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(120),
            delayed_ack: SimDuration::from_millis(40),
            dupack_threshold: 3,
            cc: CcAlgorithm::Cubic,
            slow_start_after_idle: true,
            reset_rtt_after_idle: false,
            post_idle_rto: SimDuration::from_secs(3),
            time_wait: SimDuration::from_secs(30),
            nagle: false,
            trace: false,
        }
    }
}

impl TcpConfig {
    /// Initial congestion window in bytes.
    pub fn initial_cwnd(&self) -> u64 {
        self.initial_cwnd_segments * self.mss
    }

    /// Builder-style trace toggle.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder-style congestion control selection.
    pub fn with_cc(mut self, cc: CcAlgorithm) -> Self {
        self.cc = cc;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_era_linux() {
        let c = TcpConfig::default();
        assert_eq!(c.initial_cwnd_segments, 10);
        assert_eq!(c.cc, CcAlgorithm::Cubic);
        assert!(c.slow_start_after_idle);
        assert!(!c.reset_rtt_after_idle);
        assert_eq!(c.initial_cwnd(), 13_800);
        assert_eq!(c.min_rto, SimDuration::from_millis(200));
    }

    #[test]
    fn builders_compose() {
        let c = TcpConfig::default().with_cc(CcAlgorithm::Reno).with_trace();
        assert_eq!(c.cc, CcAlgorithm::Reno);
        assert!(c.trace);
    }
}
