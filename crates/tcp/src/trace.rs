//! Per-connection instrumentation.
//!
//! Equivalent to the paper's `tcp_probe` kernel module plus tcpdump
//! post-processing: congestion window, slow-start threshold, bytes in
//! flight, retransmissions, timeouts, and idle restarts, all timestamped.

use serde::Serialize;
use spdyier_sim::{EventMarks, OptionSeries, SimTime, TimeSeries};

/// Cumulative per-connection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TcpStats {
    /// Segments put on the wire (including retransmissions).
    pub segs_sent: u64,
    /// Segments received.
    pub segs_rcvd: u64,
    /// Payload bytes sent (first transmissions only).
    pub bytes_sent: u64,
    /// Payload bytes received in order.
    pub bytes_rcvd: u64,
    /// Payload bytes retransmitted.
    pub bytes_retransmitted: u64,
    /// Retransmitted segments (fast retransmit + RTO).
    pub retransmissions: u64,
    /// RTO firings.
    pub timeouts: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_retransmits: u64,
    /// Duplicate ACKs received.
    pub dup_acks_in: u64,
    /// RFC 2861 idle restarts taken.
    pub idle_restarts: u64,
    /// Duplicate payload bytes seen by our receiver (peer retransmitted
    /// something we already had — the receiver-side spurious signature).
    pub dup_bytes_rcvd: u64,
    /// DSACK-driven undo events (spurious timeouts detected and reverted).
    pub spurious_undos: u64,
}

/// Timestamped series for one connection (the Fig. 10–12/17 raw material).
#[derive(Debug, Default, Serialize)]
pub struct TcpTrace {
    /// Congestion window, in segments, sampled on every change.
    pub cwnd_segments: TimeSeries,
    /// Slow-start threshold, in segments; `None` (serialized `null`)
    /// until the first loss sets a real threshold.
    pub ssthresh_segments: OptionSeries,
    /// Unacknowledged bytes in flight.
    pub inflight_bytes: TimeSeries,
    /// Retransmission instants.
    pub retransmits: EventMarks,
    /// RTO firing instants.
    pub timeouts: EventMarks,
    /// Idle-restart instants (cwnd collapse to the initial window).
    pub idle_restarts: EventMarks,
    /// Raw RTT samples, milliseconds.
    pub rtt_samples_ms: TimeSeries,
}

impl TcpTrace {
    /// Record the window state after any change. An `ssthresh` of
    /// `u64::MAX` means "not yet set" and is recorded as `None` rather
    /// than a sentinel magnitude a reader could mistake for real.
    pub fn record_window(
        &mut self,
        now: SimTime,
        cwnd: u64,
        ssthresh: u64,
        mss: u64,
        inflight: u64,
    ) {
        let mss = mss.max(1);
        self.cwnd_segments.push(now, cwnd as f64 / mss as f64);
        let ss = if ssthresh == u64::MAX {
            None
        } else {
            Some(ssthresh as f64 / mss as f64)
        };
        self.ssthresh_segments.push(now, ss);
        self.inflight_bytes.push(now, inflight as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_window_converts_units() {
        let mut t = TcpTrace::default();
        t.record_window(SimTime::from_millis(5), 13_800, u64::MAX, 1380, 2760);
        let (_, cwnd) = t.cwnd_segments.iter().next().unwrap();
        assert_eq!(cwnd, 10.0);
        let (_, ss) = t.ssthresh_segments.iter().next().unwrap();
        assert_eq!(ss, None, "unset ssthresh records as None, not a sentinel");
        let (_, inflight) = t.inflight_bytes.iter().next().unwrap();
        assert_eq!(inflight, 2760.0);
    }

    #[test]
    fn record_window_keeps_real_ssthresh() {
        let mut t = TcpTrace::default();
        t.record_window(SimTime::from_millis(5), 13_800, 6_900, 1380, 0);
        let (_, ss) = t.ssthresh_segments.iter().next().unwrap();
        assert_eq!(ss, Some(5.0));
    }

    #[test]
    fn stats_default_zero() {
        let s = TcpStats::default();
        assert_eq!(s.retransmissions, 0);
        assert_eq!(s.timeouts, 0);
    }
}
