//! Congestion control: NewReno-style AIMD and CUBIC (RFC 8312).
//!
//! The paper's Table 2 compares TCP Reno and TCP Cubic under HTTP and SPDY;
//! both are implemented here behind the [`CongestionControl`] trait. Window
//! arithmetic is in bytes, with the MSS as the increment quantum.

use serde::{Deserialize, Serialize};
use spdyier_sim::{SimDuration, SimTime};

/// Which congestion control algorithm a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CcAlgorithm {
    /// NewReno-style AIMD (the kernel's `reno`).
    Reno,
    /// CUBIC (the Linux default since 2.6.19, and in the paper's testbed).
    Cubic,
}

impl CcAlgorithm {
    /// Instantiate the algorithm.
    pub fn build(self, mss: u64, initial_cwnd: u64) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::Reno => Box::new(Reno::new(mss, initial_cwnd)),
            CcAlgorithm::Cubic => Box::new(Cubic::new(mss, initial_cwnd)),
        }
    }
}

/// The sender-side congestion control interface.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window, bytes.
    fn cwnd(&self) -> u64;
    /// Current slow-start threshold, bytes (`u64::MAX` when unset).
    fn ssthresh(&self) -> u64;
    /// Process a cumulative ACK of `acked` new bytes.
    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: Option<SimDuration>);
    /// A loss event detected by duplicate ACKs (fast retransmit).
    fn on_loss_event(&mut self, now: SimTime);
    /// A retransmission timeout fired: collapse to one segment.
    fn on_rto(&mut self, now: SimTime);
    /// RFC 2861 idle restart: the window shrinks back to the initial
    /// window, but — crucially for the paper — `ssthresh` is preserved.
    fn on_idle_restart(&mut self, now: SimTime);
    /// Seed ssthresh from the host metrics cache (Linux `tcp_metrics`).
    fn set_ssthresh(&mut self, ssthresh: u64);
    /// Undo a spurious reduction (Linux's DSACK/Eifel undo): restore the
    /// window state captured just before the loss response.
    fn undo(&mut self, prior_cwnd: u64, prior_ssthresh: u64);
    /// Algorithm label for traces.
    fn name(&self) -> &'static str;
}

/// NewReno-style AIMD.
#[derive(Debug)]
pub struct Reno {
    mss: u64,
    initial_cwnd: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Byte accumulator for congestion-avoidance growth.
    acked_accum: u64,
}

impl Reno {
    /// A fresh Reno instance with `initial_cwnd` bytes of window.
    pub fn new(mss: u64, initial_cwnd: u64) -> Reno {
        Reno {
            mss,
            initial_cwnd,
            cwnd: initial_cwnd,
            ssthresh: u64::MAX,
            acked_accum: 0,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, acked: u64, _srtt: Option<SimDuration>) {
        if self.cwnd < self.ssthresh {
            // Slow start with appropriate byte counting (L = 2 MSS).
            self.cwnd += acked.min(2 * self.mss);
        } else {
            // Congestion avoidance: one MSS per window's worth of ACKs.
            self.acked_accum += acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.acked_accum = 0;
    }

    fn on_idle_restart(&mut self, _now: SimTime) {
        self.cwnd = self.cwnd.min(self.initial_cwnd);
        self.acked_accum = 0;
    }

    fn set_ssthresh(&mut self, ssthresh: u64) {
        self.ssthresh = ssthresh.max(2 * self.mss);
    }

    fn undo(&mut self, prior_cwnd: u64, prior_ssthresh: u64) {
        self.cwnd = self.cwnd.max(prior_cwnd);
        // Restore ssthresh halfway (the paper's Fig. 11/12 traces show the
        // threshold staying depressed after spurious episodes — the undo
        // machinery of the era did not fully recover it).
        self.ssthresh = self.ssthresh.max(prior_ssthresh / 2);
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// CUBIC per RFC 8312 (C = 0.4, β = 0.7, fast convergence on).
#[derive(Debug)]
pub struct Cubic {
    mss: u64,
    initial_cwnd: u64,
    /// Window in segments, kept fractional for smooth growth.
    cwnd_seg: f64,
    ssthresh: u64,
    /// Window size (segments) just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Plateau origin for the cubic curve (segments).
    origin: f64,
    /// Time offset of the plateau, seconds.
    k: f64,
    /// Reno-friendly estimate (segments), RFC 8312 §4.2.
    w_est: f64,
}

const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// A fresh CUBIC instance with `initial_cwnd` bytes of window.
    pub fn new(mss: u64, initial_cwnd: u64) -> Cubic {
        Cubic {
            mss,
            initial_cwnd,
            cwnd_seg: initial_cwnd as f64 / mss as f64,
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            origin: 0.0,
            k: 0.0,
            w_est: 0.0,
        }
    }

    fn begin_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        if self.cwnd_seg < self.w_max {
            self.k = ((self.w_max - self.cwnd_seg) / CUBIC_C).cbrt();
            self.origin = self.w_max;
        } else {
            self.k = 0.0;
            self.origin = self.cwnd_seg;
        }
        self.w_est = self.cwnd_seg;
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> u64 {
        (self.cwnd_seg * self.mss as f64) as u64
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: Option<SimDuration>) {
        let acked_seg = acked as f64 / self.mss as f64;
        if self.cwnd() < self.ssthresh {
            // Slow start, byte-counted with L = 2 MSS.
            self.cwnd_seg += acked_seg.min(2.0);
            return;
        }
        if self.epoch_start.is_none() {
            self.begin_epoch(now);
        }
        let t = now
            .saturating_since(self.epoch_start.expect("set above"))
            .as_secs_f64();
        let target = self.origin + CUBIC_C * (t - self.k).powi(3);
        if target > self.cwnd_seg {
            // Approach the cubic target proportionally per ACK.
            self.cwnd_seg += ((target - self.cwnd_seg) / self.cwnd_seg) * acked_seg;
        } else {
            // Max probing: creep forward very slowly near the plateau.
            self.cwnd_seg += 0.01 * acked_seg / self.cwnd_seg;
        }
        // TCP-friendliness (RFC 8312 §4.2): never slower than AIMD-ish
        // Reno. Per-ACK form: t/RTT advances by 1/cwnd per acked segment,
        // so the elapsed-time term needs no explicit RTT.
        let _ = srtt;
        self.w_est += (3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)) * acked_seg / self.cwnd_seg;
        if self.w_est > self.cwnd_seg {
            self.cwnd_seg = self.w_est;
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        // Fast convergence: release bandwidth when the window is shrinking.
        if self.cwnd_seg < self.w_max {
            self.w_max = self.cwnd_seg * (2.0 - CUBIC_BETA) / 2.0;
        } else {
            self.w_max = self.cwnd_seg;
        }
        self.cwnd_seg = (self.cwnd_seg * CUBIC_BETA).max(2.0);
        self.ssthresh = self.cwnd();
        self.epoch_start = None;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.w_max = self.cwnd_seg.max(self.w_max * CUBIC_BETA);
        self.ssthresh = ((self.cwnd_seg * CUBIC_BETA) * self.mss as f64) as u64;
        self.ssthresh = self.ssthresh.max(2 * self.mss);
        self.cwnd_seg = 1.0;
        self.epoch_start = None;
    }

    fn on_idle_restart(&mut self, _now: SimTime) {
        let initial_seg = self.initial_cwnd as f64 / self.mss as f64;
        if self.cwnd_seg > initial_seg {
            self.cwnd_seg = initial_seg;
        }
        self.epoch_start = None;
    }

    fn set_ssthresh(&mut self, ssthresh: u64) {
        self.ssthresh = ssthresh.max(2 * self.mss);
    }

    fn undo(&mut self, prior_cwnd: u64, prior_ssthresh: u64) {
        let prior_seg = prior_cwnd as f64 / self.mss as f64;
        if prior_seg > self.cwnd_seg {
            self.cwnd_seg = prior_seg;
        }
        // See `Reno::undo`: partial ssthresh recovery.
        self.ssthresh = self.ssthresh.max(prior_ssthresh / 2);
        self.w_max = self.w_max.max(prior_seg);
        self.epoch_start = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1380;
    const IW: u64 = 10 * MSS;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(MSS, IW);
        assert_eq!(cc.cwnd(), IW);
        // Ack a full window: slow start grows cwnd by the acked bytes.
        let mut acked = 0;
        while acked < IW {
            cc.on_ack(t(100), MSS, None);
            acked += MSS;
        }
        assert_eq!(cc.cwnd(), 2 * IW);
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut cc = Reno::new(MSS, IW);
        cc.set_ssthresh(IW); // start in CA
        let before = cc.cwnd();
        // One window's worth of ACKs adds exactly one MSS.
        let mut acked = 0;
        while acked < before {
            cc.on_ack(t(0), MSS, None);
            acked += MSS;
        }
        assert_eq!(cc.cwnd(), before + MSS);
    }

    #[test]
    fn reno_loss_halves_window() {
        let mut cc = Reno::new(MSS, 20 * MSS);
        cc.on_loss_event(t(0));
        assert_eq!(cc.cwnd(), 10 * MSS);
        assert_eq!(cc.ssthresh(), 10 * MSS);
    }

    #[test]
    fn reno_rto_collapses_to_one_segment() {
        let mut cc = Reno::new(MSS, 20 * MSS);
        cc.on_rto(t(0));
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 10 * MSS, "ssthresh set from the old cwnd");
    }

    #[test]
    fn reno_floor_at_two_mss() {
        let mut cc = Reno::new(MSS, MSS);
        cc.on_loss_event(t(0));
        assert_eq!(cc.ssthresh(), 2 * MSS);
    }

    #[test]
    fn idle_restart_preserves_ssthresh() {
        // The flaw the paper dissects: cwnd resets, ssthresh does not.
        let mut cc = Reno::new(MSS, IW);
        for _ in 0..200 {
            cc.on_ack(t(0), MSS, None);
        }
        let grown = cc.cwnd();
        assert!(grown > IW);
        cc.set_ssthresh(50 * MSS);
        cc.on_idle_restart(t(0));
        assert_eq!(cc.cwnd(), IW, "cwnd back to the initial window");
        assert_eq!(cc.ssthresh(), 50 * MSS, "ssthresh untouched");
    }

    #[test]
    fn idle_restart_never_grows_cwnd() {
        let mut cc = Reno::new(MSS, IW);
        cc.on_rto(t(0)); // cwnd = 1 MSS
        cc.on_idle_restart(t(0));
        assert_eq!(cc.cwnd(), MSS, "idle restart only shrinks");
    }

    #[test]
    fn cubic_slow_start_then_cubic_growth() {
        let mut cc = Cubic::new(MSS, IW);
        assert_eq!(cc.name(), "cubic");
        // Grow in slow start to ssthresh.
        cc.set_ssthresh(20 * MSS);
        let mut now = t(0);
        while cc.cwnd() < 20 * MSS {
            cc.on_ack(now, MSS, Some(SimDuration::from_millis(100)));
            now += SimDuration::from_millis(10);
        }
        let at_ca_entry = cc.cwnd();
        // In CA the window keeps growing with time.
        for i in 0..500u64 {
            cc.on_ack(
                now + SimDuration::from_millis(i * 20),
                MSS,
                Some(SimDuration::from_millis(100)),
            );
        }
        assert!(cc.cwnd() > at_ca_entry, "cubic grows in CA");
    }

    #[test]
    fn cubic_loss_multiplies_by_beta() {
        let mut cc = Cubic::new(MSS, 100 * MSS);
        cc.on_loss_event(t(0));
        let got = cc.cwnd() as f64 / MSS as f64;
        assert!((got - 70.0).abs() < 1.0, "β = 0.7, got {got}");
        assert_eq!(cc.ssthresh(), cc.cwnd());
    }

    #[test]
    fn cubic_rto_collapses_and_remembers_w_max() {
        let mut cc = Cubic::new(MSS, 100 * MSS);
        cc.on_rto(t(0));
        assert_eq!(cc.cwnd(), MSS);
        assert!(cc.ssthresh() <= 70 * MSS + MSS);
        assert!(cc.ssthresh() >= 2 * MSS);
    }

    #[test]
    fn cubic_concave_approach_to_w_max() {
        // After a reduction, growth is fast then flattens near w_max.
        let mut cc = Cubic::new(MSS, 100 * MSS);
        cc.on_loss_event(t(0)); // w_max = 100, cwnd = 70, ssthresh = cwnd
        let mut now = t(0);
        let mut prev = cc.cwnd();
        let mut deltas = Vec::new();
        for _ in 0..40 {
            // One RTT's worth of acks.
            for _ in 0..(cc.cwnd() / MSS).max(1) {
                cc.on_ack(now, MSS, Some(SimDuration::from_millis(100)));
            }
            now += SimDuration::from_millis(100);
            deltas.push(cc.cwnd() as i64 - prev as i64);
            prev = cc.cwnd();
        }
        // Growth rate must shrink while approaching the plateau.
        let early: i64 = deltas[..5].iter().sum();
        let mid_idx = deltas
            .iter()
            .scan(70 * MSS as i64, |w, d| {
                *w += d;
                Some(*w)
            })
            .position(|w| w as u64 >= 97 * MSS)
            .unwrap_or(20)
            .min(35);
        let late: i64 = deltas[mid_idx..mid_idx + 5].iter().sum();
        assert!(early > late, "concave region: early {early} late {late}");
    }

    #[test]
    fn cubic_fast_convergence_lowers_w_max() {
        let mut cc = Cubic::new(MSS, 100 * MSS);
        cc.on_loss_event(t(0)); // w_max = 100
        cc.on_loss_event(t(10)); // cwnd (70) < w_max (100) → w_max = 70*(2-β)/2 = 45.5
        assert!(cc.w_max < 50.0, "fast convergence, w_max {}", cc.w_max);
    }

    #[test]
    fn builder_dispatches() {
        assert_eq!(CcAlgorithm::Reno.build(MSS, IW).name(), "reno");
        assert_eq!(CcAlgorithm::Cubic.build(MSS, IW).name(), "cubic");
    }
}
