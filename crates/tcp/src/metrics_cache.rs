//! The host-wide TCP destination metrics cache.
//!
//! Linux caches `ssthresh` and RTT statistics per destination
//! (`tcp_metrics`, formerly the route cache) and seeds new connections from
//! it. The paper's §6.2.4 finds this *hurts* on cellular: stale metrics
//! from a past connection (possibly taken during a promotion-mangled
//! episode) poison fresh connections. Disabling the cache
//! (`tcp_no_metrics_save`) improved median page loads by ~35%.

use serde::Serialize;
use spdyier_sim::SimDuration;
use std::collections::HashMap;

/// The per-destination snapshot Linux would save at connection close.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CachedMetrics {
    /// Slow-start threshold at close, bytes.
    pub ssthresh: u64,
    /// Smoothed RTT at close.
    pub srtt: SimDuration,
    /// RTT variance at close.
    pub rttvar: SimDuration,
}

/// Host-wide cache keyed by destination label (e.g. `"proxy"` or a domain).
#[derive(Debug, Default)]
pub struct TcpMetricsCache {
    entries: HashMap<String, CachedMetrics>,
    stores: u64,
    hits: u64,
}

impl TcpMetricsCache {
    /// An empty cache.
    pub fn new() -> TcpMetricsCache {
        TcpMetricsCache::default()
    }

    /// Save metrics at connection close (no-op when `metrics` is `None`,
    /// e.g. a connection that never sampled an RTT).
    pub fn store(&mut self, dest: &str, metrics: CachedMetrics) {
        self.stores += 1;
        self.entries.insert(dest.to_owned(), metrics);
    }

    /// Look up metrics for a new connection to `dest`.
    pub fn lookup(&mut self, dest: &str) -> Option<CachedMetrics> {
        let hit = self.entries.get(dest).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Number of destinations cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(stores, hits)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.stores, self.hits)
    }

    /// Drop everything (the `tcp_no_metrics_save` + flush experiment).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(ssthresh: u64) -> CachedMetrics {
        CachedMetrics {
            ssthresh,
            srtt: SimDuration::from_millis(150),
            rttvar: SimDuration::from_millis(30),
        }
    }

    #[test]
    fn store_then_lookup() {
        let mut c = TcpMetricsCache::new();
        assert!(c.lookup("proxy").is_none());
        c.store("proxy", metrics(20_000));
        assert_eq!(c.lookup("proxy").unwrap().ssthresh, 20_000);
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn newer_store_overwrites() {
        let mut c = TcpMetricsCache::new();
        c.store("proxy", metrics(20_000));
        c.store("proxy", metrics(5_000));
        assert_eq!(c.lookup("proxy").unwrap().ssthresh, 5_000);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn destinations_are_independent() {
        let mut c = TcpMetricsCache::new();
        c.store("a.example", metrics(1_000));
        c.store("b.example", metrics(2_000));
        assert_eq!(c.lookup("a.example").unwrap().ssthresh, 1_000);
        assert_eq!(c.lookup("b.example").unwrap().ssthresh, 2_000);
    }

    #[test]
    fn clear_empties() {
        let mut c = TcpMetricsCache::new();
        c.store("proxy", metrics(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.lookup("proxy").is_none());
    }
}
