//! # spdyier-tcp
//!
//! A sans-IO TCP implementation for the SPDY'ier reproduction testbed —
//! the layer whose interaction with the cellular RRC state machine is the
//! paper's central subject.
//!
//! Implemented behaviours (all 2013-era-Linux-shaped):
//!
//! * three-way handshake, reliable bidirectional byte streams, graceful
//!   close with FIN/TIME_WAIT;
//! * RFC 6298 RTT estimation and RTO with exponential backoff and Karn's
//!   rule; fast retransmit/NewReno-style recovery on triple duplicate ACKs;
//! * delayed ACKs (40 ms / every second segment), advertised-window flow
//!   control with zero-window persist probing;
//! * congestion control behind a trait: [`cc::Reno`] and [`cc::Cubic`];
//! * RFC 2861 `tcp_slow_start_after_idle` — cwnd collapses to the initial
//!   window after idle while **ssthresh and the RTT estimate survive**,
//!   the implementation flaw the paper identifies;
//! * the paper's §6.2.1 fix as a config flag
//!   ([`TcpConfig::reset_rtt_after_idle`]);
//! * a Linux-`tcp_metrics`-style destination cache ([`TcpMetricsCache`],
//!   §6.2.4);
//! * `tcp_probe`-equivalent tracing ([`TcpTrace`]) of cwnd/ssthresh/
//!   in-flight/retransmissions.
//!
//! ```
//! use spdyier_tcp::{TcpConnection, TcpConfig};
//! use spdyier_sim::SimTime;
//! use spdyier_bytes::Payload;
//!
//! let mut client = TcpConnection::client(TcpConfig::default());
//! let mut server = TcpConnection::server(TcpConfig::default());
//! client.connect(SimTime::ZERO);
//! let syn = client.poll_transmit(SimTime::ZERO).unwrap();
//! server.on_segment(SimTime::from_millis(50), syn);
//! let syn_ack = server.poll_transmit(SimTime::from_millis(50)).unwrap();
//! client.on_segment(SimTime::from_millis(100), syn_ack);
//! assert!(client.is_established());
//! client.write(Payload::from("GET / HTTP/1.1\r\n\r\n"));
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod buffer;
pub mod cc;
pub mod config;
pub mod connection;
pub mod metrics_cache;
pub mod rtt;
pub mod segment;
pub mod trace;

pub use cc::{CcAlgorithm, CongestionControl};
pub use config::TcpConfig;
pub use connection::{TcpConnection, TcpState};
pub use metrics_cache::{CachedMetrics, TcpMetricsCache};
pub use rtt::RttEstimator;
pub use segment::{SegFlags, Segment};
pub use trace::{TcpStats, TcpTrace};
