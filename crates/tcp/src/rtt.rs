//! Round-trip-time estimation and retransmission timeout (RFC 6298).
//!
//! This module is the locus of the paper's headline finding: the estimator
//! converges on the tight active-state RTT of the cellular link, and the
//! resulting RTO (a few hundred milliseconds) is far smaller than the
//! ~2-second RRC promotion delay. Unless the estimate is reset across idle
//! periods ([`RttEstimator::reset`], the paper's §6.2.1 proposal), the first
//! transfer after idle fires a spurious retransmission.

use serde::Serialize;
use spdyier_sim::SimDuration;

/// RFC 6298 smoothed RTT estimator with Karn's rule applied by the caller
/// (only unambiguous samples are fed in).
#[derive(Debug, Clone, Serialize)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
    /// Override for the no-estimate RTO after an explicit reset (the
    /// paper's "initial default value of multiple seconds").
    reset_rto: Option<SimDuration>,
    /// Latest raw sample (diagnostics).
    last_sample: Option<SimDuration>,
    samples_taken: u64,
}

impl RttEstimator {
    /// A fresh estimator: RTO starts at `initial_rto` (RFC 6298: 1 s).
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            initial_rto,
            reset_rto: None,
            last_sample: None,
            samples_taken: 0,
        }
    }

    /// Feed one RTT sample (RFC 6298 §2).
    pub fn sample(&mut self, rtt: SimDuration) {
        self.last_sample = Some(rtt);
        self.samples_taken += 1;
        self.reset_rto = None;
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt.div(2);
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar = self.rttvar.saturating_mul(3).div(4) + err.div(4);
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some(srtt.saturating_mul(7).div(8) + rtt.div(8));
            }
        }
    }

    /// The current retransmission timeout: `SRTT + 4·RTTVAR`, clamped to
    /// `[min_rto, max_rto]`; `initial_rto` before any sample.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.reset_rto.unwrap_or(self.initial_rto),
            Some(srtt) => {
                let rto = srtt + self.rttvar.saturating_mul(4);
                rto.max(self.min_rto).min(self.max_rto)
            }
        }
    }

    /// Smoothed RTT, if at least one sample was taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Latest raw sample.
    pub fn last_sample(&self) -> Option<SimDuration> {
        self.last_sample
    }

    /// Number of samples consumed.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Discard the estimate: the RTO returns to `initial_rto`.
    ///
    /// This is the paper's proposed fix for cellular idle periods — the
    /// initial RTO (seconds) comfortably exceeds the promotion delay, so no
    /// spurious timeout fires while the radio wakes up.
    pub fn reset(&mut self) {
        self.srtt = None;
        self.rttvar = SimDuration::ZERO;
        self.reset_rto = None;
    }

    /// Discard the estimate and hold the RTO at `rto` until a new sample
    /// arrives — the paper's §6.2.1 proposal, where the post-idle RTO is
    /// "multiple seconds", comfortably above any promotion delay.
    pub fn reset_to(&mut self, rto: SimDuration) {
        self.srtt = None;
        self.rttvar = SimDuration::ZERO;
        self.reset_rto = Some(rto);
    }

    /// Seed the estimator from cached metrics (Linux `tcp_metrics`
    /// behaviour — §6.2.4 of the paper shows this can be actively harmful).
    pub fn seed(&mut self, srtt: SimDuration, rttvar: SimDuration) {
        self.srtt = Some(srtt);
        self.rttvar = rttvar;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_secs(120),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = est();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_rfc6298() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(50));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn converges_on_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(150));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_millis() as i64 - 150).abs() <= 1,
            "srtt {srtt} should converge to 150 ms"
        );
        // With near-zero variance the min RTO clamp kicks in.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn rto_respects_min_and_max() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(1));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200), "min clamp");
        let mut e2 = est();
        e2.sample(SimDuration::from_secs(500));
        assert_eq!(e2.rto(), SimDuration::from_secs(120), "max clamp");
    }

    #[test]
    fn converged_rto_is_far_below_promotion_delay() {
        // The central premise of the paper: a tight RTO vs a 2 s promotion.
        let mut e = est();
        // Jittery cellular active-state RTTs around 150–250 ms.
        for i in 0..200u64 {
            e.sample(SimDuration::from_millis(150 + (i * 37) % 100));
        }
        let rto = e.rto();
        assert!(
            rto < SimDuration::from_millis(700),
            "converged RTO {rto} must be well under the 2 s promotion"
        );
    }

    #[test]
    fn reset_restores_initial_rto() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        assert!(e.rto() < SimDuration::from_secs(1));
        e.reset();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn seeding_applies_cached_metrics() {
        let mut e = est();
        e.seed(SimDuration::from_millis(80), SimDuration::from_millis(10));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(80)));
        assert_eq!(
            e.rto(),
            SimDuration::from_millis(200),
            "80+40=120 clamps to 200 min"
        );
    }

    #[test]
    fn variance_grows_with_jitter() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..100u64 {
            stable.sample(SimDuration::from_millis(150));
            jittery.sample(SimDuration::from_millis(if i % 2 == 0 { 50 } else { 250 }));
        }
        assert!(jittery.rttvar() > stable.rttvar());
        assert!(jittery.rto() > stable.rto());
    }
}
