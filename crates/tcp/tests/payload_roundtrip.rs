//! Property test: a `Payload` rope survives the full send path — queued
//! in a `SendBuffer`, pulled as arbitrarily-sized segments, delivered to
//! a `RecvBuffer` in arbitrary order (with duplicates) — with its exact
//! length and content (real prefix included) preserved.

use proptest::prelude::*;
use spdyier_bytes::{testsupport::bytes_of, Payload};
use spdyier_tcp::buffer::{RecvBuffer, SendBuffer};

/// Build a rope from a spec: `(real?, len, fill)` per chunk.
fn rope_from_spec(spec: &[(bool, u16, u8)]) -> Payload {
    let mut p = Payload::new();
    for &(real, len, fill) in spec {
        if real {
            p.push_bytes(bytes_of(len as usize, fill));
        } else {
            p.push_synthetic(u64::from(len));
        }
    }
    p
}

/// Deterministic in-place shuffle driven by pre-drawn randomness.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rope_roundtrips_through_send_and_recv_buffers(
        spec in prop::collection::vec((any::<bool>(), 1u16..2000, any::<u8>()), 1..8),
        seg_sizes in prop::collection::vec(1u64..1461, 1..64),
        order_seed in any::<u64>(),
        duplicate_first in any::<bool>(),
    ) {
        let original = rope_from_spec(&spec);
        let total = original.len();

        // Send side: queue the rope, pull segments of the drawn sizes
        // (cycling); tag each with its sequence offset.
        let mut send = SendBuffer::new();
        send.write(original.clone());
        let mut segments = Vec::new();
        let mut seq = 0u64;
        let mut i = 0;
        while !send.is_empty() {
            let take = seg_sizes[i % seg_sizes.len()];
            let part = send.pull(take);
            prop_assert!(part.len() <= take);
            let plen = part.len();
            segments.push((seq, part));
            seq += plen;
            i += 1;
        }
        prop_assert_eq!(seq, total, "pulls cover the stream exactly");

        // Deliver out of order, optionally duplicating one segment.
        if duplicate_first && !segments.is_empty() {
            let dup = segments[0].clone();
            segments.push(dup);
        }
        shuffle(&mut segments, order_seed);
        let mut recv = RecvBuffer::new(0, u64::MAX);
        for (seq, part) in segments {
            recv.ingest(seq, part);
        }

        // The application sees the exact original byte string.
        let got = recv.read().expect("stream fully reassembled");
        prop_assert_eq!(got.len(), total);
        prop_assert_eq!(&got, &original, "content preserved (real bytes and synthetic runs)");
        prop_assert_eq!(got.to_vec(), original.to_vec(), "materialized views agree");
        prop_assert!(recv.read().is_none());
    }
}
