//! # spdyier-bench
//!
//! Criterion benchmark harness for the reproduction. Three suites:
//!
//! * `figures` — one benchmark per paper table/figure, each executing the
//!   corresponding experiment kernel end to end (single-seed) so that
//!   regenerating any figure is a `cargo bench` target;
//! * `substrates` — micro-benchmarks of the substrates (TCP transfer,
//!   SPDY mux + header compression, RRC machine, page synthesis, DES
//!   queue) that bound the testbed's own cost;
//! * `ablations` — the §6 design-choice sweeps (RTT reset, slow-start
//!   after idle, metrics cache, connection counts).
//!
//! The library part hosts shared single-run kernels so benchmarks and
//! integration tests measure exactly the same code paths.

#![warn(missing_docs)]

use spdyier_core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode, RunResult};
use spdyier_sim::{DetRng, SimDuration};
use spdyier_workload::VisitSchedule;

/// A single-visit run of `site` (Table 1 index) — the smallest kernel that
/// still exercises browser + proxy + TCP + RRC end to end.
pub fn single_visit(
    protocol: ProtocolMode,
    network: NetworkKind,
    site: u32,
    seed: u64,
) -> RunResult {
    let cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(VisitSchedule::sequential(
            vec![site],
            SimDuration::from_secs(60),
        ));
    run_experiment(cfg)
}

/// A short three-site schedule (sites 5, 9, 12 — small/medium pages) used
/// where the full 20-site schedule would make benches too slow.
pub fn short_schedule_run(protocol: ProtocolMode, network: NetworkKind, seed: u64) -> RunResult {
    let cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(VisitSchedule::sequential(
            vec![5, 9, 12],
            SimDuration::from_secs(60),
        ));
    run_experiment(cfg)
}

/// The full paper schedule for one seed.
pub fn full_run(protocol: ProtocolMode, network: NetworkKind, seed: u64) -> RunResult {
    let mut rng = DetRng::new(seed).fork("schedule");
    let cfg = ExperimentConfig::paper_3g(protocol, seed)
        .with_network(network)
        .with_schedule(VisitSchedule::paper_default(&mut rng));
    run_experiment(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_complete() {
        let r = single_visit(ProtocolMode::Http, NetworkKind::Wifi, 9, 1);
        assert_eq!(r.visits.len(), 1);
        assert!(r.visits[0].completed);
        let r = short_schedule_run(ProtocolMode::spdy(), NetworkKind::Wifi, 1);
        assert_eq!(r.visits.len(), 3);
    }
}
