//! `sweep_bench`: the self-profiler's own benchmark harness.
//!
//! Runs the paired 3G sweep in child processes with the profiler
//! disabled and enabled (spans + allocation attribution + heartbeats),
//! alternating modes for `--reps` repetitions and scoring each mode by
//! its *minimum* wall time (single-shot timings on shared hosts carry
//! several percent of noise — more than the overhead being measured).
//! Writes `BENCH_PR7.json` with events/second, allocations per
//! simulated visit, the per-subsystem self-time and allocation
//! breakdown, and the measured profiling overhead. The run exits
//! nonzero if:
//!
//! - the two modes' run results diverge (the profiler must be invisible
//!   to the simulation),
//! - profiling overhead exceeds `--max-overhead` (default 5%),
//! - the disabled-mode events/second falls below `--min-events-ratio`
//!   (default 0.8) of the committed baseline's, or
//! - allocations per visit exceed `--max-allocs-ratio` (default 1.02)
//!   of the committed baseline's ceiling (alloc counts are
//!   deterministic up to environment-size jitter, so the tolerance is
//!   tight).
//!
//! ```text
//! sweep_bench [--seeds N] [--reps N] [--out FILE] [--baseline FILE]
//!             [--max-overhead PCT] [--min-events-ratio R]
//!             [--max-allocs-ratio R]
//! sweep_bench rss [--cells N] [--visits V] [--growth G]
//!                 [--max-rss-ratio R] [--out FILE]
//! ```
//!
//! The `rss` mode is the streaming-sweep memory gate: it runs a
//! synthetic ≥100-cell sweep through the resumable `experiments sweep`
//! fold path twice — once at `--visits` per cell and once at
//! `--visits × --growth` — in separate child processes, and fails if
//! the peak RSS grows by more than `--max-rss-ratio` (default 1.50)
//! while the folded work grows `--growth`× (default 10×). A collecting
//! runner retains every `RunResult`, so its RSS scales ~`--growth`×
//! with total visits; the fold path holds one raw result per worker,
//! so its RSS is flat up to that single in-flight transient. The 1.5×
//! ceiling admits the transient and rejects retention. Writes
//! `BENCH_PR10.json`.

use spdyier_core::NetworkKind;
use spdyier_experiments::{paired_cells, profiled_cells_on, Executor};
use spdyier_prof::{global_counts, peak_rss_kb};
use spdyier_trace::TraceLevel;

// Same allocator `experiments` and `payload_bench` install: both
// children count allocations whether or not the profiler attributes
// them.
#[global_allocator]
static GLOBAL: spdyier_prof::CountingAlloc = spdyier_prof::CountingAlloc;

fn fnv1a(hash: &mut u64, data: &[u8]) {
    for &b in data {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Child mode: run the paired sweep serially (stable timing, no pool
/// scheduling noise) and print `key=value` lines for the parent.
fn run_child(seeds: u64, profiled: bool) {
    spdyier_prof::set_enabled(profiled);
    let cells = paired_cells(seeds);
    // Heartbeats cost serialization either way; `io::sink()` isolates
    // that cost from disk speed.
    let heartbeat: Option<Box<dyn std::io::Write + Send>> = if profiled {
        Some(Box::new(std::io::sink()))
    } else {
        None
    };
    let before = global_counts();
    let sweep = profiled_cells_on(
        &Executor::new(1),
        &cells,
        NetworkKind::Umts3G,
        TraceLevel::Lifecycle,
        heartbeat,
    );
    let d = global_counts().since(before);
    spdyier_prof::set_enabled(false);

    // Identity digest over the run results, outside the measured window.
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for (run, _) in &sweep.runs {
        let line = serde_json::to_string(run).expect("serialize run");
        fnv1a(&mut digest, line.as_bytes());
    }

    println!("wall_ms={:.3}", sweep.wall_ms);
    println!("visits={}", sweep.telemetry.visits);
    println!("events={}", sweep.telemetry.events);
    println!("allocs={}", d.allocs);
    println!("alloc_bytes={}", d.bytes);
    println!("trace_dropped={}", sweep.telemetry.trace_dropped);
    println!("heartbeat_lines={}", sweep.telemetry.lines);
    println!("digest={digest:016x}");
    println!("peak_rss_kb={}", peak_rss_kb());
    for (name, s) in sweep.profile.subsystems() {
        println!(
            "subsys.{name}={},{},{},{}",
            s.self_ns, s.allocs, s.calls, s.alloc_bytes
        );
    }
    if std::env::var("SWEEP_BENCH_SPANS").is_ok() {
        for (name, s) in &sweep.profile.spans {
            println!(
                "span.{name}={},{},{},{}",
                s.self_ns, s.allocs, s.calls, s.alloc_bytes
            );
        }
    }
}

/// A synthetic sweep manifest for the RSS gate: `cells` cells (paired
/// HTTP/SPDY, so `cells / 2` seeds) of a small same-domain page with
/// `visits` visits per cell.
fn rss_manifest(cells: u64, visits: u64) -> spdyier_scenario::Manifest {
    let mut m = spdyier_scenario::Manifest::from_json(&format!(
        r#"{{
            "schema_version": 1,
            "name": "sweep_bench_rss",
            "network": {{ "kind": "wifi" }},
            "workload": {{
                "kind": "synthetic",
                "objects": 6,
                "object_bytes": 1200,
                "same_domain": true,
                "visits": {visits},
                "interval_s": 30
            }},
            "protocols": ["http", "spdy"]
        }}"#
    ))
    .expect("rss manifest decodes");
    m.seeds = spdyier_scenario::Seeds {
        base: 0,
        count: cells.div_ceil(2),
    };
    m
}

/// RSS child mode: run the folded sweep serially into a throwaway
/// directory and report this process's peak RSS.
fn run_rss_child(cells: u64, visits: u64) {
    let manifest = rss_manifest(cells, visits);
    let dir = std::env::temp_dir().join(format!("sweep_bench_rss_{}_{visits}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let started = std::time::Instant::now();
    let outcome = spdyier_experiments::run_sweep_on(
        &Executor::new(1),
        &manifest,
        &dir,
        spdyier_experiments::SweepOptions::default(),
    )
    .expect("rss sweep runs");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let spdyier_experiments::SweepOutcome::Completed(outcome) = outcome else {
        panic!("rss sweep must run to completion");
    };
    assert_eq!(outcome.exit.code(), 0, "{}", outcome.summary);
    // Identity digest over the results contract, so the parent can
    // assert the folded sweep stayed deterministic across reps.
    let result = std::fs::read(dir.join("result.json")).expect("result.json");
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    fnv1a(&mut digest, &result);
    let _ = std::fs::remove_dir_all(&dir);
    println!("wall_ms={wall_ms:.3}");
    println!("cells={}", manifest.cells().len());
    println!("visits_per_cell={visits}");
    println!("digest={digest:016x}");
    println!("peak_rss_kb={}", peak_rss_kb());
}

/// One child run's parsed report.
struct Report {
    fields: Vec<(String, String)>,
}

impl Report {
    fn get(&self, key: &str) -> &str {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("child report missing {key}"))
    }

    fn num(&self, key: &str) -> f64 {
        self.get(key)
            .parse()
            .unwrap_or_else(|_| panic!("child field {key} not numeric"))
    }

    /// `subsys.NAME=self_ns,allocs,calls,alloc_bytes` rows, in order.
    fn subsystems(&self) -> Vec<(String, [u64; 4])> {
        self.fields
            .iter()
            .filter_map(|(k, v)| {
                let name = k.strip_prefix("subsys.")?;
                let mut parts = v.split(',').map(|p| p.parse::<u64>().ok());
                let row = [
                    parts.next()??,
                    parts.next()??,
                    parts.next()??,
                    parts.next()??,
                ];
                Some((name.to_string(), row))
            })
            .collect()
    }
}

fn spawn_child(seeds: u64, profiled: bool) -> Report {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("child")
        .arg(seeds.to_string())
        .arg(if profiled { "on" } else { "off" })
        .output()
        .expect("spawn child");
    assert!(
        out.status.success(),
        "child (profiled={profiled}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fields = String::from_utf8(out.stdout)
        .expect("child stdout utf8")
        .lines()
        .filter_map(|l| {
            l.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect();
    Report { fields }
}

/// Extract `"key": <number>` from a committed baseline without a JSON
/// parser (the vendored serde_json stub has no deserializer).
fn baseline_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_mode(r: &Report, profiled: bool) -> String {
    let wall_s = r.num("wall_ms") / 1e3;
    let events_per_sec = if wall_s > 0.0 {
        r.num("events") / wall_s
    } else {
        0.0
    };
    let allocs_per_visit = r.num("allocs") / r.num("visits").max(1.0);
    let mut s = format!(
        "{{\n      \"wall_ms\": {}, \"visits\": {}, \"events\": {}, \"allocs\": {}, \"alloc_bytes\": {},\n      \"events_per_sec\": {events_per_sec:.0}, \"allocs_per_visit\": {allocs_per_visit:.0}, \"trace_dropped\": {}, \"peak_rss_kb\": {}",
        r.get("wall_ms"),
        r.get("visits"),
        r.get("events"),
        r.get("allocs"),
        r.get("alloc_bytes"),
        r.get("trace_dropped"),
        r.get("peak_rss_kb"),
    );
    if profiled {
        s.push_str(&format!(
            ", \"heartbeat_lines\": {}",
            r.get("heartbeat_lines")
        ));
    }
    s.push_str("\n    }");
    s
}

fn spawn_rss_child(cells: u64, visits: u64) -> Report {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("rss-child")
        .arg(cells.to_string())
        .arg(visits.to_string())
        .output()
        .expect("spawn rss child");
    assert!(
        out.status.success(),
        "rss child (visits={visits}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fields = String::from_utf8(out.stdout)
        .expect("child stdout utf8")
        .lines()
        .filter_map(|l| {
            l.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect();
    Report { fields }
}

/// The `rss` subcommand: the streaming-sweep memory-flatness gate.
fn run_rss_bench(args: &[String]) {
    let mut cells = 100u64;
    let mut visits = 3u64;
    let mut growth = 10u64;
    let mut max_rss_ratio = 1.50f64;
    let mut out_path = String::from("BENCH_PR10.json");
    let mut i = 0;
    while i < args.len() {
        let take = |a: &Option<&String>, what: &str| -> String {
            a.unwrap_or_else(|| panic!("{what} needs a value")).clone()
        };
        match args[i].as_str() {
            "--cells" => {
                cells = take(&args.get(i + 1), "--cells").parse().expect("--cells");
                assert!(cells >= 2, "--cells must be at least 2");
            }
            "--visits" => {
                visits = take(&args.get(i + 1), "--visits")
                    .parse()
                    .expect("--visits");
                assert!(visits >= 1, "--visits must be at least 1");
            }
            "--growth" => {
                growth = take(&args.get(i + 1), "--growth")
                    .parse()
                    .expect("--growth");
                assert!(growth >= 2, "--growth must be at least 2");
            }
            "--max-rss-ratio" => {
                max_rss_ratio = take(&args.get(i + 1), "--max-rss-ratio")
                    .parse()
                    .expect("--max-rss-ratio");
            }
            "--out" => {
                out_path = take(&args.get(i + 1), "--out");
            }
            other => {
                eprintln!(
                    "usage: sweep_bench rss [--cells N] [--visits V] [--growth G] \
                     [--max-rss-ratio R] [--out FILE]"
                );
                panic!("unknown argument {other}");
            }
        }
        i += 2;
    }

    println!("rss gate: {cells}-cell folded sweep at {visits} visits/cell...");
    let lo = spawn_rss_child(cells, visits);
    let hi_visits = visits * growth;
    println!("rss gate: {cells}-cell folded sweep at {hi_visits} visits/cell ({growth}x)...");
    let hi = spawn_rss_child(cells, hi_visits);

    let lo_rss = lo.num("peak_rss_kb");
    let hi_rss = hi.num("peak_rss_kb");
    let rss_ratio = if lo_rss > 0.0 { hi_rss / lo_rss } else { 0.0 };
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"gate\": \"sweep_rss_flat\",\n  \"cells\": {},\n  \"visits_lo\": {visits},\n  \"visits_hi\": {hi_visits},\n  \"growth\": {growth},\n  \"lo\": {{ \"wall_ms\": {}, \"peak_rss_kb\": {} }},\n  \"hi\": {{ \"wall_ms\": {}, \"peak_rss_kb\": {} }},\n  \"rss_ratio\": {rss_ratio:.3},\n  \"max_rss_ratio\": {max_rss_ratio:.2}\n}}\n",
        lo.get("cells"),
        lo.get("wall_ms"),
        lo.get("peak_rss_kb"),
        hi.get("wall_ms"),
        hi.get("peak_rss_kb"),
    );
    std::fs::write(&out_path, &json).expect("write rss report");
    println!("wrote {out_path}");
    println!(
        "peak RSS {lo_rss:.0} kB at {visits} visits/cell -> {hi_rss:.0} kB at {hi_visits} \
         ({rss_ratio:.3}x for {growth}x the folded visits; ceiling {max_rss_ratio:.2}x)"
    );
    if rss_ratio > max_rss_ratio {
        eprintln!(
            "FAIL: peak RSS grew {rss_ratio:.3}x for {growth}x the per-cell visits — the \
             sweep is retaining per-visit state instead of folding it"
        );
        std::process::exit(1);
    }
    println!("PASS: peak RSS is flat in per-cell visits");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("rss-child") {
        let cells = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .expect("rss-child mode needs a cell count");
        let visits = args
            .get(2)
            .and_then(|s| s.parse().ok())
            .expect("rss-child mode needs a visit count");
        run_rss_child(cells, visits);
        return;
    }
    if args.first().map(String::as_str) == Some("rss") {
        run_rss_bench(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("child") {
        let seeds = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .expect("child mode needs a seed count");
        let profiled = match args.get(2).map(String::as_str) {
            Some("on") => true,
            Some("off") => false,
            _ => panic!("child mode needs on|off"),
        };
        run_child(seeds, profiled);
        return;
    }

    let mut seeds = 2u64;
    let mut reps = 2u32;
    let mut out_path = String::from("BENCH_PR7.json");
    let mut baseline_path = String::from("BENCH_PR7.json");
    let mut max_overhead = 5.0f64;
    let mut min_events_ratio = 0.8f64;
    let mut max_allocs_ratio = 1.02f64;
    let mut i = 0;
    while i < args.len() {
        let take = |a: &Option<&String>, what: &str| -> String {
            a.unwrap_or_else(|| panic!("{what} needs a value")).clone()
        };
        match args[i].as_str() {
            "--seeds" => {
                seeds = take(&args.get(i + 1), "--seeds").parse().expect("--seeds");
                i += 2;
            }
            "--reps" => {
                reps = take(&args.get(i + 1), "--reps").parse().expect("--reps");
                assert!(reps >= 1, "--reps must be >= 1");
                i += 2;
            }
            "--out" => {
                out_path = take(&args.get(i + 1), "--out");
                i += 2;
            }
            "--baseline" => {
                baseline_path = take(&args.get(i + 1), "--baseline");
                i += 2;
            }
            "--max-overhead" => {
                max_overhead = take(&args.get(i + 1), "--max-overhead")
                    .parse()
                    .expect("--max-overhead");
                i += 2;
            }
            "--min-events-ratio" => {
                min_events_ratio = take(&args.get(i + 1), "--min-events-ratio")
                    .parse()
                    .expect("--min-events-ratio");
                i += 2;
            }
            "--max-allocs-ratio" => {
                max_allocs_ratio = take(&args.get(i + 1), "--max-allocs-ratio")
                    .parse()
                    .expect("--max-allocs-ratio");
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: sweep_bench [--seeds N] [--reps N] [--out FILE] [--baseline FILE] \
                     [--max-overhead PCT] [--min-events-ratio R] [--max-allocs-ratio R]"
                );
                panic!("unknown argument {other}");
            }
        }
    }

    // Read the committed baseline *before* the run may overwrite it.
    let baseline_text = std::fs::read_to_string(&baseline_path).ok();
    let baseline_events_per_sec = baseline_text
        .as_deref()
        .and_then(|text| baseline_number(text, "events_per_sec"));
    let baseline_allocs_per_visit = baseline_text
        .as_deref()
        .and_then(|text| baseline_number(text, "allocs_per_visit"));

    // Alternate modes and keep each mode's fastest rep: host noise on a
    // ~10 s run easily exceeds the few-percent overhead being measured,
    // and min-of-N is the standard way to strip it.
    let mut off_runs = Vec::new();
    let mut on_runs = Vec::new();
    for rep in 1..=reps {
        println!("rep {rep}/{reps}: profiler-off sweep ({seeds} seeds)...");
        off_runs.push(spawn_child(seeds, false));
        println!("rep {rep}/{reps}: profiler-on sweep ({seeds} seeds)...");
        on_runs.push(spawn_child(seeds, true));
    }
    let fastest = |runs: &[Report]| -> usize {
        (0..runs.len())
            .min_by(|&a, &b| runs[a].num("wall_ms").total_cmp(&runs[b].num("wall_ms")))
            .expect("at least one rep")
    };
    let digest = off_runs[0].get("digest").to_string();
    let identical = off_runs
        .iter()
        .chain(on_runs.iter())
        .all(|r| r.get("digest") == digest);
    let off = &off_runs[fastest(&off_runs)];
    let on = &on_runs[fastest(&on_runs)];
    let off_wall = off.num("wall_ms");
    let on_wall = on.num("wall_ms");
    let overhead_pct = if off_wall > 0.0 {
        (on_wall - off_wall) / off_wall * 100.0
    } else {
        0.0
    };
    let events_per_sec = off.num("events") / (off_wall / 1e3).max(1e-9);
    let allocs_per_visit = off.num("allocs") / off.num("visits").max(1.0);

    let mut subsys_json = String::from("{");
    for (idx, (name, [self_ns, allocs, calls, alloc_bytes])) in
        on.subsystems().into_iter().enumerate()
    {
        if idx > 0 {
            subsys_json.push(',');
        }
        subsys_json.push_str(&format!(
            "\n    \"{name}\": {{\"self_ms\": {:.1}, \"allocs\": {allocs}, \"alloc_bytes\": {alloc_bytes}, \"calls\": {calls}}}",
            self_ns as f64 / 1e6,
        ));
    }
    subsys_json.push_str("\n  }");

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"seeds\": {seeds},\n  \"reps\": {reps},\n  \"off\": {},\n  \"on\": {},\n  \"subsystems\": {subsys_json},\n  \"events_per_sec\": {events_per_sec:.0},\n  \"allocs_per_visit\": {allocs_per_visit:.0},\n  \"overhead_pct\": {overhead_pct:.2},\n  \"byte_identical\": {identical}\n}}\n",
        json_mode(off, false),
        json_mode(on, true),
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
    println!(
        "off: {off_wall:.0} ms ({events_per_sec:.0} events/s, {allocs_per_visit:.0} allocs/visit) | \
         on: {on_wall:.0} ms => {overhead_pct:+.2}% overhead, {} heartbeat lines",
        on.get("heartbeat_lines"),
    );
    for (name, [self_ns, allocs, calls, _]) in on.subsystems() {
        println!(
            "  {name:<10} {:>9.1} ms self  {allocs:>12} allocs  {calls:>9} calls",
            self_ns as f64 / 1e6
        );
    }

    let mut failed = false;
    if !identical {
        eprintln!("FAIL: run results diverge between profiler-off and profiler-on");
        failed = true;
    }
    if overhead_pct > max_overhead {
        eprintln!("FAIL: profiling overhead {overhead_pct:.2}% exceeds {max_overhead:.1}%");
        failed = true;
    }
    match baseline_events_per_sec {
        Some(base) if base > 0.0 => {
            let ratio = events_per_sec / base;
            if ratio < min_events_ratio {
                eprintln!(
                    "FAIL: events/s regressed to {ratio:.2}x of baseline \
                     ({events_per_sec:.0} vs {base:.0}; floor {min_events_ratio:.2}x)"
                );
                failed = true;
            } else {
                println!("events/s vs baseline: {ratio:.2}x (floor {min_events_ratio:.2}x)");
            }
        }
        _ => println!("no baseline at {baseline_path}; skipping events/s gate"),
    }
    match baseline_allocs_per_visit {
        Some(ceiling) if ceiling > 0.0 => {
            let limit = ceiling * max_allocs_ratio;
            if allocs_per_visit > limit {
                eprintln!(
                    "FAIL: allocs/visit grew to {allocs_per_visit:.0}, above the committed \
                     ceiling {ceiling:.0} x {max_allocs_ratio:.2} = {limit:.0}"
                );
                failed = true;
            } else {
                println!(
                    "allocs/visit vs ceiling: {allocs_per_visit:.0} <= {ceiling:.0} x {max_allocs_ratio:.2}"
                );
            }
        }
        _ => println!("no baseline at {baseline_path}; skipping allocs/visit gate"),
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: byte-identical, overhead {overhead_pct:.2}% <= {max_overhead:.1}%");
}
