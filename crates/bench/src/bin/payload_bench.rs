//! `payload_bench`: the data-plane benchmark harness for the zero-copy
//! [`Payload`] rope.
//!
//! Runs the measurement workload twice in child processes — once with the
//! default synthetic rope and once with `SPDYIER_MATERIALIZE_BODIES=1`
//! (every simulated body allocated for real) — under a counting global
//! allocator, then writes `BENCH_PR5.json` with wall-time, trace
//! events/second, peak RSS, and the allocation ratios. The run exits
//! nonzero if the two modes' run results diverge (the rope must be
//! timing-invariant) or if materialized bodies do not cost at least twice
//! the rope's data-plane allocations.
//!
//! ```text
//! payload_bench [--seeds N] [--out FILE]     # default: 3 seeds, BENCH_PR5.json
//! ```

use spdyier_bytes::Payload;
use spdyier_core::{NetworkKind, ProtocolMode};
use spdyier_experiments::{paired_runs_on, run_schedule_traced, Executor, ExpOpts};
use spdyier_prof::{global_counts, peak_rss_kb, AllocCounts};
use spdyier_tcp::buffer::{RecvBuffer, SendBuffer};
use spdyier_trace::TraceLevel;
use std::time::Instant;

// The counting allocator now lives in `spdyier-prof` (it started here);
// installing it gives every stage its allocation counts.
#[global_allocator]
static GLOBAL: spdyier_prof::CountingAlloc = spdyier_prof::CountingAlloc;

fn fnv1a(hash: &mut u64, data: &[u8]) {
    for &b in data {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Body bytes pushed through the data-plane stage.
const DATAPLANE_TOTAL: u64 = 64 * 1024 * 1024;
/// Application write granularity for the data-plane stage.
const DATAPLANE_WRITE: u64 = 16 * 1024;
/// Segment size for the data-plane stage (the testbed's access-path MSS).
const DATAPLANE_MSS: u64 = 1460;

/// The pure byte path, isolated: stream [`DATAPLANE_TOTAL`] body bytes
/// through `SendBuffer` → MSS-sized segments → `RecvBuffer` reassembly.
/// With the synthetic rope this is O(1) bookkeeping per segment; with
/// materialized bodies every write allocates its payload. Returns the
/// total bytes read back (a checksum against silent truncation).
fn dataplane_stage() -> u64 {
    let mut send = SendBuffer::new();
    let mut recv = RecvBuffer::new(0, u64::MAX);
    let mut seq = 0u64;
    let mut read_back = 0u64;
    let mut written = 0u64;
    while written < DATAPLANE_TOTAL {
        send.write(Payload::body(DATAPLANE_WRITE));
        written += DATAPLANE_WRITE;
        loop {
            let seg = send.pull(DATAPLANE_MSS);
            if seg.is_empty() {
                break;
            }
            let len = seg.len();
            recv.ingest(seq, seg);
            seq += len;
        }
        while let Some(chunk) = recv.read() {
            read_back += chunk.len();
        }
    }
    read_back
}

/// One measured stage: wall time plus the allocations it performed.
struct Stage {
    wall_ms: f64,
    allocs: u64,
    alloc_bytes: u64,
}

fn staged<T>(f: impl FnOnce() -> T) -> (Stage, T) {
    let m: AllocCounts = global_counts();
    let t0 = Instant::now();
    let out = f();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let d = global_counts().since(m);
    (
        Stage {
            wall_ms,
            allocs: d.allocs,
            alloc_bytes: d.bytes,
        },
        out,
    )
}

/// Child mode: run the three stages and print `key=value` lines for the
/// parent to collect. Key names match the JSON fields the parent writes.
fn run_child(seeds: u64) {
    // Stage 1: the paired 3G sweep (HTTP and SPDY per seed), serial so
    // allocation counts are not perturbed by worker-pool scheduling. The
    // identity digest is computed outside the measured window — JSON
    // serialization cost is not the sweep's cost.
    let (sweep, pairs) = staged(|| {
        paired_runs_on(
            &Executor::new(1),
            NetworkKind::Umts3G,
            ExpOpts { seeds },
            true,
        )
    });
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for (http, spdy) in &pairs {
        let a = serde_json::to_string(http).expect("serialize http run");
        let b = serde_json::to_string(spdy).expect("serialize spdy run");
        fnv1a(&mut digest, a.as_bytes());
        fnv1a(&mut digest, b.as_bytes());
    }

    // Stage 2: the traced path at Full level (the flight-recorder
    // workload), one HTTP and one SPDY run.
    let (trace, (events, logs)) = staged(|| {
        let mut events = 0u64;
        let mut logs = Vec::new();
        for protocol in [ProtocolMode::Http, ProtocolMode::spdy()] {
            let (_result, log) =
                run_schedule_traced(protocol, NetworkKind::Umts3G, 0, TraceLevel::Full);
            events += log.events.len() as u64;
            logs.push(log);
        }
        (events, logs)
    });
    let mut trace_digest = 0xCBF2_9CE4_8422_2325u64;
    for log in &logs {
        fnv1a(&mut trace_digest, log.to_jsonl().as_bytes());
    }

    // Stage 3: the isolated byte path (the allocation guard's subject).
    let (dataplane, moved) = staged(dataplane_stage);
    assert_eq!(moved, DATAPLANE_TOTAL, "data-plane stage lost bytes");

    println!("sweep_wall_ms={:.3}", sweep.wall_ms);
    println!("sweep_allocs={}", sweep.allocs);
    println!("sweep_alloc_bytes={}", sweep.alloc_bytes);
    println!("sweep_digest={digest:016x}");
    println!("trace_wall_ms={:.3}", trace.wall_ms);
    println!("trace_allocs={}", trace.allocs);
    println!("trace_alloc_bytes={}", trace.alloc_bytes);
    println!("trace_events={events}");
    println!("trace_digest={trace_digest:016x}");
    println!("dataplane_wall_ms={:.3}", dataplane.wall_ms);
    println!("dataplane_allocs={}", dataplane.allocs);
    println!("dataplane_alloc_bytes={}", dataplane.alloc_bytes);
    println!("peak_rss_kb={}", peak_rss_kb());
}

/// One child run's parsed report.
struct Report {
    fields: Vec<(String, String)>,
}

impl Report {
    fn get(&self, key: &str) -> &str {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("child report missing {key}"))
    }

    fn num(&self, key: &str) -> f64 {
        self.get(key)
            .parse()
            .unwrap_or_else(|_| panic!("child field {key} not numeric"))
    }
}

fn spawn_child(seeds: u64, materialize: bool) -> Report {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("child").arg(seeds.to_string());
    if materialize {
        cmd.env("SPDYIER_MATERIALIZE_BODIES", "1");
    } else {
        cmd.env_remove("SPDYIER_MATERIALIZE_BODIES");
    }
    let out = cmd.output().expect("spawn child");
    assert!(
        out.status.success(),
        "child (materialize={materialize}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fields = String::from_utf8(out.stdout)
        .expect("child stdout utf8")
        .lines()
        .filter_map(|l| {
            l.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect();
    Report { fields }
}

fn json_stage(r: &Report, prefix: &str) -> String {
    let mut s = format!(
        "{{\"wall_ms\": {}, \"allocs\": {}, \"alloc_bytes\": {}",
        r.get(&format!("{prefix}_wall_ms")),
        r.get(&format!("{prefix}_allocs")),
        r.get(&format!("{prefix}_alloc_bytes")),
    );
    if prefix == "trace" {
        s.push_str(&format!(", \"events\": {}", r.get("trace_events")));
    }
    s.push('}');
    s
}

fn json_mode(r: &Report) -> String {
    format!(
        "{{\n    \"sweep\": {},\n    \"trace\": {},\n    \"dataplane\": {},\n    \"peak_rss_kb\": {}\n  }}",
        json_stage(r, "sweep"),
        json_stage(r, "trace"),
        json_stage(r, "dataplane"),
        r.get("peak_rss_kb"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("child") {
        let seeds = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .expect("child mode needs a seed count");
        run_child(seeds);
        return;
    }

    let mut seeds = 3u64;
    let mut out_path = String::from("BENCH_PR5.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                seeds = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--seeds needs a number");
                i += 2;
            }
            "--out" => {
                out_path = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            other => {
                eprintln!("usage: payload_bench [--seeds N] [--out FILE]");
                panic!("unknown argument {other}");
            }
        }
    }

    println!("running rope mode ({seeds} seeds)...");
    let rope = spawn_child(seeds, false);
    println!("running materialized mode ({seeds} seeds)...");
    let mat = spawn_child(seeds, true);

    // Timing-invariance guard: the synthetic rope and real zero-filled
    // bodies must produce identical run results and trace streams.
    let identical = rope.get("sweep_digest") == mat.get("sweep_digest")
        && rope.get("trace_digest") == mat.get("trace_digest");

    let alloc_ratio = mat.num("dataplane_allocs") / rope.num("dataplane_allocs").max(1.0);
    let alloc_bytes_ratio =
        mat.num("dataplane_alloc_bytes") / rope.num("dataplane_alloc_bytes").max(1.0);
    let events_per_sec = rope.num("trace_events") / (rope.num("trace_wall_ms") / 1e3);

    let json = format!(
        "{{\n  \"seeds\": {seeds},\n  \"dataplane_body_bytes\": {DATAPLANE_TOTAL},\n  \"rope\": {},\n  \"materialized\": {},\n  \"alloc_ratio\": {alloc_ratio:.2},\n  \"alloc_bytes_ratio\": {alloc_bytes_ratio:.2},\n  \"trace_events_per_sec\": {events_per_sec:.0},\n  \"byte_identical\": {identical}\n}}\n",
        json_mode(&rope),
        json_mode(&mat),
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");
    println!(
        "data plane: {:.0} allocs / {:.0} bytes (rope) vs {:.0} allocs / {:.0} bytes (materialized) \
         => {alloc_ratio:.1}x allocs, {alloc_bytes_ratio:.1}x bytes",
        rope.num("dataplane_allocs"),
        rope.num("dataplane_alloc_bytes"),
        mat.num("dataplane_allocs"),
        mat.num("dataplane_alloc_bytes"),
    );
    println!(
        "sweep {:.0} ms, trace {:.0} ms ({events_per_sec:.0} events/s), peak RSS {} kB",
        rope.num("sweep_wall_ms"),
        rope.num("trace_wall_ms"),
        rope.get("peak_rss_kb"),
    );

    if !identical {
        eprintln!("FAIL: run results diverge between rope and materialized bodies");
        std::process::exit(1);
    }
    if alloc_ratio < 2.0 || alloc_bytes_ratio < 2.0 {
        eprintln!(
            "FAIL: rope saves less than 2x data-plane allocations \
             ({alloc_ratio:.2}x allocs, {alloc_bytes_ratio:.2}x bytes)"
        );
        std::process::exit(1);
    }
    println!("PASS: byte-identical, >=2x fewer data-plane allocations");
}
