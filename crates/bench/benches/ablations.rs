//! Design-ablation benches: the §6 toggles measured on a fixed kernel so
//! their *simulated-outcome* differences (printed) and *regeneration
//! cost* (measured) are both tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use spdyier_core::{run_experiment, ExperimentConfig, NetworkKind, ProtocolMode};
use spdyier_sim::SimDuration;
use spdyier_workload::VisitSchedule;
use std::hint::black_box;
use std::time::Duration;

fn kernel(tweak: impl Fn(&mut ExperimentConfig)) -> f64 {
    let mut cfg = ExperimentConfig::paper_3g(ProtocolMode::spdy(), 1)
        .with_network(NetworkKind::Umts3G)
        .with_schedule(VisitSchedule::sequential(
            vec![7, 12],
            SimDuration::from_secs(60),
        ));
    tweak(&mut cfg);
    let r = run_experiment(cfg);
    r.visits.iter().map(|v| v.plt_ms).sum::<f64>() / r.visits.len() as f64
}

fn ablation_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    g.bench_function("abl_baseline", |b| b.iter(|| black_box(kernel(|_| {}))));
    g.bench_function("abl_rtt_reset", |b| {
        b.iter(|| black_box(kernel(|cfg| cfg.tcp.reset_rtt_after_idle = true)))
    });
    g.bench_function("abl_no_ss_after_idle", |b| {
        b.iter(|| black_box(kernel(|cfg| cfg.tcp.slow_start_after_idle = false)))
    });
    g.bench_function("abl_no_metrics_cache", |b| {
        b.iter(|| black_box(kernel(|cfg| cfg.cache_metrics = false)))
    });
    g.bench_function("abl_multiconn", |b| {
        b.iter(|| {
            black_box(kernel(|cfg| {
                cfg.protocol = ProtocolMode::Spdy {
                    connections: 20,
                    late_binding: false,
                }
            }))
        })
    });
    g.bench_function("abl_late_binding", |b| {
        b.iter(|| {
            black_box(kernel(|cfg| {
                cfg.protocol = ProtocolMode::Spdy {
                    connections: 20,
                    late_binding: true,
                }
            }))
        })
    });
    g.bench_function("abl_reno", |b| {
        b.iter(|| black_box(kernel(|cfg| cfg.tcp.cc = spdyier_tcp::CcAlgorithm::Reno)))
    });
    g.bench_function("abl_pinned_dch", |b| {
        b.iter(|| black_box(kernel(|cfg| cfg.network = NetworkKind::Umts3GPinned)))
    });
    g.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
