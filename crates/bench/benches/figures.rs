//! One benchmark per paper table/figure: each target runs the experiment
//! kernel that regenerates the artifact (single seed, so `cargo bench`
//! stays tractable). The experiment *output* comes from the `experiments`
//! binary; these benches keep regeneration cost visible and regression-
//! tested.

use criterion::{criterion_group, criterion_main, Criterion};
use spdyier_bench::{short_schedule_run, single_visit};
use spdyier_core::{NetworkKind, ProtocolMode};
use spdyier_experiments::{run_by_id, ExpOpts};
use std::hint::black_box;
use std::time::Duration;

fn bench_experiment(c: &mut Criterion, bench_name: &str, id: &'static str) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function(bench_name, |b| {
        b.iter(|| {
            let report = run_by_id(id, ExpOpts::quick()).expect("known id");
            black_box(report.data);
        })
    });
    g.finish();
}

fn figure_benches(c: &mut Criterion) {
    // Table 1 is pure synthesis: cheap, benchmark verbatim.
    bench_experiment(c, "table1_corpus", "table1");
    // The trace-driven single-run figures are affordable per-iteration.
    bench_experiment(c, "fig06_request_patterns", "fig6");
    bench_experiment(c, "fig07_test_pages", "fig7");
    bench_experiment(c, "fig08_proxy_queue", "fig8");
    bench_experiment(c, "fig10_inflight", "fig10");
    bench_experiment(c, "fig11_cwnd_trace", "fig11");
    bench_experiment(c, "fig12_cwnd_zoom", "fig12");
    bench_experiment(c, "fig13_rtx_bursts", "fig13");
    bench_experiment(c, "fig17_lte_cwnd", "fig17");
}

fn heavy_figure_kernels(c: &mut Criterion) {
    // Full-matrix figures (3, 4, 5, 9, 14, 15, 16, table2 and the §6
    // sweeps) run many full schedules; benchmark their per-run kernel so
    // regressions in the hot path are caught without hour-long benches.
    let mut g = c.benchmark_group("figure_kernels");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function("fig03_plt_3g_kernel", |b| {
        b.iter(|| {
            black_box(short_schedule_run(
                ProtocolMode::Http,
                NetworkKind::Umts3G,
                1,
            ))
        })
    });
    g.bench_function("fig04_plt_wifi_kernel", |b| {
        b.iter(|| {
            black_box(short_schedule_run(
                ProtocolMode::spdy(),
                NetworkKind::Wifi,
                1,
            ))
        })
    });
    g.bench_function("fig05_object_split_kernel", |b| {
        b.iter(|| {
            let r = single_visit(ProtocolMode::spdy(), NetworkKind::Umts3G, 7, 1);
            black_box(r.visits[0].object_timings.len())
        })
    });
    g.bench_function("fig09_throughput_kernel", |b| {
        b.iter(|| {
            let r = short_schedule_run(ProtocolMode::Http, NetworkKind::Umts3G, 2);
            black_box(r.client_downlink_bytes.len())
        })
    });
    g.bench_function("fig14_dch_pinning_kernel", |b| {
        b.iter(|| {
            black_box(single_visit(
                ProtocolMode::spdy(),
                NetworkKind::Umts3GPinned,
                5,
                1,
            ))
        })
    });
    g.bench_function("fig16_plt_lte_kernel", |b| {
        b.iter(|| {
            black_box(short_schedule_run(
                ProtocolMode::spdy(),
                NetworkKind::Lte,
                1,
            ))
        })
    });
    g.bench_function("table2_cc_variants_kernel", |b| {
        b.iter(|| black_box(single_visit(ProtocolMode::Http, NetworkKind::Umts3G, 13, 3)))
    });
    g.finish();
}

criterion_group!(benches, figure_benches, heavy_figure_kernels);
criterion_main!(benches);
