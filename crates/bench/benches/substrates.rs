//! Substrate micro-benchmarks: how fast are the building blocks the
//! testbed is made of?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spdyier_bytes::Payload;
use spdyier_cellular::{Rrc3g, Rrc3gConfig};
use spdyier_sim::{DetRng, EventQueue, SimDuration, SimTime};
use spdyier_spdy::{Compressor, Decompressor, Role, SpdyConfig, SpdySession};
use spdyier_tcp::{TcpConfig, TcpConnection};
use spdyier_workload::{synthesize, SiteSpec};
use std::hint::black_box;
use std::time::Duration;

/// Lossless in-memory TCP transfer of `bytes` between two endpoints.
fn tcp_transfer(bytes: usize) -> usize {
    let mut c = TcpConnection::client(TcpConfig::default());
    let mut s = TcpConnection::server(TcpConfig::default());
    c.connect(SimTime::ZERO);
    let latency = SimDuration::from_millis(10);
    let mut now = SimTime::ZERO;
    let mut wire: Vec<(SimTime, bool, spdyier_tcp::Segment)> = Vec::new();
    c.write(Payload::from(vec![7u8; bytes]));
    let mut received = 0usize;
    for _ in 0..1_000_000 {
        while let Some(seg) = c.poll_transmit(now) {
            wire.push((now + latency, false, seg));
        }
        while let Some(seg) = s.poll_transmit(now) {
            wire.push((now + latency, true, seg));
        }
        while let Some(chunk) = s.read() {
            received += chunk.len() as usize;
        }
        if received >= bytes {
            return received;
        }
        let next = wire.iter().map(|(t, _, _)| *t).min();
        let next = match next {
            Some(t) => t,
            None => match [c.next_timer(), s.next_timer()].into_iter().flatten().min() {
                Some(t) => t,
                None => break,
            },
        };
        now = next.max(now);
        let mut i = 0;
        while i < wire.len() {
            if wire[i].0 <= now {
                let (_, to_c, seg) = wire.remove(i);
                if to_c {
                    c.on_segment(now, seg);
                } else {
                    s.on_segment(now, seg);
                }
            } else {
                i += 1;
            }
        }
        c.on_timer(now);
        s.on_timer(now);
    }
    received
}

fn bench_tcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(10));
    for &size in &[64 * 1024usize, 1024 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("transfer_{}k", size / 1024), |b| {
            b.iter(|| black_box(tcp_transfer(size)))
        });
    }
    g.finish();
}

fn bench_spdy(c: &mut Criterion) {
    let mut g = c.benchmark_group("spdy");
    g.bench_function("mux_100_streams", |b| {
        b.iter(|| {
            let mut client = SpdySession::new(Role::Client, SpdyConfig::default());
            let mut server = SpdySession::new(Role::Server, SpdyConfig::default());
            for i in 0..100 {
                client.open_stream(
                    vec![
                        (":path".into(), format!("/obj/{i}.png")),
                        (":host".into(), "bench.example".into()),
                    ],
                    2,
                    true,
                );
            }
            while let Some(wire) = client.poll_wire() {
                black_box(server.on_bytes(wire).expect("ok"));
            }
        })
    });
    g.bench_function("header_compression_roundtrip", |b| {
        let block = b"accept-encoding: gzip,deflate\r\ncookie: sid=0123456789abcdef\r\nuser-agent: Mozilla/5.0 (Windows NT 6.1)\r\n";
        b.iter(|| {
            let mut comp = Compressor::new();
            let mut decomp = Decompressor::new();
            for _ in 0..20 {
                let z = comp.compress(block);
                black_box(decomp.decompress(&z).expect("ok"));
            }
        })
    });
    g.finish();
}

fn bench_rrc(c: &mut Criterion) {
    let mut g = c.benchmark_group("rrc");
    g.sample_size(20);
    g.bench_function("rrc3g_100k_gates", |b| {
        b.iter(|| {
            let mut m = Rrc3g::new(Rrc3gConfig::default());
            let mut t = SimTime::ZERO;
            for i in 0..100_000u64 {
                let gate = m.gate(t, if i % 7 == 0 { 64 } else { 1380 });
                m.note_activity(gate, 1380);
                t = gate + SimDuration::from_millis(if i % 100 == 0 { 20_000 } else { 50 });
            }
            black_box(m.promotions().len())
        })
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("synthesize_site15", |b| {
        let spec = SiteSpec::by_index(15).unwrap();
        b.iter(|| {
            let mut rng = DetRng::new(3);
            black_box(synthesize(spec, &mut rng).object_count())
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.schedule(SimTime::from_micros(i * 37 % 1_000_000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

criterion_group!(
    benches,
    bench_tcp,
    bench_spdy,
    bench_rrc,
    bench_workload,
    bench_event_queue
);
criterion_main!(benches);
