//! The Squid-like HTTP proxy core.
//!
//! Persistent connections on both sides, **no pipelining** (the paper kept
//! it off because Squid's support was rudimentary): each client connection
//! carries one outstanding request at a time, answered in order.

use crate::record::{FetchId, ProxyObjectRecord};
use spdyier_bytes::Payload;
use spdyier_http::{Request, RequestParser, Response};
use spdyier_sim::SimTime;
use std::collections::{HashMap, VecDeque};

/// Driver-assigned id for a client-side TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientConnId(pub u64);

/// Something the proxy wants the driver to do.
#[derive(Debug)]
pub enum HttpProxyOutput {
    /// Fetch `http://domain/path` from its origin.
    Fetch {
        /// Fetch handle to report results against.
        fetch: FetchId,
        /// Origin request to issue.
        request: Request,
    },
    /// Write bytes to a client connection.
    ToClient {
        /// Destination client connection.
        conn: ClientConnId,
        /// Wire data (an encoded HTTP response).
        bytes: Payload,
        /// The fetch these bytes answer.
        fetch: FetchId,
    },
}

#[derive(Debug)]
struct ClientState {
    parser: RequestParser,
    /// Fetches owed to this connection, in request order.
    order: VecDeque<FetchId>,
}

#[derive(Debug)]
struct FetchState {
    conn: ClientConnId,
    response: Option<Response>,
}

/// The HTTP proxy state machine.
#[derive(Debug, Default)]
pub struct HttpProxyCore {
    clients: HashMap<ClientConnId, ClientState>,
    fetches: HashMap<FetchId, FetchState>,
    records: HashMap<FetchId, ProxyObjectRecord>,
    outputs: VecDeque<HttpProxyOutput>,
    next_fetch: u64,
}

impl HttpProxyCore {
    /// An empty proxy.
    pub fn new() -> HttpProxyCore {
        HttpProxyCore::default()
    }

    /// A client connection was accepted.
    pub fn on_client_connected(&mut self, conn: ClientConnId) {
        self.clients.insert(
            conn,
            ClientState {
                parser: RequestParser::new(),
                order: VecDeque::new(),
            },
        );
    }

    /// A client connection closed; pending fetches for it are dropped.
    pub fn on_client_closed(&mut self, conn: ClientConnId) {
        if let Some(state) = self.clients.remove(&conn) {
            for fetch in state.order {
                self.fetches.remove(&fetch);
            }
        }
    }

    /// Bytes arrived from a client connection.
    pub fn on_client_bytes(&mut self, conn: ClientConnId, data: Payload, now: SimTime) {
        let Some(state) = self.clients.get_mut(&conn) else {
            return;
        };
        state.parser.push(data);
        while let Ok(Some(req)) = state.parser.next_request() {
            let fetch = FetchId(self.next_fetch);
            self.next_fetch += 1;
            state.order.push_back(fetch);
            self.fetches.insert(
                fetch,
                FetchState {
                    conn,
                    response: None,
                },
            );
            self.records.insert(
                fetch,
                ProxyObjectRecord::new(fetch, req.host.clone(), req.path.clone(), now),
            );
            self.outputs.push_back(HttpProxyOutput::Fetch {
                fetch,
                request: req,
            });
        }
    }

    /// The origin's first byte arrived for `fetch`.
    pub fn on_fetch_first_byte(&mut self, fetch: FetchId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&fetch) {
            if r.origin_first_byte.is_none() {
                r.origin_first_byte = Some(now);
            }
        }
    }

    /// The origin's response completed for `fetch`. Responses flush to the
    /// client strictly in request order per connection.
    pub fn on_fetch_complete(&mut self, fetch: FetchId, response: Response, now: SimTime) {
        if let Some(r) = self.records.get_mut(&fetch) {
            r.origin_done = Some(now);
            if r.origin_first_byte.is_none() {
                r.origin_first_byte = Some(now);
            }
        }
        let Some(state) = self.fetches.get_mut(&fetch) else {
            return;
        };
        state.response = Some(response);
        let conn = state.conn;
        self.flush_conn(conn, now);
    }

    /// The driver observed the client finishing receipt of `fetch`'s bytes.
    pub fn on_client_received(&mut self, fetch: FetchId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&fetch) {
            r.client_done = Some(now);
        }
    }

    /// Drain pending outputs.
    pub fn poll_output(&mut self) -> Option<HttpProxyOutput> {
        self.outputs.pop_front()
    }

    /// All object records (request order).
    pub fn records(&self) -> Vec<&ProxyObjectRecord> {
        let mut v: Vec<&ProxyObjectRecord> = self.records.values().collect();
        v.sort_by_key(|r| r.fetch);
        v
    }

    fn flush_conn(&mut self, conn: ClientConnId, now: SimTime) {
        let Some(state) = self.clients.get_mut(&conn) else {
            return;
        };
        while let Some(&front) = state.order.front() {
            let ready = self
                .fetches
                .get(&front)
                .is_some_and(|f| f.response.is_some());
            if !ready {
                break;
            }
            state.order.pop_front();
            let response = self
                .fetches
                .remove(&front)
                .and_then(|f| f.response)
                .expect("checked ready");
            if let Some(r) = self.records.get_mut(&front) {
                r.queued_to_client = Some(now);
            }
            self.outputs.push_back(HttpProxyOutput::ToClient {
                conn,
                bytes: response.encode(),
                fetch: front,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn fetch_of(out: Option<HttpProxyOutput>) -> (FetchId, Request) {
        match out {
            Some(HttpProxyOutput::Fetch { fetch, request }) => (fetch, request),
            other => panic!("expected Fetch, got {other:?}"),
        }
    }

    #[test]
    fn request_becomes_fetch_then_response_flows_back() {
        let mut p = HttpProxyCore::new();
        let conn = ClientConnId(1);
        p.on_client_connected(conn);
        p.on_client_bytes(conn, Request::get("o.example", "/x").encode(), t(10));
        let (fetch, req) = fetch_of(p.poll_output());
        assert_eq!(req.host, "o.example");
        p.on_fetch_first_byte(fetch, t(24));
        p.on_fetch_complete(fetch, Response::ok(Payload::synthetic(100)), t(28));
        match p.poll_output() {
            Some(HttpProxyOutput::ToClient {
                conn: c,
                bytes,
                fetch: f,
            }) => {
                assert_eq!(c, conn);
                assert_eq!(f, fetch);
                assert!(bytes.len() > 100);
            }
            other => panic!("expected ToClient, got {other:?}"),
        }
        let records = p.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].origin_wait().unwrap().as_millis(), 14);
        assert_eq!(records[0].origin_download().unwrap().as_millis(), 4);
    }

    #[test]
    fn responses_stay_in_request_order_per_connection() {
        let mut p = HttpProxyCore::new();
        let conn = ClientConnId(1);
        p.on_client_connected(conn);
        // Two requests on one connection (the driver wouldn't normally do
        // this without pipelining, but order must hold regardless).
        let mut wire = Request::get("a", "/1").encode();
        wire.append(Request::get("a", "/2").encode());
        p.on_client_bytes(conn, wire, t(0));
        let (f1, _) = fetch_of(p.poll_output());
        let (f2, _) = fetch_of(p.poll_output());
        // Second fetch completes first: nothing flushes yet.
        p.on_fetch_complete(f2, Response::ok(Payload::from("b")), t(5));
        assert!(p.poll_output().is_none(), "HOL: waiting for f1");
        p.on_fetch_complete(f1, Response::ok(Payload::from("a")), t(9));
        let first = match p.poll_output() {
            Some(HttpProxyOutput::ToClient { fetch, .. }) => fetch,
            other => panic!("{other:?}"),
        };
        let second = match p.poll_output() {
            Some(HttpProxyOutput::ToClient { fetch, .. }) => fetch,
            other => panic!("{other:?}"),
        };
        assert_eq!((first, second), (f1, f2));
    }

    #[test]
    fn connections_are_independent() {
        let mut p = HttpProxyCore::new();
        p.on_client_connected(ClientConnId(1));
        p.on_client_connected(ClientConnId(2));
        p.on_client_bytes(ClientConnId(1), Request::get("a", "/1").encode(), t(0));
        p.on_client_bytes(ClientConnId(2), Request::get("a", "/2").encode(), t(0));
        let (f1, _) = fetch_of(p.poll_output());
        let (f2, _) = fetch_of(p.poll_output());
        // Conn 2's response is not blocked by conn 1's pending fetch.
        p.on_fetch_complete(f2, Response::ok(Payload::new()), t(5));
        assert!(matches!(
            p.poll_output(),
            Some(HttpProxyOutput::ToClient {
                conn: ClientConnId(2),
                ..
            })
        ));
        let _ = f1;
    }

    #[test]
    fn closed_connection_drops_pending_fetches() {
        let mut p = HttpProxyCore::new();
        let conn = ClientConnId(1);
        p.on_client_connected(conn);
        p.on_client_bytes(conn, Request::get("a", "/1").encode(), t(0));
        let (f, _) = fetch_of(p.poll_output());
        p.on_client_closed(conn);
        p.on_fetch_complete(f, Response::ok(Payload::new()), t(5));
        assert!(p.poll_output().is_none(), "no output for a gone client");
    }

    #[test]
    fn client_done_stamps_record() {
        let mut p = HttpProxyCore::new();
        let conn = ClientConnId(1);
        p.on_client_connected(conn);
        p.on_client_bytes(conn, Request::get("a", "/1").encode(), t(0));
        let (f, _) = fetch_of(p.poll_output());
        p.on_fetch_complete(f, Response::ok(Payload::synthetic(10)), t(5));
        let _ = p.poll_output();
        p.on_client_received(f, t(900));
        let rec = p.records()[0];
        assert_eq!(rec.client_transfer().unwrap().as_millis(), 895);
    }
}
