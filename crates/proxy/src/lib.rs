//! # spdyier-proxy
//!
//! The protocol proxies of the study, as sans-IO cores:
//!
//! * [`HttpProxyCore`] — the Squid-like HTTP proxy: persistent connections
//!   both sides, strict per-connection response ordering, no pipelining;
//! * [`SpdyProxyCore`] — the SPDY/3 proxy: one multiplexed session per
//!   client connection with priority-scheduled responses;
//! * [`ProxyObjectRecord`] — per-object proxy timelines (request arrival,
//!   origin first byte, origin download, transfer to client) that
//!   regenerate the paper's Figure 8.
//!
//! The §6.1 variants (20 SPDY connections; late binding of responses to
//! whichever connection is transmittable) are topology choices made by the
//! testbed driver on top of these same cores.

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod http_proxy;
pub mod record;
pub mod spdy_proxy;

pub use http_proxy::{ClientConnId, HttpProxyCore, HttpProxyOutput};
pub use record::{FetchId, ProxyObjectRecord};
pub use spdy_proxy::{SpdyProxyCore, SpdyProxyOutput};
