//! The SPDY proxy core (the Chromium-tree SPDY server the paper deployed,
//! extended for proxying).
//!
//! One SPDY session per client TCP connection; every request stream maps to
//! an origin fetch; responses multiplex back over the single connection
//! with SPDY priorities deciding who drains first. §5.3's observation —
//! responses queue *at the proxy* because the client link is the
//! bottleneck — emerges from exactly this structure.

use crate::record::{FetchId, ProxyObjectRecord};
use spdyier_bytes::Payload;
use spdyier_http::{Request, Response};
use spdyier_sim::SimTime;
use spdyier_spdy::{Role, SpdyConfig, SpdyEvent, SpdySession};
use std::collections::{HashMap, VecDeque};

/// Driver actions requested by the SPDY proxy.
#[derive(Debug)]
pub enum SpdyProxyOutput {
    /// Fetch an object from its origin.
    Fetch {
        /// Fetch handle.
        fetch: FetchId,
        /// Origin request.
        request: Request,
    },
}

/// The SPDY proxy core for one client session.
#[derive(Debug)]
pub struct SpdyProxyCore {
    session: SpdySession,
    stream_of: HashMap<FetchId, u32>,
    records: HashMap<FetchId, ProxyObjectRecord>,
    outputs: VecDeque<SpdyProxyOutput>,
    next_fetch: u64,
    /// Ping ids seen (for the Fig. 14 keepalive experiment).
    pings_seen: u64,
}

impl SpdyProxyCore {
    /// A proxy endpoint for one freshly accepted client session.
    pub fn new(cfg: SpdyConfig) -> SpdyProxyCore {
        SpdyProxyCore {
            session: SpdySession::new(Role::Server, cfg),
            stream_of: HashMap::new(),
            records: HashMap::new(),
            outputs: VecDeque::new(),
            next_fetch: 0,
            pings_seen: 0,
        }
    }

    /// Build with a fetch-id offset so several sessions (the §6.1
    /// multi-connection variant) can share one fetch-id space.
    pub fn with_fetch_offset(cfg: SpdyConfig, offset: u64) -> SpdyProxyCore {
        let mut p = Self::new(cfg);
        p.next_fetch = offset;
        p
    }

    /// The underlying session (stats, compression counters).
    pub fn session(&self) -> &SpdySession {
        &self.session
    }

    /// PINGs received from the client.
    pub fn pings_seen(&self) -> u64 {
        self.pings_seen
    }

    /// Bytes arrived from the client connection.
    pub fn on_client_bytes(&mut self, data: Payload, now: SimTime) {
        let events = match self.session.on_bytes(data) {
            Ok(ev) => ev,
            Err(e) => {
                debug_assert!(false, "proxy session frame error: {e}");
                return;
            }
        };
        for ev in events {
            match ev {
                SpdyEvent::StreamOpened {
                    stream_id, headers, ..
                } => {
                    let get = |k: &str| {
                        headers
                            .iter()
                            .find(|(n, _)| n == k)
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default()
                    };
                    let host = get(":host");
                    let path = get(":path");
                    let fetch = FetchId(self.next_fetch);
                    self.next_fetch += 1;
                    self.stream_of.insert(fetch, stream_id);
                    self.records.insert(
                        fetch,
                        ProxyObjectRecord::new(fetch, host.clone(), path.clone(), now),
                    );
                    self.outputs.push_back(SpdyProxyOutput::Fetch {
                        fetch,
                        request: Request::get(host, path),
                    });
                }
                SpdyEvent::Ping(_) => {
                    self.pings_seen += 1;
                    // The session echoes automatically.
                }
                SpdyEvent::Data { .. }
                | SpdyEvent::Reply { .. }
                | SpdyEvent::Reset { .. }
                | SpdyEvent::Goaway => {}
            }
        }
    }

    /// The origin's first byte arrived for `fetch`.
    pub fn on_fetch_first_byte(&mut self, fetch: FetchId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&fetch) {
            if r.origin_first_byte.is_none() {
                r.origin_first_byte = Some(now);
            }
        }
    }

    /// The origin's response completed: reply on the stream and queue the
    /// body (the session's priority scheduler decides drain order).
    pub fn on_fetch_complete(&mut self, fetch: FetchId, response: Response, now: SimTime) {
        if let Some(r) = self.records.get_mut(&fetch) {
            r.origin_done = Some(now);
            if r.origin_first_byte.is_none() {
                r.origin_first_byte = Some(now);
            }
            r.queued_to_client = Some(now);
        }
        let Some(&stream_id) = self.stream_of.get(&fetch) else {
            return;
        };
        let headers = vec![
            (":status".to_string(), response.status.to_string()),
            (":version".to_string(), "HTTP/1.1".to_string()),
        ];
        if response.body.is_empty() {
            self.session.reply(stream_id, headers, true);
        } else {
            self.session.reply(stream_id, headers, false);
            self.session.send_data(stream_id, response.body, true);
        }
    }

    /// The driver observed the client finishing receipt of `fetch`.
    pub fn on_client_received(&mut self, fetch: FetchId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&fetch) {
            r.client_done = Some(now);
        }
    }

    /// Flow-control credit from the client side is handled inside the
    /// session via `on_client_bytes`; this exposes pending wire bytes.
    pub fn poll_wire(&mut self) -> Option<Payload> {
        self.session.poll_wire()
    }

    /// Server-initiated data (SPDY server push): ad refreshes, analytics
    /// long-polls — the periodic site traffic of the paper's §5.7 that
    /// wakes an idle radio *from the proxy side*.
    pub fn push_data(&mut self, path: &str, body: Payload) -> u32 {
        let headers = vec![
            (":status".to_string(), "200".to_string()),
            (":path".to_string(), path.to_string()),
            ("x-pushed".to_string(), "1".to_string()),
        ];
        self.push_with_headers(headers, body, 4)
    }

    /// Open a server-initiated stream with arbitrary headers and send
    /// `body` on it (the §6.1 late-binding delivery vehicle).
    pub fn push_with_headers(
        &mut self,
        headers: Vec<(String, String)>,
        body: Payload,
        priority: u8,
    ) -> u32 {
        let stream_id = self.session.open_stream(headers, priority, false);
        self.session.send_data(stream_id, body, true);
        stream_id
    }

    /// Stamp a fetch's completion instants *without* sending anything —
    /// used when a different session (late binding) carries the response.
    pub fn stamp_complete(&mut self, fetch: FetchId, now: SimTime) {
        if let Some(r) = self.records.get_mut(&fetch) {
            r.origin_done = Some(now);
            if r.origin_first_byte.is_none() {
                r.origin_first_byte = Some(now);
            }
            r.queued_to_client = Some(now);
        }
    }

    /// Drain pending fetch intents.
    pub fn poll_output(&mut self) -> Option<SpdyProxyOutput> {
        self.outputs.pop_front()
    }

    /// Stream id serving `fetch`.
    pub fn stream_of(&self, fetch: FetchId) -> Option<u32> {
        self.stream_of.get(&fetch).copied()
    }

    /// Fetch served on `stream_id` (reverse lookup).
    pub fn fetch_for_stream(&self, stream_id: u32) -> Option<FetchId> {
        self.stream_of
            .iter()
            .find(|(_, &s)| s == stream_id)
            .map(|(&f, _)| f)
    }

    /// All object records in fetch order.
    pub fn records(&self) -> Vec<&ProxyObjectRecord> {
        let mut v: Vec<&ProxyObjectRecord> = self.records.values().collect();
        v.sort_by_key(|r| r.fetch);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdyier_spdy::{Role, SpdySession};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn client_and_proxy() -> (SpdySession, SpdyProxyCore) {
        (
            SpdySession::new(Role::Client, SpdyConfig::default()),
            SpdyProxyCore::new(SpdyConfig::default()),
        )
    }

    fn open_request(
        client: &mut SpdySession,
        proxy: &mut SpdyProxyCore,
        host: &str,
        path: &str,
        pri: u8,
    ) -> u32 {
        let sid = client.open_stream(
            vec![
                (":method".into(), "GET".into()),
                (":host".into(), host.into()),
                (":path".into(), path.into()),
            ],
            pri,
            true,
        );
        while let Some(wire) = client.poll_wire() {
            proxy.on_client_bytes(wire, t(0));
        }
        sid
    }

    #[test]
    fn stream_becomes_fetch_and_response_returns() {
        let (mut client, mut proxy) = client_and_proxy();
        let sid = open_request(&mut client, &mut proxy, "o.example", "/img.png", 3);
        let fetch = match proxy.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, request }) => {
                assert_eq!(request.host, "o.example");
                assert_eq!(request.path, "/img.png");
                fetch
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(proxy.stream_of(fetch), Some(sid));
        proxy.on_fetch_first_byte(fetch, t(14));
        proxy.on_fetch_complete(fetch, Response::ok(Payload::synthetic(9_000)), t(18));
        // Drain proxy wire to client; count delivered payload.
        let mut body = 0u64;
        let mut replied = false;
        while let Some(wire) = proxy.poll_wire() {
            for ev in client.on_bytes(wire).unwrap() {
                match ev {
                    SpdyEvent::Reply { stream_id, .. } => {
                        assert_eq!(stream_id, sid);
                        replied = true;
                    }
                    SpdyEvent::Data { payload, .. } => body += payload.len(),
                    _ => {}
                }
            }
        }
        assert!(replied);
        assert_eq!(body, 9_000);
        let rec = proxy.records()[0];
        assert_eq!(rec.origin_wait().unwrap().as_millis(), 14);
    }

    #[test]
    fn high_priority_response_drains_first() {
        let (mut client, mut proxy) = client_and_proxy();
        let low = open_request(&mut client, &mut proxy, "o", "/img", 3);
        let high = open_request(&mut client, &mut proxy, "o", "/css", 0);
        let f_low = match proxy.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, .. }) => fetch,
            _ => panic!(),
        };
        let f_high = match proxy.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, .. }) => fetch,
            _ => panic!(),
        };
        // Low-priority response ready first.
        proxy.on_fetch_complete(f_low, Response::ok(Payload::synthetic(30_000)), t(5));
        proxy.on_fetch_complete(f_high, Response::ok(Payload::synthetic(30_000)), t(6));
        let mut finish_order = Vec::new();
        while let Some(wire) = proxy.poll_wire() {
            for ev in client.on_bytes(wire).unwrap() {
                if let SpdyEvent::Data {
                    stream_id,
                    fin: true,
                    ..
                } = ev
                {
                    finish_order.push(stream_id);
                }
            }
        }
        assert_eq!(
            finish_order,
            vec![high, low],
            "CSS beats image despite arriving later"
        );
    }

    #[test]
    fn empty_body_closes_with_reply() {
        let (mut client, mut proxy) = client_and_proxy();
        let sid = open_request(&mut client, &mut proxy, "o", "/204", 1);
        let fetch = match proxy.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, .. }) => fetch,
            _ => panic!(),
        };
        proxy.on_fetch_complete(
            fetch,
            Response {
                status: 204,
                headers: vec![],
                body: Payload::new(),
            },
            t(5),
        );
        let mut got_fin_reply = false;
        while let Some(wire) = proxy.poll_wire() {
            for ev in client.on_bytes(wire).unwrap() {
                if let SpdyEvent::Reply {
                    stream_id,
                    fin: true,
                    headers,
                } = ev
                {
                    assert_eq!(stream_id, sid);
                    assert!(headers.iter().any(|(n, v)| n == ":status" && v == "204"));
                    got_fin_reply = true;
                }
            }
        }
        assert!(got_fin_reply);
    }

    #[test]
    fn pings_are_counted_and_echoed() {
        let (mut client, mut proxy) = client_and_proxy();
        client.ping(1);
        while let Some(wire) = client.poll_wire() {
            proxy.on_client_bytes(wire, t(0));
        }
        assert_eq!(proxy.pings_seen(), 1);
        let mut echoed = false;
        while let Some(wire) = proxy.poll_wire() {
            for ev in client.on_bytes(wire).unwrap() {
                if matches!(ev, SpdyEvent::Ping(1)) {
                    echoed = true;
                }
            }
        }
        assert!(echoed);
    }

    #[test]
    fn push_data_opens_even_stream_and_delivers() {
        let (mut client, mut proxy) = client_and_proxy();
        let sid = proxy.push_data("/refresh", Payload::synthetic(3_000));
        assert_eq!(sid % 2, 0, "server-initiated streams are even");
        let mut opened = false;
        let mut bytes = 0u64;
        while let Some(wire) = proxy.poll_wire() {
            for ev in client.on_bytes(wire).unwrap() {
                match ev {
                    SpdyEvent::StreamOpened {
                        stream_id, headers, ..
                    } => {
                        assert_eq!(stream_id, sid);
                        assert!(headers.iter().any(|(n, v)| n == "x-pushed" && v == "1"));
                        opened = true;
                    }
                    SpdyEvent::Data { payload, .. } => bytes += payload.len(),
                    _ => {}
                }
            }
        }
        assert!(opened);
        assert_eq!(bytes, 3_000);
    }

    #[test]
    fn push_with_headers_carries_tags() {
        let (mut client, mut proxy) = client_and_proxy();
        let headers = vec![
            (":status".to_string(), "200".to_string()),
            ("x-late-gen".to_string(), "3".to_string()),
            ("x-late-tag".to_string(), "17".to_string()),
        ];
        proxy.push_with_headers(headers, Payload::from("body"), 2);
        let mut seen = false;
        while let Some(wire) = proxy.poll_wire() {
            for ev in client.on_bytes(wire).unwrap() {
                if let SpdyEvent::StreamOpened { headers, .. } = ev {
                    assert!(headers.iter().any(|(n, v)| n == "x-late-gen" && v == "3"));
                    assert!(headers.iter().any(|(n, v)| n == "x-late-tag" && v == "17"));
                    seen = true;
                }
            }
        }
        assert!(seen);
    }

    #[test]
    fn stamp_complete_fills_record_without_wire_output() {
        let (mut client, mut proxy) = client_and_proxy();
        open_request(&mut client, &mut proxy, "o", "/x", 1);
        let fetch = match proxy.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, .. }) => fetch,
            _ => panic!(),
        };
        proxy.stamp_complete(fetch, t(25));
        assert!(proxy.poll_wire().is_none(), "stamping sends nothing");
        let rec = proxy.records()[0];
        assert_eq!(rec.origin_done, Some(t(25)));
        assert_eq!(rec.queued_to_client, Some(t(25)));
    }

    #[test]
    fn fetch_for_stream_reverse_lookup() {
        let (mut client, mut proxy) = client_and_proxy();
        let sid = open_request(&mut client, &mut proxy, "o", "/x", 1);
        let fetch = match proxy.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, .. }) => fetch,
            _ => panic!(),
        };
        assert_eq!(proxy.fetch_for_stream(sid), Some(fetch));
        assert_eq!(proxy.fetch_for_stream(9999), None);
    }

    #[test]
    fn fetch_offset_separates_id_spaces() {
        let a = SpdyProxyCore::with_fetch_offset(SpdyConfig::default(), 0);
        let b = SpdyProxyCore::with_fetch_offset(SpdyConfig::default(), 1_000_000);
        let mut client_a = SpdySession::new(Role::Client, SpdyConfig::default());
        let mut client_b = SpdySession::new(Role::Client, SpdyConfig::default());
        let mut a = a;
        let mut b = b;
        open_request(&mut client_a, &mut a, "o", "/1", 1);
        open_request(&mut client_b, &mut b, "o", "/2", 1);
        let fa = match a.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, .. }) => fetch,
            _ => panic!(),
        };
        let fb = match b.poll_output() {
            Some(SpdyProxyOutput::Fetch { fetch, .. }) => fetch,
            _ => panic!(),
        };
        assert_ne!(fa, fb, "sessions never collide on fetch ids");
        assert_eq!(fb.0, 1_000_000);
    }

    #[test]
    fn many_streams_share_the_fetch_space() {
        let (mut client, mut proxy) = client_and_proxy();
        for i in 0..50 {
            open_request(&mut client, &mut proxy, "o", &format!("/{i}"), 2);
        }
        let mut fetches = Vec::new();
        while let Some(SpdyProxyOutput::Fetch { fetch, .. }) = proxy.poll_output() {
            fetches.push(fetch);
        }
        assert_eq!(fetches.len(), 50);
        assert_eq!(proxy.records().len(), 50);
    }
}
