//! Per-object proxy timelines (the raw material of the paper's Figure 8).

use serde::Serialize;
use spdyier_sim::{SimDuration, SimTime};

/// Proxy-assigned id for one origin fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct FetchId(pub u64);

/// The proxy-side life of one object: Figure 8 plots, per object, the time
/// to the origin's first byte (black), the origin download (cyan), and the
/// transfer back to the client (red).
#[derive(Debug, Clone, Serialize)]
pub struct ProxyObjectRecord {
    /// Fetch id.
    pub fetch: FetchId,
    /// Origin domain.
    pub domain: String,
    /// Path on the origin.
    pub path: String,
    /// Client's request reached the proxy.
    pub request_arrived: SimTime,
    /// First byte of the origin's response reached the proxy.
    pub origin_first_byte: Option<SimTime>,
    /// Origin response fully downloaded at the proxy.
    pub origin_done: Option<SimTime>,
    /// Response handed to the client-side transport queue.
    pub queued_to_client: Option<SimTime>,
    /// Last byte accepted by the client-side transport (the driver stamps
    /// this when the client finishes receiving the object).
    pub client_done: Option<SimTime>,
}

impl ProxyObjectRecord {
    /// A fresh record at request arrival.
    pub fn new(fetch: FetchId, domain: String, path: String, now: SimTime) -> ProxyObjectRecord {
        ProxyObjectRecord {
            fetch,
            domain,
            path,
            request_arrived: now,
            origin_first_byte: None,
            origin_done: None,
            queued_to_client: None,
            client_done: None,
        }
    }

    /// Request → origin first byte (Fig. 8's black region).
    pub fn origin_wait(&self) -> Option<SimDuration> {
        Some(
            self.origin_first_byte?
                .saturating_since(self.request_arrived),
        )
    }

    /// Origin first byte → downloaded (cyan region).
    pub fn origin_download(&self) -> Option<SimDuration> {
        Some(self.origin_done?.saturating_since(self.origin_first_byte?))
    }

    /// Downloaded → fully transferred to the client (red region). This is
    /// where §5.3 finds the queueing: data sits at the proxy because the
    /// client link is the bottleneck.
    pub fn client_transfer(&self) -> Option<SimDuration> {
        Some(self.client_done?.saturating_since(self.origin_done?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_derive_from_boundaries() {
        let mut r = ProxyObjectRecord::new(
            FetchId(1),
            "o.example".into(),
            "/a".into(),
            SimTime::from_millis(100),
        );
        r.origin_first_byte = Some(SimTime::from_millis(114));
        r.origin_done = Some(SimTime::from_millis(118));
        r.queued_to_client = Some(SimTime::from_millis(118));
        r.client_done = Some(SimTime::from_millis(1_000));
        assert_eq!(r.origin_wait(), Some(SimDuration::from_millis(14)));
        assert_eq!(r.origin_download(), Some(SimDuration::from_millis(4)));
        assert_eq!(r.client_transfer(), Some(SimDuration::from_millis(882)));
    }

    #[test]
    fn missing_boundaries_yield_none() {
        let r = ProxyObjectRecord::new(FetchId(1), "d".into(), "/".into(), SimTime::ZERO);
        assert_eq!(r.origin_wait(), None);
        assert_eq!(r.client_transfer(), None);
    }
}
