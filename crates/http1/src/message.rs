//! HTTP/1.1 message types and wire encoding.
//!
//! Requests use the absolute-URI form (`GET http://host/path HTTP/1.1`)
//! because — exactly as in the paper's testbed — clients talk to a proxy,
//! not to origins directly.
//!
//! Encoding produces [`Payload`] ropes: heads are always real bytes (the
//! control path the parsers inspect), while bodies ride along as whatever
//! chunks they already are — synthetic length-only runs in the common
//! simulated case — without being copied into the head buffer.

use bytes::{BufMut, BytesMut};
use spdyier_bytes::Payload;

/// An HTTP request line + headers (bodies are not used by the workload:
/// page loads are GETs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET` throughout the study).
    pub method: String,
    /// Origin host (the `Host` header / authority of the absolute URI).
    pub host: String,
    /// Path on the origin.
    pub path: String,
    /// Additional headers.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// A GET for `http://host/path`.
    pub fn get(host: impl Into<String>, path: impl Into<String>) -> Request {
        Request {
            method: "GET".into(),
            host: host.into(),
            path: path.into(),
            headers: Vec::new(),
        }
    }

    /// Append a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Encode in proxy (absolute-URI) form.
    pub fn encode(&self) -> Payload {
        let mut out = BytesMut::with_capacity(256);
        out.put_slice(self.method.as_bytes());
        out.put_slice(b" http://");
        out.put_slice(self.host.as_bytes());
        out.put_slice(self.path.as_bytes());
        out.put_slice(b" HTTP/1.1\r\nHost: ");
        out.put_slice(self.host.as_bytes());
        out.put_slice(b"\r\n");
        for (n, v) in &self.headers {
            out.put_slice(n.as_bytes());
            out.put_slice(b": ");
            out.put_slice(v.as_bytes());
            out.put_slice(b"\r\n");
        }
        out.put_slice(b"\r\n");
        Payload::real(out.freeze())
    }
}

/// An HTTP response with a `Content-Length`-framed body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200 throughout the study).
    pub status: u16,
    /// Headers excluding `Content-Length` (added at encode time).
    pub headers: Vec<(String, String)>,
    /// Response body — a rope; synthetic (length-only) for simulated
    /// objects, real bytes where content matters.
    pub body: Payload,
}

impl Response {
    /// A 200 OK carrying `body`.
    pub fn ok(body: impl Into<Payload>) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Append a header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Wire encoding with `Content-Length` framing: a real head chunk
    /// followed by the body rope (no body copy).
    pub fn encode(&self) -> Payload {
        let mut out = BytesMut::with_capacity(128);
        out.put_slice(b"HTTP/1.1 ");
        out.put_slice(self.status.to_string().as_bytes());
        out.put_slice(b" ");
        out.put_slice(reason(self.status).as_bytes());
        out.put_slice(b"\r\nContent-Length: ");
        out.put_slice(self.body.len().to_string().as_bytes());
        out.put_slice(b"\r\n");
        for (n, v) in &self.headers {
            out.put_slice(n.as_bytes());
            out.put_slice(b": ");
            out.put_slice(v.as_bytes());
            out.put_slice(b"\r\n");
        }
        out.put_slice(b"\r\n");
        let mut wire = Payload::real(out.freeze());
        wire.append(self.body.clone());
        wire
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        404 => "Not Found",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn request_encodes_absolute_form() {
        let r = Request::get("example.com", "/index.html").with_header("Accept", "*/*");
        let wire = r.encode().to_vec();
        let text = std::str::from_utf8(&wire).unwrap();
        assert!(text.starts_with("GET http://example.com/index.html HTTP/1.1\r\n"));
        assert!(text.contains("Host: example.com\r\n"));
        assert!(text.contains("Accept: */*\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn response_encodes_content_length() {
        let r = Response::ok(Payload::real(Bytes::from_static(b"hello")));
        let wire = r.encode().to_vec();
        let text = std::str::from_utf8(&wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn response_encode_keeps_synthetic_body_synthetic() {
        let r = Response::ok(Payload::synthetic(100_000));
        let wire = r.encode();
        assert_eq!(wire.chunk_count(), 2, "real head + untouched body rope");
        assert!(wire.len() > 100_000);
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let r = Request::get("h", "/").with_header("X-Object-Id", "42");
        assert_eq!(r.header("x-object-id"), Some("42"));
        assert_eq!(r.header("missing"), None);
        let resp = Response::ok(Payload::new()).with_header("X-Foo", "bar");
        assert_eq!(resp.header("x-foo"), Some("bar"));
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(reason(200), "OK");
        assert_eq!(reason(404), "Not Found");
        assert_eq!(reason(999), "Unknown");
    }
}
