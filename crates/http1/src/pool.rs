//! The browser's HTTP connection-pool policy.
//!
//! Chrome 23 — the paper's client — opens up to **6 parallel persistent
//! connections per domain** with a cap of **32 across all domains**; a
//! request waits when its domain is saturated. This module is the pure
//! bookkeeping: which connection serves which domain, which are idle, and
//! when a new one may be opened.

use serde::Serialize;
use std::collections::HashMap;

/// Pool limits (Chrome defaults from the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PoolConfig {
    /// Maximum concurrent connections per domain.
    pub per_domain: usize,
    /// Maximum concurrent connections across all domains.
    pub total: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            per_domain: 6,
            total: 32,
        }
    }
}

/// Pool-assigned connection identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct PoolConnId(pub u64);

/// The outcome of asking for a connection slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// Reuse this idle persistent connection (now marked busy).
    Reuse(PoolConnId),
    /// Open a new connection with this id (now counted and busy).
    Open(PoolConnId),
    /// Domain and/or global limits are saturated; try again on release.
    Blocked,
}

#[derive(Debug)]
struct ConnInfo {
    domain: String,
    busy: bool,
    /// Monotone counter value at last use (for LRU eviction).
    last_used: u64,
}

/// Connection pool bookkeeping.
#[derive(Debug)]
pub struct ConnectionPool {
    cfg: PoolConfig,
    conns: HashMap<PoolConnId, ConnInfo>,
    next_id: u64,
    use_counter: u64,
}

impl ConnectionPool {
    /// An empty pool.
    pub fn new(cfg: PoolConfig) -> ConnectionPool {
        ConnectionPool {
            cfg,
            conns: HashMap::new(),
            next_id: 0,
            use_counter: 0,
        }
    }

    /// Ask for a slot to `domain`. Prefers an idle persistent connection;
    /// opens a new one within limits; otherwise reports `Blocked` (the
    /// caller may [`ConnectionPool::evict_idle`] to make room globally).
    pub fn acquire(&mut self, domain: &str) -> Acquire {
        self.use_counter += 1;
        // Reuse the most-recently-used idle connection to this domain
        // (warm cwnd beats cold).
        if let Some((&id, _)) = self
            .conns
            .iter()
            .filter(|(_, c)| c.domain == domain && !c.busy)
            .max_by_key(|(_, c)| c.last_used)
        {
            let info = self.conns.get_mut(&id).expect("just found");
            info.busy = true;
            info.last_used = self.use_counter;
            return Acquire::Reuse(id);
        }
        let domain_count = self.count_for_domain(domain);
        if domain_count >= self.cfg.per_domain || self.conns.len() >= self.cfg.total {
            return Acquire::Blocked;
        }
        let id = PoolConnId(self.next_id);
        self.next_id += 1;
        self.conns.insert(
            id,
            ConnInfo {
                domain: domain.to_owned(),
                busy: true,
                last_used: self.use_counter,
            },
        );
        Acquire::Open(id)
    }

    /// A request on `id` completed; the connection is idle and reusable.
    pub fn release(&mut self, id: PoolConnId) {
        if let Some(c) = self.conns.get_mut(&id) {
            c.busy = false;
        }
    }

    /// The connection was closed (by either side); forget it.
    pub fn remove(&mut self, id: PoolConnId) {
        self.conns.remove(&id);
    }

    /// Least-recently-used idle connection across all domains, for
    /// eviction when the global cap blocks a new domain.
    pub fn evict_idle(&mut self) -> Option<PoolConnId> {
        let id = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy)
            .min_by_key(|(_, c)| c.last_used)
            .map(|(&id, _)| id)?;
        self.conns.remove(&id);
        Some(id)
    }

    /// True when the global cap is reached.
    pub fn at_global_cap(&self) -> bool {
        self.conns.len() >= self.cfg.total
    }

    /// Open + busy connections to `domain`.
    pub fn count_for_domain(&self, domain: &str) -> usize {
        self.conns.values().filter(|c| c.domain == domain).count()
    }

    /// All connections currently open.
    pub fn total(&self) -> usize {
        self.conns.len()
    }

    /// Busy connections currently serving requests.
    pub fn busy(&self) -> usize {
        self.conns.values().filter(|c| c.busy).count()
    }

    /// The domain a connection serves.
    pub fn domain_of(&self, id: PoolConnId) -> Option<&str> {
        self.conns.get(&id).map(|c| c.domain.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ConnectionPool {
        ConnectionPool::new(PoolConfig::default())
    }

    #[test]
    fn opens_up_to_six_per_domain() {
        let mut p = pool();
        for i in 0..6 {
            match p.acquire("a.com") {
                Acquire::Open(id) => assert_eq!(id.0, i),
                other => panic!("expected Open, got {other:?}"),
            }
        }
        assert_eq!(p.acquire("a.com"), Acquire::Blocked);
        assert_eq!(p.count_for_domain("a.com"), 6);
    }

    #[test]
    fn release_enables_reuse() {
        let mut p = pool();
        let id = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        p.release(id);
        assert_eq!(p.acquire("a.com"), Acquire::Reuse(id));
    }

    #[test]
    fn global_cap_of_32() {
        let mut p = pool();
        // 6 domains × 5 connections = 30, then 2 more on a 7th domain.
        for d in 0..6 {
            for _ in 0..5 {
                assert!(matches!(p.acquire(&format!("d{d}.com")), Acquire::Open(_)));
            }
        }
        assert!(matches!(p.acquire("late.com"), Acquire::Open(_)));
        assert!(matches!(p.acquire("late.com"), Acquire::Open(_)));
        assert_eq!(p.total(), 32);
        assert!(p.at_global_cap());
        assert_eq!(p.acquire("another.com"), Acquire::Blocked);
    }

    #[test]
    fn eviction_frees_global_capacity() {
        let mut p = pool();
        let mut first = None;
        for d in 0..32 {
            match p.acquire(&format!("d{d}.com")) {
                Acquire::Open(id) => {
                    if first.is_none() {
                        first = Some(id);
                    }
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(p.acquire("x.com"), Acquire::Blocked);
        // Nothing idle yet → no eviction possible.
        assert_eq!(p.evict_idle(), None);
        p.release(first.unwrap());
        assert_eq!(p.evict_idle(), Some(first.unwrap()));
        assert!(matches!(p.acquire("x.com"), Acquire::Open(_)));
    }

    #[test]
    fn removal_forgets_connection() {
        let mut p = pool();
        let id = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        p.remove(id);
        assert_eq!(p.total(), 0);
        assert!(matches!(p.acquire("a.com"), Acquire::Open(_)));
    }

    #[test]
    fn reuse_prefers_most_recently_used() {
        let mut p = pool();
        let a = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        let b = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        p.release(a);
        p.release(b); // b used more recently
        assert_eq!(p.acquire("a.com"), Acquire::Reuse(b));
    }

    #[test]
    fn domains_do_not_interfere_below_cap() {
        let mut p = pool();
        for _ in 0..6 {
            p.acquire("a.com");
        }
        assert!(matches!(p.acquire("b.com"), Acquire::Open(_)));
    }

    #[test]
    fn domain_of_reports() {
        let mut p = pool();
        let id = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        assert_eq!(p.domain_of(id), Some("a.com"));
        assert_eq!(p.busy(), 1);
    }
}
