//! The browser's HTTP connection-pool policy.
//!
//! Chrome 23 — the paper's client — opens up to **6 parallel persistent
//! connections per domain** with a cap of **32 across all domains**; a
//! request waits when its domain is saturated. This module is the pure
//! bookkeeping: which connection serves which domain, which are idle, and
//! when a new one may be opened.

use serde::Serialize;

/// Pool limits (Chrome defaults from the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PoolConfig {
    /// Maximum concurrent connections per domain.
    pub per_domain: usize,
    /// Maximum concurrent connections across all domains.
    pub total: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            per_domain: 6,
            total: 32,
        }
    }
}

/// Pool-assigned connection identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct PoolConnId(pub u64);

/// The outcome of asking for a connection slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// Reuse this idle persistent connection (now marked busy).
    Reuse(PoolConnId),
    /// Open a new connection with this id (now counted and busy).
    Open(PoolConnId),
    /// Domain and/or global limits are saturated; try again on release.
    Blocked,
}

#[derive(Debug)]
struct ConnInfo {
    /// Index into [`ConnectionPool::domains`].
    domain_ix: u32,
    busy: bool,
    /// Monotone counter value at last use (for LRU eviction).
    last_used: u64,
}

/// Connection pool bookkeeping.
///
/// Storage is a flat `Vec` rather than a map: the pool holds at most
/// [`PoolConfig::total`] (32) entries and the browser re-runs
/// `acquire` for every still-blocked ready object on every unblocking
/// event, so a cache-friendly linear scan beats hashing. Selection by
/// `last_used` is order-independent because the use counter is strictly
/// monotone (no ties), so scan order cannot change which connection is
/// reused or evicted.
#[derive(Debug)]
pub struct ConnectionPool {
    cfg: PoolConfig,
    conns: Vec<(PoolConnId, ConnInfo)>,
    /// Interned domain names. Connections store an index so the hot
    /// acquire/remove cycle (every throttled connection attempt) never
    /// copies the domain string; the workload only has a handful of
    /// distinct domains, so the linear intern scan is cheap.
    domains: Vec<String>,
    /// Open-connection count per interned domain (index-aligned with
    /// `domains`), maintained on insert/remove so `acquire` need not
    /// rescan.
    domain_counts: Vec<usize>,
    next_id: u64,
    use_counter: u64,
}

impl ConnectionPool {
    /// An empty pool.
    pub fn new(cfg: PoolConfig) -> ConnectionPool {
        ConnectionPool {
            cfg,
            conns: Vec::new(),
            domains: Vec::new(),
            domain_counts: Vec::new(),
            next_id: 0,
            use_counter: 0,
        }
    }

    fn intern(&mut self, domain: &str) -> u32 {
        match self.domains.iter().position(|d| d == domain) {
            Some(i) => i as u32,
            None => {
                self.domains.push(domain.to_owned());
                self.domain_counts.push(0);
                (self.domains.len() - 1) as u32
            }
        }
    }

    /// Ask for a slot to `domain`. Prefers an idle persistent connection;
    /// opens a new one within limits; otherwise reports `Blocked` (the
    /// caller may [`ConnectionPool::evict_idle`] to make room globally).
    pub fn acquire(&mut self, domain: &str) -> Acquire {
        self.use_counter += 1;
        let ix = self.intern(domain);
        // Reuse the most-recently-used idle connection to this domain
        // (warm cwnd beats cold).
        let mut best = None;
        let mut best_used = 0;
        for (i, (_, c)) in self.conns.iter().enumerate() {
            if c.domain_ix == ix && !c.busy && (best.is_none() || c.last_used > best_used) {
                best = Some(i);
                best_used = c.last_used;
            }
        }
        if let Some(i) = best {
            let (id, info) = &mut self.conns[i];
            info.busy = true;
            info.last_used = self.use_counter;
            return Acquire::Reuse(*id);
        }
        if self.domain_counts[ix as usize] >= self.cfg.per_domain
            || self.conns.len() >= self.cfg.total
        {
            return Acquire::Blocked;
        }
        let id = PoolConnId(self.next_id);
        self.next_id += 1;
        self.domain_counts[ix as usize] += 1;
        self.conns.push((
            id,
            ConnInfo {
                domain_ix: ix,
                busy: true,
                last_used: self.use_counter,
            },
        ));
        Acquire::Open(id)
    }

    /// A request on `id` completed; the connection is idle and reusable.
    pub fn release(&mut self, id: PoolConnId) {
        if let Some((_, c)) = self.conns.iter_mut().find(|(cid, _)| *cid == id) {
            c.busy = false;
        }
    }

    /// The connection was closed (by either side); forget it.
    pub fn remove(&mut self, id: PoolConnId) {
        if let Some(i) = self.conns.iter().position(|(cid, _)| *cid == id) {
            let (_, c) = self.conns.remove(i);
            self.domain_counts[c.domain_ix as usize] -= 1;
        }
    }

    /// Least-recently-used idle connection across all domains, for
    /// eviction when the global cap blocks a new domain.
    pub fn evict_idle(&mut self) -> Option<PoolConnId> {
        let mut best = None;
        let mut best_used = u64::MAX;
        for (i, (_, c)) in self.conns.iter().enumerate() {
            if !c.busy && c.last_used < best_used {
                best = Some(i);
                best_used = c.last_used;
            }
        }
        let i = best?;
        let (id, c) = self.conns.remove(i);
        self.domain_counts[c.domain_ix as usize] -= 1;
        Some(id)
    }

    /// True when the global cap is reached.
    pub fn at_global_cap(&self) -> bool {
        self.conns.len() >= self.cfg.total
    }

    /// Open + busy connections to `domain`.
    pub fn count_for_domain(&self, domain: &str) -> usize {
        match self.domains.iter().position(|d| d == domain) {
            Some(ix) => self.domain_counts[ix],
            None => 0,
        }
    }

    /// All connections currently open.
    pub fn total(&self) -> usize {
        self.conns.len()
    }

    /// Busy connections currently serving requests.
    pub fn busy(&self) -> usize {
        self.conns.iter().filter(|(_, c)| c.busy).count()
    }

    /// The domain a connection serves.
    pub fn domain_of(&self, id: PoolConnId) -> Option<&str> {
        self.conns
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, c)| self.domains[c.domain_ix as usize].as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ConnectionPool {
        ConnectionPool::new(PoolConfig::default())
    }

    #[test]
    fn opens_up_to_six_per_domain() {
        let mut p = pool();
        for i in 0..6 {
            match p.acquire("a.com") {
                Acquire::Open(id) => assert_eq!(id.0, i),
                other => panic!("expected Open, got {other:?}"),
            }
        }
        assert_eq!(p.acquire("a.com"), Acquire::Blocked);
        assert_eq!(p.count_for_domain("a.com"), 6);
    }

    #[test]
    fn release_enables_reuse() {
        let mut p = pool();
        let id = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        p.release(id);
        assert_eq!(p.acquire("a.com"), Acquire::Reuse(id));
    }

    #[test]
    fn global_cap_of_32() {
        let mut p = pool();
        // 6 domains × 5 connections = 30, then 2 more on a 7th domain.
        for d in 0..6 {
            for _ in 0..5 {
                assert!(matches!(p.acquire(&format!("d{d}.com")), Acquire::Open(_)));
            }
        }
        assert!(matches!(p.acquire("late.com"), Acquire::Open(_)));
        assert!(matches!(p.acquire("late.com"), Acquire::Open(_)));
        assert_eq!(p.total(), 32);
        assert!(p.at_global_cap());
        assert_eq!(p.acquire("another.com"), Acquire::Blocked);
    }

    #[test]
    fn eviction_frees_global_capacity() {
        let mut p = pool();
        let mut first = None;
        for d in 0..32 {
            match p.acquire(&format!("d{d}.com")) {
                Acquire::Open(id) => {
                    if first.is_none() {
                        first = Some(id);
                    }
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(p.acquire("x.com"), Acquire::Blocked);
        // Nothing idle yet → no eviction possible.
        assert_eq!(p.evict_idle(), None);
        p.release(first.unwrap());
        assert_eq!(p.evict_idle(), Some(first.unwrap()));
        assert!(matches!(p.acquire("x.com"), Acquire::Open(_)));
    }

    #[test]
    fn removal_forgets_connection() {
        let mut p = pool();
        let id = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        p.remove(id);
        assert_eq!(p.total(), 0);
        assert!(matches!(p.acquire("a.com"), Acquire::Open(_)));
    }

    #[test]
    fn reuse_prefers_most_recently_used() {
        let mut p = pool();
        let a = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        let b = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        p.release(a);
        p.release(b); // b used more recently
        assert_eq!(p.acquire("a.com"), Acquire::Reuse(b));
    }

    #[test]
    fn domains_do_not_interfere_below_cap() {
        let mut p = pool();
        for _ in 0..6 {
            p.acquire("a.com");
        }
        assert!(matches!(p.acquire("b.com"), Acquire::Open(_)));
    }

    #[test]
    fn domain_of_reports() {
        let mut p = pool();
        let id = match p.acquire("a.com") {
            Acquire::Open(id) => id,
            _ => unreachable!(),
        };
        assert_eq!(p.domain_of(id), Some("a.com"));
        assert_eq!(p.busy(), 1);
    }
}
