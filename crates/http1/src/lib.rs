//! # spdyier-http
//!
//! HTTP/1.1 for the SPDY'ier reproduction testbed: message types with real
//! wire encoding, incremental parsers (bytes arrive in TCP-segment-sized
//! chunks), persistent-connection state machines with optional pipelining,
//! and the Chrome-23 connection-pool policy (6 per domain / 32 total) the
//! paper's browser used.
//!
//! ```
//! use spdyier_http::{Request, HttpClientConn, HttpServerConn, Response};
//! use spdyier_bytes::Payload;
//!
//! let mut client = HttpClientConn::new();
//! let mut server = HttpServerConn::new();
//! let wire = client.send_request(1, &Request::get("news.example", "/"));
//! let reqs = server.on_bytes(wire).unwrap();
//! assert_eq!(reqs[0].host, "news.example");
//! let resp = server.encode_response(&Response::ok(Payload::from("<html>")));
//! let done = client.on_bytes(resp).unwrap();
//! assert_eq!(done[0].1.body.len(), 6);
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod codec;
pub mod conn;
pub mod message;
pub mod pool;

pub use codec::{ParseError, RequestParser, ResponseParser};
pub use conn::{HttpClientConn, HttpServerConn};
pub use message::{Request, Response};
pub use pool::{Acquire, ConnectionPool, PoolConfig, PoolConnId};
