//! Incremental HTTP/1.1 parsers.
//!
//! Bytes arrive from TCP in arbitrary chunks; these parsers buffer until a
//! complete head (`\r\n\r\n`) and `Content-Length` body are available, then
//! yield whole messages.
//!
//! The buffer is a [`Payload`] rope. Heads are real bytes and small: the
//! scan for `\r\n\r\n` walks real chunks and the head is materialized once
//! for parsing (the control path). Bodies are never inspected — they are
//! consumed by `Content-Length` with an O(1) rope split, so synthetic
//! (length-only) bodies flow through without a single byte copied.

use crate::message::{Request, Response};
use spdyier_bytes::{Chunk, Payload};

/// Error raised on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parsed start line tokens plus header pairs.
type HeadParts<'a> = (Vec<&'a str>, Vec<(String, String)>);

/// Find the end of the head (`\r\n\r\n`, inclusive) in the rope's real
/// prefix. A head never extends into synthetic data (synthetic bytes are
/// zeros), so the scan stops at the first synthetic chunk.
fn find_head_end(buf: &Payload) -> Option<u64> {
    let mut pos: u64 = 0;
    // States of the "\r\n\r\n" matcher: number of pattern bytes matched.
    let mut matched: u8 = 0;
    for chunk in buf.chunks() {
        let bytes = match chunk {
            Chunk::Real(b) => &b[..],
            Chunk::Synthetic(_) => return None,
        };
        for &c in bytes {
            matched = match (matched, c) {
                (1, b'\n') => 2,
                (2, b'\r') => 3,
                (3, b'\n') => 4,
                (_, b'\r') => 1,
                _ => 0,
            };
            pos += 1;
            if matched == 4 {
                return Some(pos);
            }
        }
    }
    None
}

fn split_headers(head: &str) -> Result<HeadParts<'_>, ParseError> {
    let mut lines = head.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| ParseError("empty head".into()))?;
    let start_parts: Vec<&str> = start.split(' ').collect();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError(format!("bad header line: {line}")))?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
    Ok((start_parts, headers))
}

/// Split the head off the rope and materialize it (minus the trailing
/// `\r\n\r\n`) for string parsing — the one deliberate copy on the
/// control path.
fn take_head(buf: &mut Payload, head_end: u64) -> Result<String, ParseError> {
    let mut head = buf.split_to(head_end).to_vec();
    head.truncate(head.len() - 4);
    String::from_utf8(head).map_err(|_| ParseError("non-UTF8 head".into()))
}

/// Incremental parser for a stream of requests (server side).
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Payload,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Feed newly received data (chunks are adopted, not copied).
    pub fn push(&mut self, data: Payload) {
        self.buf.append(data);
    }

    /// Extract the next complete request, if buffered.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            return Ok(None);
        };
        let head_str = take_head(&mut self.buf, head_end)?;
        let (start, mut headers) = split_headers(&head_str)?;
        if start.len() != 3 {
            return Err(ParseError(format!("bad request line: {start:?}")));
        }
        let method = start[0].to_owned();
        let target = start[1];
        // Absolute-form (proxy) or origin-form.
        let (host, path) = if let Some(rest) = target.strip_prefix("http://") {
            match rest.find('/') {
                Some(idx) => (rest[..idx].to_owned(), rest[idx..].to_owned()),
                None => (rest.to_owned(), "/".to_owned()),
            }
        } else {
            let host = headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case("host"))
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            (host, target.to_owned())
        };
        headers.retain(|(n, _)| !n.eq_ignore_ascii_case("host"));
        Ok(Some(Request {
            method,
            host,
            path,
            headers,
        }))
    }
}

/// Incremental parser for a stream of responses (client side).
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: Payload,
    /// Set once a head has been parsed; `(response-so-far, body_len)`.
    pending: Option<(Response, u64)>,
}

impl ResponseParser {
    /// A parser with an empty buffer.
    pub fn new() -> ResponseParser {
        ResponseParser::default()
    }

    /// Feed newly received data (chunks are adopted, not copied).
    pub fn push(&mut self, data: Payload) {
        self.buf.append(data);
    }

    /// Bytes buffered but not yet consumed into a message.
    pub fn buffered(&self) -> u64 {
        self.buf.len()
    }

    /// Extract the next complete response, if buffered.
    pub fn next_response(&mut self) -> Result<Option<Response>, ParseError> {
        if self.pending.is_none() {
            let Some(head_end) = find_head_end(&self.buf) else {
                return Ok(None);
            };
            let head_str = take_head(&mut self.buf, head_end)?;
            let (start, headers) = split_headers(&head_str)?;
            if start.len() < 2 {
                return Err(ParseError(format!("bad status line: {start:?}")));
            }
            let status: u16 = start[1]
                .parse()
                .map_err(|_| ParseError(format!("bad status: {}", start[1])))?;
            let body_len: u64 = headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
                .map(|(_, v)| {
                    v.parse()
                        .map_err(|_| ParseError("bad content-length".into()))
                })
                .transpose()?
                .unwrap_or(0);
            let headers: Vec<(String, String)> = headers
                .into_iter()
                .filter(|(n, _)| !n.eq_ignore_ascii_case("content-length"))
                .collect();
            self.pending = Some((
                Response {
                    status,
                    headers,
                    body: Payload::new(),
                },
                body_len,
            ));
        }
        let (_, body_len) = self.pending.as_ref().expect("set above");
        if self.buf.len() < *body_len {
            return Ok(None);
        }
        let (mut resp, body_len) = self.pending.take().expect("checked");
        resp.body = self.buf.split_to(body_len);
        Ok(Some(resp))
    }

    /// True while a head has been parsed but its body is still arriving —
    /// lets a client observe first-byte timing.
    pub fn in_progress(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, Response};
    use bytes::Bytes;

    fn real(data: &'static [u8]) -> Payload {
        Payload::real(Bytes::from_static(data))
    }

    #[test]
    fn request_roundtrip() {
        let req = Request::get("example.com", "/a/b?c=1").with_header("X-Id", "7");
        let wire = req.encode();
        let mut p = RequestParser::new();
        p.push(wire);
        let got = p.next_request().unwrap().expect("complete");
        assert_eq!(got.method, "GET");
        assert_eq!(got.host, "example.com");
        assert_eq!(got.path, "/a/b?c=1");
        assert_eq!(got.header("X-Id"), Some("7"));
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn request_split_across_chunks() {
        let wire = Request::get("h.example", "/x").encode().to_vec();
        let mut p = RequestParser::new();
        for b in wire.chunks(3) {
            p.push(Payload::from(b.to_vec()));
        }
        let got = p.next_request().unwrap().expect("complete");
        assert_eq!(got.host, "h.example");
    }

    #[test]
    fn multiple_pipelined_requests() {
        let mut p = RequestParser::new();
        p.push(Request::get("a", "/1").encode());
        p.push(Request::get("b", "/2").encode());
        assert_eq!(p.next_request().unwrap().unwrap().path, "/1");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/2");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn origin_form_uses_host_header() {
        let mut p = RequestParser::new();
        p.push(real(b"GET /path HTTP/1.1\r\nHost: o.example\r\n\r\n"));
        let got = p.next_request().unwrap().unwrap();
        assert_eq!(got.host, "o.example");
        assert_eq!(got.path, "/path");
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok(Payload::from(vec![7u8; 5000])).with_header("X-Obj", "3");
        let wire = resp.encode();
        let mut p = ResponseParser::new();
        p.push(wire);
        let got = p.next_response().unwrap().expect("complete");
        assert_eq!(got.status, 200);
        assert_eq!(got.body.len(), 5000);
        assert_eq!(got.header("X-Obj"), Some("3"));
    }

    #[test]
    fn synthetic_body_passes_through_without_materializing() {
        let resp = Response::ok(Payload::synthetic(1 << 20));
        let mut p = ResponseParser::new();
        p.push(resp.encode());
        let got = p.next_response().unwrap().expect("complete");
        assert_eq!(got.body.len(), 1 << 20);
        assert_eq!(got.body.chunk_count(), 1, "body stayed one synthetic run");
    }

    #[test]
    fn response_body_arrives_incrementally() {
        let resp = Response::ok(Payload::from(vec![1u8; 100]));
        let mut wire = resp.encode();
        let tail = wire.split_to(wire.len() - 40);
        // `tail` is the first part; `wire` now holds the last 40 bytes.
        let mut p = ResponseParser::new();
        p.push(tail);
        assert!(p.next_response().unwrap().is_none(), "body incomplete");
        assert!(p.in_progress(), "head parsed");
        p.push(wire);
        let got = p.next_response().unwrap().expect("now complete");
        assert_eq!(got.body.len(), 100);
        assert!(!p.in_progress());
    }

    #[test]
    fn back_to_back_responses() {
        let mut p = ResponseParser::new();
        p.push(Response::ok(Payload::from(vec![1u8; 10])).encode());
        p.push(Response::ok(Payload::from(vec![2u8; 20])).encode());
        assert_eq!(p.next_response().unwrap().unwrap().body.len(), 10);
        assert_eq!(p.next_response().unwrap().unwrap().body.len(), 20);
        assert!(p.next_response().unwrap().is_none());
    }

    #[test]
    fn empty_body_response() {
        let mut p = ResponseParser::new();
        p.push(real(
            b"HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n",
        ));
        let got = p.next_response().unwrap().unwrap();
        assert_eq!(got.status, 204);
        assert!(got.body.is_empty());
    }

    #[test]
    fn malformed_status_is_an_error() {
        let mut p = ResponseParser::new();
        p.push(real(b"HTTP/1.1 abc OK\r\n\r\n"));
        assert!(p.next_response().is_err());
    }

    #[test]
    fn malformed_header_is_an_error() {
        let mut p = RequestParser::new();
        p.push(real(b"GET / HTTP/1.1\r\nbad header line\r\n\r\n"));
        assert!(p.next_request().is_err());
    }

    #[test]
    fn head_end_scan_stops_at_synthetic_data() {
        let mut buf = Payload::synthetic(100);
        buf.push_bytes(Bytes::from_static(b"\r\n\r\n"));
        assert_eq!(find_head_end(&buf), None);
    }

    #[test]
    fn head_end_scan_spans_chunk_boundaries() {
        let mut buf = Payload::from("HTTP/1.1 200 OK\r\n");
        buf.push_bytes(Bytes::from_static(b"\r"));
        buf.push_bytes(Bytes::from_static(b"\nrest"));
        assert_eq!(find_head_end(&buf), Some(19));
    }
}
