//! Incremental HTTP/1.1 parsers.
//!
//! Bytes arrive from TCP in arbitrary chunks; these parsers buffer until a
//! complete head (`\r\n\r\n`) and `Content-Length` body are available, then
//! yield whole messages.

use crate::message::{Request, Response};
use bytes::{Bytes, BytesMut};

/// Error raised on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parsed start line tokens plus header pairs.
type HeadParts<'a> = (Vec<&'a str>, Vec<(String, String)>);

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn split_headers(head: &str) -> Result<HeadParts<'_>, ParseError> {
    let mut lines = head.split("\r\n");
    let start = lines
        .next()
        .ok_or_else(|| ParseError("empty head".into()))?;
    let start_parts: Vec<&str> = start.split(' ').collect();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError(format!("bad header line: {line}")))?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
    Ok((start_parts, headers))
}

/// Incremental parser for a stream of requests (server side).
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: BytesMut,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Feed newly received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Extract the next complete request, if buffered.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            return Ok(None);
        };
        let head = self.buf.split_to(head_end);
        let head_str = std::str::from_utf8(&head[..head_end - 4])
            .map_err(|_| ParseError("non-UTF8 head".into()))?;
        let (start, mut headers) = split_headers(head_str)?;
        if start.len() != 3 {
            return Err(ParseError(format!("bad request line: {start:?}")));
        }
        let method = start[0].to_owned();
        let target = start[1];
        // Absolute-form (proxy) or origin-form.
        let (host, path) = if let Some(rest) = target.strip_prefix("http://") {
            match rest.find('/') {
                Some(idx) => (rest[..idx].to_owned(), rest[idx..].to_owned()),
                None => (rest.to_owned(), "/".to_owned()),
            }
        } else {
            let host = headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case("host"))
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            (host, target.to_owned())
        };
        headers.retain(|(n, _)| !n.eq_ignore_ascii_case("host"));
        Ok(Some(Request {
            method,
            host,
            path,
            headers,
        }))
    }
}

/// Incremental parser for a stream of responses (client side).
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: BytesMut,
    /// Set once a head has been parsed; `(response-so-far, body_remaining)`.
    pending: Option<(Response, usize)>,
}

impl ResponseParser {
    /// A parser with an empty buffer.
    pub fn new() -> ResponseParser {
        ResponseParser::default()
    }

    /// Feed newly received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed into a message.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extract the next complete response, if buffered.
    pub fn next_response(&mut self) -> Result<Option<Response>, ParseError> {
        if self.pending.is_none() {
            let Some(head_end) = find_head_end(&self.buf) else {
                return Ok(None);
            };
            let head = self.buf.split_to(head_end);
            let head_str = std::str::from_utf8(&head[..head_end - 4])
                .map_err(|_| ParseError("non-UTF8 head".into()))?;
            let (start, headers) = split_headers(head_str)?;
            if start.len() < 2 {
                return Err(ParseError(format!("bad status line: {start:?}")));
            }
            let status: u16 = start[1]
                .parse()
                .map_err(|_| ParseError(format!("bad status: {}", start[1])))?;
            let body_len: usize = headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
                .map(|(_, v)| {
                    v.parse()
                        .map_err(|_| ParseError("bad content-length".into()))
                })
                .transpose()?
                .unwrap_or(0);
            let headers: Vec<(String, String)> = headers
                .into_iter()
                .filter(|(n, _)| !n.eq_ignore_ascii_case("content-length"))
                .collect();
            self.pending = Some((
                Response {
                    status,
                    headers,
                    body: Bytes::new(),
                },
                body_len,
            ));
        }
        let (_, body_len) = self.pending.as_ref().expect("set above");
        if self.buf.len() < *body_len {
            return Ok(None);
        }
        let (mut resp, body_len) = self.pending.take().expect("checked");
        resp.body = self.buf.split_to(body_len).freeze();
        Ok(Some(resp))
    }

    /// Bytes of body already received for the in-progress response — lets a
    /// client observe first-byte timing.
    pub fn in_progress(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, Response};

    #[test]
    fn request_roundtrip() {
        let req = Request::get("example.com", "/a/b?c=1").with_header("X-Id", "7");
        let wire = req.encode();
        let mut p = RequestParser::new();
        p.push(&wire);
        let got = p.next_request().unwrap().expect("complete");
        assert_eq!(got.method, "GET");
        assert_eq!(got.host, "example.com");
        assert_eq!(got.path, "/a/b?c=1");
        assert_eq!(got.header("X-Id"), Some("7"));
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn request_split_across_chunks() {
        let wire = Request::get("h.example", "/x").encode();
        let mut p = RequestParser::new();
        for b in wire.chunks(3) {
            p.push(b);
        }
        let got = p.next_request().unwrap().expect("complete");
        assert_eq!(got.host, "h.example");
    }

    #[test]
    fn multiple_pipelined_requests() {
        let mut p = RequestParser::new();
        p.push(&Request::get("a", "/1").encode());
        p.push(&Request::get("b", "/2").encode());
        assert_eq!(p.next_request().unwrap().unwrap().path, "/1");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/2");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn origin_form_uses_host_header() {
        let mut p = RequestParser::new();
        p.push(b"GET /path HTTP/1.1\r\nHost: o.example\r\n\r\n");
        let got = p.next_request().unwrap().unwrap();
        assert_eq!(got.host, "o.example");
        assert_eq!(got.path, "/path");
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok(Bytes::from(vec![7u8; 5000])).with_header("X-Obj", "3");
        let wire = resp.encode();
        let mut p = ResponseParser::new();
        p.push(&wire);
        let got = p.next_response().unwrap().expect("complete");
        assert_eq!(got.status, 200);
        assert_eq!(got.body.len(), 5000);
        assert_eq!(got.header("X-Obj"), Some("3"));
    }

    #[test]
    fn response_body_arrives_incrementally() {
        let resp = Response::ok(Bytes::from(vec![1u8; 100]));
        let wire = resp.encode();
        let mut p = ResponseParser::new();
        let split = wire.len() - 40;
        p.push(&wire[..split]);
        assert!(p.next_response().unwrap().is_none(), "body incomplete");
        assert!(p.in_progress(), "head parsed");
        p.push(&wire[split..]);
        let got = p.next_response().unwrap().expect("now complete");
        assert_eq!(got.body.len(), 100);
        assert!(!p.in_progress());
    }

    #[test]
    fn back_to_back_responses() {
        let mut p = ResponseParser::new();
        p.push(&Response::ok(Bytes::from(vec![1u8; 10])).encode());
        p.push(&Response::ok(Bytes::from(vec![2u8; 20])).encode());
        assert_eq!(p.next_response().unwrap().unwrap().body.len(), 10);
        assert_eq!(p.next_response().unwrap().unwrap().body.len(), 20);
        assert!(p.next_response().unwrap().is_none());
    }

    #[test]
    fn empty_body_response() {
        let mut p = ResponseParser::new();
        p.push(b"HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n");
        let got = p.next_response().unwrap().unwrap();
        assert_eq!(got.status, 204);
        assert!(got.body.is_empty());
    }

    #[test]
    fn malformed_status_is_an_error() {
        let mut p = ResponseParser::new();
        p.push(b"HTTP/1.1 abc OK\r\n\r\n");
        assert!(p.next_response().is_err());
    }

    #[test]
    fn malformed_header_is_an_error() {
        let mut p = RequestParser::new();
        p.push(b"GET / HTTP/1.1\r\nbad header line\r\n\r\n");
        assert!(p.next_request().is_err());
    }
}
