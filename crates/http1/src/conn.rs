//! Persistent-connection state machines over a TCP byte stream.
//!
//! [`HttpClientConn`] enforces HTTP/1.1 ordering: requests on one
//! connection are answered FIFO, and — matching the study's configuration —
//! at most `pipeline_depth` requests may be outstanding (1 unless
//! pipelining is enabled; the paper kept it off because Squid's support was
//! rudimentary).

use crate::codec::{ParseError, RequestParser, ResponseParser};
use crate::message::{Request, Response};
use spdyier_bytes::Payload;
use std::collections::VecDeque;

/// Client side of one persistent connection.
#[derive(Debug)]
pub struct HttpClientConn {
    parser: ResponseParser,
    outstanding: VecDeque<u64>,
    pipeline_depth: usize,
}

impl HttpClientConn {
    /// A connection allowing one outstanding request (no pipelining).
    pub fn new() -> HttpClientConn {
        Self::with_pipelining(1)
    }

    /// A connection allowing up to `depth` outstanding requests.
    pub fn with_pipelining(depth: usize) -> HttpClientConn {
        HttpClientConn {
            parser: ResponseParser::new(),
            outstanding: VecDeque::new(),
            pipeline_depth: depth.max(1),
        }
    }

    /// May another request be issued right now?
    pub fn can_send(&self) -> bool {
        self.outstanding.len() < self.pipeline_depth
    }

    /// Requests in flight on this connection.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Encode and account a request tagged `tag` (the caller writes the
    /// returned rope to its TCP connection).
    pub fn send_request(&mut self, tag: u64, req: &Request) -> Payload {
        assert!(self.can_send(), "pipeline depth exceeded");
        self.outstanding.push_back(tag);
        req.encode()
    }

    /// Feed data read from TCP; returns completed `(tag, response)` pairs
    /// in request order.
    pub fn on_bytes(&mut self, data: Payload) -> Result<Vec<(u64, Response)>, ParseError> {
        self.parser.push(data);
        let mut done = Vec::new();
        while let Some(resp) = self.parser.next_response()? {
            let tag = self
                .outstanding
                .pop_front()
                .ok_or_else(|| ParseError("response without a request".into()))?;
            done.push((tag, resp));
        }
        Ok(done)
    }
}

impl Default for HttpClientConn {
    fn default() -> Self {
        Self::new()
    }
}

/// Server side of one persistent connection.
#[derive(Debug, Default)]
pub struct HttpServerConn {
    parser: RequestParser,
}

impl HttpServerConn {
    /// A fresh server-side connection.
    pub fn new() -> HttpServerConn {
        HttpServerConn::default()
    }

    /// Feed data read from TCP; returns completed requests in order.
    pub fn on_bytes(&mut self, data: Payload) -> Result<Vec<Request>, ParseError> {
        self.parser.push(data);
        let mut out = Vec::new();
        while let Some(req) = self.parser.next_request()? {
            out.push(req);
        }
        Ok(out)
    }

    /// Encode a response for the wire. Responses must be written in the
    /// order their requests arrived (HTTP/1.1 has no other way — the
    /// head-of-line blocking the paper contrasts with SPDY).
    pub fn encode_response(&self, resp: &Response) -> Payload {
        resp.encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_roundtrip() {
        let mut client = HttpClientConn::new();
        let mut server = HttpServerConn::new();
        assert!(client.can_send());
        let wire = client.send_request(7, &Request::get("e.com", "/x"));
        assert!(!client.can_send(), "depth 1: now blocked");
        let reqs = server.on_bytes(wire).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].path, "/x");
        let resp_wire = server.encode_response(&Response::ok(Payload::synthetic(42)));
        let done = client.on_bytes(resp_wire).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        assert_eq!(done[0].1.body.len(), 42);
        assert!(client.can_send(), "slot freed");
    }

    #[test]
    fn pipelining_matches_fifo() {
        let mut client = HttpClientConn::with_pipelining(3);
        let mut server = HttpServerConn::new();
        let mut wire = Payload::new();
        for (tag, path) in [(1, "/a"), (2, "/b"), (3, "/c")] {
            wire.append(client.send_request(tag, &Request::get("e.com", path)));
        }
        assert!(!client.can_send());
        let reqs = server.on_bytes(wire).unwrap();
        assert_eq!(reqs.len(), 3);
        // Server answers in order with distinguishable bodies.
        let mut resp_wire = Payload::new();
        for n in [10u64, 20, 30] {
            resp_wire.append(server.encode_response(&Response::ok(Payload::synthetic(n))));
        }
        let done = client.on_bytes(resp_wire).unwrap();
        let tags: Vec<u64> = done.iter().map(|(t, _)| *t).collect();
        let lens: Vec<u64> = done.iter().map(|(_, r)| r.body.len()).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(lens, vec![10, 20, 30]);
    }

    #[test]
    fn response_without_request_is_an_error() {
        let mut client = HttpClientConn::new();
        let err = client.on_bytes(Response::ok(Payload::new()).encode());
        assert!(err.is_err());
    }

    #[test]
    #[should_panic]
    fn overfilling_pipeline_panics() {
        let mut client = HttpClientConn::new();
        let _ = client.send_request(1, &Request::get("a", "/"));
        let _ = client.send_request(2, &Request::get("a", "/"));
    }

    #[test]
    fn fragmented_delivery() {
        let mut client = HttpClientConn::new();
        let mut server = HttpServerConn::new();
        let wire = client.send_request(9, &Request::get("e.com", "/big"));
        server.on_bytes(wire).unwrap();
        let mut resp_wire = server.encode_response(&Response::ok(Payload::synthetic(10_000)));
        let mut got = Vec::new();
        while !resp_wire.is_empty() {
            let chunk = resp_wire.split_to(1380.min(resp_wire.len()));
            got.extend(client.on_bytes(chunk).unwrap());
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.body.len(), 10_000);
    }
}
