//! The typed cross-layer event vocabulary.
//!
//! Every layer of the testbed — cellular radio, link, TCP, SPDY/HTTP,
//! browser, proxy — emits into one stream of [`TraceEvent`]s, each
//! stamped with the simulated time it occurred at ([`TraceRecord`]).
//! Events are keyed by the identifiers the layers already share:
//! connection index (pipe slot in the `World`), visit index, stream id
//! or object tag. Serialization is externally tagged
//! (`{"VariantName": {...}}`), one JSON object per record, which is
//! what the JSONL writer emits line by line.

use serde::Serialize;
use spdyier_sim::SimTime;

/// How much of the event vocabulary a run records.
///
/// Levels are cumulative: `Transport` includes everything `Lifecycle`
/// records, `Full` includes everything. `Off` is the zero-cost default —
/// the recorder short-circuits before any event is even constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum TraceLevel {
    /// Record nothing; the recorder is a no-op.
    Off,
    /// Visit, object, request/response, stream, and connection lifecycle
    /// plus proxy routing decisions — what a HAR waterfall needs.
    Lifecycle,
    /// Lifecycle plus radio promotions, link drops, RTO fires, idle
    /// restarts, and retransmissions — what stall attribution needs.
    Transport,
    /// Everything, including per-segment sends, cwnd/ssthresh samples,
    /// and per-frame SPDY receives.
    Full,
}

impl TraceLevel {
    /// Parse the `SPDYIER_TRACE` environment variable.
    ///
    /// Accepts names (`off`, `lifecycle`, `transport`, `full`) or the
    /// numeric levels `0`–`3`; unset or unrecognized values mean `Off`.
    pub fn from_env() -> TraceLevel {
        match std::env::var("SPDYIER_TRACE") {
            Ok(v) => TraceLevel::parse(&v).unwrap_or(TraceLevel::Off),
            Err(_) => TraceLevel::Off,
        }
    }

    /// Parse a level name or digit; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" => Some(TraceLevel::Off),
            "1" | "lifecycle" => Some(TraceLevel::Lifecycle),
            "2" | "transport" => Some(TraceLevel::Transport),
            "3" | "full" | "frames" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// One event, from whichever layer produced it.
///
/// Field conventions: `conn` is the pipe index in the `World`, `visit`
/// the visit index in the schedule, `tag` the object tag carried in
/// request/response framing, `down` distinguishes downlink from uplink
/// on the access path, and `b_side` marks the proxy/origin end of a
/// pipe (as opposed to the device end).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    // -- Lifecycle -------------------------------------------------------
    /// A page visit began.
    VisitStart { visit: usize, site: usize },
    /// A page visit finished (or was abandoned at its deadline).
    VisitEnd {
        visit: usize,
        completed: bool,
        plt_us: u64,
    },
    /// The browser asked for an object (it left the parse queue).
    ObjectRequested { visit: usize, object: u32 },
    /// First response byte for an object reached the browser.
    ObjectFirstByte { visit: usize, object: u32 },
    /// The last byte of an object arrived; the fetch is done.
    ObjectComplete { visit: usize, object: u32 },
    /// An HTTP request was written to a connection. `gen` is the visit
    /// generation the request belongs to (tags are per-generation).
    HttpRequestSent { conn: usize, gen: u64, tag: u64 },
    /// An HTTP response body completed on a connection.
    HttpResponseDone { conn: usize, gen: u64, tag: u64 },
    /// A SPDY stream was opened for an object.
    SpdyStreamOpen {
        conn: usize,
        stream: u32,
        gen: u64,
        tag: u64,
    },
    /// A transport connection was opened.
    ConnOpened {
        conn: usize,
        over_access: bool,
        label: String,
    },
    /// A transport connection was closed and harvested.
    ConnClosed { conn: usize },
    /// The TLS-equivalent handshake finished; the pipe is usable.
    SslReady { conn: usize },
    /// The proxy routed an origin fetch onto a wired connection.
    ProxyFetchDispatch {
        fetch: u64,
        conn: usize,
        fresh_pipe: bool,
        domain: String,
    },
    /// The proxy late-bound a finished origin fetch to a device session.
    ProxyLateBind {
        fetch: u64,
        owner_session: usize,
        chosen_session: usize,
    },
    /// The origin is "thinking" (server-side latency) until `until`.
    OriginThink { conn: usize, until: SimTime },

    // -- Transport -------------------------------------------------------
    /// An RRC promotion interval (IDLE/FACH -> DCH and similar).
    RrcPromotion {
        kind: String,
        start: SimTime,
        done: SimTime,
    },
    /// The access link dropped a segment.
    LinkDrop {
        conn: usize,
        down: bool,
        queue_overflow: bool,
    },
    /// A TCP retransmission timeout fired.
    TcpRto {
        conn: usize,
        b_side: bool,
        silent_since: SimTime,
    },
    /// TCP restarted from idle (cwnd collapsed after quiescence).
    TcpIdleRestart { conn: usize, b_side: bool },
    /// TCP retransmitted a data segment.
    TcpRetransmit { conn: usize, down: bool },

    // -- Full ------------------------------------------------------------
    /// A congestion-window sample (emitted when the tuple changes).
    TcpCwnd {
        conn: usize,
        cwnd: u64,
        ssthresh: Option<u64>,
        inflight: u64,
    },
    /// A segment entered the link; `deliver` is its arrival time and
    /// `ser_us` the serialization (transmission) share of that journey.
    SegmentSent {
        conn: usize,
        down: bool,
        bytes: u64,
        deliver: SimTime,
        ser_us: u64,
        retransmit: bool,
    },
    /// A SPDY frame reached the device.
    SpdyFrameRecv {
        conn: usize,
        stream: u32,
        kind: String,
        fin: bool,
    },
}

impl TraceEvent {
    /// The minimum [`TraceLevel`] at which this event is recorded.
    pub fn level(&self) -> TraceLevel {
        use TraceEvent::*;
        match self {
            VisitStart { .. }
            | VisitEnd { .. }
            | ObjectRequested { .. }
            | ObjectFirstByte { .. }
            | ObjectComplete { .. }
            | HttpRequestSent { .. }
            | HttpResponseDone { .. }
            | SpdyStreamOpen { .. }
            | ConnOpened { .. }
            | ConnClosed { .. }
            | SslReady { .. }
            | ProxyFetchDispatch { .. }
            | ProxyLateBind { .. }
            | OriginThink { .. } => TraceLevel::Lifecycle,
            RrcPromotion { .. }
            | LinkDrop { .. }
            | TcpRto { .. }
            | TcpIdleRestart { .. }
            | TcpRetransmit { .. } => TraceLevel::Transport,
            TcpCwnd { .. } | SegmentSent { .. } | SpdyFrameRecv { .. } => TraceLevel::Full,
        }
    }
}

/// An event plus the simulated instant it happened.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceRecord {
    /// Simulated time of the event, microseconds since run start.
    pub t: SimTime,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// One JSONL line (no trailing newline) for this record.
    pub fn to_jsonl_line(&self) -> String {
        let mut out = String::new();
        self.write_jsonl_line(&mut out);
        out
    }

    /// Append this record's JSONL line (no trailing newline) to `out`.
    ///
    /// Byte-identical to `serde_json::to_string(self)` — the test suite
    /// pins that equivalence for every variant — but serializes straight
    /// into the caller's buffer instead of building a `Value` tree and a
    /// fresh `String` per record. [`crate::sink::JsonlWriter`] keeps one
    /// scratch line alive across millions of records on the strength of
    /// this method.
    pub fn write_jsonl_line(&self, out: &mut String) {
        out.push_str("{\"t\":");
        push_u64(out, self.t.as_micros());
        out.push_str(",\"event\":");
        self.event.write_json(out);
        out.push('}');
    }
}

/// Append `v` in decimal. `fmt::Write` into a `String` never errors and
/// never allocates a temporary, unlike `v.to_string()`.
fn push_u64(out: &mut String, v: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{v}");
}

/// Append a JSON string literal, matching the vendored renderer's
/// escaping byte for byte: named escapes for `"` `\` `\n` `\r` `\t`,
/// `\u00XX` for other control characters, everything else verbatim.
fn push_json_str(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Emit `{"Variant":{"field":value,...}}` for one event. The macro
/// keeps each arm a literal transcription of the derive output —
/// externally tagged, fields in declaration order, `usize`/`u32`/`u64`
/// as bare decimals, `SimTime` transparent (bare microseconds),
/// `Option<u64>` as `null`/decimal — with all the punctuation assembled
/// at compile time via `concat!`.
macro_rules! emit_variant {
    ($out:ident, $tag:literal {
        $first:literal => $fpush:ident($fv:expr)
        $(, $rest:literal => $rpush:ident($rv:expr))*
    }) => {{
        $out.push_str(concat!("{\"", $tag, "\":{\"", $first, "\":"));
        $fpush($out, $fv);
        $(
            $out.push_str(concat!(",\"", $rest, "\":"));
            $rpush($out, $rv);
        )*
        $out.push_str("}}");
    }};
}

fn push_usize(out: &mut String, v: usize) {
    push_u64(out, v as u64);
}

fn push_u32(out: &mut String, v: u32) {
    push_u64(out, u64::from(v));
}

fn push_bool(out: &mut String, v: bool) {
    out.push_str(if v { "true" } else { "false" });
}

fn push_time(out: &mut String, v: SimTime) {
    push_u64(out, v.as_micros());
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => push_u64(out, v),
        None => out.push_str("null"),
    }
}

impl TraceEvent {
    /// Append this event's externally-tagged JSON object to `out`.
    fn write_json(&self, out: &mut String) {
        use TraceEvent::*;
        match self {
            VisitStart { visit, site } => emit_variant!(out, "VisitStart" {
                "visit" => push_usize(*visit), "site" => push_usize(*site)
            }),
            VisitEnd {
                visit,
                completed,
                plt_us,
            } => emit_variant!(out, "VisitEnd" {
                "visit" => push_usize(*visit), "completed" => push_bool(*completed),
                "plt_us" => push_u64(*plt_us)
            }),
            ObjectRequested { visit, object } => emit_variant!(out, "ObjectRequested" {
                "visit" => push_usize(*visit), "object" => push_u32(*object)
            }),
            ObjectFirstByte { visit, object } => emit_variant!(out, "ObjectFirstByte" {
                "visit" => push_usize(*visit), "object" => push_u32(*object)
            }),
            ObjectComplete { visit, object } => emit_variant!(out, "ObjectComplete" {
                "visit" => push_usize(*visit), "object" => push_u32(*object)
            }),
            HttpRequestSent { conn, gen, tag } => emit_variant!(out, "HttpRequestSent" {
                "conn" => push_usize(*conn), "gen" => push_u64(*gen), "tag" => push_u64(*tag)
            }),
            HttpResponseDone { conn, gen, tag } => emit_variant!(out, "HttpResponseDone" {
                "conn" => push_usize(*conn), "gen" => push_u64(*gen), "tag" => push_u64(*tag)
            }),
            SpdyStreamOpen {
                conn,
                stream,
                gen,
                tag,
            } => emit_variant!(out, "SpdyStreamOpen" {
                "conn" => push_usize(*conn), "stream" => push_u32(*stream),
                "gen" => push_u64(*gen), "tag" => push_u64(*tag)
            }),
            ConnOpened {
                conn,
                over_access,
                label,
            } => emit_variant!(out, "ConnOpened" {
                "conn" => push_usize(*conn), "over_access" => push_bool(*over_access),
                "label" => push_json_str(label)
            }),
            ConnClosed { conn } => emit_variant!(out, "ConnClosed" {
                "conn" => push_usize(*conn)
            }),
            SslReady { conn } => emit_variant!(out, "SslReady" {
                "conn" => push_usize(*conn)
            }),
            ProxyFetchDispatch {
                fetch,
                conn,
                fresh_pipe,
                domain,
            } => emit_variant!(out, "ProxyFetchDispatch" {
                "fetch" => push_u64(*fetch), "conn" => push_usize(*conn),
                "fresh_pipe" => push_bool(*fresh_pipe), "domain" => push_json_str(domain)
            }),
            ProxyLateBind {
                fetch,
                owner_session,
                chosen_session,
            } => emit_variant!(out, "ProxyLateBind" {
                "fetch" => push_u64(*fetch), "owner_session" => push_usize(*owner_session),
                "chosen_session" => push_usize(*chosen_session)
            }),
            OriginThink { conn, until } => emit_variant!(out, "OriginThink" {
                "conn" => push_usize(*conn), "until" => push_time(*until)
            }),
            RrcPromotion { kind, start, done } => emit_variant!(out, "RrcPromotion" {
                "kind" => push_json_str(kind), "start" => push_time(*start),
                "done" => push_time(*done)
            }),
            LinkDrop {
                conn,
                down,
                queue_overflow,
            } => emit_variant!(out, "LinkDrop" {
                "conn" => push_usize(*conn), "down" => push_bool(*down),
                "queue_overflow" => push_bool(*queue_overflow)
            }),
            TcpRto {
                conn,
                b_side,
                silent_since,
            } => emit_variant!(out, "TcpRto" {
                "conn" => push_usize(*conn), "b_side" => push_bool(*b_side),
                "silent_since" => push_time(*silent_since)
            }),
            TcpIdleRestart { conn, b_side } => emit_variant!(out, "TcpIdleRestart" {
                "conn" => push_usize(*conn), "b_side" => push_bool(*b_side)
            }),
            TcpRetransmit { conn, down } => emit_variant!(out, "TcpRetransmit" {
                "conn" => push_usize(*conn), "down" => push_bool(*down)
            }),
            TcpCwnd {
                conn,
                cwnd,
                ssthresh,
                inflight,
            } => emit_variant!(out, "TcpCwnd" {
                "conn" => push_usize(*conn), "cwnd" => push_u64(*cwnd),
                "ssthresh" => push_opt_u64(*ssthresh), "inflight" => push_u64(*inflight)
            }),
            SegmentSent {
                conn,
                down,
                bytes,
                deliver,
                ser_us,
                retransmit,
            } => emit_variant!(out, "SegmentSent" {
                "conn" => push_usize(*conn), "down" => push_bool(*down),
                "bytes" => push_u64(*bytes), "deliver" => push_time(*deliver),
                "ser_us" => push_u64(*ser_us), "retransmit" => push_bool(*retransmit)
            }),
            SpdyFrameRecv {
                conn,
                stream,
                kind,
                fin,
            } => emit_variant!(out, "SpdyFrameRecv" {
                "conn" => push_usize(*conn), "stream" => push_u32(*stream),
                "kind" => push_json_str(kind), "fin" => push_bool(*fin)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parseable() {
        assert!(TraceLevel::Off < TraceLevel::Lifecycle);
        assert!(TraceLevel::Lifecycle < TraceLevel::Transport);
        assert!(TraceLevel::Transport < TraceLevel::Full);
        assert_eq!(TraceLevel::parse("transport"), Some(TraceLevel::Transport));
        assert_eq!(TraceLevel::parse("3"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("OFF"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn event_levels_match_vocabulary_tiers() {
        let start = TraceEvent::VisitStart { visit: 0, site: 3 };
        assert_eq!(start.level(), TraceLevel::Lifecycle);
        let rto = TraceEvent::TcpRto {
            conn: 1,
            b_side: true,
            silent_since: SimTime::from_micros(10),
        };
        assert_eq!(rto.level(), TraceLevel::Transport);
        let seg = TraceEvent::SegmentSent {
            conn: 1,
            down: true,
            bytes: 1400,
            deliver: SimTime::from_micros(500),
            ser_us: 120,
            retransmit: false,
        };
        assert_eq!(seg.level(), TraceLevel::Full);
    }

    /// One exemplar per variant, with string fields that exercise the
    /// escaping rules (quotes, backslashes, named escapes, raw control
    /// characters) and numeric extremes.
    fn exemplars() -> Vec<TraceEvent> {
        use TraceEvent::*;
        vec![
            VisitStart { visit: 0, site: 19 },
            VisitEnd {
                visit: usize::MAX,
                completed: false,
                plt_us: u64::MAX,
            },
            ObjectRequested {
                visit: 3,
                object: u32::MAX,
            },
            ObjectFirstByte {
                visit: 4,
                object: 0,
            },
            ObjectComplete {
                visit: 5,
                object: 77,
            },
            HttpRequestSent {
                conn: 1,
                gen: 2,
                tag: 3,
            },
            HttpResponseDone {
                conn: 9,
                gen: 0,
                tag: u64::MAX,
            },
            SpdyStreamOpen {
                conn: 2,
                stream: 41,
                gen: 7,
                tag: 8,
            },
            ConnOpened {
                conn: 6,
                over_access: true,
                label: "dev\"ice\\a[3]\n\t\r\u{1}\u{1F}é".to_string(),
            },
            ConnClosed { conn: 11 },
            SslReady { conn: 12 },
            ProxyFetchDispatch {
                fetch: 99,
                conn: 4,
                fresh_pipe: true,
                domain: "static.example.org".to_string(),
            },
            ProxyLateBind {
                fetch: 100,
                owner_session: 1,
                chosen_session: 2,
            },
            OriginThink {
                conn: 3,
                until: SimTime::from_micros(123_456_789),
            },
            RrcPromotion {
                kind: "idle->dch".to_string(),
                start: SimTime::ZERO,
                done: SimTime::from_micros(u64::MAX),
            },
            LinkDrop {
                conn: 5,
                down: true,
                queue_overflow: false,
            },
            TcpRto {
                conn: 6,
                b_side: true,
                silent_since: SimTime::from_micros(42),
            },
            TcpIdleRestart {
                conn: 7,
                b_side: false,
            },
            TcpRetransmit {
                conn: 8,
                down: false,
            },
            TcpCwnd {
                conn: 9,
                cwnd: 14_600,
                ssthresh: None,
                inflight: 2_920,
            },
            TcpCwnd {
                conn: 9,
                cwnd: 29_200,
                ssthresh: Some(u64::MAX),
                inflight: 0,
            },
            SegmentSent {
                conn: 10,
                down: true,
                bytes: 1_400,
                deliver: SimTime::from_micros(987_654),
                ser_us: 120,
                retransmit: true,
            },
            SpdyFrameRecv {
                conn: 11,
                stream: 13,
                kind: "SYN_REPLY".to_string(),
                fin: true,
            },
        ]
    }

    #[test]
    fn manual_serializer_matches_serde_for_every_variant() {
        for (i, event) in exemplars().into_iter().enumerate() {
            let rec = TraceRecord {
                t: SimTime::from_micros(1_000 + i as u64),
                event,
            };
            let via_serde = serde_json::to_string(&rec).expect("serialize");
            assert_eq!(
                rec.to_jsonl_line(),
                via_serde,
                "variant {i} diverged from the derive output"
            );
        }
    }

    #[test]
    fn write_jsonl_line_appends_without_clearing() {
        let rec = TraceRecord {
            t: SimTime::from_micros(7),
            event: TraceEvent::ConnClosed { conn: 1 },
        };
        let mut out = String::from("prefix:");
        rec.write_jsonl_line(&mut out);
        assert_eq!(out, format!("prefix:{}", rec.to_jsonl_line()));
    }

    #[test]
    fn records_serialize_as_externally_tagged_jsonl() {
        let rec = TraceRecord {
            t: SimTime::from_micros(1500),
            event: TraceEvent::VisitEnd {
                visit: 2,
                completed: true,
                plt_us: 1_200_000,
            },
        };
        let line = rec.to_jsonl_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"VisitEnd\""), "line: {line}");
        assert!(line.contains("\"plt_us\":1200000"), "line: {line}");
        assert!(!line.contains('\n'));
    }
}
