//! The typed cross-layer event vocabulary.
//!
//! Every layer of the testbed — cellular radio, link, TCP, SPDY/HTTP,
//! browser, proxy — emits into one stream of [`TraceEvent`]s, each
//! stamped with the simulated time it occurred at ([`TraceRecord`]).
//! Events are keyed by the identifiers the layers already share:
//! connection index (pipe slot in the `World`), visit index, stream id
//! or object tag. Serialization is externally tagged
//! (`{"VariantName": {...}}`), one JSON object per record, which is
//! what the JSONL writer emits line by line.

use serde::Serialize;
use spdyier_sim::SimTime;

/// How much of the event vocabulary a run records.
///
/// Levels are cumulative: `Transport` includes everything `Lifecycle`
/// records, `Full` includes everything. `Off` is the zero-cost default —
/// the recorder short-circuits before any event is even constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum TraceLevel {
    /// Record nothing; the recorder is a no-op.
    Off,
    /// Visit, object, request/response, stream, and connection lifecycle
    /// plus proxy routing decisions — what a HAR waterfall needs.
    Lifecycle,
    /// Lifecycle plus radio promotions, link drops, RTO fires, idle
    /// restarts, and retransmissions — what stall attribution needs.
    Transport,
    /// Everything, including per-segment sends, cwnd/ssthresh samples,
    /// and per-frame SPDY receives.
    Full,
}

impl TraceLevel {
    /// Parse the `SPDYIER_TRACE` environment variable.
    ///
    /// Accepts names (`off`, `lifecycle`, `transport`, `full`) or the
    /// numeric levels `0`–`3`; unset or unrecognized values mean `Off`.
    pub fn from_env() -> TraceLevel {
        match std::env::var("SPDYIER_TRACE") {
            Ok(v) => TraceLevel::parse(&v).unwrap_or(TraceLevel::Off),
            Err(_) => TraceLevel::Off,
        }
    }

    /// Parse a level name or digit; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" => Some(TraceLevel::Off),
            "1" | "lifecycle" => Some(TraceLevel::Lifecycle),
            "2" | "transport" => Some(TraceLevel::Transport),
            "3" | "full" | "frames" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// One event, from whichever layer produced it.
///
/// Field conventions: `conn` is the pipe index in the `World`, `visit`
/// the visit index in the schedule, `tag` the object tag carried in
/// request/response framing, `down` distinguishes downlink from uplink
/// on the access path, and `b_side` marks the proxy/origin end of a
/// pipe (as opposed to the device end).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    // -- Lifecycle -------------------------------------------------------
    /// A page visit began.
    VisitStart { visit: usize, site: usize },
    /// A page visit finished (or was abandoned at its deadline).
    VisitEnd {
        visit: usize,
        completed: bool,
        plt_us: u64,
    },
    /// The browser asked for an object (it left the parse queue).
    ObjectRequested { visit: usize, object: u32 },
    /// First response byte for an object reached the browser.
    ObjectFirstByte { visit: usize, object: u32 },
    /// The last byte of an object arrived; the fetch is done.
    ObjectComplete { visit: usize, object: u32 },
    /// An HTTP request was written to a connection. `gen` is the visit
    /// generation the request belongs to (tags are per-generation).
    HttpRequestSent { conn: usize, gen: u64, tag: u64 },
    /// An HTTP response body completed on a connection.
    HttpResponseDone { conn: usize, gen: u64, tag: u64 },
    /// A SPDY stream was opened for an object.
    SpdyStreamOpen {
        conn: usize,
        stream: u32,
        gen: u64,
        tag: u64,
    },
    /// A transport connection was opened.
    ConnOpened {
        conn: usize,
        over_access: bool,
        label: String,
    },
    /// A transport connection was closed and harvested.
    ConnClosed { conn: usize },
    /// The TLS-equivalent handshake finished; the pipe is usable.
    SslReady { conn: usize },
    /// The proxy routed an origin fetch onto a wired connection.
    ProxyFetchDispatch {
        fetch: u64,
        conn: usize,
        fresh_pipe: bool,
        domain: String,
    },
    /// The proxy late-bound a finished origin fetch to a device session.
    ProxyLateBind {
        fetch: u64,
        owner_session: usize,
        chosen_session: usize,
    },
    /// The origin is "thinking" (server-side latency) until `until`.
    OriginThink { conn: usize, until: SimTime },

    // -- Transport -------------------------------------------------------
    /// An RRC promotion interval (IDLE/FACH -> DCH and similar).
    RrcPromotion {
        kind: String,
        start: SimTime,
        done: SimTime,
    },
    /// The access link dropped a segment.
    LinkDrop {
        conn: usize,
        down: bool,
        queue_overflow: bool,
    },
    /// A TCP retransmission timeout fired.
    TcpRto {
        conn: usize,
        b_side: bool,
        silent_since: SimTime,
    },
    /// TCP restarted from idle (cwnd collapsed after quiescence).
    TcpIdleRestart { conn: usize, b_side: bool },
    /// TCP retransmitted a data segment.
    TcpRetransmit { conn: usize, down: bool },

    // -- Full ------------------------------------------------------------
    /// A congestion-window sample (emitted when the tuple changes).
    TcpCwnd {
        conn: usize,
        cwnd: u64,
        ssthresh: Option<u64>,
        inflight: u64,
    },
    /// A segment entered the link; `deliver` is its arrival time and
    /// `ser_us` the serialization (transmission) share of that journey.
    SegmentSent {
        conn: usize,
        down: bool,
        bytes: u64,
        deliver: SimTime,
        ser_us: u64,
        retransmit: bool,
    },
    /// A SPDY frame reached the device.
    SpdyFrameRecv {
        conn: usize,
        stream: u32,
        kind: String,
        fin: bool,
    },
}

impl TraceEvent {
    /// The minimum [`TraceLevel`] at which this event is recorded.
    pub fn level(&self) -> TraceLevel {
        use TraceEvent::*;
        match self {
            VisitStart { .. }
            | VisitEnd { .. }
            | ObjectRequested { .. }
            | ObjectFirstByte { .. }
            | ObjectComplete { .. }
            | HttpRequestSent { .. }
            | HttpResponseDone { .. }
            | SpdyStreamOpen { .. }
            | ConnOpened { .. }
            | ConnClosed { .. }
            | SslReady { .. }
            | ProxyFetchDispatch { .. }
            | ProxyLateBind { .. }
            | OriginThink { .. } => TraceLevel::Lifecycle,
            RrcPromotion { .. }
            | LinkDrop { .. }
            | TcpRto { .. }
            | TcpIdleRestart { .. }
            | TcpRetransmit { .. } => TraceLevel::Transport,
            TcpCwnd { .. } | SegmentSent { .. } | SpdyFrameRecv { .. } => TraceLevel::Full,
        }
    }
}

/// An event plus the simulated instant it happened.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceRecord {
    /// Simulated time of the event, microseconds since run start.
    pub t: SimTime,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// One JSONL line (no trailing newline) for this record.
    pub fn to_jsonl_line(&self) -> String {
        serde_json::to_string(self).expect("trace records always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parseable() {
        assert!(TraceLevel::Off < TraceLevel::Lifecycle);
        assert!(TraceLevel::Lifecycle < TraceLevel::Transport);
        assert!(TraceLevel::Transport < TraceLevel::Full);
        assert_eq!(TraceLevel::parse("transport"), Some(TraceLevel::Transport));
        assert_eq!(TraceLevel::parse("3"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("OFF"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn event_levels_match_vocabulary_tiers() {
        let start = TraceEvent::VisitStart { visit: 0, site: 3 };
        assert_eq!(start.level(), TraceLevel::Lifecycle);
        let rto = TraceEvent::TcpRto {
            conn: 1,
            b_side: true,
            silent_since: SimTime::from_micros(10),
        };
        assert_eq!(rto.level(), TraceLevel::Transport);
        let seg = TraceEvent::SegmentSent {
            conn: 1,
            down: true,
            bytes: 1400,
            deliver: SimTime::from_micros(500),
            ser_us: 120,
            retransmit: false,
        };
        assert_eq!(seg.level(), TraceLevel::Full);
    }

    #[test]
    fn records_serialize_as_externally_tagged_jsonl() {
        let rec = TraceRecord {
            t: SimTime::from_micros(1500),
            event: TraceEvent::VisitEnd {
                visit: 2,
                completed: true,
                plt_us: 1_200_000,
            },
        };
        let line = rec.to_jsonl_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"VisitEnd\""), "line: {line}");
        assert!(line.contains("\"plt_us\":1200000"), "line: {line}");
        assert!(!line.contains('\n'));
    }
}
