//! The recorder that the simulation carries around.
//!
//! [`Tracer`] is the single object threaded through the `World`: it
//! owns the level gate, the sink, and the metrics registry. Emission
//! sites call [`Tracer::active`] first (an inlined level compare) so
//! that at `Off` no event — and none of its `String` fields — is ever
//! constructed. When a run finishes, [`Tracer::finish`] folds
//! everything into a [`FlightLog`], the self-contained artifact the
//! consumers (stall attributor, waterfall exporter, JSONL dump) read.

use serde::Serialize;
use spdyier_sim::SimTime;

use crate::event::{TraceEvent, TraceLevel, TraceRecord};
use crate::metrics::MetricsRegistry;
use crate::sink::{self, MemorySink, NullSink, TraceSink};

/// The per-run event recorder: level gate + sink + metrics.
pub struct Tracer {
    level: TraceLevel,
    sink: Box<dyn TraceSink>,
    metrics: MetricsRegistry,
    emitted: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("level", &self.level)
            .field("emitted", &self.emitted)
            .finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::off()
    }
}

impl Tracer {
    /// A disabled recorder: `Off` level, [`NullSink`], no metrics.
    pub fn off() -> Tracer {
        Tracer {
            level: TraceLevel::Off,
            sink: Box::new(NullSink),
            metrics: MetricsRegistry::new(),
            emitted: 0,
        }
    }

    /// A recorder for `level`, retaining events in memory (the default
    /// for in-process consumers). `Off` degenerates to [`Tracer::off`].
    pub fn for_level(level: TraceLevel) -> Tracer {
        if level == TraceLevel::Off {
            return Tracer::off();
        }
        Tracer {
            level,
            sink: Box::new(MemorySink::new()),
            metrics: MetricsRegistry::new(),
            emitted: 0,
        }
    }

    /// A recorder for `level` writing into a caller-supplied sink.
    pub fn with_sink(level: TraceLevel, sink: Box<dyn TraceSink>) -> Tracer {
        if level == TraceLevel::Off {
            return Tracer::off();
        }
        Tracer {
            level,
            sink,
            metrics: MetricsRegistry::new(),
            emitted: 0,
        }
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether events at `level` are being recorded. Emission sites
    /// check this before constructing an event, so `Off` costs one
    /// integer compare per site.
    #[inline]
    pub fn active(&self, level: TraceLevel) -> bool {
        level <= self.level && self.level != TraceLevel::Off
    }

    /// Record `event` at time `t` if the level admits it.
    #[inline]
    pub fn emit(&mut self, t: SimTime, event: TraceEvent) {
        if !self.active(event.level()) {
            return;
        }
        self.emitted += 1;
        self.sink.record(TraceRecord { t, event });
    }

    /// How many events passed the level gate so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Add to a named counter. No-op when tracing is off, so disabled
    /// runs allocate no metric storage at all.
    #[inline]
    pub fn count(&mut self, name: &str, delta: u64) {
        if self.level != TraceLevel::Off {
            self.metrics.count(name, delta);
        }
    }

    /// Observe into a named histogram. No-op when tracing is off.
    #[inline]
    pub fn observe(&mut self, name: &str, value: u64) {
        if self.level != TraceLevel::Off {
            self.metrics.observe(name, value);
        }
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Close out the run: drain the sink and package everything. The
    /// recorder's own throughput (`trace.emitted`) and the sink's loss
    /// (`trace.sink_dropped`) land in the metrics registry so
    /// `metrics_*.json` surfaces trace loss without consumers having to
    /// inspect the sink. Drain first: a batching sink (like
    /// [`crate::sink::JsonlWriter`]) may only discover write failures
    /// while flushing.
    pub fn finish(mut self) -> FlightLog {
        let events = self.sink.drain();
        let dropped = self.sink.dropped();
        if self.level != TraceLevel::Off {
            self.metrics.count("trace.emitted", self.emitted);
            self.metrics.count("trace.sink_dropped", dropped);
        }
        FlightLog {
            level: self.level,
            events,
            dropped,
            emitted: self.emitted,
            metrics: self.metrics,
        }
    }
}

/// Everything a traced run recorded: the event stream, shed count,
/// and the metrics registry. Self-contained input for the consumers.
#[derive(Debug, Serialize)]
pub struct FlightLog {
    /// The level the run was recorded at.
    pub level: TraceLevel,
    /// All retained records, in emission (= simulated time) order.
    pub events: Vec<TraceRecord>,
    /// Records shed by the sink (ring overflow / write failures).
    pub dropped: u64,
    /// Records that passed the level gate (>= `events.len()`).
    pub emitted: u64,
    /// The run's metrics registry.
    pub metrics: MetricsRegistry,
}

impl FlightLog {
    /// The whole event stream as JSONL (one record per line).
    pub fn to_jsonl(&self) -> String {
        sink::to_jsonl(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    fn visit_start(visit: usize) -> TraceEvent {
        TraceEvent::VisitStart { visit, site: 0 }
    }

    fn cwnd_sample() -> TraceEvent {
        TraceEvent::TcpCwnd {
            conn: 0,
            cwnd: 14_600,
            ssthresh: None,
            inflight: 0,
        }
    }

    #[test]
    fn off_tracer_materializes_nothing() {
        let mut tr = Tracer::off();
        assert!(!tr.active(TraceLevel::Lifecycle));
        tr.emit(SimTime::ZERO, visit_start(0));
        tr.count("c", 1);
        tr.observe("h", 5);
        assert_eq!(tr.emitted(), 0);
        let log = tr.finish();
        assert!(log.events.is_empty());
        assert_eq!(log.emitted, 0);
        assert!(log.metrics.is_empty());
    }

    #[test]
    fn level_gate_filters_by_event_level() {
        let mut tr = Tracer::for_level(TraceLevel::Lifecycle);
        tr.emit(SimTime::ZERO, visit_start(0));
        tr.emit(SimTime::from_micros(5), cwnd_sample());
        assert_eq!(tr.emitted(), 1);
        let log = tr.finish();
        assert_eq!(log.events.len(), 1);
        assert!(matches!(log.events[0].event, TraceEvent::VisitStart { .. }));
    }

    #[test]
    fn full_level_admits_everything() {
        let mut tr = Tracer::for_level(TraceLevel::Full);
        assert!(tr.active(TraceLevel::Lifecycle));
        assert!(tr.active(TraceLevel::Full));
        tr.emit(SimTime::ZERO, visit_start(0));
        tr.emit(SimTime::from_micros(5), cwnd_sample());
        assert_eq!(tr.finish().events.len(), 2);
    }

    #[test]
    fn finish_reports_ring_shedding() {
        let mut tr = Tracer::with_sink(TraceLevel::Lifecycle, Box::new(RingSink::new(1)));
        tr.emit(SimTime::ZERO, visit_start(0));
        tr.emit(SimTime::from_micros(1), visit_start(1));
        let log = tr.finish();
        assert_eq!(log.emitted, 2);
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.dropped, 1);
    }

    #[test]
    fn finish_publishes_throughput_and_loss_metrics() {
        let mut tr = Tracer::with_sink(TraceLevel::Lifecycle, Box::new(RingSink::new(1)));
        tr.emit(SimTime::ZERO, visit_start(0));
        tr.emit(SimTime::from_micros(1), visit_start(1));
        let log = tr.finish();
        assert_eq!(log.metrics.counter("trace.emitted"), 2);
        assert_eq!(log.metrics.counter("trace.sink_dropped"), 1);
    }

    #[test]
    fn jsonl_roundtrip_has_one_line_per_event() {
        let mut tr = Tracer::for_level(TraceLevel::Full);
        tr.emit(SimTime::ZERO, visit_start(0));
        tr.emit(SimTime::from_micros(1), cwnd_sample());
        let log = tr.finish();
        assert_eq!(log.to_jsonl().lines().count(), 2);
    }
}
