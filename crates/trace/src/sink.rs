//! Where trace records go.
//!
//! A [`TraceSink`] receives fully-formed [`TraceRecord`]s from the
//! recorder. The three built-ins cover the spectrum: [`NullSink`]
//! discards everything (the zero-cost default — the recorder never even
//! constructs events when the level is `Off`), [`MemorySink`] keeps
//! everything for in-process consumers like the stall attributor, and
//! [`RingSink`] keeps only the most recent `capacity` records, counting
//! what it sheds — the "flight recorder" configuration for long runs.
//! [`JsonlWriter`] streams each record as one JSON line to any
//! `io::Write`, for post-mortem tooling outside the process.

use std::collections::VecDeque;
use std::io;

use crate::event::TraceRecord;

/// A destination for trace records.
///
/// Sinks must be `Send` so traced runs can still ride the parallel
/// sweep executor. `drain` hands back whatever the sink retained (sinks
/// that retain nothing return an empty vec) and `dropped` reports how
/// many records the sink shed under pressure.
pub trait TraceSink: Send {
    /// Accept one record.
    fn record(&mut self, rec: TraceRecord);

    /// Take all retained records out of the sink, oldest first.
    fn drain(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }

    /// How many records this sink has discarded (capacity, not level,
    /// filtering — the recorder never sends events above its level).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every record. The `Off` configuration.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
}

/// Retains every record in memory, unbounded.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// How many records are currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

/// A bounded ring that keeps the most recent `capacity` records and
/// counts everything it sheds.
#[derive(Debug)]
pub struct RingSink {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (clamped to >= 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        self.ring.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Streams each record as one JSON line to an `io::Write`.
///
/// Write errors are counted (see [`TraceSink::dropped`]) rather than
/// propagated: tracing must never abort a run.
#[derive(Debug)]
pub struct JsonlWriter<W: io::Write + Send> {
    out: W,
    written: u64,
    failed: u64,
}

impl<W: io::Write + Send> JsonlWriter<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> JsonlWriter<W> {
        JsonlWriter {
            out,
            written: 0,
            failed: 0,
        }
    }

    /// How many lines were written successfully.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and recover the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: io::Write + Send> TraceSink for JsonlWriter<W> {
    fn record(&mut self, rec: TraceRecord) {
        let line = rec.to_jsonl_line();
        match writeln!(self.out, "{line}") {
            Ok(()) => self.written += 1,
            Err(_) => self.failed += 1,
        }
    }

    fn dropped(&self) -> u64 {
        self.failed
    }
}

/// Render records to one JSONL string (one line per record, trailing
/// newline after each). The canonical on-disk trace format.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_jsonl_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use spdyier_sim::SimTime;

    fn rec(us: u64, visit: usize) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_micros(us),
            event: TraceEvent::VisitStart { visit, site: 0 },
        }
    }

    #[test]
    fn memory_sink_retains_in_order() {
        let mut sink = MemorySink::new();
        sink.record(rec(1, 0));
        sink.record(rec(2, 1));
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].t, SimTime::from_micros(1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_sink_keeps_newest_and_counts_shed() {
        let mut sink = RingSink::new(2);
        for i in 0..5 {
            sink.record(rec(i, i as usize));
        }
        assert_eq!(sink.dropped(), 3);
        let kept = sink.drain();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].t, SimTime::from_micros(3));
        assert_eq!(kept[1].t, SimTime::from_micros(4));
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let mut sink = JsonlWriter::new(Vec::new());
        sink.record(rec(10, 0));
        sink.record(rec(20, 1));
        assert_eq!(sink.written(), 2);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(text, to_jsonl(&[rec(10, 0), rec(20, 1)]));
    }

    #[test]
    fn null_sink_retains_nothing() {
        let mut sink = NullSink;
        sink.record(rec(1, 0));
        assert!(sink.drain().is_empty());
        assert_eq!(sink.dropped(), 0);
    }
}
