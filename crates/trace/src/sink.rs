//! Where trace records go.
//!
//! A [`TraceSink`] receives fully-formed [`TraceRecord`]s from the
//! recorder. The three built-ins cover the spectrum: [`NullSink`]
//! discards everything (the zero-cost default — the recorder never even
//! constructs events when the level is `Off`), [`MemorySink`] keeps
//! everything for in-process consumers like the stall attributor, and
//! [`RingSink`] keeps only the most recent `capacity` records, counting
//! what it sheds — the "flight recorder" configuration for long runs.
//! [`JsonlWriter`] streams each record as one JSON line to any
//! `io::Write`, for post-mortem tooling outside the process.

use std::collections::VecDeque;
use std::io;

use crate::event::TraceRecord;

/// A destination for trace records.
///
/// Sinks must be `Send` so traced runs can still ride the parallel
/// sweep executor. `drain` hands back whatever the sink retained (sinks
/// that retain nothing return an empty vec) and `dropped` reports how
/// many records the sink shed under pressure.
pub trait TraceSink: Send {
    /// Accept one record.
    fn record(&mut self, rec: TraceRecord);

    /// Take all retained records out of the sink, oldest first.
    fn drain(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }

    /// How many records this sink has discarded (capacity, not level,
    /// filtering — the recorder never sends events above its level).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every record. The `Off` configuration.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
}

/// Retains every record in memory, unbounded.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// How many records are currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

/// A bounded ring that keeps the most recent `capacity` records and
/// counts everything it sheds.
#[derive(Debug)]
pub struct RingSink {
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (clamped to >= 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        self.ring.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// How many buffered bytes a [`JsonlWriter`] accumulates before it
/// pushes them to the inner writer in one `write_all`.
const JSONL_FLUSH_BYTES: usize = 64 * 1024;

/// Streams each record as one JSON line to an `io::Write`, batching
/// lines through an internal buffer so a megaevent run costs hundreds
/// of writes rather than one syscall per record. The buffer drains to
/// the inner writer whenever it crosses [`JSONL_FLUSH_BYTES`], on
/// [`TraceSink::drain`], and on [`JsonlWriter::into_inner`]; the bytes
/// that reach the writer are identical to the unbatched stream.
///
/// Write errors are counted (see [`TraceSink::dropped`]) rather than
/// propagated: tracing must never abort a run. A failed batch write
/// reclassifies every line in the batch from `written` to dropped.
#[derive(Debug)]
pub struct JsonlWriter<W: io::Write + Send> {
    out: W,
    buf: Vec<u8>,
    /// Reusable scratch for one serialized line: `record` renders into
    /// this (via [`TraceRecord::write_jsonl_line`]) and copies it into
    /// `buf`, so steady state allocates nothing per record.
    line: String,
    /// Lines currently sitting in `buf`.
    pending: u64,
    written: u64,
    failed: u64,
}

impl<W: io::Write + Send> JsonlWriter<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> JsonlWriter<W> {
        JsonlWriter {
            out,
            buf: Vec::with_capacity(JSONL_FLUSH_BYTES),
            line: String::new(),
            pending: 0,
            written: 0,
            failed: 0,
        }
    }

    /// How many lines were accepted (buffered or already pushed to the
    /// inner writer). A line only leaves this count if its batch later
    /// fails to write or the final flush fails.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Push the buffered batch to the inner writer.
    fn flush_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.out.write_all(&self.buf).is_err() {
            self.written = self.written.saturating_sub(self.pending);
            self.failed += self.pending;
        }
        self.buf.clear();
        self.pending = 0;
    }

    /// Push the batch and flush the inner writer. A writer that buffers
    /// internally (`BufWriter`, a compressing encoder) may only reveal a
    /// truncated file here — on flush failure every line counted as
    /// written is reclassified as failed, so `dropped()` never reports 0
    /// for a trace the reader cannot actually recover.
    fn final_flush(&mut self) {
        self.flush_buf();
        if self.out.flush().is_err() {
            self.failed += self.written;
            self.written = 0;
        }
    }

    /// Flush and recover the inner writer.
    pub fn into_inner(mut self) -> W {
        self.final_flush();
        self.out
    }
}

impl<W: io::Write + Send> TraceSink for JsonlWriter<W> {
    fn record(&mut self, rec: TraceRecord) {
        self.line.clear();
        rec.write_jsonl_line(&mut self.line);
        self.buf.extend_from_slice(self.line.as_bytes());
        self.buf.push(b'\n');
        self.pending += 1;
        self.written += 1;
        if self.buf.len() >= JSONL_FLUSH_BYTES {
            self.flush_buf();
        }
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        self.final_flush();
        Vec::new()
    }

    fn dropped(&self) -> u64 {
        self.failed
    }
}

/// Render records to one JSONL string (one line per record, trailing
/// newline after each). The canonical on-disk trace format.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        rec.write_jsonl_line(&mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use spdyier_sim::SimTime;

    fn rec(us: u64, visit: usize) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_micros(us),
            event: TraceEvent::VisitStart { visit, site: 0 },
        }
    }

    #[test]
    fn memory_sink_retains_in_order() {
        let mut sink = MemorySink::new();
        sink.record(rec(1, 0));
        sink.record(rec(2, 1));
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].t, SimTime::from_micros(1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_sink_keeps_newest_and_counts_shed() {
        let mut sink = RingSink::new(2);
        for i in 0..5 {
            sink.record(rec(i, i as usize));
        }
        assert_eq!(sink.dropped(), 3);
        let kept = sink.drain();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].t, SimTime::from_micros(3));
        assert_eq!(kept[1].t, SimTime::from_micros(4));
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let mut sink = JsonlWriter::new(Vec::new());
        sink.record(rec(10, 0));
        sink.record(rec(20, 1));
        assert_eq!(sink.written(), 2);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(text, to_jsonl(&[rec(10, 0), rec(20, 1)]));
    }

    /// A writer shared through an `Rc<RefCell<..>>` so tests can watch
    /// when bytes actually arrive, plus a write-call counter.
    #[derive(Default)]
    struct CountingWriter {
        bytes: Vec<u8>,
        write_calls: usize,
    }

    impl io::Write for &mut CountingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_calls += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_writer_batches_lines_into_one_write() {
        let mut inner = CountingWriter::default();
        {
            let mut sink = JsonlWriter::new(&mut inner);
            for i in 0..100 {
                sink.record(rec(i, i as usize));
            }
            // Under the flush threshold: nothing has hit the writer yet,
            // but every line is accepted.
            assert_eq!(sink.written(), 100);
            let _ = sink.into_inner();
        }
        assert!(
            inner.write_calls <= 2,
            "expected one batched write, got {}",
            inner.write_calls
        );
        let text = String::from_utf8(inner.bytes).unwrap();
        assert_eq!(text.lines().count(), 100);
        let expect: Vec<TraceRecord> = (0..100).map(|i| rec(i, i as usize)).collect();
        assert_eq!(text, to_jsonl(&expect), "batching must not change bytes");
    }

    #[test]
    fn jsonl_writer_drain_flushes_the_batch() {
        let mut inner = CountingWriter::default();
        {
            let mut sink = JsonlWriter::new(&mut inner);
            sink.record(rec(1, 0));
            assert_eq!(inner_len(&sink), 1, "line should be buffered");
            assert!(sink.drain().is_empty());
            let _ = sink.into_inner();
        }
        assert_eq!(
            String::from_utf8(inner.bytes).unwrap().lines().count(),
            1,
            "drain must push buffered lines"
        );
    }

    /// Peek at how many lines a writer is holding (test-only).
    fn inner_len<W: io::Write + Send>(w: &JsonlWriter<W>) -> u64 {
        w.pending
    }

    /// A writer that always fails.
    struct FailWriter;

    impl io::Write for FailWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_writer_counts_failed_batches_as_dropped() {
        let mut sink = JsonlWriter::new(FailWriter);
        sink.record(rec(1, 0));
        sink.record(rec(2, 1));
        let _ = sink.drain();
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.written(), 0, "failed lines leave the written count");
    }

    /// A writer whose writes succeed but whose `flush` fails — the
    /// shape of a `BufWriter` over a full disk: bytes are accepted into
    /// the intermediate buffer, the loss only surfaces at flush time.
    struct FailFlushWriter;

    impl io::Write for FailFlushWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("disk full"))
        }
    }

    #[test]
    fn jsonl_writer_reclassifies_written_on_final_flush_failure() {
        let mut sink = JsonlWriter::new(FailFlushWriter);
        sink.record(rec(1, 0));
        sink.record(rec(2, 1));
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.dropped(), 0);
        let _ = sink.drain();
        assert_eq!(
            sink.dropped(),
            2,
            "a failed final flush must not leave dropped() at 0"
        );
        assert_eq!(sink.written(), 0);
    }

    #[test]
    fn jsonl_writer_scratch_line_reuse_keeps_bytes_identical() {
        let mut sink = JsonlWriter::new(Vec::new());
        let records: Vec<TraceRecord> = (0..50).map(|i| rec(i, i as usize)).collect();
        for r in &records {
            sink.record(r.clone());
        }
        let _ = sink.drain();
        let bytes = sink.into_inner();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            to_jsonl(&records),
            "scratch-line serialization must not change the stream"
        );
    }

    #[test]
    fn null_sink_retains_nothing() {
        let mut sink = NullSink;
        sink.record(rec(1, 0));
        assert!(sink.drain().is_empty());
        assert_eq!(sink.dropped(), 0);
    }
}
