//! Flight recorder for the SPDY'ier testbed.
//!
//! The paper's analysis (Erman et al., CoNEXT 2013) worked because the
//! authors could line up tcpdump captures, `tcp_probe` cwnd samples,
//! and RRC state inferences on one timeline. This crate gives the
//! simulated testbed the same power: a deterministic, sim-time-stamped,
//! typed event bus that every layer emits into, plus a metrics registry
//! for aggregate counters, behind a level gate that makes the whole
//! thing free when off.
//!
//! - [`TraceEvent`] / [`TraceRecord`] — the cross-layer vocabulary.
//! - [`TraceLevel`] — `Off` < `Lifecycle` < `Transport` < `Full`,
//!   settable via `SPDYIER_TRACE`.
//! - [`TraceSink`] — where records go: [`NullSink`], [`MemorySink`],
//!   bounded [`RingSink`], streaming [`JsonlWriter`].
//! - [`MetricsRegistry`] — named counters + power-of-two histograms,
//!   deterministically ordered.
//! - [`Tracer`] / [`FlightLog`] — the recorder the `World` carries and
//!   the artifact a finished run hands to consumers (stall attribution,
//!   waterfall export, JSONL dump) in `spdyier-core`.

#![deny(clippy::print_stdout, clippy::print_stderr)]

mod event;
mod metrics;
mod recorder;
mod sink;

pub use event::{TraceEvent, TraceLevel, TraceRecord};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{FlightLog, Tracer};
pub use sink::{to_jsonl, JsonlWriter, MemorySink, NullSink, RingSink, TraceSink};
