//! A deterministic registry of named counters and histograms.
//!
//! Layers publish scalar facts ("tcp.rto_fires", "link.queue_drops")
//! into one registry alongside the event stream, so aggregate questions
//! don't require replaying every event. Storage is `BTreeMap`-keyed:
//! iteration and serialization order is the sorted key order, which
//! keeps traced runs byte-identical regardless of which layer
//! registered first.
//!
//! Histograms use power-of-two buckets (`bucket i` holds values whose
//! bit length is `i`), which is enough resolution for latency and size
//! distributions while staying allocation-free per observation.

use std::collections::BTreeMap;

use serde::Serialize;

/// Number of power-of-two histogram buckets (covers the full u64 range).
const BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram with summary stats.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Histogram {
    /// `buckets[i]` counts observations with bit length `i` (0 -> value 0).
    buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Smallest observation, or 0 when empty.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Mean of all observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count of observations in the bucket for `value`'s magnitude.
    pub fn bucket_for(&self, value: u64) -> u64 {
        self.buckets[(64 - value.leading_zeros()) as usize]
    }

    /// Fold another histogram into this one: buckets add, `min`/`max`
    /// widen, `count` adds and `sum` saturates. Merging an empty
    /// histogram is a no-op (its zero `min` must not clobber ours).
    pub fn merge(&mut self, other: &Histogram) {
        for (i, &b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
        if other.count > 0 {
            if self.count == 0 || other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
            self.count += other.count;
            self.sum = self.sum.saturating_add(other.sum);
        }
    }
}

/// Named counters and histograms, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn count(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (counters add, histograms
    /// merge bucket-wise). Used to aggregate across runs.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            self.count(name, v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.count("tcp.rto_fires", 1);
        m.count("tcp.rto_fires", 2);
        assert_eq!(m.counter("tcp.rto_fires"), 3);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn histogram_tracks_stats_and_buckets() {
        let mut m = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 1000] {
            m.observe("plt_ms", v);
        }
        let h = m.histogram("plt_ms").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        // 2 and 3 share the bit-length-2 bucket.
        assert_eq!(h.bucket_for(2), 2);
    }

    #[test]
    fn serialization_is_sorted_and_deterministic() {
        let mut a = MetricsRegistry::new();
        a.count("zebra", 1);
        a.count("alpha", 2);
        let mut b = MetricsRegistry::new();
        b.count("alpha", 2);
        b.count("zebra", 1);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
        let alpha = ja.find("alpha").unwrap();
        let zebra = ja.find("zebra").unwrap();
        assert!(alpha < zebra, "keys must serialize sorted: {ja}");
    }

    #[test]
    fn histogram_merge_combines_buckets_and_summary() {
        let mut a = Histogram::default();
        for v in [2u64, 3, 100] {
            a.observe(v);
        }
        let mut b = Histogram::default();
        for v in [1u64, 2, 4096] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 6);
        assert_eq!(a.sum, 2 + 3 + 100 + 1 + 2 + 4096);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 4096);
        // 2 and 3 share bit length 2: two from `a`, one from `b`.
        assert_eq!(a.bucket_for(2), 3);
        assert_eq!(a.bucket_for(4096), 1);
    }

    #[test]
    fn histogram_merge_of_empty_is_a_noop() {
        let mut a = Histogram::default();
        a.observe(7);
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before, "empty merge must not clobber min/count");

        // And merging *into* an empty histogram adopts the other side.
        let mut empty = Histogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_merge_min_takes_smaller_nonzero() {
        let mut a = Histogram::default();
        a.observe(100);
        let mut b = Histogram::default();
        b.observe(5);
        a.merge(&b);
        assert_eq!(a.min, 5);
        assert_eq!(a.max, 100);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.count("c", 1);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.count("c", 2);
        b.observe("h", 64);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 64);
        assert_eq!(h.sum, 68);
    }
}
