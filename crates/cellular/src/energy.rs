//! Radio energy accounting.
//!
//! The paper's §5.6.1 notes that pinning the device in DCH "wastes cellular
//! resources and drains device battery" — quantifying that trade-off needs
//! an energy meter integrated with the RRC machine.

use spdyier_sim::{SimDuration, SimTime};

/// Accumulates `power × time` with an explicit accounting watermark so the
/// RRC machines can integrate their piecewise-constant power lazily.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    total_mj: f64,
    accounted_until: SimTime,
}

impl EnergyMeter {
    /// A meter with nothing accrued.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Add `power_mw` drawn for `dt` to the running total.
    pub fn accrue(&mut self, power_mw: f64, dt: SimDuration) {
        self.total_mj += power_mw * dt.as_secs_f64();
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_mj
    }

    /// The instant up to which energy has been accounted.
    pub fn accounted_until(&self) -> SimTime {
        self.accounted_until
    }

    /// Advance the accounting watermark.
    pub fn set_accounted_until(&mut self, t: SimTime) {
        debug_assert!(
            t >= self.accounted_until,
            "energy accounting must move forward"
        );
        self.accounted_until = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrues_power_times_time() {
        let mut m = EnergyMeter::new();
        m.accrue(800.0, SimDuration::from_secs(2));
        assert!((m.total_mj() - 1600.0).abs() < 1e-9);
        m.accrue(0.0, SimDuration::from_secs(100));
        assert!((m.total_mj() - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn watermark_moves_forward() {
        let mut m = EnergyMeter::new();
        assert_eq!(m.accounted_until(), SimTime::ZERO);
        m.set_accounted_until(SimTime::from_secs(5));
        assert_eq!(m.accounted_until(), SimTime::from_secs(5));
    }
}
