//! The LTE RRC state machine.
//!
//! Two primary states (`RRC_IDLE`, `RRC_CONNECTED`) with three
//! `RRC_CONNECTED` sub-states per the paper's Appendix A: Continuous
//! Reception, Short DRX, and Long DRX. Compared to 3G the promotion delay
//! is five times smaller (~0.4 s), which is precisely why the paper sees
//! far fewer — but not zero — spurious retransmissions on LTE (Fig. 17).

use crate::energy::EnergyMeter;
use crate::rrc3g::PromotionEvent;
use crate::rrc3g::PromotionKind;
use serde::{Deserialize, Serialize};
use spdyier_sim::{SimDuration, SimTime};

/// Observable LTE radio states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum RrcLteState {
    /// `RRC_IDLE`: radio released; promotion required.
    Idle,
    /// `RRC_CONNECTED` / continuous reception: full bandwidth.
    ContinuousRx,
    /// `RRC_CONNECTED` / short DRX: dozing between short wake cycles.
    ShortDrx,
    /// `RRC_CONNECTED` / long DRX: dozing between long wake cycles.
    LongDrx,
    /// Promotion from `RRC_IDLE` in progress.
    Promoting,
}

/// Timer and power constants of the LTE machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrcLteConfig {
    /// `RRC_IDLE → RRC_CONNECTED` promotion (paper: ~400 ms).
    pub promotion: SimDuration,
    /// Inactivity before continuous reception → short DRX (paper: ~100 ms).
    pub crx_inactivity: SimDuration,
    /// Time spent in short DRX before falling to long DRX.
    pub short_drx_duration: SimDuration,
    /// Total connected-tail length after last activity before `RRC_IDLE`
    /// (paper: ~11.5 s in long DRX, so tail ≈ 11.6 s + short DRX).
    pub tail_total: SimDuration,
    /// Wake-up latency when data arrives during short DRX.
    pub short_drx_wake: SimDuration,
    /// Wake-up latency when data arrives during long DRX (bounded by one
    /// long DRX cycle).
    pub long_drx_wake: SimDuration,
    /// Power in continuous reception, milliwatts (paper: 1000+).
    pub power_crx_mw: f64,
    /// Power in short DRX, milliwatts.
    pub power_short_drx_mw: f64,
    /// Power in long DRX, milliwatts.
    pub power_long_drx_mw: f64,
    /// Power in `RRC_IDLE`, milliwatts (paper: < 15).
    pub power_idle_mw: f64,
}

impl Default for RrcLteConfig {
    fn default() -> Self {
        RrcLteConfig {
            promotion: SimDuration::from_millis(400),
            crx_inactivity: SimDuration::from_millis(100),
            short_drx_duration: SimDuration::from_millis(400),
            tail_total: SimDuration::from_millis(11_600),
            // DRX wake-on-data happens within one DRX cycle (tens of ms
            // short, ≤ ~100 ms long); only the RRC_IDLE promotion costs
            // the full ~400 ms.
            short_drx_wake: SimDuration::from_millis(20),
            long_drx_wake: SimDuration::from_millis(100),
            power_crx_mw: 1_000.0,
            power_short_drx_mw: 700.0,
            power_long_drx_mw: 600.0,
            power_idle_mw: 15.0,
        }
    }
}

/// The lazily-evaluated LTE RRC machine.
#[derive(Debug)]
pub struct RrcLte {
    cfg: RrcLteConfig,
    /// Last instant the radio carried data.
    last_activity: SimTime,
    promotions: Vec<PromotionEvent>,
    energy: EnergyMeter,
    started: bool,
}

impl RrcLte {
    /// A machine starting in `RRC_IDLE` at t = 0.
    pub fn new(cfg: RrcLteConfig) -> RrcLte {
        RrcLte {
            cfg,
            last_activity: SimTime::ZERO,
            promotions: Vec::new(),
            energy: EnergyMeter::new(),
            started: false,
        }
    }

    /// The promotion interval covering `t`, if any.
    fn covering_promotion(&self, t: SimTime) -> Option<&PromotionEvent> {
        self.promotions
            .iter()
            .rev()
            .take(4)
            .find(|p| p.start <= t && t < p.done)
    }

    /// Configuration in effect.
    pub fn config(&self) -> &RrcLteConfig {
        &self.cfg
    }

    /// Mutable configuration (for sensitivity sweeps; change timers before
    /// the simulation starts).
    pub fn config_mut(&mut self) -> &mut RrcLteConfig {
        &mut self.cfg
    }

    /// The state observed at `t`.
    ///
    /// Queries may be retrospective (see [`crate::Rrc3g::state_at`]); the
    /// recorded promotion intervals are consulted, not just the pending one.
    pub fn state_at(&self, t: SimTime) -> RrcLteState {
        if self
            .promotions
            .iter()
            .rev()
            .take(4)
            .any(|p| p.start <= t && t < p.done)
        {
            return RrcLteState::Promoting;
        }
        if !self.started {
            return RrcLteState::Idle;
        }
        let since = t.saturating_since(self.last_activity);
        if t < self.last_activity || since < self.cfg.crx_inactivity {
            RrcLteState::ContinuousRx
        } else if since < self.cfg.crx_inactivity + self.cfg.short_drx_duration {
            RrcLteState::ShortDrx
        } else if since < self.cfg.tail_total {
            RrcLteState::LongDrx
        } else {
            RrcLteState::Idle
        }
    }

    /// Power draw at `t`, milliwatts.
    pub fn power_at(&self, t: SimTime) -> f64 {
        match self.state_at(t) {
            RrcLteState::ContinuousRx | RrcLteState::Promoting => self.cfg.power_crx_mw,
            RrcLteState::ShortDrx => self.cfg.power_short_drx_mw,
            RrcLteState::LongDrx => self.cfg.power_long_drx_mw,
            RrcLteState::Idle => self.cfg.power_idle_mw,
        }
    }

    /// When may a transfer offered at `now` hit the air? (Size does not
    /// matter on LTE: any packet triggers the full promotion.)
    pub fn gate(&mut self, now: SimTime, _bytes: u64) -> SimTime {
        self.accrue_energy(now);
        match self.state_at(now) {
            RrcLteState::Promoting => {
                self.covering_promotion(now)
                    .expect("Promoting implies a covering promotion record")
                    .done
            }
            RrcLteState::ContinuousRx => now,
            RrcLteState::ShortDrx => now + self.cfg.short_drx_wake,
            RrcLteState::LongDrx => now + self.cfg.long_drx_wake,
            RrcLteState::Idle => {
                let end = now + self.cfg.promotion;
                self.promotions.push(PromotionEvent {
                    start: now,
                    done: end,
                    kind: PromotionKind::IdleToDch,
                });
                end
            }
        }
    }

    /// Record that the radio finished moving data at `t`.
    pub fn note_activity(&mut self, t: SimTime, _bytes: u64) {
        self.accrue_energy(t);
        self.started = true;
        self.last_activity = self.last_activity.max(t);
    }

    /// All promotions taken so far.
    pub fn promotions(&self) -> &[PromotionEvent] {
        &self.promotions
    }

    /// Total radio energy consumed, mJ.
    pub fn energy_mj(&mut self, now: SimTime) -> f64 {
        self.accrue_energy(now);
        self.energy.total_mj()
    }

    fn accrue_energy(&mut self, to: SimTime) {
        let mut cursor = self.energy.accounted_until();
        while cursor < to {
            let promo_edges = self
                .promotions
                .iter()
                .rev()
                .take(4)
                .flat_map(|p| [p.start, p.done]);
            let b2 = self.last_activity + self.cfg.crx_inactivity;
            let b3 = self.last_activity + self.cfg.crx_inactivity + self.cfg.short_drx_duration;
            let b4 = self.last_activity + self.cfg.tail_total;
            let next = promo_edges
                .chain([b2, b3, b4])
                .filter(|&b| b > cursor)
                .min()
                .unwrap_or(SimTime::MAX)
                .min(to);
            let p = self.power_at(cursor);
            self.energy.accrue(p, next.saturating_since(cursor));
            self.energy.set_accounted_until(next);
            cursor = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn machine() -> RrcLte {
        RrcLte::new(RrcLteConfig::default())
    }

    #[test]
    fn fresh_device_is_idle() {
        let m = machine();
        assert_eq!(m.state_at(SimTime::ZERO), RrcLteState::Idle);
    }

    #[test]
    fn promotion_is_much_shorter_than_3g() {
        let mut m = machine();
        let gate = m.gate(SimTime::ZERO, 1380);
        assert_eq!(gate, t(400));
        m.note_activity(gate, 1380);
        assert_eq!(m.state_at(gate), RrcLteState::ContinuousRx);
    }

    #[test]
    fn drx_ladder_follows_timers() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380); // active at 400 ms
        assert_eq!(m.state_at(t(450)), RrcLteState::ContinuousRx);
        assert_eq!(
            m.state_at(t(550)),
            RrcLteState::ShortDrx,
            "+100 ms → short DRX"
        );
        assert_eq!(
            m.state_at(t(1_000)),
            RrcLteState::LongDrx,
            "+500 ms → long DRX"
        );
        assert_eq!(m.state_at(t(11_900)), RrcLteState::LongDrx);
        assert_eq!(
            m.state_at(t(12_100)),
            RrcLteState::Idle,
            "tail ends at +11.6 s"
        );
    }

    #[test]
    fn drx_wake_latencies() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380);
        // Short DRX at +200 ms since activity: 20 ms wake.
        assert_eq!(m.gate(t(600), 1380), t(620));
        m.note_activity(t(620), 1380);
        // Long DRX at +1 s since activity: 100 ms wake.
        assert_eq!(m.gate(t(1_620), 1380), t(1_720));
    }

    #[test]
    fn data_in_crx_flows_immediately() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 100);
        m.note_activity(g, 100);
        assert_eq!(m.gate(t(450), 100), t(450));
    }

    #[test]
    fn idle_after_tail_requires_promotion_again() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380);
        let later = t(60_000);
        assert_eq!(m.state_at(later), RrcLteState::Idle);
        assert_eq!(m.gate(later, 1380), t(60_400));
        assert_eq!(m.promotions().len(), 2);
    }

    #[test]
    fn concurrent_arrivals_share_promotion() {
        let mut m = machine();
        let g1 = m.gate(SimTime::ZERO, 1380);
        let g2 = m.gate(t(100), 1380);
        assert_eq!(g1, g2);
        assert_eq!(m.promotions().len(), 1);
    }

    #[test]
    fn energy_tail_dominates_short_transfers() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380);
        let e = m.energy_mj(t(20_000));
        // Promotion 0.4 s @1000 + CRX 0.1 s @1000 + short DRX 0.4 s @700
        // + long DRX 11.1 s @600 + idle 7.6 s @15.
        let expected = 400.0 + 100.0 + 0.7 * 400.0 + 0.6 * 11_100.0 + 0.015 * 7_600.0;
        assert!(
            (e - expected).abs() < expected * 0.02,
            "energy {e} vs {expected}"
        );
    }
}
