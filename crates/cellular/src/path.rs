//! The cellular access path: RRC-gated duplex links.
//!
//! A [`CellularPath`] combines an uplink and downlink [`Link`] (the
//! active-state radio bearer) with a single shared [`Radio`] state machine.
//! Every packet in either direction consults the radio: if the device is
//! idle/dozing, the packet — and everything behind it — waits out the
//! promotion. This is the mechanism that stalls ACK clocks for seconds and
//! induces the paper's spurious TCP timeouts.

use crate::rrc3g::{PromotionEvent, Rrc3g, Rrc3gConfig};
use crate::rrclte::{RrcLte, RrcLteConfig};
use spdyier_net::{Direction, Link, LinkConfig, LinkVerdict};
use spdyier_sim::{DetRng, SimDuration, SimTime};

/// The radio technology (or its absence) gating a path.
#[derive(Debug)]
pub enum Radio {
    /// 3G UMTS with the IDLE/FACH/DCH machine.
    ThreeG(Rrc3g),
    /// LTE with the RRC_IDLE/RRC_CONNECTED(+DRX) machine.
    Lte(RrcLte),
    /// No RRC gating at all — wired or WiFi behaviour.
    AlwaysOn,
}

impl Radio {
    /// Earliest instant a `bytes`-sized transfer offered at `now` can move.
    pub fn gate(&mut self, now: SimTime, bytes: u64) -> SimTime {
        match self {
            Radio::ThreeG(m) => m.gate(now, bytes),
            Radio::Lte(m) => m.gate(now, bytes),
            Radio::AlwaysOn => now,
        }
    }

    /// Note radio activity finishing at `t`.
    pub fn note_activity(&mut self, t: SimTime, bytes: u64) {
        match self {
            Radio::ThreeG(m) => m.note_activity(t, bytes),
            Radio::Lte(m) => m.note_activity(t, bytes),
            Radio::AlwaysOn => {}
        }
    }

    /// Human-readable state label at `t` (for traces).
    pub fn state_label(&self, t: SimTime) -> &'static str {
        match self {
            Radio::ThreeG(m) => match m.state_at(t) {
                crate::rrc3g::Rrc3gState::Idle => "IDLE",
                crate::rrc3g::Rrc3gState::Fach => "CELL_FACH",
                crate::rrc3g::Rrc3gState::Dch => "CELL_DCH",
                crate::rrc3g::Rrc3gState::Promoting => "PROMOTING",
            },
            Radio::Lte(m) => match m.state_at(t) {
                crate::rrclte::RrcLteState::Idle => "RRC_IDLE",
                crate::rrclte::RrcLteState::ContinuousRx => "CRX",
                crate::rrclte::RrcLteState::ShortDrx => "SHORT_DRX",
                crate::rrclte::RrcLteState::LongDrx => "LONG_DRX",
                crate::rrclte::RrcLteState::Promoting => "PROMOTING",
            },
            Radio::AlwaysOn => "ALWAYS_ON",
        }
    }

    /// Promotions taken so far (empty for [`Radio::AlwaysOn`]).
    pub fn promotions(&self) -> &[PromotionEvent] {
        match self {
            Radio::ThreeG(m) => m.promotions(),
            Radio::Lte(m) => m.promotions(),
            Radio::AlwaysOn => &[],
        }
    }

    /// Total radio energy consumed, mJ.
    pub fn energy_mj(&mut self, now: SimTime) -> f64 {
        match self {
            Radio::ThreeG(m) => m.energy_mj(now),
            Radio::Lte(m) => m.energy_mj(now),
            Radio::AlwaysOn => 0.0,
        }
    }

    /// Override the idle→active promotion delay (sensitivity sweeps). On
    /// 3G the FACH→DCH promotion scales to 3/4 of the new value.
    pub fn set_promotion(&mut self, promotion: SimDuration) {
        match self {
            Radio::ThreeG(m) => {
                let cfg = m.config_mut();
                cfg.promo_idle_dch = promotion;
                cfg.promo_fach_dch = promotion.saturating_mul(3).div(4);
                cfg.promo_idle_fach = promotion.saturating_mul(3).div(4);
            }
            Radio::Lte(m) => {
                m.config_mut().promotion = promotion;
            }
            Radio::AlwaysOn => {}
        }
    }
}

/// A duplex cellular access path with one shared radio.
#[derive(Debug)]
pub struct CellularPath {
    down: Link,
    up: Link,
    radio: Radio,
}

impl CellularPath {
    /// Assemble from bearer link configs and a radio machine.
    pub fn new(down: LinkConfig, up: LinkConfig, radio: Radio) -> CellularPath {
        CellularPath {
            down: Link::new(down),
            up: Link::new(up),
            radio,
        }
    }

    /// Offer a packet; it is gated by the RRC machine, then queued on the
    /// direction's bearer link.
    pub fn send(
        &mut self,
        dir: Direction,
        now: SimTime,
        bytes: u64,
        rng: &mut DetRng,
    ) -> LinkVerdict {
        let gate = self.radio.gate(now, bytes);
        let link = match dir {
            Direction::Down => &mut self.down,
            Direction::Up => &mut self.up,
        };
        match link.send(gate.max(now), bytes, rng) {
            LinkVerdict::Deliver(at) => {
                self.radio.note_activity(at, bytes);
                LinkVerdict::Deliver(at)
            }
            LinkVerdict::Drop => LinkVerdict::Drop,
        }
    }

    /// Access the shared radio machine.
    pub fn radio(&self) -> &Radio {
        &self.radio
    }

    /// Mutable access to the shared radio machine.
    pub fn radio_mut(&mut self) -> &mut Radio {
        &mut self.radio
    }

    /// One direction's bearer link.
    pub fn link(&self, dir: Direction) -> &Link {
        match dir {
            Direction::Down => &self.down,
            Direction::Up => &self.up,
        }
    }

    /// Mutable access to one direction's bearer link (fault injection).
    pub fn link_mut(&mut self, dir: Direction) -> &mut Link {
        match dir {
            Direction::Down => &mut self.down,
            Direction::Up => &mut self.up,
        }
    }

    /// Base (unjittered, unqueued, promoted) round-trip time.
    pub fn base_rtt(&self) -> SimDuration {
        self.down.config().propagation + self.up.config().propagation
    }
}

/// Calibrated presets for the paper's three access networks.
pub mod presets {
    use super::*;
    use spdyier_net::JitterModel;

    /// The production 3G (UMTS/HSPA) network of the study. Bearer rates and
    /// latencies are calibrated so that active-state RTT ≈ 150–200 ms and
    /// peak goodput ≈ 0.4 MB/s (Fig. 9), with a deep NodeB buffer.
    pub fn umts_3g() -> CellularPath {
        // Deep per-user NodeB buffers (the 2013-era cellular bufferbloat):
        // bursts queue — inflating RTT — rather than drop.
        let down = LinkConfig::from_mbps(6.0, 75)
            .with_queue_limit(768 * 1024)
            .with_jitter(JitterModel::LogNormal {
                mean_ms: 20.0,
                sigma: 0.6,
            });
        let up = LinkConfig::from_mbps(1.5, 75)
            .with_queue_limit(256 * 1024)
            .with_jitter(JitterModel::LogNormal {
                mean_ms: 15.0,
                sigma: 0.6,
            });
        CellularPath::new(down, up, Radio::ThreeG(Rrc3g::new(Rrc3gConfig::default())))
    }

    /// The LTE network of §5.6.2: higher rate, ~50 ms active RTT, 400 ms
    /// promotion.
    pub fn lte() -> CellularPath {
        // LTE scheduling + DRX cycling adds heavy-tailed delay variance;
        // the resulting RTTVAR keeps the RTO near or above the ~400 ms
        // promotion, which is why LTE sees far fewer spurious timeouts
        // than 3G despite tighter base RTTs (§5.6.2).
        let down = LinkConfig::from_mbps(20.0, 25)
            .with_queue_limit(1536 * 1024)
            .with_jitter(JitterModel::LogNormal {
                mean_ms: 15.0,
                sigma: 0.7,
            });
        let up = LinkConfig::from_mbps(8.0, 25)
            .with_queue_limit(512 * 1024)
            .with_jitter(JitterModel::LogNormal {
                mean_ms: 12.0,
                sigma: 0.7,
            });
        CellularPath::new(down, up, Radio::Lte(RrcLte::new(RrcLteConfig::default())))
    }

    /// The 3G path with the radio pinned active (the Fig. 14 "ping"
    /// experiment's ideal): same bearer, no RRC gating.
    pub fn umts_3g_pinned() -> CellularPath {
        let down = LinkConfig::from_mbps(6.0, 75)
            .with_queue_limit(768 * 1024)
            .with_jitter(JitterModel::LogNormal {
                mean_ms: 20.0,
                sigma: 0.6,
            });
        let up = LinkConfig::from_mbps(1.5, 75)
            .with_queue_limit(256 * 1024)
            .with_jitter(JitterModel::LogNormal {
                mean_ms: 15.0,
                sigma: 0.6,
            });
        CellularPath::new(down, up, Radio::AlwaysOn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_packet_pays_promotion() {
        let mut p = presets::umts_3g();
        let mut rng = DetRng::new(1);
        match p.send(Direction::Up, SimTime::ZERO, 1380, &mut rng) {
            LinkVerdict::Deliver(at) => {
                assert!(
                    at >= SimTime::from_millis(2_075),
                    "promotion (2 s) + propagation (75 ms), got {at}"
                );
            }
            LinkVerdict::Drop => panic!("drop"),
        }
    }

    #[test]
    fn active_device_has_low_latency() {
        let mut p = presets::umts_3g();
        let mut rng = DetRng::new(1);
        let first = match p.send(Direction::Up, SimTime::ZERO, 1380, &mut rng) {
            LinkVerdict::Deliver(at) => at,
            _ => panic!(),
        };
        // Shortly after, the device is in DCH: only link delays apply.
        let t2 = first + SimDuration::from_millis(100);
        match p.send(Direction::Up, t2, 1380, &mut rng) {
            LinkVerdict::Deliver(at) => {
                let oneway = at.saturating_since(t2);
                assert!(
                    oneway < SimDuration::from_millis(400),
                    "no promotion expected, one-way {oneway}"
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn directions_share_the_radio() {
        let mut p = presets::umts_3g();
        let mut rng = DetRng::new(1);
        // Uplink promotes the radio...
        let up_at = match p.send(Direction::Up, SimTime::ZERO, 1380, &mut rng) {
            LinkVerdict::Deliver(at) => at,
            _ => panic!(),
        };
        // ...so an immediately following downlink packet needs no promotion.
        let down_at = match p.send(Direction::Down, up_at, 1380, &mut rng) {
            LinkVerdict::Deliver(at) => at,
            _ => panic!(),
        };
        assert!(down_at.saturating_since(up_at) < SimDuration::from_millis(400));
        assert_eq!(p.radio().promotions().len(), 1);
    }

    #[test]
    fn lte_promotion_is_shorter() {
        let mut p = presets::lte();
        let mut rng = DetRng::new(1);
        match p.send(Direction::Up, SimTime::ZERO, 1380, &mut rng) {
            LinkVerdict::Deliver(at) => {
                assert!(at >= SimTime::from_millis(425));
                assert!(
                    at < SimTime::from_millis(700),
                    "far below 3G's 2 s, got {at}"
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn pinned_path_never_promotes() {
        let mut p = presets::umts_3g_pinned();
        let mut rng = DetRng::new(1);
        match p.send(Direction::Down, SimTime::from_secs(100), 1380, &mut rng) {
            LinkVerdict::Deliver(at) => {
                assert!(at < SimTime::from_secs(100) + SimDuration::from_millis(400));
            }
            _ => panic!(),
        }
        assert!(p.radio().promotions().is_empty());
    }

    #[test]
    fn state_labels_trace_the_lifecycle() {
        let mut p = presets::umts_3g();
        let mut rng = DetRng::new(1);
        assert_eq!(p.radio().state_label(SimTime::ZERO), "IDLE");
        p.send(Direction::Up, SimTime::ZERO, 1380, &mut rng);
        assert_eq!(
            p.radio().state_label(SimTime::from_millis(500)),
            "PROMOTING"
        );
    }
}
