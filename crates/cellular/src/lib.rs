//! # spdyier-cellular
//!
//! Cellular radio substrate for the SPDY'ier reproduction testbed: the
//! 3GPP radio resource control (RRC) state machines whose promotion delays
//! are the root cause the paper identifies, plus RRC-gated duplex bearer
//! links and radio energy accounting.
//!
//! * [`Rrc3g`] — `IDLE`/`CELL_FACH`/`CELL_DCH` with ~2 s promotions;
//! * [`RrcLte`] — `RRC_IDLE`/`RRC_CONNECTED` with DRX sub-states and a
//!   ~0.4 s promotion;
//! * [`CellularPath`] — a duplex pair of bearer links sharing one radio;
//! * [`path::presets`] — the calibrated 3G / LTE / pinned-3G environments.
//!
//! ```
//! use spdyier_cellular::{Rrc3g, Rrc3gConfig, Rrc3gState};
//! use spdyier_sim::SimTime;
//!
//! let mut radio = Rrc3g::new(Rrc3gConfig::default());
//! // First packet for an idle device waits out the full 2 s promotion.
//! let gate = radio.gate(SimTime::ZERO, 1380);
//! assert_eq!(gate, SimTime::from_millis(2000));
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod energy;
pub mod path;
pub mod rrc3g;
pub mod rrclte;

pub use energy::EnergyMeter;
pub use path::{presets, CellularPath, Radio};
pub use rrc3g::{PromotionEvent, PromotionKind, Rrc3g, Rrc3gConfig, Rrc3gState};
pub use rrclte::{RrcLte, RrcLteConfig, RrcLteState};
