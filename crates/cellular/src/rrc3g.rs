//! The 3G UMTS radio resource control (RRC) state machine.
//!
//! Implements the three-state machine from the paper's Appendix A /
//! Figure 18: `IDLE`, `CELL_FACH`, and `CELL_DCH`, with the promotion and
//! demotion timers the paper reports:
//!
//! * `IDLE → DCH` promotion ≈ 2 s (large data);
//! * `IDLE → FACH` promotion ≈ 1.5 s (small data);
//! * `FACH → DCH` promotion ≈ 1.5 s when the pending transfer exceeds the
//!   FACH queue threshold;
//! * `DCH → FACH` demotion after ≈ 5 s of inactivity;
//! * `FACH → IDLE` demotion after ≈ 12 s more.
//!
//! The machine is evaluated *lazily*: rather than scheduling demotion
//! events, it derives the state at any query instant from the timestamps of
//! past activity. This keeps it a pure, independently testable state
//! machine (sans-IO, like every protocol core in this workspace).

use crate::energy::EnergyMeter;
use serde::{Deserialize, Serialize};
use spdyier_sim::{SimDuration, SimTime};

/// Observable 3G RRC states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Rrc3gState {
    /// No radio resources; nothing can move until a promotion completes.
    Idle,
    /// Shared low-rate channel; small transfers only.
    Fach,
    /// Dedicated high-bandwidth channel.
    Dch,
    /// A promotion is in progress; data is buffered until it completes.
    Promoting,
}

/// Which promotion occurred (recorded for cross-layer analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PromotionKind {
    /// `IDLE → CELL_DCH`, the full ~2 s promotion.
    IdleToDch,
    /// `IDLE → CELL_FACH`, the ~1.5 s small-data promotion.
    IdleToFach,
    /// `CELL_FACH → CELL_DCH` when the queue threshold is exceeded.
    FachToDch,
}

/// One recorded promotion: when it started, when it completed, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PromotionEvent {
    /// Instant the triggering packet arrived at the (idle) radio.
    pub start: SimTime,
    /// Instant the radio became usable again.
    pub done: SimTime,
    /// Transition taken.
    pub kind: PromotionKind,
}

/// Timer and power constants of the 3G machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rrc3gConfig {
    /// `IDLE → DCH` promotion delay (paper: ~2 s).
    pub promo_idle_dch: SimDuration,
    /// `IDLE → FACH` promotion delay for small data (paper: ~1.5 s).
    pub promo_idle_fach: SimDuration,
    /// `FACH → DCH` promotion delay (paper: ~1.5 s).
    pub promo_fach_dch: SimDuration,
    /// Inactivity before `DCH → FACH` demotion (paper: ~5 s).
    pub dch_fach_timer: SimDuration,
    /// Further inactivity before `FACH → IDLE` (paper: ~12 s).
    pub fach_idle_timer: SimDuration,
    /// Transfers larger than this promote out of FACH instead of trickling.
    pub fach_queue_threshold_bytes: u64,
    /// Extra one-way latency for small transfers carried on FACH.
    pub fach_latency: SimDuration,
    /// Power draw in DCH (and during promotions), milliwatts.
    pub power_dch_mw: f64,
    /// Power draw in FACH, milliwatts.
    pub power_fach_mw: f64,
    /// Power draw in IDLE, milliwatts.
    pub power_idle_mw: f64,
}

impl Default for Rrc3gConfig {
    fn default() -> Self {
        Rrc3gConfig {
            promo_idle_dch: SimDuration::from_millis(2_000),
            promo_idle_fach: SimDuration::from_millis(1_500),
            promo_fach_dch: SimDuration::from_millis(1_500),
            dch_fach_timer: SimDuration::from_secs(5),
            fach_idle_timer: SimDuration::from_secs(12),
            // Bare control packets (SYN/ACK ≈ 40 B wire, pings) ride FACH;
            // anything data-bearing needs the dedicated channel. A flow
            // opening with a SYN upgrades the in-progress FACH promotion
            // to the full ~2 s DCH promotion when its first data packet
            // arrives, matching the paper's measured promotion delay.
            fach_queue_threshold_bytes: 120,
            fach_latency: SimDuration::from_millis(100),
            power_dch_mw: 800.0,
            power_fach_mw: 460.0,
            power_idle_mw: 0.0,
        }
    }
}

/// The lazily-evaluated 3G RRC machine.
#[derive(Debug)]
pub struct Rrc3g {
    cfg: Rrc3gConfig,
    /// Device holds DCH until this instant (last DCH activity + timer).
    dch_until: SimTime,
    /// Device holds FACH until this instant.
    fach_until: SimTime,
    /// All promotions taken, for the cross-layer analyzer. The machine's
    /// current/past promotion state is derived from this list.
    promotions: Vec<PromotionEvent>,
    /// Number of promotions whose completion has been applied to the
    /// `dch_until`/`fach_until` hold timers.
    landed: usize,
    energy: EnergyMeter,
    /// True once the device has ever been active (fresh devices start Idle).
    started: bool,
}

impl Rrc3g {
    /// A machine starting in IDLE at t = 0.
    pub fn new(cfg: Rrc3gConfig) -> Rrc3g {
        Rrc3g {
            cfg,
            dch_until: SimTime::ZERO,
            fach_until: SimTime::ZERO,
            promotions: Vec::new(),
            landed: 0,
            energy: EnergyMeter::new(),
            started: false,
        }
    }

    /// Index of the promotion interval covering `t`, if any.
    fn covering_promotion(&self, t: SimTime) -> Option<usize> {
        self.promotions
            .iter()
            .enumerate()
            .rev()
            .take(4)
            .find(|(_, p)| p.start <= t && t < p.done)
            .map(|(i, _)| i)
    }

    /// Configuration in effect.
    pub fn config(&self) -> &Rrc3gConfig {
        &self.cfg
    }

    /// Mutable configuration (for sensitivity sweeps; change timers before
    /// the simulation starts).
    pub fn config_mut(&mut self) -> &mut Rrc3gConfig {
        &mut self.cfg
    }

    /// The state observed at `t` (promotions count as `Promoting`).
    ///
    /// Queries may be retrospective: the DES driver learns packet delivery
    /// times in the future and notes activity there, so `state_at` consults
    /// the recorded promotion intervals, not just the pending one.
    pub fn state_at(&self, t: SimTime) -> Rrc3gState {
        if self
            .promotions
            .iter()
            .rev()
            .take(4)
            .any(|p| p.start <= t && t < p.done)
        {
            return Rrc3gState::Promoting;
        }
        if !self.started {
            return Rrc3gState::Idle;
        }
        if t < self.dch_until {
            Rrc3gState::Dch
        } else if t < self.fach_until {
            Rrc3gState::Fach
        } else {
            Rrc3gState::Idle
        }
    }

    /// Power draw at `t`, milliwatts.
    pub fn power_at(&self, t: SimTime) -> f64 {
        match self.state_at(t) {
            Rrc3gState::Dch | Rrc3gState::Promoting => self.cfg.power_dch_mw,
            Rrc3gState::Fach => self.cfg.power_fach_mw,
            Rrc3gState::Idle => self.cfg.power_idle_mw,
        }
    }

    /// When may a transfer of `bytes` offered at `now` actually hit the air?
    ///
    /// Returns the gate instant and mutates the machine (starting a
    /// promotion if one is needed). Identical to how the NodeB buffers
    /// packets that arrive for an idle device.
    pub fn gate(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.accrue_energy(now);
        let small = bytes <= self.cfg.fach_queue_threshold_bytes;
        match self.state_at(now) {
            Rrc3gState::Promoting => {
                let i = self
                    .covering_promotion(now)
                    .expect("Promoting implies a covering promotion record");
                let p = self.promotions[i];
                if p.kind == PromotionKind::IdleToFach && !small {
                    // Upgrade: the pending large transfer needs DCH. Extend
                    // to the full DCH promotion measured from the original
                    // start (the RNC collapses these in practice).
                    let end = p.done.max(p.start + self.cfg.promo_idle_dch);
                    self.promotions[i].done = end;
                    self.promotions[i].kind = PromotionKind::IdleToDch;
                    end
                } else if p.kind == PromotionKind::IdleToFach && small {
                    p.done + self.cfg.fach_latency
                } else {
                    p.done
                }
            }
            Rrc3gState::Dch => now,
            Rrc3gState::Fach if small => now + self.cfg.fach_latency,
            Rrc3gState::Fach => {
                let end = now + self.cfg.promo_fach_dch;
                self.begin_promotion(now, end, PromotionKind::FachToDch);
                end
            }
            Rrc3gState::Idle => {
                // The paper's network promotes IDLE → CELL_DCH (~2 s) for
                // any packet-switched traffic; IDLE → CELL_FACH setup is
                // retained as a configuration (promo_idle_fach) but the
                // measured network took the DCH path.
                let end = now + self.cfg.promo_idle_dch;
                self.begin_promotion(now, end, PromotionKind::IdleToDch);
                end
            }
        }
    }

    /// Record that the radio finished moving data at `t` (e.g. a packet's
    /// serialisation completed). Refreshes the inactivity timers.
    pub fn note_activity(&mut self, t: SimTime, bytes: u64) {
        self.accrue_energy(t);
        self.started = true;
        let small = bytes <= self.cfg.fach_queue_threshold_bytes;
        let was_fach = self.state_at(t) == Rrc3gState::Fach;
        // Land any promotions that completed by `t` into the hold timers.
        while self.landed < self.promotions.len() && self.promotions[self.landed].done <= t {
            let p = self.promotions[self.landed];
            match p.kind {
                PromotionKind::IdleToFach => {
                    self.fach_until = self.fach_until.max(p.done + self.cfg.fach_idle_timer);
                }
                PromotionKind::IdleToDch | PromotionKind::FachToDch => {
                    self.dch_until = self.dch_until.max(p.done + self.cfg.dch_fach_timer);
                }
            }
            self.landed += 1;
        }
        if small && was_fach {
            // Small FACH transfer: refresh only the FACH hold timer.
            self.fach_until = self.fach_until.max(t + self.cfg.fach_idle_timer);
        } else if self.state_at(t) == Rrc3gState::Dch || !small {
            self.dch_until = self.dch_until.max(t + self.cfg.dch_fach_timer);
            self.fach_until = self
                .fach_until
                .max(self.dch_until + self.cfg.fach_idle_timer);
        } else {
            // Small transfer while idle-bound state: hold FACH.
            self.fach_until = self.fach_until.max(t + self.cfg.fach_idle_timer);
        }
    }

    /// All promotions taken so far.
    pub fn promotions(&self) -> &[PromotionEvent] {
        &self.promotions
    }

    /// Total radio energy consumed up to the last accounted instant, mJ.
    pub fn energy_mj(&mut self, now: SimTime) -> f64 {
        self.accrue_energy(now);
        self.energy.total_mj()
    }

    fn begin_promotion(&mut self, start: SimTime, end: SimTime, kind: PromotionKind) {
        self.promotions.push(PromotionEvent {
            start,
            done: end,
            kind,
        });
    }

    fn accrue_energy(&mut self, to: SimTime) {
        // Walk the piecewise-constant power function segment by segment.
        let mut cursor = self.energy.accounted_until();
        while cursor < to {
            let promo_edges = self
                .promotions
                .iter()
                .rev()
                .take(4)
                .flat_map(|p| [p.start, p.done]);
            let next = promo_edges
                .chain([self.dch_until, self.fach_until])
                .filter(|&b| b > cursor)
                .min()
                .unwrap_or(SimTime::MAX)
                .min(to);
            let p = self.power_at(cursor);
            self.energy.accrue(p, next.saturating_since(cursor));
            self.energy.set_accounted_until(next);
            cursor = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn machine() -> Rrc3g {
        Rrc3g::new(Rrc3gConfig::default())
    }

    #[test]
    fn fresh_device_is_idle() {
        let m = machine();
        assert_eq!(m.state_at(SimTime::ZERO), Rrc3gState::Idle);
        assert_eq!(m.state_at(t(100_000)), Rrc3gState::Idle);
    }

    #[test]
    fn large_data_from_idle_takes_full_promotion() {
        let mut m = machine();
        let gate = m.gate(SimTime::ZERO, 1380);
        assert_eq!(gate, t(2_000), "IDLE→DCH promotion is 2 s");
        assert_eq!(m.state_at(t(1_000)), Rrc3gState::Promoting);
        m.note_activity(gate, 1380);
        assert_eq!(m.state_at(gate), Rrc3gState::Dch);
    }

    #[test]
    fn small_data_from_idle_also_takes_dch_promotion() {
        // The measured network promotes IDLE → DCH for any PS traffic.
        let mut m = machine();
        let gate = m.gate(SimTime::ZERO, 64);
        assert_eq!(gate, t(2_000));
        m.note_activity(gate, 64);
        assert_eq!(m.state_at(gate), Rrc3gState::Dch);
    }

    #[test]
    fn dch_passes_data_immediately() {
        let mut m = machine();
        let gate = m.gate(SimTime::ZERO, 1380);
        m.note_activity(gate, 1380);
        assert_eq!(m.gate(t(2_100), 1380), t(2_100));
    }

    #[test]
    fn demotion_schedule_follows_timers() {
        let mut m = machine();
        let gate = m.gate(SimTime::ZERO, 1380);
        m.note_activity(gate, 1380); // active at 2 s
        assert_eq!(m.state_at(t(6_900)), Rrc3gState::Dch, "within 5 s hold");
        assert_eq!(m.state_at(t(7_100)), Rrc3gState::Fach, "DCH→FACH at +5 s");
        assert_eq!(m.state_at(t(18_900)), Rrc3gState::Fach, "FACH holds 12 s");
        assert_eq!(
            m.state_at(t(19_100)),
            Rrc3gState::Idle,
            "FACH→IDLE at +17 s"
        );
    }

    #[test]
    fn large_data_in_fach_promotes() {
        let mut m = machine();
        let g1 = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g1, 1380); // DCH until 7 s
        let g2 = m.gate(t(8_000), 1380); // in FACH now
        assert_eq!(g2, t(9_500), "FACH→DCH promotion is 1.5 s");
        m.note_activity(g2, 1380);
        assert_eq!(m.state_at(g2), Rrc3gState::Dch);
    }

    #[test]
    fn small_data_in_fach_stays_in_fach() {
        let mut m = machine();
        let g1 = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g1, 1380);
        let g2 = m.gate(t(8_000), 64);
        assert_eq!(g2, t(8_100), "FACH latency only");
        m.note_activity(g2, 64);
        assert_eq!(m.state_at(t(8_200)), Rrc3gState::Fach);
        // FACH hold refreshed: idle would have been at 19 s, now 20.1 s.
        assert_eq!(m.state_at(t(19_500)), Rrc3gState::Fach);
        assert_eq!(m.state_at(t(20_200)), Rrc3gState::Idle);
    }

    #[test]
    fn periodic_pings_keep_dch_alive() {
        // The Fig. 14 experiment: pings every few seconds prevent demotion
        // when they are large enough to count as DCH activity.
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380);
        let mut now = g;
        for _ in 0..20 {
            now += SimDuration::from_secs(3);
            assert_eq!(m.state_at(now), Rrc3gState::Dch, "still DCH at {now}");
            let gate = m.gate(now, 1380);
            assert_eq!(gate, now, "no promotion needed");
            m.note_activity(gate, 1380);
        }
    }

    #[test]
    fn concurrent_arrivals_share_one_promotion() {
        let mut m = machine();
        let g1 = m.gate(SimTime::ZERO, 1380);
        let g2 = m.gate(t(500), 1380);
        assert_eq!(g1, g2, "second packet joins the in-progress promotion");
        assert_eq!(m.promotions().len(), 1);
    }

    #[test]
    fn large_data_upgrades_fach_promotion() {
        let mut m = machine();
        let g_small = m.gate(SimTime::ZERO, 64); // IDLE→FACH started
        let g_large = m.gate(t(200), 1380); // needs DCH
        assert!(g_large >= t(2_000), "upgraded to the full DCH promotion");
        assert!(g_small <= g_large);
        assert_eq!(
            m.promotions().len(),
            1,
            "collapsed into one promotion record"
        );
        assert_eq!(m.promotions()[0].kind, PromotionKind::IdleToDch);
    }

    #[test]
    fn promotion_events_are_recorded() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380);
        // Wait for full demotion to IDLE, then trigger again.
        let later = g + SimDuration::from_secs(30);
        let g2 = m.gate(later, 1380);
        m.note_activity(g2, 1380);
        let promos = m.promotions();
        assert_eq!(promos.len(), 2);
        assert_eq!(promos[0].kind, PromotionKind::IdleToDch);
        assert_eq!(promos[1].kind, PromotionKind::IdleToDch);
        assert_eq!(promos[1].start, later);
    }

    #[test]
    fn energy_reflects_state_occupancy() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380);
        // 2 s promotion @800 mW + 5 s DCH @800 mW + 12 s FACH @460 mW, then idle.
        let e = m.energy_mj(t(19_000 + 10_000));
        let expected = 0.8 * 2_000.0 + 0.8 * 5_000.0 + 0.46 * 12_000.0;
        assert!(
            (e - expected).abs() < expected * 0.02,
            "energy {e} vs expected {expected}"
        );
    }

    #[test]
    fn energy_is_monotonic() {
        let mut m = machine();
        let g = m.gate(SimTime::ZERO, 1380);
        m.note_activity(g, 1380);
        let mut prev = 0.0;
        for s in 1..30 {
            let e = m.energy_mj(SimTime::from_secs(s));
            assert!(e >= prev);
            prev = e;
        }
    }
}
