//! Sweep telemetry: per-shard JSONL heartbeats for the parallel
//! executor.
//!
//! A long sweep is opaque from the outside — `SweepTelemetry` fixes
//! that by emitting one JSON line per completed cell (a `(protocol,
//! seed)` run): which shard (worker) finished it, cumulative cells /
//! events / visits / allocations, the observed events-per-second and
//! allocations-per-visit, how many trace records sinks have shed, and a
//! linear ETA. Lines go to any `Write` (a `heartbeat_*.jsonl` file, a
//! pipe, or an in-memory buffer in benchmarks); write errors are
//! swallowed — telemetry must never abort a sweep.
//!
//! The struct is `Sync` (one mutex around the writer and the running
//! totals) so every worker of the scoped-thread executor reports into
//! the same stream.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

/// Schema version stamped into every heartbeat line. v2 added
/// `peak_rss_kb` and the finite-or-zero guarantee on every rate/ETA
/// field.
pub const HEARTBEAT_SCHEMA_VERSION: u32 = 2;

/// What one finished cell reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellReport {
    /// Worker index that ran the cell.
    pub shard: usize,
    /// Cell (job) index in the sweep.
    pub cell: usize,
    /// Simulated visits the cell completed.
    pub visits: u64,
    /// Trace events the cell emitted.
    pub events: u64,
    /// Trace records the cell's sink shed.
    pub trace_dropped: u64,
    /// Allocations the cell performed (thread-attributed).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// One heartbeat line.
#[derive(Debug, Serialize)]
struct Heartbeat {
    schema_version: u32,
    shard: usize,
    cell: usize,
    cells_completed: usize,
    cells_total: usize,
    elapsed_ms: f64,
    events: u64,
    events_per_sec: f64,
    visits: u64,
    allocs: u64,
    allocs_per_visit: f64,
    trace_dropped: u64,
    eta_ms: f64,
    peak_rss_kb: u64,
}

/// Every computed rate/ETA field goes through this: a monitor parsing
/// heartbeats must never see `inf`/`NaN` (which the JSON writer would
/// render as `null`) from a zero-rate denominator or a first-cell
/// division, only a safe `0`.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Cumulative facts across the sweep so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryTotals {
    /// Cells completed.
    pub completed: usize,
    /// Trace events emitted.
    pub events: u64,
    /// Simulated visits completed.
    pub visits: u64,
    /// Allocations performed by cells.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Trace records shed by sinks.
    pub trace_dropped: u64,
    /// Heartbeat lines successfully written.
    pub lines: u64,
}

struct State {
    out: Option<Box<dyn Write + Send>>,
    totals: TelemetryTotals,
}

/// The shared heartbeat reporter one sweep's workers write into.
pub struct SweepTelemetry {
    total: usize,
    started: Instant,
    state: Mutex<State>,
}

impl std::fmt::Debug for SweepTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepTelemetry")
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl SweepTelemetry {
    /// A reporter for a sweep of `total` cells. `out` is where
    /// heartbeat lines go; `None` keeps the totals without emitting.
    pub fn new(total: usize, out: Option<Box<dyn Write + Send>>) -> SweepTelemetry {
        SweepTelemetry {
            total,
            started: Instant::now(),
            state: Mutex::new(State {
                out,
                totals: TelemetryTotals::default(),
            }),
        }
    }

    /// Record one finished cell and emit its heartbeat line.
    pub fn cell_done(&self, r: &CellReport) {
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1e3;
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let t = &mut state.totals;
        t.completed += 1;
        t.events += r.events;
        t.visits += r.visits;
        t.allocs += r.allocs;
        t.alloc_bytes += r.alloc_bytes;
        t.trace_dropped += r.trace_dropped;
        let hb = Heartbeat {
            schema_version: HEARTBEAT_SCHEMA_VERSION,
            shard: r.shard,
            cell: r.cell,
            cells_completed: t.completed,
            cells_total: self.total,
            elapsed_ms,
            events: t.events,
            events_per_sec: finite_or_zero(if elapsed_ms > 0.0 {
                t.events as f64 / (elapsed_ms / 1e3)
            } else {
                0.0
            }),
            visits: t.visits,
            allocs: t.allocs,
            allocs_per_visit: finite_or_zero(if t.visits > 0 {
                t.allocs as f64 / t.visits as f64
            } else {
                0.0
            }),
            trace_dropped: t.trace_dropped,
            eta_ms: finite_or_zero(if t.completed > 0 && self.total > t.completed {
                elapsed_ms / t.completed as f64 * (self.total - t.completed) as f64
            } else {
                0.0
            }),
            peak_rss_kb: crate::peak_rss_kb(),
        };
        let line = serde_json::to_string(&hb).expect("heartbeat serializes");
        let wrote = match state.out.as_mut() {
            Some(out) => writeln!(out, "{line}").is_ok(),
            None => false,
        };
        if wrote {
            state.totals.lines += 1;
        }
    }

    /// Elapsed host time since the reporter was created, milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Cumulative totals so far.
    pub fn totals(&self) -> TelemetryTotals {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .totals
    }

    /// Flush and drop the writer, returning the final totals.
    pub fn finish(self) -> TelemetryTotals {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(out) = state.out.as_mut() {
            let _ = out.flush();
        }
        state.out = None;
        state.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Vec<u8> sink we can read back after the telemetry is done.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn heartbeats_accumulate_and_serialize() {
        let buf = SharedBuf::default();
        let tel = SweepTelemetry::new(2, Some(Box::new(buf.clone())));
        tel.cell_done(&CellReport {
            shard: 0,
            cell: 0,
            visits: 20,
            events: 1000,
            trace_dropped: 0,
            allocs: 4000,
            alloc_bytes: 64_000,
        });
        tel.cell_done(&CellReport {
            shard: 1,
            cell: 1,
            visits: 20,
            events: 1000,
            trace_dropped: 3,
            allocs: 4000,
            alloc_bytes: 64_000,
        });
        let totals = tel.finish();
        assert_eq!(totals.completed, 2);
        assert_eq!(totals.visits, 40);
        assert_eq!(totals.trace_dropped, 3);
        assert_eq!(totals.lines, 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let last = text.lines().last().unwrap();
        for key in [
            "\"schema_version\"",
            "\"shard\"",
            "\"cell\"",
            "\"cells_completed\"",
            "\"cells_total\"",
            "\"elapsed_ms\"",
            "\"events\"",
            "\"events_per_sec\"",
            "\"visits\"",
            "\"allocs\"",
            "\"allocs_per_visit\"",
            "\"trace_dropped\"",
            "\"eta_ms\"",
            "\"peak_rss_kb\"",
        ] {
            assert!(last.contains(key), "heartbeat missing {key}: {last}");
        }
        assert!(last.contains("\"cells_completed\":2"));
        assert!(last.contains("\"allocs_per_visit\":200"));
        assert!(last.contains("\"trace_dropped\":3"));
        assert!(last.contains(&format!("\"schema_version\":{HEARTBEAT_SCHEMA_VERSION}")));
    }

    #[test]
    fn rates_and_eta_are_always_finite() {
        // The degenerate first-cell / zero-rate cases: no visits, no
        // events, zero (or epsilon) elapsed time. Every numeric field
        // must serialize as a plain number — the vendored JSON writer
        // renders a non-finite f64 as `null`, which would break any
        // monitor parsing the stream.
        let buf = SharedBuf::default();
        let tel = SweepTelemetry::new(1000, Some(Box::new(buf.clone())));
        tel.cell_done(&CellReport::default());
        tel.finish();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let line = text.lines().next().unwrap();
        assert!(
            !line.contains("null") && !line.contains("inf") && !line.contains("NaN"),
            "degenerate heartbeat leaked a non-finite value: {line}"
        );
        assert!(line.contains("\"events_per_sec\":"), "{line}");
        assert!(line.contains("\"eta_ms\":"), "{line}");
    }

    #[test]
    fn finite_or_zero_clamps_only_non_finite() {
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
        assert_eq!(finite_or_zero(42.5), 42.5);
    }

    #[test]
    fn none_writer_keeps_totals_without_lines() {
        let tel = SweepTelemetry::new(1, None);
        tel.cell_done(&CellReport {
            visits: 5,
            ..CellReport::default()
        });
        let totals = tel.totals();
        assert_eq!(totals.completed, 1);
        assert_eq!(totals.visits, 5);
        assert_eq!(totals.lines, 0);
    }
}
