//! The counting global allocator and its attribution counters.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (count and requested bytes) into process-wide atomics —
//! the same measurement `payload_bench` pioneered, now reusable by any
//! binary via `#[global_allocator]`. Deallocations are deliberately not
//! tracked: the interesting number is how much the workload *asks for*;
//! peak RSS covers the high-water mark.
//!
//! While the profiler is enabled ([`crate::enabled`]), each allocation
//! is additionally charged to thread-local counters. The span profiler
//! samples those at scope entry/exit, which is what turns "59 M
//! allocations per sweep" into "which layer asked for them". The
//! thread-locals are const-initialized `Cell`s — no lazy init, no
//! destructor — so bumping them from inside the allocator can never
//! recurse into the allocator itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_BYTES: AtomicU64 = AtomicU64::new(0);

// One thread-local block (not two) so the per-allocation hot path pays
// a single TLS address computation.
struct TlCounts {
    allocs: Cell<u64>,
    bytes: Cell<u64>,
}

thread_local! {
    static TL_COUNTS: TlCounts = const {
        TlCounts {
            allocs: Cell::new(0),
            bytes: Cell::new(0),
        }
    };
}

/// A snapshot of allocation counters (count and requested bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCounts {
    /// Number of allocator calls (`alloc` + `realloc`).
    pub allocs: u64,
    /// Total bytes requested across those calls.
    pub bytes: u64,
}

impl AllocCounts {
    /// The counters accumulated since an earlier snapshot.
    pub fn since(self, earlier: AllocCounts) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Process-wide allocation counters (always counted while
/// [`CountingAlloc`] is installed, independent of the profiler switch).
pub fn global_counts() -> AllocCounts {
    AllocCounts {
        allocs: GLOBAL_ALLOCS.load(Ordering::Relaxed),
        bytes: GLOBAL_BYTES.load(Ordering::Relaxed),
    }
}

/// This thread's attribution counters (bumped only while the profiler
/// is enabled; reads 0 deltas otherwise).
pub fn thread_counts() -> AllocCounts {
    TL_COUNTS
        .try_with(|c| AllocCounts {
            allocs: c.allocs.get(),
            bytes: c.bytes.get(),
        })
        .unwrap_or_default()
}

#[inline]
fn count(bytes: usize) {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    GLOBAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    if crate::enabled() {
        // `try_with` + const init: safe even during thread teardown, and
        // never allocates (which would recurse into `alloc`).
        let _ = TL_COUNTS.try_with(|c| {
            c.allocs.set(c.allocs.get().wrapping_add(1));
            c.bytes.set(c.bytes.get().wrapping_add(bytes as u64));
        });
    }
}

/// A pass-through allocator that counts every allocation. Install it in
/// a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static GLOBAL: spdyier_prof::CountingAlloc = spdyier_prof::CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Install the counting allocator for this crate's test binary so the
    // attribution tests observe real traffic.
    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    #[test]
    fn global_counters_advance_on_allocation() {
        let before = global_counts();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let d = global_counts().since(before);
        assert!(d.allocs >= 1, "allocation not counted");
        assert!(d.bytes >= 4096, "requested bytes not counted: {}", d.bytes);
        drop(v);
    }

    #[test]
    fn thread_counters_gate_on_the_profiler_switch() {
        let _guard = crate::test_guard();
        crate::set_enabled(false);
        let before = thread_counts();
        let _v: Vec<u8> = Vec::with_capacity(1024);
        assert_eq!(thread_counts().since(before).allocs, 0);

        crate::set_enabled(true);
        let before = thread_counts();
        let v: Vec<u8> = Vec::with_capacity(1024);
        let d = thread_counts().since(before);
        crate::set_enabled(false);
        assert!(d.allocs >= 1);
        assert!(d.bytes >= 1024);
        drop(v);
    }
}
