//! # spdyier-prof
//!
//! Host-side self-observability for the testbed. PR 2's flight recorder
//! watches the *simulated* world; this crate watches the *simulator*:
//! where its own wall-time goes, which subsystem performs which share of
//! its allocations, and how fast a sweep is actually progressing.
//!
//! Three pieces:
//!
//! - [`CountingAlloc`] — a pass-through global allocator (lifted out of
//!   `payload_bench` so every binary can install it) that counts every
//!   allocation process-wide and, while profiling is enabled, also into
//!   thread-local counters the span profiler attributes per scope.
//! - [`scope`] — a scoped span profiler: `let _p = prof::scope("tcp.deliver")`
//!   records host-nanosecond power-of-two histograms plus the
//!   allocations/bytes performed inside the scope, keyed by a
//!   `layer.event_kind` name. Scopes nest; self-time and self-allocations
//!   exclude enclosed scopes, so subsystem rollups partition exactly.
//! - [`SweepTelemetry`] — per-shard JSONL heartbeats for the parallel
//!   sweep executor (cells completed, events/s, allocs/visit, trace-drop
//!   counts, ETA) plus the [`SelfReport`] end-of-run `profile_*.json`.
//!
//! The whole crate is gated on one global switch: with
//! [`set_enabled`]`(false)` (the default), [`scope`] returns an inert
//! guard after a single relaxed atomic load and the allocator skips the
//! thread-local bump — the simulation's output is byte-identical either
//! way, because nothing here ever touches simulated state.

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

mod alloc;
mod report;
mod scope;
mod telemetry;

use std::sync::atomic::{AtomicBool, Ordering};

pub use alloc::{global_counts, thread_counts, AllocCounts, CountingAlloc};
pub use report::{
    peak_rss_kb, ProfileReport, SelfReport, SinkReport, SpanStats, SubsystemStats,
    PROFILE_SCHEMA_VERSION,
};
pub use scope::{scope, take_thread_profile, Scope};
pub use telemetry::{CellReport, SweepTelemetry, TelemetryTotals, HEARTBEAT_SCHEMA_VERSION};

/// The global profiler switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serializes tests that toggle the process-wide profiler switch.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether the profiler is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the profiler on or off, process-wide.
///
/// Enabling mid-scope is safe: guards opened while disabled stay inert,
/// and guards opened while enabled record normally even if the switch
/// flips before they drop.
pub fn set_enabled(on: bool) {
    if on {
        // One-time ~5 ms tick-rate calibration, paid here rather than
        // inside the first recorded span.
        scope::calibrate_ticks();
    }
    ENABLED.store(on, Ordering::Relaxed);
}
